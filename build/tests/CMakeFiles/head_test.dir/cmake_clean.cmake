file(REMOVE_RECURSE
  "CMakeFiles/head_test.dir/head_test.cc.o"
  "CMakeFiles/head_test.dir/head_test.cc.o.d"
  "head_test"
  "head_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
