# Empty dependencies file for head_test.
# This may be replaced when dependencies are built.
