file(REMOVE_RECURSE
  "CMakeFiles/snappy_lite_test.dir/snappy_lite_test.cc.o"
  "CMakeFiles/snappy_lite_test.dir/snappy_lite_test.cc.o.d"
  "snappy_lite_test"
  "snappy_lite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappy_lite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
