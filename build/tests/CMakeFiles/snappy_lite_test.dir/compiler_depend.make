# Empty compiler generated dependencies file for snappy_lite_test.
# This may be replaced when dependencies are built.
