file(REMOVE_RECURSE
  "CMakeFiles/chunk_merge_test.dir/chunk_merge_test.cc.o"
  "CMakeFiles/chunk_merge_test.dir/chunk_merge_test.cc.o.d"
  "chunk_merge_test"
  "chunk_merge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunk_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
