# Empty dependencies file for chunk_merge_test.
# This may be replaced when dependencies are built.
