file(REMOVE_RECURSE
  "CMakeFiles/double_array_trie_test.dir/double_array_trie_test.cc.o"
  "CMakeFiles/double_array_trie_test.dir/double_array_trie_test.cc.o.d"
  "double_array_trie_test"
  "double_array_trie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_array_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
