# Empty compiler generated dependencies file for double_array_trie_test.
# This may be replaced when dependencies are built.
