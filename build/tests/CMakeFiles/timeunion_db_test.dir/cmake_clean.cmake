file(REMOVE_RECURSE
  "CMakeFiles/timeunion_db_test.dir/timeunion_db_test.cc.o"
  "CMakeFiles/timeunion_db_test.dir/timeunion_db_test.cc.o.d"
  "timeunion_db_test"
  "timeunion_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeunion_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
