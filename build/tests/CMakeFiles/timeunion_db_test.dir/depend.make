# Empty dependencies file for timeunion_db_test.
# This may be replaced when dependencies are built.
