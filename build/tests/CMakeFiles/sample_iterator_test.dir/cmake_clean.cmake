file(REMOVE_RECURSE
  "CMakeFiles/sample_iterator_test.dir/sample_iterator_test.cc.o"
  "CMakeFiles/sample_iterator_test.dir/sample_iterator_test.cc.o.d"
  "sample_iterator_test"
  "sample_iterator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_iterator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
