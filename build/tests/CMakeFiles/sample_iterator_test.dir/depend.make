# Empty dependencies file for sample_iterator_test.
# This may be replaced when dependencies are built.
