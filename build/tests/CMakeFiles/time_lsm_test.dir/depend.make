# Empty dependencies file for time_lsm_test.
# This may be replaced when dependencies are built.
