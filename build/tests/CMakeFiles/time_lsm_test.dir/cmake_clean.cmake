file(REMOVE_RECURSE
  "CMakeFiles/time_lsm_test.dir/time_lsm_test.cc.o"
  "CMakeFiles/time_lsm_test.dir/time_lsm_test.cc.o.d"
  "time_lsm_test"
  "time_lsm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_lsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
