# Empty dependencies file for gorilla_test.
# This may be replaced when dependencies are built.
