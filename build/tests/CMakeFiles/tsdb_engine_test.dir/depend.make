# Empty dependencies file for tsdb_engine_test.
# This may be replaced when dependencies are built.
