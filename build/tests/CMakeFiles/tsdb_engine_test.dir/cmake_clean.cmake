file(REMOVE_RECURSE
  "CMakeFiles/tsdb_engine_test.dir/tsdb_engine_test.cc.o"
  "CMakeFiles/tsdb_engine_test.dir/tsdb_engine_test.cc.o.d"
  "tsdb_engine_test"
  "tsdb_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsdb_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
