# Empty dependencies file for cloud_storage_test.
# This may be replaced when dependencies are built.
