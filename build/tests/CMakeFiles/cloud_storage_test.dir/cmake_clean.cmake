file(REMOVE_RECURSE
  "CMakeFiles/cloud_storage_test.dir/cloud_storage_test.cc.o"
  "CMakeFiles/cloud_storage_test.dir/cloud_storage_test.cc.o.d"
  "cloud_storage_test"
  "cloud_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
