# Empty dependencies file for leveled_lsm_test.
# This may be replaced when dependencies are built.
