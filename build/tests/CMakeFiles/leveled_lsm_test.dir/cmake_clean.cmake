file(REMOVE_RECURSE
  "CMakeFiles/leveled_lsm_test.dir/leveled_lsm_test.cc.o"
  "CMakeFiles/leveled_lsm_test.dir/leveled_lsm_test.cc.o.d"
  "leveled_lsm_test"
  "leveled_lsm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leveled_lsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
