# Empty dependencies file for tsbs_test.
# This may be replaced when dependencies are built.
