file(REMOVE_RECURSE
  "CMakeFiles/tsbs_test.dir/tsbs_test.cc.o"
  "CMakeFiles/tsbs_test.dir/tsbs_test.cc.o.d"
  "tsbs_test"
  "tsbs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
