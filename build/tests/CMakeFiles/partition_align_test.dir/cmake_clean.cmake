file(REMOVE_RECURSE
  "CMakeFiles/partition_align_test.dir/partition_align_test.cc.o"
  "CMakeFiles/partition_align_test.dir/partition_align_test.cc.o.d"
  "partition_align_test"
  "partition_align_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_align_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
