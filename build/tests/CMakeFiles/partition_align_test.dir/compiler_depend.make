# Empty compiler generated dependencies file for partition_align_test.
# This may be replaced when dependencies are built.
