file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_constraints.dir/bench_fig18_constraints.cc.o"
  "CMakeFiles/bench_fig18_constraints.dir/bench_fig18_constraints.cc.o.d"
  "bench_fig18_constraints"
  "bench_fig18_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
