# Empty dependencies file for bench_fig18_constraints.
# This may be replaced when dependencies are built.
