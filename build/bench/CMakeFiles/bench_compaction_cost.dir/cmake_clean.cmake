file(REMOVE_RECURSE
  "CMakeFiles/bench_compaction_cost.dir/bench_compaction_cost.cc.o"
  "CMakeFiles/bench_compaction_cost.dir/bench_compaction_cost.cc.o.d"
  "bench_compaction_cost"
  "bench_compaction_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compaction_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
