# Empty dependencies file for bench_compaction_cost.
# This may be replaced when dependencies are built.
