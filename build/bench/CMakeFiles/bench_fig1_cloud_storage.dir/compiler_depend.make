# Empty compiler generated dependencies file for bench_fig1_cloud_storage.
# This may be replaced when dependencies are built.
