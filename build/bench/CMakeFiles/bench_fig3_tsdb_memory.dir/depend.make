# Empty dependencies file for bench_fig3_tsdb_memory.
# This may be replaced when dependencies are built.
