file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_tsdb_ldb.dir/bench_fig4_tsdb_ldb.cc.o"
  "CMakeFiles/bench_fig4_tsdb_ldb.dir/bench_fig4_tsdb_ldb.cc.o.d"
  "bench_fig4_tsdb_ldb"
  "bench_fig4_tsdb_ldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tsdb_ldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
