# Empty compiler generated dependencies file for bench_fig4_tsdb_ldb.
# This may be replaced when dependencies are built.
