file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_devops.dir/bench_fig14_devops.cc.o"
  "CMakeFiles/bench_fig14_devops.dir/bench_fig14_devops.cc.o.d"
  "bench_fig14_devops"
  "bench_fig14_devops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_devops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
