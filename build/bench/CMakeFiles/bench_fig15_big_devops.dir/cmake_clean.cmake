file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_big_devops.dir/bench_fig15_big_devops.cc.o"
  "CMakeFiles/bench_fig15_big_devops.dir/bench_fig15_big_devops.cc.o.d"
  "bench_fig15_big_devops"
  "bench_fig15_big_devops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_big_devops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
