# Empty compiler generated dependencies file for bench_fig15_big_devops.
# This may be replaced when dependencies are built.
