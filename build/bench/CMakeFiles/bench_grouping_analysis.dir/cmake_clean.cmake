file(REMOVE_RECURSE
  "CMakeFiles/bench_grouping_analysis.dir/bench_grouping_analysis.cc.o"
  "CMakeFiles/bench_grouping_analysis.dir/bench_grouping_analysis.cc.o.d"
  "bench_grouping_analysis"
  "bench_grouping_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grouping_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
