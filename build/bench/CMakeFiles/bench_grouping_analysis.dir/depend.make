# Empty dependencies file for bench_grouping_analysis.
# This may be replaced when dependencies are built.
