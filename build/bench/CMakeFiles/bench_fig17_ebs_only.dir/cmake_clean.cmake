file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_ebs_only.dir/bench_fig17_ebs_only.cc.o"
  "CMakeFiles/bench_fig17_ebs_only.dir/bench_fig17_ebs_only.cc.o.d"
  "bench_fig17_ebs_only"
  "bench_fig17_ebs_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_ebs_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
