# Empty dependencies file for bench_fig17_ebs_only.
# This may be replaced when dependencies are built.
