file(REMOVE_RECURSE
  "libtimeunion.a"
)
