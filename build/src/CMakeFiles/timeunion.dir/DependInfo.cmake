
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cortex_sim.cc" "src/CMakeFiles/timeunion.dir/baseline/cortex_sim.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/baseline/cortex_sim.cc.o.d"
  "/root/repo/src/baseline/tsdb_engine.cc" "src/CMakeFiles/timeunion.dir/baseline/tsdb_engine.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/baseline/tsdb_engine.cc.o.d"
  "/root/repo/src/cloud/block_store.cc" "src/CMakeFiles/timeunion.dir/cloud/block_store.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/cloud/block_store.cc.o.d"
  "/root/repo/src/cloud/cost_model.cc" "src/CMakeFiles/timeunion.dir/cloud/cost_model.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/cloud/cost_model.cc.o.d"
  "/root/repo/src/cloud/object_store.cc" "src/CMakeFiles/timeunion.dir/cloud/object_store.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/cloud/object_store.cc.o.d"
  "/root/repo/src/cloud/storage_sim.cc" "src/CMakeFiles/timeunion.dir/cloud/storage_sim.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/cloud/storage_sim.cc.o.d"
  "/root/repo/src/cloud/tiered_env.cc" "src/CMakeFiles/timeunion.dir/cloud/tiered_env.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/cloud/tiered_env.cc.o.d"
  "/root/repo/src/compress/chunk.cc" "src/CMakeFiles/timeunion.dir/compress/chunk.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/compress/chunk.cc.o.d"
  "/root/repo/src/compress/gorilla.cc" "src/CMakeFiles/timeunion.dir/compress/gorilla.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/compress/gorilla.cc.o.d"
  "/root/repo/src/compress/snappy_lite.cc" "src/CMakeFiles/timeunion.dir/compress/snappy_lite.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/compress/snappy_lite.cc.o.d"
  "/root/repo/src/core/maintenance.cc" "src/CMakeFiles/timeunion.dir/core/maintenance.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/core/maintenance.cc.o.d"
  "/root/repo/src/core/sample_iterator.cc" "src/CMakeFiles/timeunion.dir/core/sample_iterator.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/core/sample_iterator.cc.o.d"
  "/root/repo/src/core/timeunion_db.cc" "src/CMakeFiles/timeunion.dir/core/timeunion_db.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/core/timeunion_db.cc.o.d"
  "/root/repo/src/core/wal.cc" "src/CMakeFiles/timeunion.dir/core/wal.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/core/wal.cc.o.d"
  "/root/repo/src/index/double_array_trie.cc" "src/CMakeFiles/timeunion.dir/index/double_array_trie.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/index/double_array_trie.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/timeunion.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/index/labels.cc" "src/CMakeFiles/timeunion.dir/index/labels.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/index/labels.cc.o.d"
  "/root/repo/src/index/postings.cc" "src/CMakeFiles/timeunion.dir/index/postings.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/index/postings.cc.o.d"
  "/root/repo/src/index/tag_store.cc" "src/CMakeFiles/timeunion.dir/index/tag_store.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/index/tag_store.cc.o.d"
  "/root/repo/src/lsm/block.cc" "src/CMakeFiles/timeunion.dir/lsm/block.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/block.cc.o.d"
  "/root/repo/src/lsm/bloom.cc" "src/CMakeFiles/timeunion.dir/lsm/bloom.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/bloom.cc.o.d"
  "/root/repo/src/lsm/chunk_merge.cc" "src/CMakeFiles/timeunion.dir/lsm/chunk_merge.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/chunk_merge.cc.o.d"
  "/root/repo/src/lsm/leveled_lsm.cc" "src/CMakeFiles/timeunion.dir/lsm/leveled_lsm.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/leveled_lsm.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/CMakeFiles/timeunion.dir/lsm/memtable.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/memtable.cc.o.d"
  "/root/repo/src/lsm/merging_iterator.cc" "src/CMakeFiles/timeunion.dir/lsm/merging_iterator.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/merging_iterator.cc.o.d"
  "/root/repo/src/lsm/skiplist.cc" "src/CMakeFiles/timeunion.dir/lsm/skiplist.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/skiplist.cc.o.d"
  "/root/repo/src/lsm/table_builder.cc" "src/CMakeFiles/timeunion.dir/lsm/table_builder.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/table_builder.cc.o.d"
  "/root/repo/src/lsm/table_format.cc" "src/CMakeFiles/timeunion.dir/lsm/table_format.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/table_format.cc.o.d"
  "/root/repo/src/lsm/table_reader.cc" "src/CMakeFiles/timeunion.dir/lsm/table_reader.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/table_reader.cc.o.d"
  "/root/repo/src/lsm/time_lsm.cc" "src/CMakeFiles/timeunion.dir/lsm/time_lsm.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/lsm/time_lsm.cc.o.d"
  "/root/repo/src/mem/chunk_array.cc" "src/CMakeFiles/timeunion.dir/mem/chunk_array.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/mem/chunk_array.cc.o.d"
  "/root/repo/src/mem/head.cc" "src/CMakeFiles/timeunion.dir/mem/head.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/mem/head.cc.o.d"
  "/root/repo/src/tsbs/devops.cc" "src/CMakeFiles/timeunion.dir/tsbs/devops.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/tsbs/devops.cc.o.d"
  "/root/repo/src/util/arena.cc" "src/CMakeFiles/timeunion.dir/util/arena.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/util/arena.cc.o.d"
  "/root/repo/src/util/bitmap.cc" "src/CMakeFiles/timeunion.dir/util/bitmap.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/util/bitmap.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/CMakeFiles/timeunion.dir/util/coding.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/util/coding.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/CMakeFiles/timeunion.dir/util/crc32c.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/util/crc32c.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/timeunion.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/memory_tracker.cc" "src/CMakeFiles/timeunion.dir/util/memory_tracker.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/util/memory_tracker.cc.o.d"
  "/root/repo/src/util/mmap_file.cc" "src/CMakeFiles/timeunion.dir/util/mmap_file.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/util/mmap_file.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/timeunion.dir/util/random.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/timeunion.dir/util/status.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/util/status.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/timeunion.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/timeunion.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
