# Empty compiler generated dependencies file for timeunion.
# This may be replaced when dependencies are built.
