file(REMOVE_RECURSE
  "CMakeFiles/devops_monitoring.dir/devops_monitoring.cc.o"
  "CMakeFiles/devops_monitoring.dir/devops_monitoring.cc.o.d"
  "devops_monitoring"
  "devops_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devops_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
