// Network front door suite (`ctest -L server`):
//   - Roundtrip: concurrent remote clients write through the server (labeled
//     first batch, then by remote ref) while the same rows go into an
//     embedded control DB; every remote query — raw and aggregate — must be
//     byte-identical to the embedded control result.
//   - Protocol robustness: malformed frames (bad crc, oversized length
//     prefix, unknown type, truncated garbage) draw a structured error and
//     close only the offending connection — a concurrently connected good
//     client keeps working.
//   - Tenant isolation: two tenants writing the same label set never see
//     each other's samples; guessed remote refs reject; the reserved
//     __tenant__ tag is rejected in labels and matchers; the empty tenant
//     is rejected.
//   - Quotas: per-tenant token buckets return structured kResourceExhausted
//     (connection survives), refill over time, and let one oversized
//     request through on the debt model.
//   - Graceful drain: Shutdown during concurrent ingest loses zero acked
//     writes across a full DB reopen (WAL replay).
//   - Fuzz: 1k seeded random frames across many connections — no crash, no
//     acked-but-lost writes, server still serves afterwards.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cloud/tiered_env.h"
#include "core/timeunion_db.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace tu {
namespace {

using core::DBOptions;
using core::QueryResult;
using core::TimeUnionDB;
using core::WriteBatch;
using core::WriteResult;
using index::Label;
using index::Labels;
using index::TagMatcher;
using query::ReadRequest;

DBOptions TestOptions(const std::string& ws) {
  DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.samples_per_chunk = 8;
  opts.enable_wal = true;
  return opts;
}

/// Raw TCP connection for sending hand-crafted (and broken) frames.
class RawConn {
 public:
  static std::unique_ptr<RawConn> Dial(uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return nullptr;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return nullptr;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return std::unique_ptr<RawConn>(new RawConn(fd));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Best-effort send; the server may already have closed on us.
  void Send(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t w =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (w > 0) {
        off += static_cast<size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      return;
    }
  }

  /// Reads until the peer closes (or the 5s receive timeout fires).
  std::string ReadUntilClose() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t r = ::read(fd_, buf, sizeof(buf));
      if (r > 0) {
        out.append(buf, static_cast<size_t>(r));
        continue;
      }
      if (r < 0 && errno == EINTR) continue;
      return out;  // closed or timed out
    }
  }

 private:
  explicit RawConn(int fd) : fd_(fd) {}
  int fd_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = "/tmp/timeunion_test/server";
    RemoveDirRecursive(ws_);
  }
  void TearDown() override {
    server_.reset();
    db_.reset();
    RemoveDirRecursive(ws_);
  }

  void OpenAndStart(server::ServerOptions sopts = {}) {
    Status s = TimeUnionDB::Open(TestOptions(ws_ + "/db"), &db_);
    ASSERT_TRUE(s.ok()) << s.ToString();
    server_ = std::make_unique<server::Server>(db_.get(), sopts);
    s = server_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_GT(server_->port(), 0);
  }

  std::unique_ptr<server::Client> Connect(const std::string& tenant) {
    std::unique_ptr<server::Client> client;
    Status s =
        server::Client::Connect("127.0.0.1", server_->port(), tenant, &client);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return client;
  }

  std::string ws_;
  std::unique_ptr<TimeUnionDB> db_;
  std::unique_ptr<server::Server> server_;
};

// ---------------------------------------------------------------------------
// Roundtrip vs embedded control
// ---------------------------------------------------------------------------

TEST_F(ServerTest, ConcurrentRoundtripMatchesEmbeddedControl) {
  OpenAndStart();
  std::unique_ptr<TimeUnionDB> control;
  Status s = TimeUnionDB::Open(TestOptions(ws_ + "/control"), &control);
  ASSERT_TRUE(s.ok()) << s.ToString();

  constexpr int kThreads = 4;
  constexpr int kBatches = 8;
  constexpr int kBatchRows = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Connect("acme");
      if (client == nullptr) {
        failures.fetch_add(1);
        return;
      }
      const Labels labels = {{"host", "h" + std::to_string(t)},
                             {"metric", "cpu"}};
      uint64_t remote_ref = 0;
      int64_t ts = 0;
      for (int b = 0; b < kBatches; ++b) {
        WriteBatch batch;
        WriteBatch embedded;
        for (int i = 0; i < kBatchRows; ++i) {
          ++ts;
          const double v = t * 1000.0 + ts * 0.5;
          // First batch registers by labels; the rest ride the remote ref
          // so both wire addressing modes are exercised.
          if (b == 0) {
            batch.AddSample(labels, ts, v);
          } else {
            batch.AddSample(remote_ref, ts, v);
          }
          embedded.AddSample(labels, ts, v);
        }
        server::WriteAck ack;
        Status ws = client->Write(batch, &ack);
        if (!ws.ok() || !ack.remote_status.ok() ||
            ack.appended != static_cast<uint64_t>(kBatchRows)) {
          failures.fetch_add(1);
          return;
        }
        if (b == 0) {
          if (ack.resolved_refs.size() != kBatchRows ||
              ack.resolved_refs[0] == 0) {
            failures.fetch_add(1);
            return;
          }
          remote_ref = ack.resolved_refs[0];
        }
        WriteResult result;
        if (!control->Write(embedded, &result).ok() || !result.ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  // While clients are connected the server health gauges are live.
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  auto client = Connect("acme");
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Ping().ok());
  const auto report = db_->HealthReport();
  EXPECT_GE(report.server_open_connections, 1u);

  // Raw queries: remote reply must match the embedded control byte for
  // byte — same labels (tenant tag stripped), timestamps and values.
  for (int t = 0; t < kThreads; ++t) {
    std::vector<TagMatcher> matchers = {
        TagMatcher::Equal("host", "h" + std::to_string(t))};
    server::QueryReply reply;
    s = client->Query(ReadRequest::Range(matchers, 0, 1 << 20), &reply);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_TRUE(reply.remote_status.ok()) << reply.remote_status.ToString();

    QueryResult want;
    s = control->Query(ReadRequest::Range(matchers, 0, 1 << 20), &want);
    ASSERT_TRUE(s.ok()) << s.ToString();

    ASSERT_EQ(reply.series.size(), want.series.size());
    ASSERT_EQ(reply.series.size(), 1u);
    EXPECT_EQ(reply.series[0].labels, want.series[0].labels);
    ASSERT_EQ(reply.series[0].timestamps.size(), want.series[0].samples.size());
    for (size_t i = 0; i < want.series[0].samples.size(); ++i) {
      EXPECT_EQ(reply.series[0].timestamps[i],
                want.series[0].samples[i].timestamp);
      EXPECT_EQ(reply.series[0].values[i], want.series[0].samples[i].value);
    }
    EXPECT_TRUE(reply.missing_ranges.empty());
    EXPECT_GT(reply.stats.samples_decoded, 0u);
  }

  // Aggregate query: remote reply vs the embedded aggregate pipeline.
  std::vector<TagMatcher> all = {TagMatcher::Equal("metric", "cpu")};
  server::QueryReply agg_reply;
  s = client->Query(
      ReadRequest::Aggregate(all, 0, 1 << 20, 100, query::AggFn::kMean),
      &agg_reply);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(agg_reply.remote_status.ok());

  TimeUnionDB::AggregateResult agg_want;
  s = control->AggregateQuery(
      ReadRequest::Aggregate(all, 0, 1 << 20, 100, query::AggFn::kMean),
      &agg_want);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(agg_reply.series.size(), agg_want.series.size());
  auto by_labels = [](const auto& a, const auto& b) { return a.labels < b.labels; };
  std::sort(agg_reply.series.begin(), agg_reply.series.end(), by_labels);
  std::sort(agg_want.series.begin(), agg_want.series.end(), by_labels);
  for (size_t i = 0; i < agg_want.series.size(); ++i) {
    EXPECT_EQ(agg_reply.series[i].labels, agg_want.series[i].labels);
    ASSERT_EQ(agg_reply.series[i].timestamps.size(),
              agg_want.series[i].points.size());
    for (size_t j = 0; j < agg_want.series[i].points.size(); ++j) {
      EXPECT_EQ(agg_reply.series[i].timestamps[j],
                agg_want.series[i].points[j].window_start);
      EXPECT_EQ(agg_reply.series[i].values[j],
                agg_want.series[i].points[j].value);
    }
  }
}

TEST_F(ServerTest, GroupRowsRoundtrip) {
  OpenAndStart();
  auto client = Connect("acme");
  ASSERT_NE(client, nullptr);

  WriteBatch batch;
  const Labels group_tags = {{"rack", "r1"}};
  const std::vector<Labels> members = {{{"sensor", "temp"}},
                                       {{"sensor", "fan"}}};
  batch.AddGroupRow(group_tags, members, 10, {21.5, 800.0});
  server::WriteAck ack;
  Status s = client->Write(batch, &ack);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(ack.remote_status.ok()) << ack.remote_status.ToString();
  ASSERT_EQ(ack.resolved_groups.size(), 1u);
  ASSERT_NE(ack.resolved_groups[0].group_ref, 0u);
  ASSERT_EQ(ack.resolved_groups[0].slots.size(), 2u);

  // Follow-up rows by remote group ref.
  WriteBatch by_ref;
  for (int64_t ts = 11; ts <= 20; ++ts) {
    by_ref.AddGroupRow(ack.resolved_groups[0].group_ref,
                       ack.resolved_groups[0].slots, ts,
                       {21.5 + ts, 800.0 + ts});
  }
  s = client->Write(by_ref, &ack);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(ack.remote_status.ok()) << ack.remote_status.ToString();
  EXPECT_EQ(ack.appended, 10u);

  server::QueryReply reply;
  s = client->Query(
      ReadRequest::Range({TagMatcher::Equal("sensor", "temp")}, 0, 100),
      &reply);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(reply.remote_status.ok());
  ASSERT_EQ(reply.series.size(), 1u);
  ASSERT_EQ(reply.series[0].timestamps.size(), 11u);
  EXPECT_EQ(reply.series[0].values[0], 21.5);
  EXPECT_EQ(reply.series[0].values[10], 21.5 + 20);
}

// ---------------------------------------------------------------------------
// Malformed frames
// ---------------------------------------------------------------------------

/// Parses the single error frame a poisoned connection receives before
/// close; returns the decoded code (kOk if no well-formed error arrived).
Status::Code ReadErrorCode(RawConn* conn) {
  std::string in = conn->ReadUntilClose();
  server::MsgType type;
  std::string body;
  bool have = false;
  Status s = server::ExtractFrame(&in, server::kDefaultMaxFrameBytes, &type,
                                  &body, &have);
  if (!s.ok() || !have || type != server::MsgType::kError) {
    return Status::Code::kOk;
  }
  server::ErrorResp err;
  if (!server::DecodeErrorResp(Slice(body), &err).ok()) {
    return Status::Code::kOk;
  }
  return err.code;
}

TEST_F(ServerTest, MalformedFramesDoNotPoisonOtherConnections) {
  OpenAndStart();
  auto good = Connect("acme");
  ASSERT_NE(good, nullptr);
  WriteBatch batch;
  batch.AddSample(Labels{{"host", "h0"}}, 1, 1.0);
  server::WriteAck ack;
  ASSERT_TRUE(good->Write(batch, &ack).ok());
  ASSERT_TRUE(ack.remote_status.ok());

  // Bad crc: a well-formed frame with one payload byte flipped.
  {
    auto bad = RawConn::Dial(server_->port());
    ASSERT_NE(bad, nullptr);
    std::string body;
    server::EncodePingBody(7, &body);
    std::string frame;
    server::EncodeFrame(server::MsgType::kPing, body, &frame);
    frame[frame.size() - 1] ^= 0x40;
    bad->Send(frame);
    EXPECT_EQ(ReadErrorCode(bad.get()), Status::Code::kCorruption);
  }

  // Oversized length prefix: never allocated, structured reject + close.
  {
    auto bad = RawConn::Dial(server_->port());
    ASSERT_NE(bad, nullptr);
    std::string header;
    PutFixed32(&header, server::kDefaultMaxFrameBytes + 1);
    PutFixed32(&header, 0xdeadbeef);
    bad->Send(header);
    EXPECT_EQ(ReadErrorCode(bad.get()), Status::Code::kInvalidArgument);
  }

  // Unknown message type (crc valid, type byte out of range).
  {
    auto bad = RawConn::Dial(server_->port());
    ASSERT_NE(bad, nullptr);
    std::string frame;
    server::EncodeFrame(static_cast<server::MsgType>(200), "xyz", &frame);
    bad->Send(frame);
    EXPECT_EQ(ReadErrorCode(bad.get()), Status::Code::kInvalidArgument);
  }

  // Well-framed but undecodable write request body.
  {
    auto bad = RawConn::Dial(server_->port());
    ASSERT_NE(bad, nullptr);
    std::string frame;
    server::EncodeFrame(server::MsgType::kWriteReq, "\xff\xff\xff\xff",
                        &frame);
    bad->Send(frame);
    EXPECT_NE(ReadErrorCode(bad.get()), Status::Code::kOk);
  }

  // Truncated frame then abrupt hangup: no response owed, no harm done.
  {
    auto bad = RawConn::Dial(server_->port());
    ASSERT_NE(bad, nullptr);
    std::string body;
    server::EncodePingBody(9, &body);
    std::string frame;
    server::EncodeFrame(server::MsgType::kPing, body, &frame);
    bad->Send(frame.substr(0, frame.size() / 2));
  }

  // The good client — connected the whole time — is unharmed.
  ASSERT_TRUE(good->Ping().ok());
  server::QueryReply reply;
  Status s = good->Query(
      ReadRequest::Range({TagMatcher::Equal("host", "h0")}, 0, 100), &reply);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(reply.remote_status.ok());
  ASSERT_EQ(reply.series.size(), 1u);
  EXPECT_GE(db_->HealthReport().server_open_connections, 1u);
}

// ---------------------------------------------------------------------------
// Tenant isolation
// ---------------------------------------------------------------------------

TEST_F(ServerTest, TenantIsolation) {
  OpenAndStart();
  auto alice = Connect("alice");
  auto bob = Connect("bob");
  ASSERT_NE(alice, nullptr);
  ASSERT_NE(bob, nullptr);

  // Identical label sets from both tenants.
  const Labels labels = {{"host", "shared"}};
  server::WriteAck a_ack, b_ack;
  WriteBatch a_batch, b_batch;
  for (int64_t ts = 1; ts <= 5; ++ts) {
    a_batch.AddSample(labels, ts, 1.0 * ts);
    b_batch.AddSample(labels, ts, 100.0 * ts);
  }
  ASSERT_TRUE(alice->Write(a_batch, &a_ack).ok());
  ASSERT_TRUE(a_ack.remote_status.ok());
  ASSERT_TRUE(bob->Write(b_batch, &b_ack).ok());
  ASSERT_TRUE(b_ack.remote_status.ok());

  // Each tenant sees exactly its own values.
  server::QueryReply reply;
  ASSERT_TRUE(alice
                  ->Query(ReadRequest::Range(
                              {TagMatcher::Equal("host", "shared")}, 0, 100),
                          &reply)
                  .ok());
  ASSERT_TRUE(reply.remote_status.ok());
  ASSERT_EQ(reply.series.size(), 1u);
  ASSERT_EQ(reply.series[0].values.size(), 5u);
  EXPECT_EQ(reply.series[0].values[4], 5.0);
  EXPECT_EQ(reply.series[0].labels, labels);  // tenant tag stripped

  ASSERT_TRUE(bob->Query(ReadRequest::Range(
                             {TagMatcher::Equal("host", "shared")}, 0, 100),
                         &reply)
                  .ok());
  ASSERT_TRUE(reply.remote_status.ok());
  ASSERT_EQ(reply.series.size(), 1u);
  ASSERT_EQ(reply.series[0].values.size(), 5u);
  EXPECT_EQ(reply.series[0].values[4], 500.0);

  // Remote refs are per-tenant namespaces. A guessed integer outside
  // bob's dense table is a structured NotFound...
  WriteBatch guess;
  guess.AddSample(/*ref=*/999, 50, 666.0);
  ASSERT_TRUE(bob->Write(guess, &b_ack).ok());
  EXPECT_EQ(b_ack.remote_status.code(), Status::Code::kNotFound);
  EXPECT_EQ(b_ack.appended, 0u);
  EXPECT_EQ(b_ack.rejected, 1u);

  // ...and alice's numeric ref, reused by bob, lands on one of bob's OWN
  // series (both tables are dense from 1) — alice's data is untouchable.
  ASSERT_EQ(a_ack.resolved_refs.size(), 5u);
  WriteBatch collide;
  collide.AddSample(a_ack.resolved_refs[0], 60, 777.0);
  ASSERT_TRUE(bob->Write(collide, &b_ack).ok());
  ASSERT_TRUE(b_ack.remote_status.ok());
  ASSERT_TRUE(alice
                  ->Query(ReadRequest::Range(
                              {TagMatcher::Equal("host", "shared")}, 55, 100),
                          &reply)
                  .ok());
  ASSERT_TRUE(reply.remote_status.ok());
  EXPECT_TRUE(reply.series.empty());  // 777.0 went to bob's series, not alice's
  ASSERT_TRUE(bob->Query(ReadRequest::Range(
                             {TagMatcher::Equal("host", "shared")}, 55, 100),
                         &reply)
                  .ok());
  ASSERT_TRUE(reply.remote_status.ok());
  ASSERT_EQ(reply.series.size(), 1u);
  EXPECT_EQ(reply.series[0].values[0], 777.0);

  // The reserved tag is rejected in write labels...
  WriteBatch reserved;
  reserved.AddSample(Labels{{server::kTenantTag, "bob"}}, 1, 1.0);
  ASSERT_TRUE(alice->Write(reserved, &a_ack).ok());
  EXPECT_EQ(a_ack.remote_status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(a_ack.appended, 0u);

  // ...and in query matchers (no cross-tenant matcher injection).
  ASSERT_TRUE(alice
                  ->Query(ReadRequest::Range(
                              {TagMatcher::Equal(server::kTenantTag, "bob")},
                              0, 100),
                          &reply)
                  .ok());
  EXPECT_EQ(reply.remote_status.code(), Status::Code::kInvalidArgument);

  // The empty tenant is rejected outright.
  auto anon = Connect("");
  ASSERT_NE(anon, nullptr);
  WriteBatch any;
  any.AddSample(Labels{{"host", "x"}}, 1, 1.0);
  ASSERT_TRUE(anon->Write(any, &a_ack).ok());
  EXPECT_EQ(a_ack.remote_status.code(), Status::Code::kInvalidArgument);

  // Isolation also holds under aggregate queries.
  ASSERT_TRUE(alice
                  ->Query(ReadRequest::Aggregate(
                              {TagMatcher::Equal("host", "shared")}, 0, 100,
                              100, query::AggFn::kSum),
                          &reply)
                  .ok());
  ASSERT_TRUE(reply.remote_status.ok());
  ASSERT_EQ(reply.series.size(), 1u);
  ASSERT_EQ(reply.series[0].values.size(), 1u);
  EXPECT_EQ(reply.series[0].values[0], 15.0);  // 1+2+3+4+5, not bob's 1500
}

// ---------------------------------------------------------------------------
// Quotas
// ---------------------------------------------------------------------------

TEST_F(ServerTest, QuotaExceededIsStructuredReject) {
  server::ServerOptions sopts;
  sopts.tenant_limits.samples_per_sec = 1000;
  OpenAndStart(sopts);
  auto client = Connect("acme");
  ASSERT_NE(client, nullptr);

  auto burst = [&](int n, int64_t ts0) {
    WriteBatch batch;
    for (int i = 0; i < n; ++i) {
      batch.AddSample(Labels{{"host", "q"}}, ts0 + i, 1.0);
    }
    server::WriteAck ack;
    Status s = client->Write(batch, &ack);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return ack;
  };

  // The bucket primes full: one second of rate goes through...
  server::WriteAck ack = burst(1000, 0);
  ASSERT_TRUE(ack.remote_status.ok()) << ack.remote_status.ToString();
  EXPECT_EQ(ack.appended, 1000u);

  // ...and an immediate second burst is a structured reject, not a dropped
  // connection.
  ack = burst(1000, 2000);
  EXPECT_EQ(ack.remote_status.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(ack.appended, 0u);
  EXPECT_EQ(ack.rejected, 1000u);
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GE(db_->HealthReport().server_tenant_rejects, 1u);

  // The bucket refills: after a pause a modest burst is admitted again.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ack = burst(100, 4000);
  EXPECT_TRUE(ack.remote_status.ok()) << ack.remote_status.ToString();

  // Quotas are per tenant: another tenant is untouched by acme's debt.
  auto other = Connect("zen");
  ASSERT_NE(other, nullptr);
  WriteBatch batch;
  batch.AddSample(Labels{{"host", "z"}}, 1, 1.0);
  server::WriteAck other_ack;
  ASSERT_TRUE(other->Write(batch, &other_ack).ok());
  EXPECT_TRUE(other_ack.remote_status.ok());
}

TEST_F(ServerTest, OversizedRequestRidesTheDebtModel) {
  server::ServerOptions sopts;
  sopts.tenant_limits.bytes_per_sec = 64;  // smaller than any write frame
  OpenAndStart(sopts);
  auto client = Connect("acme");
  ASSERT_NE(client, nullptr);

  WriteBatch batch;
  for (int64_t ts = 1; ts <= 32; ++ts) {
    batch.AddSample(Labels{{"host", "debt"}}, ts, 1.0 * ts);
  }
  // First oversized request passes on a full bucket (drives it negative)…
  server::WriteAck ack;
  ASSERT_TRUE(client->Write(batch, &ack).ok());
  ASSERT_TRUE(ack.remote_status.ok()) << ack.remote_status.ToString();
  EXPECT_EQ(ack.appended, 32u);
  // …and the debt throttles what follows.
  ASSERT_TRUE(client->Write(batch, &ack).ok());
  EXPECT_EQ(ack.remote_status.code(), Status::Code::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

TEST_F(ServerTest, GracefulDrainLosesNoAckedWrites) {
  OpenAndStart();

  constexpr int kThreads = 4;
  std::vector<std::vector<int64_t>> acked(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Connect("acme");
      if (client == nullptr) return;
      const Labels labels = {{"host", "d" + std::to_string(t)}};
      int64_t ts = 0;
      for (;;) {
        WriteBatch batch;
        std::vector<int64_t> batch_ts;
        for (int i = 0; i < 8; ++i) {
          ++ts;
          batch.AddSample(labels, ts, 1.0 * ts);
          batch_ts.push_back(ts);
        }
        server::WriteAck ack;
        // Transport errors and rejects mean "not acked" — both are fine
        // during drain; only acked batches must survive.
        if (!client->Write(batch, &ack).ok()) return;
        if (!ack.remote_status.ok() || ack.appended != 8) return;
        acked[t].insert(acked[t].end(), batch_ts.begin(), batch_ts.end());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server_->Shutdown();
  for (auto& th : threads) th.join();
  server_.reset();

  uint64_t total_acked = 0;
  for (const auto& v : acked) total_acked += v.size();
  ASSERT_GT(total_acked, 0u);  // the race actually exercised the drain

  // Reopen from disk: WAL replay must resurface every acked sample.
  db_.reset();
  std::unique_ptr<TimeUnionDB> reopened;
  Status s = TimeUnionDB::Open(TestOptions(ws_ + "/db"), &reopened);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int t = 0; t < kThreads; ++t) {
    if (acked[t].empty()) continue;
    QueryResult result;
    s = reopened->Query(
        ReadRequest::Range(
            {TagMatcher::Equal("host", "d" + std::to_string(t))}, 0,
            INT64_MAX - 1),
        &result);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_EQ(result.series.size(), 1u);
    std::vector<int64_t> got;
    for (const auto& sample : result.series[0].samples) {
      got.push_back(sample.timestamp);
    }
    // Every acked timestamp must be present (unacked tail rows may also
    // have landed — that is allowed, double-send is not the contract).
    for (int64_t want : acked[t]) {
      EXPECT_TRUE(std::find(got.begin(), got.end(), want) != got.end())
          << "acked ts " << want << " lost for thread " << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Fuzz
// ---------------------------------------------------------------------------

TEST_F(ServerTest, SeededRandomFramesNeitherCrashNorLoseAckedWrites) {
  OpenAndStart();
  auto good = Connect("acme");
  ASSERT_NE(good, nullptr);
  WriteBatch batch;
  for (int64_t ts = 1; ts <= 100; ++ts) {
    batch.AddSample(Labels{{"host", "fuzz"}}, ts, 1.0 * ts);
  }
  server::WriteAck ack;
  ASSERT_TRUE(good->Write(batch, &ack).ok());
  ASSERT_TRUE(ack.remote_status.ok());
  ASSERT_EQ(ack.appended, 100u);

  Random rng(20260808);
  constexpr int kFrames = 1000;
  constexpr int kFramesPerConn = 25;
  std::unique_ptr<RawConn> conn;
  for (int i = 0; i < kFrames; ++i) {
    if (i % kFramesPerConn == 0) {
      conn = RawConn::Dial(server_->port());
      ASSERT_NE(conn, nullptr);
    }
    std::string wire;
    switch (rng.Uniform(4)) {
      case 0: {
        // Pure noise, arbitrary length (may straddle frame boundaries).
        const size_t n = rng.Uniform(300);
        for (size_t b = 0; b < n; ++b) {
          wire.push_back(static_cast<char>(rng.Uniform(256)));
        }
        break;
      }
      case 1: {
        // Valid frame envelope around a random body: exercises every
        // message decoder against garbage payloads.
        const size_t n = rng.Uniform(200);
        std::string body;
        for (size_t b = 0; b < n; ++b) {
          body.push_back(static_cast<char>(rng.Uniform(256)));
        }
        server::EncodeFrame(static_cast<server::MsgType>(rng.Uniform(10)),
                            body, &wire);
        break;
      }
      case 2: {
        // A real write request, then mutilated: truncate or flip a byte.
        WriteBatch wb;
        wb.AddSample(Labels{{"host", "noise"}},
                     static_cast<int64_t>(rng.Uniform(1000)), 0.0);
        std::string body;
        server::EncodeWriteReq(rng.Next64(), "fuzz", wb, &body);
        server::EncodeFrame(server::MsgType::kWriteReq, body, &wire);
        if (rng.OneIn(2)) {
          wire.resize(rng.Uniform(wire.size()) + 1);
        } else {
          wire[rng.Uniform(wire.size())] ^=
              static_cast<char>(1 + rng.Uniform(255));
        }
        break;
      }
      default: {
        // Hostile length prefix.
        PutFixed32(&wire, static_cast<uint32_t>(rng.Next64()));
        PutFixed32(&wire, static_cast<uint32_t>(rng.Next64()));
        break;
      }
    }
    conn->Send(wire);
  }
  conn.reset();

  // The server is intact: the original connection still serves, the acked
  // prefix is all there, and new writes land.
  ASSERT_TRUE(good->Ping().ok());
  server::QueryReply reply;
  Status s = good->Query(
      ReadRequest::Range({TagMatcher::Equal("host", "fuzz")}, 0, 1000),
      &reply);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(reply.remote_status.ok());
  ASSERT_EQ(reply.series.size(), 1u);
  EXPECT_EQ(reply.series[0].timestamps.size(), 100u);

  WriteBatch more;
  more.AddSample(Labels{{"host", "fuzz"}}, 101, 101.0);
  ASSERT_TRUE(good->Write(more, &ack).ok());
  EXPECT_TRUE(ack.remote_status.ok());
}

// ---------------------------------------------------------------------------
// Strictness over the wire
// ---------------------------------------------------------------------------

TEST_F(ServerTest, InvalidQueryShapesAreStructuredRejects) {
  OpenAndStart();
  auto client = Connect("acme");
  ASSERT_NE(client, nullptr);

  server::QueryReply reply;
  // Inverted range.
  ASSERT_TRUE(
      client->Query(ReadRequest::Range({TagMatcher::Equal("a", "b")}, 10, 5),
                    &reply)
          .ok());
  EXPECT_EQ(reply.remote_status.code(), Status::Code::kInvalidArgument);
  // Empty matcher list.
  ASSERT_TRUE(client->Query(ReadRequest::Range({}, 0, 10), &reply).ok());
  EXPECT_EQ(reply.remote_status.code(), Status::Code::kInvalidArgument);
  // The connection survives structured rejects.
  EXPECT_TRUE(client->Ping().ok());
}

}  // namespace
}  // namespace tu
