// Differential suite for the vectorized read path (`ctest -L query`): the
// batch drain (TimeUnionDB::Query bulk materialization and the public
// MergedSeriesIterator::NextBatch API) must be byte-identical to a scalar
// last-write-wins reference model maintained alongside the inserts — an
// oracle independent of every decoder in the product. Covered:
//   - seeded random workloads with out-of-order rewrites at existing
//     timestamps (seq-dedup across overlapping chunks and against the head)
//   - group member columns (member_slot selection + NULL-row compaction)
//   - mixed-granularity drains: per-sample cursor and NextBatch interleaved
//     on one iterator must neither skip nor repeat a sample
//   - breaker-open partial reads: batch drain reports the same samples and
//     missing_ranges as the materialized entry point
//   - block-level upper-bound stops: windows ending mid-data still prune
//     trailing blocks while the batch results stay exact
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/fault_injector.h"
#include "cloud/object_store.h"
#include "core/timeunion_db.h"
#include "query/sample_batch.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace tu {
namespace {

using cloud::FaultInjector;
using cloud::FaultRule;
using core::DBOptions;
using core::QueryResult;
using core::TimeUnionDB;
using index::TagMatcher;

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Tiny partitions so modest workloads span head + L0/L1 + slow-tier L2.
DBOptions SmallPartitionOptions(const std::string& ws) {
  DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.partition_upper_bound_ms = 4000;
  opts.lsm.l0_partition_trigger = 1;
  return opts;
}

/// Ground truth: every insert is recorded here with last-write-wins
/// semantics, which is exactly the seq-dedup contract (a rewrite lands in
/// the open chunk by in-place merge or in a newer chunk that outranks the
/// old one).
using Model = std::map<int64_t, double>;

std::vector<compress::Sample> Expected(const Model& m, int64_t t0,
                                       int64_t t1) {
  std::vector<compress::Sample> out;
  for (auto it = m.lower_bound(t0); it != m.end() && it->first <= t1; ++it) {
    out.push_back(compress::Sample{it->first, it->second});
  }
  return out;
}

void ExpectSamplesEqual(const std::vector<compress::Sample>& got,
                        const std::vector<compress::Sample>& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].timestamp, want[i].timestamp) << what << " sample " << i;
    EXPECT_EQ(Bits(got[i].value), Bits(want[i].value))
        << what << " sample " << i << " ts=" << got[i].timestamp;
  }
}

/// Drains one iterator through NextBatch, checking the batch invariants:
/// batches are non-empty, strictly ascending within and across batches,
/// dense (validity empty) and seq-reset.
std::vector<compress::Sample> DrainBatches(core::SampleIterator* iter) {
  std::vector<compress::Sample> out;
  query::SampleBatch batch;
  int64_t prev = INT64_MIN;
  while (iter->NextBatch(&batch)) {
    EXPECT_FALSE(batch.empty()) << "NextBatch must not emit empty batches";
    EXPECT_TRUE(batch.validity.empty()) << "merged output must be dense";
    EXPECT_EQ(batch.seq, 0u);
    EXPECT_EQ(batch.timestamps.size(), batch.values.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_GT(batch.timestamps[i], prev) << "strictly ascending";
      prev = batch.timestamps[i];
      out.push_back(compress::Sample{batch.timestamps[i], batch.values[i]});
    }
  }
  EXPECT_FALSE(iter->Valid());
  return out;
}

class BatchDrainDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchDrainDifferentialTest, BatchPathMatchesScalarModel) {
  const std::string ws = "/tmp/timeunion_test/batch_drain_diff";
  RemoveDirRecursive(ws);
  DBOptions opts = SmallPartitionOptions(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  Random rng(GetParam());
  constexpr int kSeries = 2;
  constexpr int kRounds = 900;
  constexpr int64_t kStepMs = 250;

  uint64_t refs[kSeries] = {0, 0};
  Model models[kSeries];
  for (int s = 0; s < kSeries; ++s) {
    ASSERT_TRUE(
        db->Insert({{"m", "s" + std::to_string(s)}}, 0, 0.5 * s, &refs[s])
            .ok());
    models[s][0] = 0.5 * s;
  }
  uint64_t gref = 0;
  std::vector<uint32_t> slots;
  ASSERT_TRUE(db->InsertGroup({{"g", "1"}}, {{{"mem", "a"}}, {{"mem", "b"}}},
                              0, {1.0, 2.0}, &gref, &slots)
                  .ok());
  Model gmodels[2];
  gmodels[0][0] = 1.0;
  gmodels[1][0] = 2.0;

  for (int i = 1; i < kRounds; ++i) {
    for (int s = 0; s < kSeries; ++s) {
      int64_t ts = i * kStepMs;
      // 1-in-6 writes rewrite an existing timestamp: the dedup overlap the
      // suite exists to pin (head-vs-chunk and chunk-vs-chunk).
      if (rng.OneIn(6)) ts = rng.Uniform(i) * kStepMs;
      const double v = rng.NextDouble();
      ASSERT_TRUE(db->InsertFast(refs[s], ts, v).ok());
      models[s][ts] = v;
    }
    const double ga = rng.NextDouble();
    const double gb = rng.NextDouble();
    int64_t gts = i * kStepMs;
    if (rng.OneIn(10)) gts = rng.Uniform(i) * kStepMs;
    Status gs = db->InsertGroupFast(gref, slots, gts, {ga, gb});
    if (gs.ok()) {
      gmodels[0][gts] = ga;
      gmodels[1][gts] = gb;
    }
    if (i % 300 == 0) ASSERT_TRUE(db->Flush().ok());
  }
  if (GetParam() % 2) ASSERT_TRUE(db->Flush().ok());

  const int64_t span = kRounds * kStepMs;
  // Windows cutting through chunk, partition and block boundaries; the
  // mid-span windows exercise the block-level upper-bound stop.
  const std::pair<int64_t, int64_t> windows[] = {
      {0, span},
      {span / 3, 2 * span / 3},
      {span / 2, span / 2 + 10 * kStepMs},
      {0, 0},
      {span + 1000, span + 2000}};  // empty

  for (const auto& [t0, t1] : windows) {
    for (int s = 0; s < kSeries; ++s) {
      const auto matcher = TagMatcher::Equal("m", "s" + std::to_string(s));
      const auto want = Expected(models[s], t0, t1);

      QueryResult materialized;
      ASSERT_TRUE(db->Query({matcher}, t0, t1, &materialized).ok());
      if (want.empty()) {
        EXPECT_EQ(materialized.size(), 0u);
      } else {
        ASSERT_EQ(materialized.size(), 1u);
        ExpectSamplesEqual(materialized[0].samples, want, "Query");
        EXPECT_GT(materialized.stats.batches_decoded, 0u);
        EXPECT_GE(materialized.stats.samples_decoded, want.size());
      }

      // Pure batch drain through the public iterator API.
      std::vector<TimeUnionDB::SeriesIterResult> iters;
      ASSERT_TRUE(db->QueryIterators({matcher}, t0, t1, &iters).ok());
      ASSERT_EQ(iters.size(), 1u);
      const auto got = DrainBatches(iters[0].iter.get());
      ASSERT_TRUE(iters[0].iter->status().ok());
      ExpectSamplesEqual(got, want, "NextBatch");

      // Mixed granularity: k cursor steps, then batches for the rest.
      if (!want.empty()) {
        const size_t k = rng.Uniform(static_cast<uint32_t>(want.size()));
        std::vector<TimeUnionDB::SeriesIterResult> mixed;
        ASSERT_TRUE(db->QueryIterators({matcher}, t0, t1, &mixed).ok());
        ASSERT_EQ(mixed.size(), 1u);
        auto* it = mixed[0].iter.get();
        std::vector<compress::Sample> combined;
        for (size_t i = 0; i < k; ++i) {
          ASSERT_TRUE(it->Valid());
          combined.push_back(it->value());
          it->Next();
        }
        const auto rest = DrainBatches(it);
        combined.insert(combined.end(), rest.begin(), rest.end());
        ExpectSamplesEqual(combined, want, "mixed cursor+batch");
      }
    }

    // Group members through their slot columns.
    const char* mems[] = {"a", "b"};
    for (int g = 0; g < 2; ++g) {
      const auto want = Expected(gmodels[g], t0, t1);
      std::vector<TimeUnionDB::SeriesIterResult> iters;
      ASSERT_TRUE(
          db->QueryIterators({TagMatcher::Equal("mem", mems[g])}, t0, t1,
                             &iters)
              .ok());
      ASSERT_EQ(iters.size(), 1u);
      // Group rewrites are checked bitwise like series: compaction
      // re-stamps merged chunks with the max winning input seq, so a
      // single-row rewrite chunk keeps outranking the window it targets
      // (last-write-wins all the way through the merge ladder).
      const auto got = DrainBatches(iters[0].iter.get());
      ASSERT_TRUE(iters[0].iter->status().ok());
      ExpectSamplesEqual(got, want, std::string("group member ") + mems[g]);
    }
  }

  db.reset();
  RemoveDirRecursive(ws);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDrainDifferentialTest,
                         ::testing::Values(7, 21, 42, 1337));

// Single-row rewrites aimed at windows that have ALREADY been compacted.
// The rewrite lands as a single-row chunk in a fresh table; later
// compactions of that partition merge the old chunks around it. Because
// merged output is re-stamped with the max winning input seq (not a fresh
// next_seq_), the rewrite's newer seq keeps outranking the merged window —
// the differential oracle must match bitwise with no skip list.
TEST(CompactionRestampTest, SingleRowRewriteIntoCompactedWindowWins) {
  const std::string ws = "/tmp/timeunion_test/batch_drain_restamp";
  RemoveDirRecursive(ws);
  DBOptions opts = SmallPartitionOptions(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  constexpr int kRounds = 1200;
  constexpr int64_t kStepMs = 250;
  Random rng(99);

  uint64_t ref = 0;
  Model model;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  model[0] = 0.0;
  uint64_t gref = 0;
  std::vector<uint32_t> slots;
  ASSERT_TRUE(db->InsertGroup({{"g", "1"}}, {{{"mem", "a"}}, {{"mem", "b"}}},
                              0, {1.0, 2.0}, &gref, &slots)
                  .ok());
  Model gmodels[2];
  gmodels[0][0] = 1.0;
  gmodels[1][0] = 2.0;

  // Phase 1: fill many small partitions, flushing periodically so the
  // early windows are compacted (L0 trigger is 1 table) before any
  // rewrite arrives.
  for (int i = 1; i < kRounds; ++i) {
    const int64_t ts = i * kStepMs;
    const double v = rng.NextDouble();
    ASSERT_TRUE(db->InsertFast(ref, ts, v).ok());
    model[ts] = v;
    const double ga = rng.NextDouble(), gb = rng.NextDouble();
    ASSERT_TRUE(db->InsertGroupFast(gref, slots, ts, {ga, gb}).ok());
    gmodels[0][ts] = ga;
    gmodels[1][ts] = gb;
    if (i % 200 == 0) ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  const obs::MetricsSnapshot before = db->Metrics();
  ASSERT_GT(before.CounterOr0("lsm.compactions_l0_l1"), 0u)
      << "phase 1 must leave compacted windows to rewrite into";

  // Phase 2: single-row rewrites into the compacted windows, one per
  // region of the keyspace. Each misses every open chunk and goes down
  // the single-row-chunk path.
  for (const int64_t ts : {17 * kStepMs, 203 * kStepMs, 450 * kStepMs,
                           799 * kStepMs, 1024 * kStepMs}) {
    const double v = -1000.0 - static_cast<double>(ts);
    ASSERT_TRUE(db->InsertFast(ref, ts, v).ok());
    model[ts] = v;
    const double ga = -2000.0 - static_cast<double>(ts);
    const double gb = -3000.0 - static_cast<double>(ts);
    ASSERT_TRUE(db->InsertGroupFast(gref, slots, ts, {ga, gb}).ok());
    gmodels[0][ts] = ga;
    gmodels[1][ts] = gb;
  }
  ASSERT_TRUE(db->Flush().ok());

  // Phase 3: more appends + flushes so the rewritten partitions compact
  // again with the rewrite chunks in play.
  for (int i = kRounds; i < kRounds + 600; ++i) {
    const int64_t ts = i * kStepMs;
    const double v = rng.NextDouble();
    ASSERT_TRUE(db->InsertFast(ref, ts, v).ok());
    model[ts] = v;
    if (i % 150 == 0) ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_GT(db->Metrics().CounterOr0("lsm.compactions_l0_l1"),
            before.CounterOr0("lsm.compactions_l0_l1"))
      << "phase 3 must re-compact after the rewrites";

  // The rewrites must win bitwise everywhere — materialized and batched.
  const int64_t span = (kRounds + 600) * kStepMs;
  QueryResult result;
  ASSERT_TRUE(db->Query({TagMatcher::Equal("m", "cpu")}, 0, span, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  ExpectSamplesEqual(result[0].samples, Expected(model, 0, span), "series");

  const char* mems[] = {"a", "b"};
  for (int g = 0; g < 2; ++g) {
    std::vector<TimeUnionDB::SeriesIterResult> iters;
    ASSERT_TRUE(db->QueryIterators({TagMatcher::Equal("mem", mems[g])}, 0,
                                   span, &iters)
                    .ok());
    ASSERT_EQ(iters.size(), 1u);
    const auto got = DrainBatches(iters[0].iter.get());
    ASSERT_TRUE(iters[0].iter->status().ok());
    ExpectSamplesEqual(got, Expected(gmodels[g], 0, span),
                       std::string("group member ") + mems[g]);
  }

  db.reset();
  RemoveDirRecursive(ws);
}

// Breaker open: the batch drain must agree with the materialized entry
// point on both the surviving samples and the reported gap spans.
TEST(BatchDrainPartialReadTest, BreakerOpenBatchesMatchMaterialized) {
  const std::string ws = "/tmp/timeunion_test/batch_drain_partial";
  RemoveDirRecursive(ws);
  auto fi = std::make_shared<FaultInjector>(29);
  DBOptions opts = SmallPartitionOptions(ws);
  opts.env_options.slow_sim.fault = fi;
  opts.env_options.slow_sim.retry.max_attempts = 2;
  opts.env_options.slow_sim.retry.real_sleep = false;
  cloud::CircuitBreakerOptions& b = opts.env_options.slow_sim.breaker;
  b.enabled = true;
  b.window = 8;
  b.min_samples = 4;
  b.consecutive_failures_to_open = 3;

  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());
  constexpr int kTotal = 2000;
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < kTotal; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumL2Partitions(), 0u);

  FaultRule outage;
  outage.ops = cloud::kAllFaultOps;
  outage.probability = 1.0;
  outage.kind = FaultRule::Kind::kPermanent;
  fi->AddRule(outage);
  cloud::ObjectStore& slow = db->env().slow();
  for (int i = 0;
       i < 20 && slow.breaker().state() != cloud::BreakerState::kOpen; ++i) {
    (void)slow.PutObject("breaker_probe", "x");
  }
  ASSERT_EQ(slow.breaker().state(), cloud::BreakerState::kOpen);

  QueryResult materialized;
  ASSERT_TRUE(db->Query({TagMatcher::Equal("m", "cpu")}, 0, kTotal * 250LL,
                        &materialized)
                  .ok());
  EXPECT_FALSE(materialized.complete);
  ASSERT_FALSE(materialized.missing_ranges.empty());
  ASSERT_EQ(materialized.size(), 1u);

  std::vector<TimeUnionDB::SeriesIterResult> iters;
  ASSERT_TRUE(db->QueryIterators({TagMatcher::Equal("m", "cpu")}, 0,
                                 kTotal * 250LL, &iters)
                  .ok());
  ASSERT_EQ(iters.size(), 1u);
  EXPECT_FALSE(iters[0].complete);
  EXPECT_EQ(iters[0].missing_ranges, materialized.missing_ranges);
  const auto got = DrainBatches(iters[0].iter.get());
  ASSERT_TRUE(iters[0].iter->status().ok());
  ExpectSamplesEqual(got, materialized[0].samples, "partial batch drain");

  db.reset();
  RemoveDirRecursive(ws);
}

// A window ending mid-data must both stop at the bound (blocks pruned, no
// trailing decode) and stay exact under the batch clip.
TEST(BatchDrainUpperBoundTest, MidDataWindowPrunesAndStaysExact) {
  const std::string ws = "/tmp/timeunion_test/batch_drain_bound";
  RemoveDirRecursive(ws);
  // Default (large) partitions: the whole series lands in few tables with
  // many data blocks each, so the t1 bound must do its pruning at block
  // level instead of riding table-level time pruning.
  DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  constexpr int kTotal = 20000;
  uint64_t ref = 0;
  Model model;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  model[0] = 0.0;
  for (int i = 1; i < kTotal; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 0.25 * i).ok());
    model[i * 250LL] = 0.25 * i;
  }
  ASSERT_TRUE(db->Flush().ok());

  // Reference: the full window touches every block and decodes everything.
  QueryResult full;
  ASSERT_TRUE(
      db->Query({TagMatcher::Equal("m", "cpu")}, 0, kTotal * 250LL, &full)
          .ok());
  ASSERT_EQ(full.size(), 1u);
  ExpectSamplesEqual(full[0].samples, Expected(model, 0, kTotal * 250LL),
                     "full");
  ASSERT_GT(full.stats.blocks_read, 4u) << "need a multi-block table";

  // First tenth of the data only: the t1 bound must stop the block walk
  // right after the edge — a fraction of the blocks read and samples
  // decoded, with the batch results still exact at the clip.
  const int64_t t1 = kTotal / 10 * 250LL;
  QueryResult result;
  ASSERT_TRUE(db->Query({TagMatcher::Equal("m", "cpu")}, 0, t1, &result).ok());
  ASSERT_EQ(result.size(), 1u);
  ExpectSamplesEqual(result[0].samples, Expected(model, 0, t1), "bounded");
  EXPECT_LT(result.stats.blocks_read, full.stats.blocks_read / 2);
  EXPECT_LT(result.stats.samples_decoded, static_cast<uint64_t>(kTotal) / 2);
  EXPECT_GT(result.stats.batches_decoded, 0u);

  db.reset();
  RemoveDirRecursive(ws);
}

}  // namespace
}  // namespace tu
