#include "tsbs/devops.h"

#include <gtest/gtest.h>

#include <set>

namespace tu::tsbs {
namespace {

TEST(DevOps, SeriesPerHostIs101) {
  DevOpsGenerator gen(DevOpsOptions{});
  EXPECT_EQ(DevOpsGenerator::kSeriesPerHost, 101);
  std::set<std::string> fields;
  for (int i = 0; i < DevOpsGenerator::kSeriesPerHost; ++i) {
    fields.insert(gen.FieldName(i));
  }
  EXPECT_EQ(fields.size(), 101u);  // all fields distinct
}

TEST(DevOps, LabelsAreDeterministicAndDistinct) {
  DevOpsOptions opts;
  opts.num_hosts = 4;
  DevOpsGenerator gen(opts);
  DevOpsGenerator gen2(opts);

  std::set<std::string> keys;
  for (uint64_t h = 0; h < opts.num_hosts; ++h) {
    for (int i = 0; i < DevOpsGenerator::kSeriesPerHost; ++i) {
      const auto labels = gen.SeriesLabels(h, i);
      EXPECT_EQ(labels, gen2.SeriesLabels(h, i));
      keys.insert(index::LabelsKey(labels));
    }
  }
  EXPECT_EQ(keys.size(), opts.num_hosts * DevOpsGenerator::kSeriesPerHost);
}

TEST(DevOps, HostTagCountConfigurable) {
  DevOpsOptions opts;
  opts.num_host_tags = 5;
  DevOpsGenerator gen(opts);
  EXPECT_EQ(gen.HostTags(0).size(), 5u);
  opts.num_host_tags = 20;
  DevOpsGenerator gen20(opts);
  EXPECT_EQ(gen20.HostTags(0).size(), 20u);
}

TEST(DevOps, ValuesDeterministicAndBounded) {
  DevOpsGenerator gen(DevOpsOptions{});
  for (int i = 0; i < 100; ++i) {
    const double v = gen.Value(3, 7, i * 30000);
    EXPECT_EQ(v, gen.Value(3, 7, i * 30000));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 110.0);
  }
}

TEST(Patterns, StandardSetMatchesTable2) {
  const auto patterns = StandardPatterns();
  ASSERT_EQ(patterns.size(), 7u);
  EXPECT_EQ(patterns[0].name, "1-1-1");
  EXPECT_EQ(patterns[4].name, "5-1-24");
  EXPECT_EQ(patterns[4].num_metrics, 5);
  EXPECT_EQ(patterns[4].hours, 24);
  EXPECT_TRUE(patterns[6].lastpoint);
  EXPECT_EQ(BigPatterns().size(), 9u);
}

TEST(Patterns, SelectorsResolveHostsAndMetrics) {
  DevOpsOptions opts;
  opts.num_hosts = 16;
  DevOpsGenerator gen(opts);
  const auto patterns = StandardPatterns();
  for (const auto& p : patterns) {
    const auto matchers = PatternSelectors(p, gen, 7);
    ASSERT_EQ(matchers.size(), 2u) << p.name;
    EXPECT_EQ(matchers[0].name, "hostname");
    EXPECT_EQ(matchers[1].name, "fieldname");
    if (p.num_hosts > 1) {
      EXPECT_EQ(matchers[0].type, index::TagMatcher::Type::kRegex);
    }
    if (p.num_metrics > 1) {
      EXPECT_EQ(matchers[1].type, index::TagMatcher::Type::kRegex);
    }
  }
}

TEST(Aggregate, MaxEveryWindow) {
  std::vector<compress::Sample> samples;
  for (int i = 0; i < 20; ++i) {
    samples.push_back({i * 60'000, static_cast<double>(i % 7)});
  }
  const auto agg = AggregateMax(samples, 5 * 60'000);
  ASSERT_EQ(agg.size(), 4u);
  EXPECT_EQ(agg[0].window_start, 0);
  EXPECT_EQ(agg[0].max_value, 4.0);  // values 0..4
  EXPECT_EQ(agg[1].max_value, 6.0);  // values 5,6,0,1,2
}

}  // namespace
}  // namespace tu::tsbs
