#include "compress/chunk.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace tu::compress {
namespace {

std::vector<Sample> MakeSamples(int n, int64_t start_ts, int64_t step,
                                uint64_t seed) {
  Random rng(seed);
  std::vector<Sample> out;
  double v = 50.0;
  for (int i = 0; i < n; ++i) {
    v += rng.NextGaussian(0, 1);
    out.push_back(Sample{start_ts + i * step, v});
  }
  return out;
}

TEST(SeriesChunk, EncodeDecodeRoundTrip) {
  const auto samples = MakeSamples(32, 1000000, 30000, 5);
  std::string payload;
  EncodeSeriesChunk(77, samples, &payload);

  uint64_t seq = 0;
  std::vector<Sample> decoded;
  ASSERT_TRUE(DecodeSeriesChunk(payload, &seq, &decoded).ok());
  EXPECT_EQ(seq, 77u);
  EXPECT_EQ(decoded, samples);
}

TEST(SeriesChunk, SingleSample) {
  std::string payload;
  EncodeSeriesChunk(1, {Sample{42, 3.5}}, &payload);
  uint64_t seq = 0;
  std::vector<Sample> decoded;
  ASSERT_TRUE(DecodeSeriesChunk(payload, &seq, &decoded).ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].timestamp, 42);
  EXPECT_EQ(decoded[0].value, 3.5);
}

TEST(SeriesChunk, EmptyChunk) {
  std::string payload;
  EncodeSeriesChunk(9, {}, &payload);
  uint64_t seq = 0;
  std::vector<Sample> decoded;
  ASSERT_TRUE(DecodeSeriesChunk(payload, &seq, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
  EXPECT_EQ(seq, 9u);
}

TEST(SeriesChunk, IteratorMatchesDecode) {
  const auto samples = MakeSamples(100, 5000, 10000, 3);
  std::string payload;
  EncodeSeriesChunk(5, samples, &payload);

  SeriesChunkIterator it(payload);
  ASSERT_TRUE(it.status().ok());
  EXPECT_EQ(it.count(), 100u);
  size_t i = 0;
  while (it.Valid()) {
    const Sample s = it.Next();
    ASSERT_LT(i, samples.size());
    EXPECT_EQ(s, samples[i]);
    ++i;
  }
  EXPECT_EQ(i, samples.size());
}

TEST(SeriesChunk, CorruptionDetected) {
  uint64_t seq;
  std::vector<Sample> decoded;
  EXPECT_FALSE(DecodeSeriesChunk(Slice("xy", 2), &seq, &decoded).ok());
}

TEST(SeriesChunk, CompressionRatioOnRegularData) {
  // Monitoring-style data: regular interval, limited-precision values
  // (integers / few distinct values). 120 samples of 16 raw bytes each
  // should compress > 5x (the paper quotes ~10x for TSBS).
  std::vector<Sample> samples;
  Random rng(11);
  double v = 50;
  for (int i = 0; i < 120; ++i) {
    v += static_cast<double>(rng.Uniform(5)) - 2.0;  // integer walk
    samples.push_back(Sample{1600000000000 + i * 30000, v});
  }
  std::string payload;
  EncodeSeriesChunk(0, samples, &payload);
  EXPECT_LT(payload.size(), 120 * 16 / 5);
}

TEST(GroupChunk, RoundTripFullRows) {
  std::vector<GroupRow> rows;
  for (int i = 0; i < 32; ++i) {
    GroupRow row;
    row.timestamp = 1000 + i * 10;
    row.values = {1.0 * i, 2.0 * i, 3.0 * i};
    rows.push_back(row);
  }
  std::string payload;
  EncodeGroupChunk(13, 3, rows, &payload);

  uint64_t seq = 0;
  uint32_t members = 0;
  std::vector<GroupRow> decoded;
  ASSERT_TRUE(DecodeGroupChunk(payload, &seq, &members, &decoded).ok());
  EXPECT_EQ(seq, 13u);
  EXPECT_EQ(members, 3u);
  ASSERT_EQ(decoded.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(decoded[i].timestamp, rows[i].timestamp);
    EXPECT_EQ(decoded[i].values, rows[i].values);
  }
}

TEST(GroupChunk, MissingAndNewMembers) {
  // Member 2 misses rounds 0-1 (NULL backfill, §3.1 cases 2/3).
  std::vector<GroupRow> rows(4);
  rows[0] = {100, {10.0, 20.0, std::nullopt}};
  rows[1] = {200, {11.0, std::nullopt, std::nullopt}};
  rows[2] = {300, {12.0, 22.0, 32.0}};
  rows[3] = {400, {std::nullopt, 23.0, 33.0}};

  std::string payload;
  EncodeGroupChunk(1, 3, rows, &payload);

  uint64_t seq;
  uint32_t members;
  std::vector<GroupRow> decoded;
  ASSERT_TRUE(DecodeGroupChunk(payload, &seq, &members, &decoded).ok());
  ASSERT_EQ(decoded.size(), 4u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(decoded[i].values, rows[i].values) << "row " << i;
  }
}

TEST(GroupChunk, DecodeSingleMemberSkipsNulls) {
  std::vector<GroupRow> rows(3);
  rows[0] = {100, {1.0, std::nullopt}};
  rows[1] = {200, {2.0, 20.0}};
  rows[2] = {300, {std::nullopt, 30.0}};
  std::string payload;
  EncodeGroupChunk(1, 2, rows, &payload);

  std::vector<Sample> member0, member1;
  ASSERT_TRUE(DecodeGroupMember(payload, 0, &member0).ok());
  ASSERT_TRUE(DecodeGroupMember(payload, 1, &member1).ok());
  ASSERT_EQ(member0.size(), 2u);
  EXPECT_EQ(member0[0], (Sample{100, 1.0}));
  EXPECT_EQ(member0[1], (Sample{200, 2.0}));
  ASSERT_EQ(member1.size(), 2u);
  EXPECT_EQ(member1[0], (Sample{200, 20.0}));
  EXPECT_EQ(member1[1], (Sample{300, 30.0}));
}

TEST(GroupChunk, MemberBeyondChunkColumnsIsEmpty) {
  // A member that joined after this chunk was flushed has no samples here.
  std::vector<GroupRow> rows(1);
  rows[0] = {100, {1.0}};
  std::string payload;
  EncodeGroupChunk(1, 1, rows, &payload);
  std::vector<Sample> samples;
  ASSERT_TRUE(DecodeGroupMember(payload, 5, &samples).ok());
  EXPECT_TRUE(samples.empty());
}

TEST(GroupChunk, TimestampDeduplicationShrinksPayload) {
  // A 50-member group sharing timestamps must be much smaller than 50
  // independent series chunks (the Table 3 effect).
  const int kMembers = 50;
  const int kRows = 32;
  Random rng(7);
  std::vector<GroupRow> rows(kRows);
  std::vector<std::vector<Sample>> individual(kMembers);
  for (int i = 0; i < kRows; ++i) {
    rows[i].timestamp = 1600000000000 + i * 30000;
    rows[i].values.resize(kMembers);
    for (int m = 0; m < kMembers; ++m) {
      const double v = 100.0 + m + 0.01 * i + rng.NextDouble();
      rows[i].values[m] = v;
      individual[m].push_back(Sample{rows[i].timestamp, v});
    }
  }
  std::string group_payload;
  EncodeGroupChunk(0, kMembers, rows, &group_payload);

  size_t individual_total = 0;
  for (int m = 0; m < kMembers; ++m) {
    std::string p;
    EncodeSeriesChunk(0, individual[m], &p);
    individual_total += p.size();
  }
  EXPECT_LT(group_payload.size(), individual_total);
}

class GroupChunkRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupChunkRandomTest, RandomNullPatternsRoundTrip) {
  Random rng(GetParam());
  const uint32_t members = 1 + rng.Uniform(8);
  const int rows_n = 1 + rng.Uniform(64);
  std::vector<GroupRow> rows(rows_n);
  int64_t ts = 1000;
  for (int i = 0; i < rows_n; ++i) {
    ts += 1 + rng.Uniform(100000);
    rows[i].timestamp = ts;
    rows[i].values.resize(members);
    for (uint32_t m = 0; m < members; ++m) {
      if (rng.OneIn(3)) {
        rows[i].values[m] = std::nullopt;
      } else {
        rows[i].values[m] = rng.NextGaussian(0, 1e6);
      }
    }
  }
  std::string payload;
  EncodeGroupChunk(GetParam(), members, rows, &payload);

  uint64_t seq;
  uint32_t decoded_members;
  std::vector<GroupRow> decoded;
  ASSERT_TRUE(DecodeGroupChunk(payload, &seq, &decoded_members, &decoded).ok());
  EXPECT_EQ(decoded_members, members);
  ASSERT_EQ(decoded.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(decoded[i].timestamp, rows[i].timestamp);
    EXPECT_EQ(decoded[i].values, rows[i].values);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupChunkRandomTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace tu::compress
