// Continuous-aggregates suite (`ctest -L rollup`):
//   - Codec: RollupChunk roundtrip, truncation/corruption detection.
//   - Kernels: AccumulateIntoBuckets / FoldBuckets per aggregate function,
//     negative-timestamp alignment.
//   - Options: the DBOptions::Validate rollup rules.
//   - Differential: AggregateQuery must be bitwise identical to folding the
//     raw Query drain through the same two-stage kernel — across random
//     workloads with out-of-order rewrites, group series, every AggFn, and
//     against a rollup-free control DB.
//   - Planner: bucket-aligned interiors come from rollup partitions (slow
//     tier get_ops drop vs the raw path), edges drain raw.
//   - Invalidation: an out-of-order rewrite into a compacted window marks
//     buckets dirty (answers stay exact via the raw fallback), and
//     MaintainRollups re-derives the partition.
//   - Degraded reads: breaker-open aggregates report the same missing
//     ranges as a plain Query — rollup gaps are never silently dropped.
//   - Persistence: rollup tables and dirty spans survive reopen.
//   - TSBS: tsbs::AggregateMax stays behaviourally identical to the legacy
//     inline window-max it was deduplicated from.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cloud/fault_injector.h"
#include "cloud/object_store.h"
#include "cloud/tiered_env.h"
#include "compress/rollup.h"
#include "core/timeunion_db.h"
#include "query/aggregate.h"
#include "tsbs/devops.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace tu {
namespace {

using cloud::FaultInjector;
using cloud::FaultRule;
using compress::RollupBucket;
using core::DBOptions;
using core::QueryResult;
using core::TimeUnionDB;
using index::TagMatcher;
using query::AggFn;
using query::AggPoint;

constexpr AggFn kAllFns[] = {AggFn::kMin, AggFn::kMax, AggFn::kSum,
                             AggFn::kCount, AggFn::kMean};

// Tiny partitions so modest workloads reach slow-tier L2; both rollup
// granularities divide the 4 s L2 partition, so interiors are servable.
DBOptions RollupOptions(const std::string& ws) {
  DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.partition_upper_bound_ms = 4000;
  opts.lsm.l0_partition_trigger = 1;
  opts.lsm.rollup_granularities_ms = {1000, 2000};
  // Reopen-based tests need the WAL (the series registry replays from it),
  // and the dirty-span assertions need re-derivation to happen only when
  // the test calls MaintainRollups itself — not on a background tick.
  opts.enable_wal = true;
  opts.background_maintenance = false;
  return opts;
}

/// The reference AggregateQuery is specified against: fold the raw drain
/// through the identical two-stage kernel (samples -> fold_g buckets ->
/// step windows). `fold_g` must match the serving granularity the planner
/// picked — the largest configured granularity dividing the step, or the
/// step itself when none divides.
std::vector<AggPoint> TwoStage(const std::vector<compress::Sample>& samples,
                               int64_t fold_g, int64_t step_ms, AggFn fn) {
  std::vector<int64_t> ts;
  std::vector<double> vs;
  ts.reserve(samples.size());
  vs.reserve(samples.size());
  for (const compress::Sample& s : samples) {
    ts.push_back(s.timestamp);
    vs.push_back(s.value);
  }
  std::vector<RollupBucket> buckets;
  query::AccumulateIntoBuckets(ts.data(), vs.data(), ts.size(), fold_g,
                               &buckets);
  return query::FoldBuckets(buckets, step_ms, fn);
}

int64_t ServingGranularity(const DBOptions& opts, int64_t step_ms) {
  int64_t g = 0;
  for (int64_t c : opts.lsm.rollup_granularities_ms) {
    if (c > 0 && step_ms % c == 0) g = std::max(g, c);
  }
  return g;
}

/// Asserts AggregateQuery(matchers, t0, t1, step, fn) on `db` is bitwise
/// identical to the two-stage fold of the raw Query drain, for every
/// aggregate function. `last` (nullable) receives the result of the last
/// fn for callers that want extra assertions.
void ExpectMatchesRawDrain(TimeUnionDB* db, const DBOptions& opts,
                           const std::vector<TagMatcher>& matchers, int64_t t0,
                           int64_t t1, int64_t step_ms,
                           TimeUnionDB::AggregateResult* last = nullptr) {
  QueryResult raw;
  EXPECT_TRUE(db->Query(matchers, t0, t1, &raw).ok());
  const int64_t g = ServingGranularity(opts, step_ms);

  TimeUnionDB::AggregateResult agg;
  for (AggFn fn : kAllFns) {
    EXPECT_TRUE(db->AggregateQuery(matchers, t0, t1, step_ms, fn, &agg).ok());
    EXPECT_EQ(agg.complete, raw.complete);
    EXPECT_EQ(agg.missing_ranges, raw.missing_ranges);
    ASSERT_EQ(agg.series.size(), raw.size())
        << "step=" << step_ms << " fn=" << static_cast<int>(fn);
    for (size_t i = 0; i < raw.size(); ++i) {
      EXPECT_EQ(agg.series[i].id, raw[i].id);
      ASSERT_EQ(agg.series[i].labels.size(), raw[i].labels.size());
      for (size_t l = 0; l < raw[i].labels.size(); ++l) {
        EXPECT_EQ(agg.series[i].labels[l].name, raw[i].labels[l].name);
        EXPECT_EQ(agg.series[i].labels[l].value, raw[i].labels[l].value);
      }
      // Individual series fold at the serving granularity; group members
      // go all-raw, which AggregateQuery folds at the same granularity
      // too (fold_g is per-query, not per-series).
      const std::vector<AggPoint> want =
          TwoStage(raw[i].samples, g > 0 ? g : step_ms, step_ms, fn);
      ASSERT_EQ(agg.series[i].points.size(), want.size())
          << "series " << i << " step=" << step_ms
          << " fn=" << static_cast<int>(fn);
      for (size_t p = 0; p < want.size(); ++p) {
        EXPECT_EQ(agg.series[i].points[p].window_start, want[p].window_start);
        EXPECT_EQ(agg.series[i].points[p].value, want[p].value)
            << "series " << i << " window " << want[p].window_start
            << " fn=" << static_cast<int>(fn);
      }
    }
  }
  if (last != nullptr) *last = std::move(agg);
}

// -- Codec -------------------------------------------------------------------

TEST(RollupCodecTest, RoundtripPreservesBuckets) {
  std::vector<RollupBucket> buckets;
  for (int i = 0; i < 300; ++i) {
    RollupBucket b;
    b.start = -60'000 + i * 1000;  // negative starts must survive
    b.min = -1.5 * i;
    b.max = 2.5 * i + 0.25;
    b.sum = 17.0 * i - 3.0;
    b.count = 1 + static_cast<uint64_t>(i % 7);
    buckets.push_back(b);
  }
  std::string blob;
  compress::EncodeRollupChunk(/*max_seq=*/987654321, /*granularity_ms=*/1000,
                              buckets, &blob);

  uint64_t max_seq = 0;
  int64_t g = 0;
  std::vector<RollupBucket> decoded;
  ASSERT_TRUE(compress::DecodeRollupChunk(blob, &max_seq, &g, &decoded).ok());
  EXPECT_EQ(max_seq, 987654321u);
  EXPECT_EQ(g, 1000);
  ASSERT_EQ(decoded.size(), buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    EXPECT_EQ(decoded[i], buckets[i]) << "bucket " << i;
  }

  // Dense aligned starts compress far below the flat 33 B/bucket encoding.
  EXPECT_LT(blob.size(), buckets.size() * 33);
}

TEST(RollupCodecTest, EmptyChunkRoundtrips) {
  std::string blob;
  compress::EncodeRollupChunk(7, 500, {}, &blob);
  uint64_t max_seq = 0;
  int64_t g = 0;
  std::vector<RollupBucket> decoded;
  ASSERT_TRUE(compress::DecodeRollupChunk(blob, &max_seq, &g, &decoded).ok());
  EXPECT_EQ(max_seq, 7u);
  EXPECT_EQ(g, 500);
  EXPECT_TRUE(decoded.empty());
}

TEST(RollupCodecTest, TruncationAndGarbageAreRejected) {
  std::vector<RollupBucket> buckets;
  for (int i = 0; i < 16; ++i) {
    buckets.push_back(RollupBucket{i * 1000, 1.0, 2.0, 3.0, 2});
  }
  std::string blob;
  compress::EncodeRollupChunk(1, 1000, buckets, &blob);

  uint64_t max_seq = 0;
  int64_t g = 0;
  std::vector<RollupBucket> decoded;
  for (size_t cut = 0; cut < blob.size(); cut += 3) {
    const std::string truncated = blob.substr(0, cut);
    EXPECT_FALSE(
        compress::DecodeRollupChunk(truncated, &max_seq, &g, &decoded).ok())
        << "cut at " << cut;
  }
  EXPECT_FALSE(
      compress::DecodeRollupChunk(std::string(64, '\xff'), &max_seq, &g,
                                  &decoded)
          .ok());
}

// -- Kernels -----------------------------------------------------------------

TEST(AggregateKernelTest, AlignmentIsExactForNegatives) {
  EXPECT_EQ(query::AlignDown(2500, 1000), 2000);
  EXPECT_EQ(query::AlignDown(2000, 1000), 2000);
  EXPECT_EQ(query::AlignDown(-1, 1000), -1000);
  EXPECT_EQ(query::AlignDown(-1000, 1000), -1000);
  EXPECT_EQ(query::AlignDown(-1001, 1000), -2000);
  EXPECT_EQ(query::AlignUp(2500, 1000), 3000);
  EXPECT_EQ(query::AlignUp(2000, 1000), 2000);
  EXPECT_EQ(query::AlignUp(-1, 1000), 0);
  EXPECT_EQ(query::AlignUp(-1500, 1000), -1000);
}

TEST(AggregateKernelTest, AccumulateMergesRunsIntoOpenBucket) {
  const int64_t ts1[] = {0, 400, 999};
  const double v1[] = {3.0, 1.0, 5.0};
  std::vector<RollupBucket> buckets;
  query::AccumulateIntoBuckets(ts1, v1, 3, 1000, &buckets);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0], (RollupBucket{0, 1.0, 5.0, 9.0, 3}));

  // A second run continuing the same bucket merges instead of duplicating.
  const int64_t ts2[] = {500, 1000};
  const double v2[] = {-2.0, 7.0};
  query::AccumulateIntoBuckets(ts2, v2, 2, 1000, &buckets);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], (RollupBucket{0, -2.0, 5.0, 7.0, 4}));
  EXPECT_EQ(buckets[1], (RollupBucket{1000, 7.0, 7.0, 7.0, 1}));
}

TEST(AggregateKernelTest, FoldBucketsPerFunction) {
  const std::vector<RollupBucket> buckets = {
      {0, 1.0, 4.0, 10.0, 4},     // window 0
      {1000, -2.0, 3.0, 2.0, 2},  // window 0
      {2000, 5.0, 5.0, 5.0, 1},   // window 1
      {5000, 0.5, 0.5, 0.5, 1},   // window 2 (gap at window index skipped)
  };
  const auto fold = [&](AggFn fn) {
    return query::FoldBuckets(buckets, 2000, fn);
  };
  EXPECT_EQ(fold(AggFn::kMin),
            (std::vector<AggPoint>{{0, -2.0}, {2000, 5.0}, {4000, 0.5}}));
  EXPECT_EQ(fold(AggFn::kMax),
            (std::vector<AggPoint>{{0, 4.0}, {2000, 5.0}, {4000, 0.5}}));
  EXPECT_EQ(fold(AggFn::kSum),
            (std::vector<AggPoint>{{0, 12.0}, {2000, 5.0}, {4000, 0.5}}));
  EXPECT_EQ(fold(AggFn::kCount),
            (std::vector<AggPoint>{{0, 6.0}, {2000, 1.0}, {4000, 1.0}}));
  EXPECT_EQ(fold(AggFn::kMean),
            (std::vector<AggPoint>{{0, 2.0}, {2000, 5.0}, {4000, 0.5}}));
}

// -- Option validation -------------------------------------------------------

TEST(RollupValidationTest, OptionRules) {
  DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/rollup_validate";

  opts.lsm.rollup_granularities_ms = {1000, 2000, 60'000};
  EXPECT_TRUE(opts.Validate().ok());

  opts.lsm.rollup_granularities_ms = {0};
  Status s = opts.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("rollup_granularities_ms"), std::string::npos);

  opts.lsm.rollup_granularities_ms = {1000, 1000};
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());
  opts.lsm.rollup_granularities_ms = {2000, 1000};
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());

  // 2500 is not a multiple of the finest (1000): resolutions must nest.
  opts.lsm.rollup_granularities_ms = {1000, 2500};
  s = opts.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("multiple of the finest"), std::string::npos);

  opts.lsm.rollup_granularities_ms = {1000};
  opts.backend = DBOptions::Backend::kLeveled;
  s = opts.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("time-partitioned"), std::string::npos);
}

TEST(RollupValidationTest, AggregateQueryRejectsBadArgs) {
  const std::string ws = "/tmp/timeunion_test/rollup_query_args";
  RemoveDirRecursive(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(RollupOptions(ws), &db).ok());
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 1.0, &ref).ok());

  TimeUnionDB::AggregateResult out;
  const auto matcher = TagMatcher::Equal("m", "cpu");
  EXPECT_TRUE(db->AggregateQuery({matcher}, 10, 5, 1000, AggFn::kMax, &out)
                  .IsInvalidArgument());
  EXPECT_TRUE(db->AggregateQuery({}, 0, 10, 1000, AggFn::kMax, &out)
                  .IsInvalidArgument());
  EXPECT_TRUE(db->AggregateQuery({matcher}, 0, 10, 0, AggFn::kMax, &out)
                  .IsInvalidArgument());
  EXPECT_TRUE(db->AggregateQuery({matcher}, 0, 10, -5, AggFn::kMax, &out)
                  .IsInvalidArgument());

  db.reset();
  RemoveDirRecursive(ws);
}

// -- Differential: AggregateQuery vs folded raw drain ------------------------

class RollupDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(RollupDifferentialTest, RandomWorkloadMatchesRawDrain) {
  const std::string ws = "/tmp/timeunion_test/rollup_differential";
  RemoveDirRecursive(ws);
  const DBOptions opts = RollupOptions(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  Random rng(GetParam());
  constexpr int kSeries = 2;
  constexpr int kSamplesPerSeries = 1500;
  constexpr int64_t kStepMs = 250;

  uint64_t refs[kSeries] = {0, 0};
  for (int s = 0; s < kSeries; ++s) {
    ASSERT_TRUE(db->Insert({{"dc", "east"}, {"m", "s" + std::to_string(s)}},
                           0, 0.0, &refs[s])
                    .ok());
  }
  uint64_t gref = 0;
  std::vector<uint32_t> slots;
  ASSERT_TRUE(db->InsertGroup({{"dc", "east"}, {"g", "1"}},
                              {{{"mem", "a"}}, {{"mem", "b"}}}, 0, {0.0, 0.0},
                              &gref, &slots)
                  .ok());

  for (int i = 1; i < kSamplesPerSeries; ++i) {
    for (int s = 0; s < kSeries; ++s) {
      int64_t ts = i * kStepMs;
      // Out-of-order rewrites land inside windows that may already be
      // compacted and rolled up — those buckets must invalidate.
      if (rng.OneIn(8)) ts = rng.Uniform(i) * kStepMs;
      ASSERT_TRUE(db->InsertFast(refs[s], ts, rng.NextDouble()).ok());
    }
    ASSERT_TRUE(db->InsertGroupFast(gref, slots, i * kStepMs,
                                    {rng.NextDouble(), rng.NextDouble()})
                    .ok());
    if (i == kSamplesPerSeries / 2) ASSERT_TRUE(db->Flush().ok());
  }
  if (GetParam() % 2) ASSERT_TRUE(db->Flush().ok());

  const int64_t span = kSamplesPerSeries * kStepMs;
  const auto matcher = TagMatcher::Equal("dc", "east");
  // Steps with a dividing granularity (2000 -> serves from 2000 ms
  // buckets, 3000 -> 1000 ms buckets) and one with none (750 -> all raw);
  // windows cutting through buckets, partitions and single points.
  const int64_t steps[] = {2000, 3000, 750};
  const std::pair<int64_t, int64_t> windows[] = {
      {0, span},
      {span / 3 + 137, 2 * span / 3 + 11},
      {span - 2500, span},
      {4000, 4000}};
  for (const int64_t step : steps) {
    for (const auto& [t0, t1] : windows) {
      ExpectMatchesRawDrain(db.get(), opts, {matcher}, t0, t1, step);
    }
  }

  // Control: a rollup-free DB over the identical workload must agree on
  // the association-free aggregates bit for bit (sum/mean may differ in
  // the last ulp because the fold granularity differs, so they are
  // covered by the raw-drain reference above instead).
  const std::string ws2 = ws + "_control";
  RemoveDirRecursive(ws2);
  DBOptions control_opts = RollupOptions(ws2);
  control_opts.lsm.rollup_granularities_ms.clear();
  std::unique_ptr<TimeUnionDB> control;
  ASSERT_TRUE(TimeUnionDB::Open(control_opts, &control).ok());
  {
    Random rng2(GetParam());
    uint64_t crefs[kSeries] = {0, 0};
    for (int s = 0; s < kSeries; ++s) {
      ASSERT_TRUE(
          control
              ->Insert({{"dc", "east"}, {"m", "s" + std::to_string(s)}}, 0,
                       0.0, &crefs[s])
              .ok());
    }
    uint64_t cgref = 0;
    std::vector<uint32_t> cslots;
    ASSERT_TRUE(control
                    ->InsertGroup({{"dc", "east"}, {"g", "1"}},
                                  {{{"mem", "a"}}, {{"mem", "b"}}}, 0,
                                  {0.0, 0.0}, &cgref, &cslots)
                    .ok());
    for (int i = 1; i < kSamplesPerSeries; ++i) {
      for (int s = 0; s < kSeries; ++s) {
        int64_t ts = i * kStepMs;
        if (rng2.OneIn(8)) ts = rng2.Uniform(i) * kStepMs;
        ASSERT_TRUE(control->InsertFast(crefs[s], ts, rng2.NextDouble()).ok());
      }
      ASSERT_TRUE(control
                      ->InsertGroupFast(cgref, cslots, i * kStepMs,
                                        {rng2.NextDouble(), rng2.NextDouble()})
                      .ok());
      if (i == kSamplesPerSeries / 2) ASSERT_TRUE(control->Flush().ok());
    }
    if (GetParam() % 2) ASSERT_TRUE(control->Flush().ok());
  }
  for (const AggFn fn : {AggFn::kMin, AggFn::kMax, AggFn::kCount}) {
    TimeUnionDB::AggregateResult with_rollups, without;
    ASSERT_TRUE(
        db->AggregateQuery({matcher}, 0, span, 2000, fn, &with_rollups).ok());
    ASSERT_TRUE(
        control->AggregateQuery({matcher}, 0, span, 2000, fn, &without).ok());
    ASSERT_EQ(with_rollups.series.size(), without.series.size());
    for (size_t i = 0; i < without.series.size(); ++i) {
      EXPECT_EQ(with_rollups.series[i].points, without.series[i].points)
          << "series " << i << " fn=" << static_cast<int>(fn);
    }
  }

  control.reset();
  db.reset();
  RemoveDirRecursive(ws2);
  RemoveDirRecursive(ws);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollupDifferentialTest,
                         ::testing::Values(1, 2, 3, 4));

// -- Planner: interiors served from rollups, edges raw -----------------------

TEST(RollupPlannerTest, InteriorFromRollupsEdgesRawFewerSlowGets) {
  const std::string ws = "/tmp/timeunion_test/rollup_planner";
  RemoveDirRecursive(ws);
  DBOptions opts = RollupOptions(ws);
  // The get_ops win is structural: a raw table drains every data block
  // while a rollup read is one small chunk. Longer partitions + small
  // blocks make each raw table many blocks deep, like a real month-scale
  // L2 layout in miniature.
  opts.lsm.l0_partition_ms = 10'000;
  opts.lsm.l2_partition_ms = 40'000;
  opts.lsm.partition_lower_bound_ms = 10'000;
  opts.lsm.partition_upper_bound_ms = 40'000;
  opts.lsm.table_options.block_size = 256;
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  constexpr int kTotal = 4000;
  constexpr int64_t kStepMs = 250;
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.5, &ref).ok());
  for (int i = 1; i < kTotal; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * kStepMs, 0.25 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumL2Partitions(), 0u);
  ASSERT_GT(db->time_lsm()->NumRollupTables(), 0u);

  // An old window fully in L2, with deliberately unaligned endpoints so
  // the first/last buckets must drain raw.
  const int64_t t0 = 1500, t1 = 500'000 - 300;
  const auto matcher = TagMatcher::Equal("m", "cpu");

  TimeUnionDB::AggregateResult agg;
  ExpectMatchesRawDrain(db.get(), opts, {matcher}, t0, t1, 2000, &agg);

  EXPECT_GT(agg.stats.rollup_buckets_served, 0u);
  EXPECT_GT(agg.stats.raw_edge_samples, 0u);  // the unaligned edges
  // The interior came from pre-aggregated buckets: the raw drain decodes
  // orders of magnitude more samples than the edge fallback touched.
  EXPECT_LT(agg.stats.raw_edge_samples,
            static_cast<uint64_t>((t1 - t0) / kStepMs) / 4);

  // Cost check: one cold aggregate fetches far fewer slow-tier objects
  // than one cold raw query of the same window. ExpectMatchesRawDrain ran
  // Query first, so the raw tables were already fetched once — measure a
  // fresh DB instance for each side instead.
  db.reset();
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());
  const cloud::TierCounters& slow2 = db->env().slow().counters();
  const uint64_t before_cold_agg = slow2.get_ops.load();
  TimeUnionDB::AggregateResult cold_agg;
  ASSERT_TRUE(
      db->AggregateQuery({matcher}, t0, t1, 2000, AggFn::kSum, &cold_agg)
          .ok());
  const uint64_t cold_agg_gets = slow2.get_ops.load() - before_cold_agg;

  db.reset();
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());
  const cloud::TierCounters& slow3 = db->env().slow().counters();
  const uint64_t before_cold_raw = slow3.get_ops.load();
  QueryResult cold_raw;
  ASSERT_TRUE(db->Query({matcher}, t0, t1, &cold_raw).ok());
  const uint64_t cold_raw_gets = slow3.get_ops.load() - before_cold_raw;

  EXPECT_LT(cold_agg_gets * 2, cold_raw_gets)
      << "aggregate fetched " << cold_agg_gets << " slow objects vs "
      << cold_raw_gets << " for the raw drain";

  db.reset();
  RemoveDirRecursive(ws);
}

// -- Invalidation + maintenance re-derivation --------------------------------

TEST(RollupDirtyTest, OooRewriteInvalidatesThenMaintenanceRederives) {
  const std::string ws = "/tmp/timeunion_test/rollup_dirty";
  RemoveDirRecursive(ws);
  const DBOptions opts = RollupOptions(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  constexpr int kTotal = 2000;
  constexpr int64_t kStepMs = 250;
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < kTotal; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * kStepMs, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumRollupTables(), 0u);
  ASSERT_EQ(db->time_lsm()->NumDirtyRollupPartitions(), 0u);

  const auto matcher = TagMatcher::Equal("m", "cpu");
  const int64_t span = kTotal * kStepMs;
  ExpectMatchesRawDrain(db.get(), opts, {matcher}, 0, span, 2000);

  // Rewrite a handful of timestamps deep inside compacted, rolled-up
  // windows: the touched buckets go stale and must stop serving.
  for (int64_t ts : {10'000LL, 10'250LL, 123'456LL, 300'017LL}) {
    ASSERT_TRUE(db->InsertFast(ref, ts, 1e6).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumDirtyRollupPartitions(), 0u);

  // Answers stay exact while dirty — the stale buckets fall back to raw.
  ExpectMatchesRawDrain(db.get(), opts, {matcher}, 0, span, 2000);

  // The maintenance path re-derives one partition per call until clean.
  size_t total_rederived = 0;
  for (int i = 0; i < 200 && db->time_lsm()->NumDirtyRollupPartitions() > 0;
       ++i) {
    size_t n = 0;
    ASSERT_TRUE(db->time_lsm()->MaintainRollups(&n).ok());
    ASSERT_EQ(n, 1u) << "dirty partitions remain but none was re-derived";
    total_rederived += n;
  }
  EXPECT_EQ(db->time_lsm()->NumDirtyRollupPartitions(), 0u);
  EXPECT_GT(total_rederived, 0u);

  // Re-derived buckets carry the rewritten values (last-write-wins).
  TimeUnionDB::AggregateResult after;
  ExpectMatchesRawDrain(db.get(), opts, {matcher}, 0, span, 2000, &after);
  TimeUnionDB::AggregateResult max_res;
  ASSERT_TRUE(
      db->AggregateQuery({matcher}, 0, span, 2000, AggFn::kMax, &max_res).ok());
  ASSERT_EQ(max_res.series.size(), 1u);
  bool saw_rewrite = false;
  for (const AggPoint& p : max_res.series[0].points) {
    if (p.window_start == 10'000 || p.window_start == 122'000) {
      EXPECT_EQ(p.value, 1e6);
      saw_rewrite = true;
    }
  }
  EXPECT_TRUE(saw_rewrite);
  EXPECT_GT(after.stats.rollup_buckets_served, 0u);

  db.reset();
  RemoveDirRecursive(ws);
}

// -- Degraded reads: completeness composes with rollup gaps ------------------

TEST(RollupPartialReadTest, BreakerOpenMissingRangesMatchRawQuery) {
  const std::string ws = "/tmp/timeunion_test/rollup_partial";
  RemoveDirRecursive(ws);
  auto fi = std::make_shared<FaultInjector>(13);
  DBOptions opts = RollupOptions(ws);
  opts.env_options.slow_sim.fault = fi;
  opts.env_options.slow_sim.retry.max_attempts = 2;
  opts.env_options.slow_sim.retry.real_sleep = false;
  cloud::CircuitBreakerOptions& b = opts.env_options.slow_sim.breaker;
  b.enabled = true;
  b.window = 8;
  b.min_samples = 4;
  b.consecutive_failures_to_open = 3;

  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());
  constexpr int kTotal = 2000;
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < kTotal; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumRollupTables(), 0u);
  // Keep fresh samples on the fast tier so the partial read is non-empty.
  for (int i = kTotal; i < kTotal + 64; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }

  FaultRule outage;
  outage.ops = cloud::kAllFaultOps;
  outage.probability = 1.0;
  outage.kind = FaultRule::Kind::kPermanent;
  fi->AddRule(outage);
  cloud::ObjectStore& slow = db->env().slow();
  for (int i = 0;
       i < 20 && slow.breaker().state() != cloud::BreakerState::kOpen; ++i) {
    (void)slow.PutObject("breaker_probe", "x");
  }
  ASSERT_EQ(slow.breaker().state(), cloud::BreakerState::kOpen);

  const auto matcher = TagMatcher::Equal("m", "cpu");
  const int64_t t1 = (kTotal + 64) * 250LL;
  QueryResult raw;
  ASSERT_TRUE(db->Query({matcher}, 0, t1, &raw).ok());
  ASSERT_FALSE(raw.complete);
  ASSERT_FALSE(raw.missing_ranges.empty());

  // Rollup tables live on the unreachable slow tier too: every span they
  // would have served demotes to the raw path, whose missing-range
  // reporting must therefore be exactly the plain Query's. Nothing is
  // silently treated as "empty but complete".
  TimeUnionDB::AggregateResult agg;
  ASSERT_TRUE(
      db->AggregateQuery({matcher}, 0, t1, 2000, AggFn::kMax, &agg).ok());
  EXPECT_FALSE(agg.complete);
  EXPECT_EQ(agg.missing_ranges, raw.missing_ranges);
  EXPECT_EQ(agg.stats.rollup_buckets_served, 0u);

  // The reachable (fast-tier) remainder still aggregates exactly.
  ASSERT_EQ(agg.series.size(), raw.size());
  const std::vector<AggPoint> want =
      TwoStage(raw[0].samples, 2000, 2000, AggFn::kMax);
  EXPECT_EQ(agg.series[0].points, want);

  db.reset();
  RemoveDirRecursive(ws);
}

// -- Persistence: rollups and dirty spans survive reopen ---------------------

TEST(RollupPersistenceTest, ReopenPreservesRollupsAndDirtySpans) {
  const std::string ws = "/tmp/timeunion_test/rollup_reopen";
  RemoveDirRecursive(ws);
  const DBOptions opts = RollupOptions(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  constexpr int kTotal = 2000;
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < kTotal; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  // Dirty one compacted window, flush so the rewrite reaches L2.
  ASSERT_TRUE(db->InsertFast(ref, 10'000, 1e6).ok());
  ASSERT_TRUE(db->Flush().ok());

  const size_t tables = db->time_lsm()->NumRollupTables();
  const size_t dirty = db->time_lsm()->NumDirtyRollupPartitions();
  ASSERT_GT(tables, 0u);
  ASSERT_GT(dirty, 0u);

  const auto matcher = TagMatcher::Equal("m", "cpu");
  const int64_t span = kTotal * 250LL;
  TimeUnionDB::AggregateResult before;
  ASSERT_TRUE(
      db->AggregateQuery({matcher}, 0, span, 2000, AggFn::kSum, &before).ok());

  db.reset();
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());
  EXPECT_EQ(db->time_lsm()->NumRollupTables(), tables);
  EXPECT_EQ(db->time_lsm()->NumDirtyRollupPartitions(), dirty);

  TimeUnionDB::AggregateResult after;
  ASSERT_TRUE(
      db->AggregateQuery({matcher}, 0, span, 2000, AggFn::kSum, &after).ok());
  ASSERT_EQ(after.series.size(), before.series.size());
  ASSERT_EQ(after.series.size(), 1u);
  EXPECT_EQ(after.series[0].points, before.series[0].points);

  // The dirty span survived, so maintenance still knows what to refresh.
  size_t n = 0;
  ASSERT_TRUE(db->time_lsm()->MaintainRollups(&n).ok());
  EXPECT_EQ(n, 1u);

  db.reset();
  RemoveDirRecursive(ws);
}

// -- TSBS dedupe: AggregateMax == legacy inline window-max -------------------

TEST(TsbsAggregateDedupTest, MatchesLegacyImplementation) {
  // The retired hand-rolled fold, kept verbatim as the oracle.
  const auto legacy = [](const std::vector<compress::Sample>& samples,
                         int64_t window_ms) {
    std::vector<tsbs::AggPoint> out;
    for (const compress::Sample& s : samples) {
      const int64_t window = s.timestamp / window_ms * window_ms;
      if (out.empty() || out.back().window_start != window) {
        out.push_back(tsbs::AggPoint{window, s.value});
      } else if (s.value > out.back().max_value) {
        out.back().max_value = s.value;
      }
    }
    return out;
  };

  Random rng(2024);
  for (int round = 0; round < 20; ++round) {
    std::vector<compress::Sample> samples;
    int64_t ts = static_cast<int64_t>(rng.Uniform(1000));
    const int n = 1 + static_cast<int>(rng.Uniform(400));
    for (int i = 0; i < n; ++i) {
      ts += static_cast<int64_t>(rng.Uniform(120'000));  // gaps spanning windows
      samples.push_back({ts, rng.NextDouble() * 100.0});
    }
    const auto got =
        tsbs::AggregateMax(samples, tsbs::QueryPattern::kAggWindowMs);
    const auto want = legacy(samples, tsbs::QueryPattern::kAggWindowMs);
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].window_start, want[i].window_start);
      EXPECT_EQ(got[i].max_value, want[i].max_value);
    }
  }
  EXPECT_TRUE(tsbs::AggregateMax({}, 1000).empty());
}

}  // namespace
}  // namespace tu
