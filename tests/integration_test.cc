// Cross-module integration tests: the TU-LDB backend, the end-to-end
// remote layer (CortexSim / TimeUnionRemote), and system-level invariants
// that span heads + LSM + index.
#include <gtest/gtest.h>

#include <map>

#include "baseline/cortex_sim.h"
#include "core/timeunion_db.h"
#include "tsbs/devops.h"
#include "util/mmap_file.h"

namespace tu {
namespace {

using core::DBOptions;
using core::QueryResult;
using core::TimeUnionDB;
using index::Labels;
using index::TagMatcher;

constexpr int64_t kMin = 60 * 1000;
constexpr int64_t kHour = 60 * kMin;

TEST(TuLdbBackendTest, SameApiSameAnswers) {
  // The leveled backend (TU-LDB) must answer queries identically to the
  // time-partitioned backend; only the storage behaviour differs.
  auto run = [](DBOptions::Backend backend, const std::string& ws) {
    DBOptions opts;
    opts.workspace = ws;
    RemoveDirRecursive(ws);
    opts.backend = backend;
    opts.lsm.memtable_bytes = 32 << 10;
    opts.leveled.memtable_bytes = 32 << 10;
    std::unique_ptr<TimeUnionDB> db;
    EXPECT_TRUE(TimeUnionDB::Open(opts, &db).ok());

    uint64_t ref = 0;
    EXPECT_TRUE(db->Insert({{"m", "cpu"}, {"h", "a"}}, 0, 0.0, &ref).ok());
    for (int i = 1; i < 12 * 60; ++i) {
      EXPECT_TRUE(db->InsertFast(ref, i * kMin, 1.0 * i).ok());
    }
    EXPECT_TRUE(db->Flush().ok());

    QueryResult result;
    EXPECT_TRUE(db->Query({TagMatcher::Equal("m", "cpu")}, 2 * kHour,
                          8 * kHour, &result)
                    .ok());
    std::map<int64_t, double> samples;
    for (const auto& s : result[0].samples) samples[s.timestamp] = s.value;
    return samples;
  };
  const auto tp = run(DBOptions::Backend::kTimePartitioned,
                      "/tmp/timeunion_test/int_tp");
  const auto lv = run(DBOptions::Backend::kLeveled,
                      "/tmp/timeunion_test/int_lv");
  EXPECT_EQ(tp, lv);
  EXPECT_EQ(tp.size(), static_cast<size_t>(6 * 60 + 1));
  RemoveDirRecursive("/tmp/timeunion_test/int_tp");
  RemoveDirRecursive("/tmp/timeunion_test/int_lv");
}

TEST(TuLdbBackendTest, GroupsWorkOnLeveledBackend) {
  DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/int_lv_group";
  RemoveDirRecursive(opts.workspace);
  opts.backend = DBOptions::Backend::kLeveled;
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  uint64_t gref;
  std::vector<uint32_t> slots;
  ASSERT_TRUE(db->InsertGroup({{"host", "h"}},
                              {{{"m", "a"}}, {{"m", "b"}}}, 0, {1.0, 2.0},
                              &gref, &slots)
                  .ok());
  for (int i = 1; i < 200; ++i) {
    ASSERT_TRUE(
        db->InsertGroupFast(gref, slots, i * kMin, {1.0 + i, 2.0 + i}).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  QueryResult result;
  ASSERT_TRUE(db->Query({TagMatcher::Equal("m", "b")}, 0, 200 * kMin,
                        &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), 200u);
  EXPECT_EQ(result[0].samples[10].value, 12.0);
  RemoveDirRecursive(opts.workspace);
}

TEST(EndToEndTest, CortexSimInsertsAndQueries) {
  baseline::TsdbOptions opts;
  opts.workspace = "/tmp/timeunion_test/int_cortex";
  RemoveDirRecursive(opts.workspace);
  baseline::CortexSim cortex(opts, baseline::RpcCosts{});
  ASSERT_TRUE(cortex.Open().ok());

  std::vector<baseline::RemoteSample> batch;
  for (int i = 0; i < 500; ++i) {
    batch.push_back({Labels{{"metric", "cpu"}, {"host", "a"}},
                     i * kMin, 1.0 * i});
  }
  ASSERT_TRUE(cortex.RemoteWrite(batch).ok());
  ASSERT_TRUE(cortex.Flush().ok());
  EXPECT_EQ(cortex.write_stats().requests, 1u);
  EXPECT_EQ(cortex.write_stats().samples, 500u);
  EXPECT_GT(cortex.write_stats().charged_us, 0.0);

  std::vector<baseline::TsdbSeriesResult> result;
  ASSERT_TRUE(cortex.QueryRange({TagMatcher::Equal("metric", "cpu")}, 0,
                                500 * kMin, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), 500u);
  RemoveDirRecursive(opts.workspace);
}

TEST(EndToEndTest, TimeUnionRemoteFastAndGroupModes) {
  // Fast mode.
  {
    DBOptions db_opts;
    db_opts.workspace = "/tmp/timeunion_test/int_remote_fast";
    RemoveDirRecursive(db_opts.workspace);
    baseline::TimeUnionRemote remote(
        db_opts, baseline::RpcCosts{},
        baseline::TimeUnionRemote::Mode::kFastPath);
    ASSERT_TRUE(remote.Open().ok());
    uint64_t ref = 0;
    ASSERT_TRUE(
        remote.RegisterSeries({{"metric", "cpu"}, {"host", "x"}}, &ref).ok());
    std::vector<baseline::TimeUnionRemote::RefSample> batch;
    for (int i = 0; i < 300; ++i) batch.push_back({ref, i * kMin, 5.0});
    ASSERT_TRUE(remote.RemoteWriteFast(batch).ok());
    core::QueryResult result;
    ASSERT_TRUE(remote.QueryRange({TagMatcher::Equal("metric", "cpu")}, 0,
                                  300 * kMin, &result)
                    .ok());
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0].samples.size(), 300u);
    RemoveDirRecursive(db_opts.workspace);
  }
  // Group mode: registration row then ID+slot rows.
  {
    DBOptions db_opts;
    db_opts.workspace = "/tmp/timeunion_test/int_remote_group";
    RemoveDirRecursive(db_opts.workspace);
    baseline::TimeUnionRemote remote(db_opts, baseline::RpcCosts{},
                                     baseline::TimeUnionRemote::Mode::kGroup);
    ASSERT_TRUE(remote.Open().ok());

    baseline::TimeUnionRemote::GroupRow reg_row;
    reg_row.group_key = 1;
    reg_row.group_tags = {{"host", "h1"}};
    reg_row.member_tags = {{{"m", "a"}}, {{"m", "b"}}};
    reg_row.ts = 0;
    reg_row.values = {1.0, 2.0};
    ASSERT_TRUE(remote.RemoteWriteGroups({reg_row}).ok());

    std::vector<baseline::TimeUnionRemote::GroupRow> fast_rows;
    for (int i = 1; i < 100; ++i) {
      baseline::TimeUnionRemote::GroupRow row;
      row.group_key = 1;
      row.ts = i * kMin;
      row.values = {1.0 + i, 2.0 + i};
      fast_rows.push_back(std::move(row));
    }
    ASSERT_TRUE(remote.RemoteWriteGroups(fast_rows).ok());

    core::QueryResult result;
    ASSERT_TRUE(remote.QueryRange({TagMatcher::Equal("m", "a")}, 0,
                                  100 * kMin, &result)
                    .ok());
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0].samples.size(), 100u);
    EXPECT_EQ(result[0].samples[50].value, 51.0);
    RemoveDirRecursive(db_opts.workspace);
  }
}

TEST(MmapFileTest, ArraysGrowAndPersist) {
  const std::string ws = "/tmp/timeunion_test/int_mmap";
  RemoveDirRecursive(ws);
  {
    MmapFileArray arr(ws, "data", 4096);
    ASSERT_TRUE(arr.Reserve(10000).ok());  // 3 files
    EXPECT_EQ(arr.num_files(), 3u);
    EXPECT_GE(arr.capacity(), 10000u);
    // Cross-boundary write/read.
    const std::string payload(3000, 'z');
    arr.WriteBytes(3000, payload.data(), payload.size());  // crosses 4096
    std::string out(3000, '\0');
    arr.ReadBytes(3000, 3000, out.data());
    EXPECT_EQ(out, payload);
    ASSERT_TRUE(arr.Sync().ok());
  }
  // Contents survive remapping.
  {
    MmapFileArray arr(ws, "data", 4096);
    ASSERT_TRUE(arr.Reserve(10000).ok());
    std::string out(3000, '\0');
    arr.ReadBytes(3000, 3000, out.data());
    EXPECT_EQ(out, std::string(3000, 'z'));
  }
  RemoveDirRecursive(ws);
}

TEST(MmapFileTest, SlotArrayIsolatesSlots) {
  const std::string ws = "/tmp/timeunion_test/int_mmap2";
  RemoveDirRecursive(ws);
  MmapSlotArray arr(ws, "slots", 64, 16);
  ASSERT_TRUE(arr.ReserveSlots(40).ok());
  for (int i = 0; i < 40; ++i) memset(arr.Slot(i), i, 64);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(arr.Slot(i)[0]), i);
    EXPECT_EQ(static_cast<unsigned char>(arr.Slot(i)[63]), i);
  }
  RemoveDirRecursive(ws);
}

TEST(DevOpsIntegration, FullPipelineSmall) {
  // End-to-end sanity over the actual workload generator: every generated
  // series must be queryable with exactly the inserted values.
  DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/int_devops";
  RemoveDirRecursive(opts.workspace);
  opts.lsm.memtable_bytes = 64 << 10;
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = 2;
  gen_opts.interval_ms = 60'000;
  gen_opts.duration_ms = 3 * kHour;
  tsbs::DevOpsGenerator gen(gen_opts);

  std::vector<uint64_t> refs(gen.num_series());
  for (uint64_t step = 0; step < gen.num_steps(); ++step) {
    const int64_t ts = gen.start_ts() + step * gen.interval_ms();
    for (uint64_t h = 0; h < 2; ++h) {
      for (int s = 0; s < 101; ++s) {
        if (step == 0) {
          ASSERT_TRUE(db->Insert(gen.SeriesLabels(h, s), ts,
                                 gen.Value(h, s, ts), &refs[h * 101 + s])
                          .ok());
        } else {
          ASSERT_TRUE(db->InsertFast(refs[h * 101 + s], ts,
                                     gen.Value(h, s, ts))
                          .ok());
        }
      }
    }
  }
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(db->NumSeries(), 202u);

  // Spot-check 10 series end to end.
  for (int s = 0; s < 10; ++s) {
    QueryResult result;
    ASSERT_TRUE(db->Query({TagMatcher::Equal("hostname", gen.HostName(1)),
                           TagMatcher::Equal("fieldname", gen.FieldName(s))},
                          0, gen.end_ts(), &result)
                    .ok());
    ASSERT_EQ(result.size(), 1u) << s;
    ASSERT_EQ(result[0].samples.size(), gen.num_steps()) << s;
    for (uint64_t step = 0; step < gen.num_steps(); ++step) {
      const int64_t ts = static_cast<int64_t>(step) * gen.interval_ms();
      EXPECT_EQ(result[0].samples[step].value, gen.Value(1, s, ts));
    }
  }
  RemoveDirRecursive(opts.workspace);
}

}  // namespace
}  // namespace tu
