#include "lsm/leveled_lsm.h"

#include <gtest/gtest.h>

#include <map>

#include "compress/chunk.h"
#include "lsm/key_format.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace tu::lsm {
namespace {

class LeveledLsmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workspace_ = "/tmp/timeunion_test/leveled_lsm";
    RemoveDirRecursive(workspace_);
    env_ = std::make_unique<cloud::TieredEnv>(workspace_,
                                              cloud::TieredEnvOptions::Instant());
    cache_ = std::make_unique<BlockCache>(8 << 20);
    LeveledLsmOptions opts;
    opts.memtable_bytes = 64 << 10;  // small, to force flushes
    opts.base_level_bytes = 128 << 10;
    opts.l0_compaction_trigger = 3;
    opts.max_output_table_bytes = 64 << 10;
    lsm_ = std::make_unique<LeveledLsm>(env_.get(), "db", opts, cache_.get());
    ASSERT_TRUE(lsm_->Open().ok());
  }

  void TearDown() override {
    lsm_.reset();
    env_.reset();
    RemoveDirRecursive(workspace_);
  }

  std::string workspace_;
  std::unique_ptr<cloud::TieredEnv> env_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<LeveledLsm> lsm_;
};

std::string ChunkValueFor(uint64_t seq, int64_t ts, double v) {
  std::string payload;
  compress::EncodeSeriesChunk(seq, {compress::Sample{ts, v}}, &payload);
  return MakeChunkValue(ChunkType::kSeries, payload);
}

TEST_F(LeveledLsmTest, PutAndScanSurvivesCompactions) {
  // Insert enough to trigger several flushes and compactions.
  std::map<std::pair<uint64_t, int64_t>, double> reference;
  Random rng(1);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t id = rng.Uniform(50);
    const int64_t ts = static_cast<int64_t>(rng.Uniform(1000000));
    const double v = rng.NextDouble();
    if (reference.count({id, ts})) continue;  // keep reference unambiguous
    reference[{id, ts}] = v;
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(id, ts), ChunkValueFor(i, ts, v)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  EXPECT_GT(lsm_->stats().compactions.load(), 0u);

  // Every key must be retrievable through the per-id iterator.
  for (uint64_t id = 0; id < 50; ++id) {
    std::unique_ptr<Iterator> it;
    ASSERT_TRUE(lsm_->NewIteratorForId(id, 0, 1000000, &it).ok());
    std::map<int64_t, double> got;
    for (it->Seek(MakeChunkKey(id, 0)); it->Valid(); it->Next()) {
      const Slice user_key = InternalKeyUserKey(it->key());
      if (ChunkKeyId(user_key) != id) break;
      uint64_t seq;
      std::vector<compress::Sample> samples;
      ASSERT_TRUE(compress::DecodeSeriesChunk(
                      ChunkValuePayload(it->value()), &seq, &samples)
                      .ok());
      for (const auto& s : samples) got.emplace(s.timestamp, s.value);
    }
    for (const auto& [key, v] : reference) {
      if (key.first != id) continue;
      ASSERT_TRUE(got.count(key.second)) << "id=" << id << " ts=" << key.second;
      EXPECT_EQ(got[key.second], v);
    }
  }
}

TEST_F(LeveledLsmTest, DeepLevelsLandOnSlowTier) {
  // Write enough data that levels >= 2 exist; those must be S3 objects.
  const std::string big_value(1024, 'x');
  for (int i = 0; i < 3000; ++i) {
    std::string payload;
    compress::EncodeSeriesChunk(
        i, {compress::Sample{i, static_cast<double>(i)}}, &payload);
    ASSERT_TRUE(lsm_->Put(MakeChunkKey(i % 100, i * 1000),
                          MakeChunkValue(ChunkType::kSeries, payload + big_value))
                    .ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());

  uint64_t deep_tables = 0;
  for (int level = 2; level < lsm_->num_levels(); ++level) {
    deep_tables += lsm_->NumTables(level);
  }
  ASSERT_GT(deep_tables, 0u) << "test needs enough data to reach level 2";
  EXPECT_GT(env_->slow().counters().put_ops.load(), 0u);
  EXPECT_GT(lsm_->stats().slow_bytes_written.load(), 0u);
}

TEST_F(LeveledLsmTest, DuplicateUserKeysBothSurvive) {
  // Same (id, ts) chunk key twice: the store is a multiset (§ chunk merge
  // happens at sample level in queries).
  ASSERT_TRUE(lsm_->Put(MakeChunkKey(1, 100), ChunkValueFor(1, 100, 1.0)).ok());
  ASSERT_TRUE(lsm_->Put(MakeChunkKey(1, 100), ChunkValueFor(2, 105, 2.0)).ok());
  ASSERT_TRUE(lsm_->FlushAll().ok());

  std::unique_ptr<Iterator> it;
  ASSERT_TRUE(lsm_->NewIteratorForId(1, 0, 1000, &it).ok());
  int count = 0;
  for (it->Seek(MakeChunkKey(1, 0)); it->Valid(); it->Next()) {
    if (ChunkKeyId(InternalKeyUserKey(it->key())) != 1) break;
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST_F(LeveledLsmTest, CompactionStatsTracked) {
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(lsm_->Put(MakeChunkKey(i % 20, i * 100),
                          ChunkValueFor(i, i * 100, 1.0))
                    .ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  const auto& stats = lsm_->stats();
  EXPECT_GT(stats.compactions.load(), 0u);
  EXPECT_GT(stats.tables_read.load(), 0u);
  EXPECT_GT(stats.bytes_written.load(), 0u);
  // Read amplification: on average >= 1 table read per compaction.
  EXPECT_GE(stats.tables_read.load(), stats.compactions.load());
}

}  // namespace
}  // namespace tu::lsm
