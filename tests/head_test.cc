#include "mem/head.h"

#include <gtest/gtest.h>

#include <set>

#include "mem/chunk_array.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace tu::mem {
namespace {

class HeadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = "/tmp/timeunion_test/head";
    RemoveDirRecursive(ws_);
    series_chunks_ = std::make_unique<ChunkArray>(ws_, "series", 256, 64);
    ts_chunks_ = std::make_unique<ChunkArray>(ws_, "gts", 192, 64);
    val_chunks_ = std::make_unique<ChunkArray>(ws_, "gval", 192, 64);
  }
  void TearDown() override {
    series_chunks_.reset();
    ts_chunks_.reset();
    val_chunks_.reset();
    RemoveDirRecursive(ws_);
  }

  std::string ws_;
  std::unique_ptr<ChunkArray> series_chunks_;
  std::unique_ptr<ChunkArray> ts_chunks_;
  std::unique_ptr<ChunkArray> val_chunks_;
};

constexpr int64_t kFar = INT64_MAX / 2;

TEST_F(HeadTest, SeriesAppendAndSnapshot) {
  SeriesHead head(1, 0, series_chunks_.get(), 32);
  AppendResult result;
  bool too_old;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(head.Append(i * 1000, 1.0 * i, kFar, &result, &too_old).ok());
    EXPECT_EQ(result, AppendResult::kOk);
    EXPECT_FALSE(too_old);
  }
  std::vector<compress::Sample> samples;
  ASSERT_TRUE(head.SnapshotOpen(&samples).ok());
  ASSERT_EQ(samples.size(), 10u);
  EXPECT_EQ(samples[7], (compress::Sample{7000, 7.0}));
  EXPECT_EQ(head.last_ts(), 9000);
  EXPECT_EQ(head.open_count(), 10u);
}

TEST_F(HeadTest, SeriesChunkClosesAt32Samples) {
  SeriesHead head(1, 0, series_chunks_.get(), 32);
  AppendResult result;
  bool too_old;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(head.Append(i * 1000, 1.0, kFar, &result, &too_old).ok());
  }
  EXPECT_EQ(result, AppendResult::kChunkClosed);

  std::string payload;
  int64_t first_ts = 0;
  ASSERT_TRUE(head.CloseChunk(&payload, &first_ts));
  EXPECT_EQ(first_ts, 0);
  uint64_t seq = 0;
  std::vector<compress::Sample> samples;
  ASSERT_TRUE(compress::DecodeSeriesChunk(payload, &seq, &samples).ok());
  EXPECT_EQ(samples.size(), 32u);
  EXPECT_FALSE(head.has_open_chunk());
  // Slot returned to the array.
  EXPECT_EQ(series_chunks_->allocated_chunks(), 0u);
}

TEST_F(HeadTest, SeriesPartitionBoundaryForcesFlush) {
  SeriesHead head(1, 0, series_chunks_.get(), 32);
  AppendResult result;
  bool too_old;
  ASSERT_TRUE(head.Append(100, 1.0, /*partition_end=*/1000, &result,
                          &too_old).ok());
  EXPECT_EQ(result, AppendResult::kOk);
  ASSERT_TRUE(head.Append(1500, 2.0, 2000, &result, &too_old).ok());
  EXPECT_EQ(result, AppendResult::kNeedsFlush);  // crosses partition end
  EXPECT_FALSE(too_old);
}

TEST_F(HeadTest, SeriesOutOfOrderMergesInPlace) {
  SeriesHead head(1, 0, series_chunks_.get(), 32);
  AppendResult result;
  bool too_old;
  for (int64_t ts : {1000, 2000, 4000}) {
    ASSERT_TRUE(head.Append(ts, 1.0, kFar, &result, &too_old).ok());
  }
  // Insert between existing samples.
  ASSERT_TRUE(head.Append(3000, 9.0, kFar, &result, &too_old).ok());
  EXPECT_EQ(result, AppendResult::kOk);
  // Replace an existing timestamp.
  ASSERT_TRUE(head.Append(2000, 7.0, kFar, &result, &too_old).ok());
  EXPECT_EQ(result, AppendResult::kDuplicate);

  std::vector<compress::Sample> samples;
  ASSERT_TRUE(head.SnapshotOpen(&samples).ok());
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[1], (compress::Sample{2000, 7.0}));
  EXPECT_EQ(samples[2], (compress::Sample{3000, 9.0}));
}

TEST_F(HeadTest, SeriesTooOldSignalled) {
  SeriesHead head(1, 0, series_chunks_.get(), 32);
  AppendResult result;
  bool too_old;
  ASSERT_TRUE(head.Append(10000, 1.0, kFar, &result, &too_old).ok());
  ASSERT_TRUE(head.Append(500, 2.0, kFar, &result, &too_old).ok());
  EXPECT_TRUE(too_old);
  // The open chunk is untouched.
  std::vector<compress::Sample> samples;
  ASSERT_TRUE(head.SnapshotOpen(&samples).ok());
  EXPECT_EQ(samples.size(), 1u);
}

TEST_F(HeadTest, SeriesMergeOverflowSpillsWholeChunk) {
  // Random doubles with jittered timestamps fill the slot quickly; an
  // out-of-order merge then overflows and must spill, not drop samples.
  SeriesHead head(1, 0, series_chunks_.get(), 1000);
  AppendResult result;
  bool too_old;
  Random rng(3);
  int64_t ts = 0;
  int appended = 0;
  while (true) {
    ts += 1 + static_cast<int64_t>(rng.Uniform(100000));
    ASSERT_TRUE(
        head.Append(ts, rng.NextDouble(), kFar, &result, &too_old).ok());
    ++appended;
    if (result == AppendResult::kNeedsFlush || appended > 500) break;
  }
  ASSERT_EQ(result, AppendResult::kNeedsFlush) << "slot should fill";
  // Merge into the nearly-full chunk until an overflow spill happens.
  int64_t mid = ts / 2;
  int merges = 0;
  while (merges < 200) {
    ASSERT_TRUE(
        head.Append(mid, rng.NextDouble(), kFar, &result, &too_old).ok());
    ASSERT_FALSE(too_old);
    ++merges;
    mid += 1;
    if (result == AppendResult::kChunkClosed) break;
  }
  ASSERT_EQ(result, AppendResult::kChunkClosed);
  std::string payload;
  int64_t first_ts = 0;
  ASSERT_TRUE(head.CloseChunk(&payload, &first_ts));
  uint64_t seq;
  std::vector<compress::Sample> samples;
  ASSERT_TRUE(compress::DecodeSeriesChunk(payload, &seq, &samples).ok());
  // Every appended + merged sample is present.
  EXPECT_EQ(samples.size(), static_cast<size_t>(appended - 1 + merges));
}

TEST_F(HeadTest, GroupRowsAndMemberSnapshots) {
  GroupHead head(10, 0, ts_chunks_.get(), val_chunks_.get(), 32);
  uint32_t s0, s1;
  ASSERT_TRUE(head.AddMember(0, "m0", &s0).ok());
  ASSERT_TRUE(head.AddMember(0, "m1", &s1).ok());
  EXPECT_EQ(head.FindMember("m1"), 1);
  EXPECT_EQ(head.FindMember("zz"), -1);

  AppendResult result;
  bool too_old;
  ASSERT_TRUE(head.InsertRow(100, {0, 1}, {1.0, 2.0}, kFar, &result,
                             &too_old).ok());
  // Member 1 missing this round.
  ASSERT_TRUE(head.InsertRow(200, {0}, {1.5}, kFar, &result, &too_old).ok());

  std::vector<compress::Sample> samples;
  ASSERT_TRUE(head.SnapshotMember(0, &samples).ok());
  EXPECT_EQ(samples.size(), 2u);
  ASSERT_TRUE(head.SnapshotMember(1, &samples).ok());
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0], (compress::Sample{100, 2.0}));
}

TEST_F(HeadTest, GroupNewMemberBackfilledWithNulls) {
  GroupHead head(10, 0, ts_chunks_.get(), val_chunks_.get(), 32);
  uint32_t s0;
  ASSERT_TRUE(head.AddMember(0, "m0", &s0).ok());
  AppendResult result;
  bool too_old;
  ASSERT_TRUE(head.InsertRow(100, {0}, {1.0}, kFar, &result, &too_old).ok());
  ASSERT_TRUE(head.InsertRow(200, {0}, {1.1}, kFar, &result, &too_old).ok());

  uint32_t s1;
  ASSERT_TRUE(head.AddMember(0, "m1", &s1).ok());  // joins late
  ASSERT_TRUE(head.InsertRow(300, {0, 1}, {1.2, 9.0}, kFar, &result,
                             &too_old).ok());

  std::vector<compress::Sample> samples;
  ASSERT_TRUE(head.SnapshotMember(1, &samples).ok());
  ASSERT_EQ(samples.size(), 1u);  // rounds 100/200 are NULL for m1
  EXPECT_EQ(samples[0], (compress::Sample{300, 9.0}));
}

TEST_F(HeadTest, GroupChunkSerializesSharedTimestamps) {
  GroupHead head(10, 0, ts_chunks_.get(), val_chunks_.get(), 4);
  uint32_t s0, s1;
  ASSERT_TRUE(head.AddMember(0, "m0", &s0).ok());
  ASSERT_TRUE(head.AddMember(0, "m1", &s1).ok());
  AppendResult result;
  bool too_old;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(head.InsertRow(i * 100, {0, 1},
                               {1.0 * i, 2.0 * i}, kFar, &result,
                               &too_old).ok());
  }
  EXPECT_EQ(result, AppendResult::kChunkClosed);
  std::string payload;
  int64_t first_ts;
  ASSERT_TRUE(head.CloseChunk(&payload, &first_ts));
  uint64_t seq;
  uint32_t members;
  std::vector<compress::GroupRow> rows;
  ASSERT_TRUE(compress::DecodeGroupChunk(payload, &seq, &members, &rows).ok());
  EXPECT_EQ(members, 2u);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(*rows[3].values[1], 6.0);
  // Slots fully released after close.
  EXPECT_EQ(ts_chunks_->allocated_chunks(), 0u);
  EXPECT_EQ(val_chunks_->allocated_chunks(), 0u);
}

TEST_F(HeadTest, GroupOutOfOrderRowMerge) {
  GroupHead head(10, 0, ts_chunks_.get(), val_chunks_.get(), 32);
  uint32_t s0, s1;
  ASSERT_TRUE(head.AddMember(0, "m0", &s0).ok());
  ASSERT_TRUE(head.AddMember(0, "m1", &s1).ok());
  AppendResult result;
  bool too_old;
  ASSERT_TRUE(head.InsertRow(100, {0, 1}, {1.0, 2.0}, kFar, &result,
                             &too_old).ok());
  ASSERT_TRUE(head.InsertRow(300, {0, 1}, {3.0, 4.0}, kFar, &result,
                             &too_old).ok());
  // Out-of-order row between them.
  ASSERT_TRUE(head.InsertRow(200, {1}, {9.0}, kFar, &result, &too_old).ok());
  EXPECT_FALSE(too_old);
  // Duplicate-timestamp row overwrites the provided member only.
  ASSERT_TRUE(head.InsertRow(100, {0}, {7.0}, kFar, &result, &too_old).ok());

  std::vector<compress::Sample> m0, m1;
  ASSERT_TRUE(head.SnapshotMember(0, &m0).ok());
  ASSERT_TRUE(head.SnapshotMember(1, &m1).ok());
  ASSERT_EQ(m0.size(), 2u);
  EXPECT_EQ(m0[0], (compress::Sample{100, 7.0}));
  ASSERT_EQ(m1.size(), 3u);
  EXPECT_EQ(m1[1], (compress::Sample{200, 9.0}));
}

TEST(ChunkArrayTest, AllocateFreeReuse) {
  const std::string ws = "/tmp/timeunion_test/chunk_array";
  RemoveDirRecursive(ws);
  {
    ChunkArray arr(ws, "c", 128, 8);
    std::vector<uint64_t> slots;
    for (int i = 0; i < 20; ++i) {  // spans 3 files
      uint64_t slot;
      ASSERT_TRUE(arr.Allocate(&slot).ok());
      slots.push_back(slot);
      memset(arr.ChunkData(slot), i, 128);
    }
    EXPECT_EQ(arr.allocated_chunks(), 20u);
    // Contents are independent.
    EXPECT_EQ(arr.ChunkData(slots[3])[0], 3);
    arr.Free(slots[5]);
    EXPECT_EQ(arr.allocated_chunks(), 19u);
    // The freed slot is reused before any new file is mapped: allocate
    // until every existing slot (3 files x 8) is taken.
    std::set<uint64_t> fresh;
    for (int i = 0; i < 5; ++i) {
      uint64_t slot;
      ASSERT_TRUE(arr.Allocate(&slot).ok());
      fresh.insert(slot);
    }
    EXPECT_TRUE(fresh.count(slots[5]));
    EXPECT_EQ(arr.allocated_chunks(), 24u);
    EXPECT_TRUE(arr.Sync().ok());
  }
  RemoveDirRecursive(ws);
}

}  // namespace
}  // namespace tu::mem
