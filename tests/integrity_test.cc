// Silent-corruption defense suite (`ctest -L integrity`):
//   - Corruption-matrix: a planted bit flip in a block payload, block
//     trailer, table footer, manifest body or WAL record — on either tier —
//     is always detected, never silently served.
//   - Self-healing reads: a transient on-read flip is detected, the block
//     re-read, and the query answers correctly; a 1% on-read flip drill
//     byte-matches an uninjected control modulo flagged missing_ranges.
//   - Background scrub: at-rest corruption is found by a full pass,
//     repaired where a healthy second copy exists, quarantined otherwise;
//     budgeted increments resume from a persisted cursor.
//   - Upload verification: a write-side flip on the L2 upload path is
//     caught by the read-back CRC (Status::Corruption) and healed by the
//     retry re-putting the source bytes.
//   - Deterministic corruption-fuzz smoke: seeded random single-byte flips
//     across a table file are all detected by the scrub.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cloud/fault_injector.h"
#include "cloud/tiered_env.h"
#include "core/scrub.h"
#include "core/timeunion_db.h"
#include "lsm/table_format.h"
#include "util/interval_set.h"
#include "util/mmap_file.h"

namespace tu {
namespace {

using cloud::FaultInjector;
using cloud::FaultOp;
using cloud::FaultRule;
using lsm::TimePartitionedLsm;
using ScrubOutcome = TimePartitionedLsm::ScrubOutcome;

// -- Manifest envelope -------------------------------------------------------

TEST(ManifestEnvelopeTest, RoundTripsPayload) {
  const std::string payload = "level manifest bytes";
  const std::string wrapped = lsm::WrapManifest(payload);
  EXPECT_EQ(wrapped.size(), payload.size() + lsm::kManifestEnvelopeBytes);
  Slice out;
  ASSERT_TRUE(lsm::UnwrapManifest(wrapped, &out).ok());
  EXPECT_EQ(out.ToString(), payload);
}

TEST(ManifestEnvelopeTest, DistinguishesTornFromCorrupt) {
  const std::string wrapped = lsm::WrapManifest("the payload");
  Slice out;

  // Torn write: a prefix of the file. Reported as "torn", not "corrupt".
  for (size_t keep : {size_t{0}, size_t{5}, wrapped.size() - 1}) {
    Status s = lsm::UnwrapManifest(wrapped.substr(0, keep), &out);
    ASSERT_TRUE(s.IsCorruption());
    EXPECT_NE(s.ToString().find("torn"), std::string::npos) << keep;
  }

  // Silent flip in the payload: checksum mismatch.
  std::string flipped = wrapped;
  flipped[lsm::kManifestEnvelopeBytes - 4] ^= 0x01;  // payload byte 0
  Status s = lsm::UnwrapManifest(flipped, &out);
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("checksum"), std::string::npos);

  // Wrong magic: not a manifest at all.
  std::string bad_magic = wrapped;
  bad_magic[0] ^= 0xff;
  s = lsm::UnwrapManifest(bad_magic, &out);
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("magic"), std::string::npos);
}

// -- Shared workload ---------------------------------------------------------

// Tiny-partition workload: data lands in L0/L1 (fast tier) and L2 (slow
// tier), with whole-file CRCs in a persisted manifest.
core::DBOptions IntegrityWorkloadOptions(const std::string& ws) {
  core::DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.l0_partition_trigger = 1;
  opts.lsm.persist_manifest = true;
  return opts;
}

constexpr int kSamples = 2000;
constexpr int64_t kStepMs = 250;

void IngestWorkload(core::TimeUnionDB* db) {
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < kSamples; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * kStepMs, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumL2Partitions(), 0u);
}

core::QueryResult QueryAll(core::TimeUnionDB* db) {
  core::QueryResult result;
  Status s = db->Query({index::TagMatcher::Equal("metric", "cpu")}, 0,
                       kSamples * kStepMs, &result);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return result;
}

// Returned samples must byte-match the control; control samples absent
// from `got` must lie inside got's flagged missing_ranges.
void ExpectMatchesControlModuloMissing(const core::QueryResult& got,
                                       const core::QueryResult& control) {
  ASSERT_EQ(control.size(), 1u);
  ASSERT_EQ(got.size(), 1u);
  std::map<int64_t, double> have;
  for (const auto& s : got.series[0].samples) have[s.timestamp] = s.value;
  for (const auto& s : control.series[0].samples) {
    auto it = have.find(s.timestamp);
    if (it != have.end()) {
      EXPECT_EQ(it->second, s.value) << "ts " << s.timestamp;
    } else {
      EXPECT_FALSE(got.complete);
      EXPECT_TRUE(util::IntervalsContain(got.missing_ranges, s.timestamp))
          << "lost sample at ts " << s.timestamp
          << " not covered by missing_ranges";
    }
  }
  EXPECT_LE(got.series[0].samples.size(), control.series[0].samples.size());
}

// -- Corruption matrix: every structural region, both tiers ------------------

TEST(CorruptionMatrixTest, PlantedFlipsDetectedInEveryRegionOnBothTiers) {
  const std::string ws = "/tmp/timeunion_test/integrity_matrix";
  RemoveDirRecursive(ws);
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(IntegrityWorkloadOptions(ws), &db).ok());
  IngestWorkload(db.get());

  TimePartitionedLsm* tree = db->time_lsm();
  const auto tables = tree->ListTables();
  const TimePartitionedLsm::TableListEntry* fast_table = nullptr;
  const TimePartitionedLsm::TableListEntry* slow_table = nullptr;
  for (const auto& t : tables) {
    if (t.on_slow && slow_table == nullptr) slow_table = &t;
    if (!t.on_slow && fast_table == nullptr) fast_table = &t;
  }
  ASSERT_NE(fast_table, nullptr);
  ASSERT_NE(slow_table, nullptr);

  // Region offsets within a table file: first data block payload, the last
  // block's trailer area, and the fixed-size footer.
  auto region_offsets = [](uint64_t file_size) {
    return std::vector<uint64_t>{
        10,                                                  // block payload
        file_size - lsm::kFooterSize - lsm::kBlockTrailerSize + 1,  // trailer
        file_size - 8,                                       // footer
    };
  };

  // Fast tier: corrupt, scrub detects (detect-only), un-corrupt (XOR twice
  // restores), scrub verifies clean again.
  for (uint64_t off : region_offsets(fast_table->file_size)) {
    const std::string fname = "lsm/" + lsm::TableFileName(fast_table->table_id);
    ASSERT_TRUE(db->env().fast().CorruptFileAtRest(fname, off).ok());
    ScrubOutcome outcome;
    std::string detail;
    ASSERT_TRUE(tree->ScrubOneTable(fast_table->table_id, /*repair=*/false,
                                    &outcome, &detail)
                    .ok());
    EXPECT_EQ(outcome, ScrubOutcome::kCorrupt) << "offset " << off;
    ASSERT_TRUE(db->env().fast().CorruptFileAtRest(fname, off).ok());
    ASSERT_TRUE(tree->ScrubOneTable(fast_table->table_id, /*repair=*/false,
                                    &outcome, &detail)
                    .ok());
    EXPECT_EQ(outcome, ScrubOutcome::kClean) << "offset " << off;
  }

  // Slow tier: same matrix through the object store.
  for (uint64_t off : region_offsets(slow_table->file_size)) {
    const std::string key = "lsm/" + lsm::TableFileName(slow_table->table_id);
    ASSERT_TRUE(db->env().slow().CorruptObjectAtRest(key, off).ok());
    ScrubOutcome outcome;
    std::string detail;
    ASSERT_TRUE(tree->ScrubOneTable(slow_table->table_id, /*repair=*/false,
                                    &outcome, &detail)
                    .ok());
    EXPECT_EQ(outcome, ScrubOutcome::kCorrupt) << "offset " << off;
    ASSERT_TRUE(db->env().slow().CorruptObjectAtRest(key, off).ok());
    ASSERT_TRUE(tree->ScrubOneTable(slow_table->table_id, /*repair=*/false,
                                    &outcome, &detail)
                    .ok());
    EXPECT_EQ(outcome, ScrubOutcome::kClean) << "offset " << off;
  }

  db.reset();
  RemoveDirRecursive(ws);
}

TEST(CorruptionMatrixTest, CorruptManifestBodyFailsReopenAsCorruption) {
  const std::string ws = "/tmp/timeunion_test/integrity_manifest";
  RemoveDirRecursive(ws);
  {
    std::unique_ptr<core::TimeUnionDB> db;
    ASSERT_TRUE(
        core::TimeUnionDB::Open(IntegrityWorkloadOptions(ws), &db).ok());
    IngestWorkload(db.get());
  }
  // Flip one byte inside the manifest payload (past the envelope header).
  cloud::TieredEnv env(ws, cloud::TieredEnvOptions::Instant());
  ASSERT_TRUE(
      env.fast()
          .CorruptFileAtRest("lsm/MANIFEST", lsm::kManifestEnvelopeBytes + 3)
          .ok());

  std::unique_ptr<core::TimeUnionDB> reopened;
  Status s = core::TimeUnionDB::Open(IntegrityWorkloadOptions(ws), &reopened);
  ASSERT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("manifest"), std::string::npos);
  RemoveDirRecursive(ws);
}

TEST(CorruptionMatrixTest, CorruptWalRecordDetectedAndPrefixSalvaged) {
  const std::string ws = "/tmp/timeunion_test/integrity_wal";
  RemoveDirRecursive(ws);
  core::DBOptions opts = IntegrityWorkloadOptions(ws);
  opts.enable_wal = true;
  {
    std::unique_ptr<core::TimeUnionDB> db;
    ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
    uint64_t ref = 0;
    ASSERT_TRUE(db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref).ok());
    for (int i = 1; i < 200; ++i) {
      ASSERT_TRUE(db->InsertFast(ref, i * kStepMs, 1.0 * i).ok());
    }
    ASSERT_TRUE(db->SyncWal().ok());
    // No Flush: every sample lives only in the WAL.
  }
  cloud::TieredEnv env(ws, cloud::TieredEnvOptions::Instant());
  uint64_t wal_size = 0;
  ASSERT_TRUE(env.fast().GetFileSize("WAL", &wal_size).ok());
  ASSERT_TRUE(env.fast().CorruptFileAtRest("WAL", wal_size / 2).ok());

  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
  const core::WalReplayStats& wal = db->recovery_report().wal;
  EXPECT_NE(wal.corruption_offset, core::WalReplayStats::kNoCorruption);
  EXPECT_GT(wal.records_applied, 0u);
  EXPECT_LT(wal.records_applied, 200u);  // the tail was not trusted

  core::QueryResult result;
  ASSERT_TRUE(db->Query({index::TagMatcher::Equal("metric", "cpu")}, 0,
                        200 * kStepMs, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  // The salvaged prefix is intact and in order.
  for (size_t i = 0; i < result[0].samples.size(); ++i) {
    EXPECT_EQ(result[0].samples[i].timestamp, static_cast<int64_t>(i) * kStepMs);
    EXPECT_EQ(result[0].samples[i].value, 1.0 * static_cast<double>(i));
  }
  db.reset();
  RemoveDirRecursive(ws);
}

// -- Self-healing reads ------------------------------------------------------

TEST(SelfHealingReadTest, TransientOnReadFlipHealedByCacheBypassingReread) {
  const std::string ws = "/tmp/timeunion_test/integrity_selfheal";
  RemoveDirRecursive(ws);
  core::DBOptions opts = IntegrityWorkloadOptions(ws);
  opts.block_cache_bytes = 0;  // every query re-reads blocks from the tier
  auto fi = std::make_shared<FaultInjector>(17);
  opts.env_options.fast_sim.fault = fi;

  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
  IngestWorkload(db.get());

  const core::QueryResult control = QueryAll(db.get());
  ASSERT_EQ(control.size(), 1u);
  ASSERT_EQ(control[0].samples.size(), static_cast<size_t>(kSamples));

  // Arm exactly one read-side flip on the next fast-tier table read. The
  // readers are already open (the control query above), so it lands on a
  // data block; the block CRC catches it and the re-read serves clean
  // bytes — the query must not notice.
  FaultRule flip = FaultRule::BitFlipRead(1.0, "lsm/");
  flip.max_fires = 1;
  fi->AddRule(flip);

  const core::QueryResult healed = QueryAll(db.get());
  EXPECT_TRUE(healed.complete);
  ASSERT_EQ(healed.size(), 1u);
  ASSERT_EQ(healed[0].samples.size(), control[0].samples.size());
  for (size_t i = 0; i < control[0].samples.size(); ++i) {
    EXPECT_EQ(healed[0].samples[i].timestamp, control[0].samples[i].timestamp);
    EXPECT_EQ(healed[0].samples[i].value, control[0].samples[i].value);
  }

  const obs::MetricsSnapshot snap = db->Metrics();
  EXPECT_EQ(snap.CounterOr0("integrity.read_corruptions_detected"), 1u);
  EXPECT_EQ(snap.CounterOr0("integrity.read_corruptions_healed"), 1u);
  const core::HealthReport health = db->HealthReport();
  EXPECT_EQ(health.read_corruptions_detected, 1u);
  EXPECT_EQ(health.read_corruptions_healed, 1u);
  db.reset();
  RemoveDirRecursive(ws);
}

TEST(SelfHealingReadTest, OnePercentOnReadFlipDrillMatchesControl) {
  const std::string ws = "/tmp/timeunion_test/integrity_drill";
  const std::string control_ws = ws + "_control";
  RemoveDirRecursive(ws);
  RemoveDirRecursive(control_ws);

  std::unique_ptr<core::TimeUnionDB> control;
  ASSERT_TRUE(
      core::TimeUnionDB::Open(IntegrityWorkloadOptions(control_ws), &control)
          .ok());
  IngestWorkload(control.get());
  const core::QueryResult control_result = QueryAll(control.get());
  ASSERT_EQ(control_result[0].samples.size(), static_cast<size_t>(kSamples));

  core::DBOptions opts = IntegrityWorkloadOptions(ws);
  opts.block_cache_bytes = 0;  // keep the tiers (and the injector) hot
  auto fast_fi = std::make_shared<FaultInjector>(23);
  auto slow_fi = std::make_shared<FaultInjector>(29);
  opts.env_options.fast_sim.fault = fast_fi;
  opts.env_options.slow_sim.fault = slow_fi;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
  IngestWorkload(db.get());

  // 1% of every table read on either tier returns flipped bytes.
  fast_fi->AddRule(FaultRule::BitFlipRead(0.01, "lsm/"));
  slow_fi->AddRule(FaultRule::BitFlipRead(0.01, "lsm/"));

  for (int round = 0; round < 20; ++round) {
    const core::QueryResult got = QueryAll(db.get());
    ExpectMatchesControlModuloMissing(got, control_result);
  }
  // The drill exercised the defense, not a fault-free path.
  const obs::MetricsSnapshot snap = db->Metrics();
  EXPECT_GT(snap.CounterOr0("integrity.read_corruptions_detected"), 0u);
  EXPECT_GE(snap.CounterOr0("integrity.read_corruptions_detected"),
            snap.CounterOr0("integrity.read_corruptions_healed"));
  db.reset();
  control.reset();
  RemoveDirRecursive(ws);
  RemoveDirRecursive(control_ws);
}

// -- Background scrub --------------------------------------------------------

TEST(ScrubTest, AtRestCorruptionDetectedRepairedOrQuarantined) {
  const std::string ws = "/tmp/timeunion_test/integrity_scrub";
  RemoveDirRecursive(ws);
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(IntegrityWorkloadOptions(ws), &db).ok());
  IngestWorkload(db.get());
  const core::QueryResult control = QueryAll(db.get());

  TimePartitionedLsm* tree = db->time_lsm();
  const auto tables = tree->ListTables();
  const TimePartitionedLsm::TableListEntry* repairable = nullptr;
  const TimePartitionedLsm::TableListEntry* doomed = nullptr;
  for (const auto& t : tables) {
    if (!t.on_slow) continue;
    if (repairable == nullptr) {
      repairable = &t;
    } else if (doomed == nullptr) {
      doomed = &t;
    }
  }
  ASSERT_NE(repairable, nullptr);
  ASSERT_NE(doomed, nullptr);

  // Table 1: plant a healthy fast-tier duplicate (the state a crash leaves
  // between a deferred-upload drain's manifest flip and its fast-file
  // unlink), then rot the slow copy. The scrub must repair from it.
  const std::string repair_key =
      "lsm/" + lsm::TableFileName(repairable->table_id);
  std::string healthy;
  ASSERT_TRUE(db->env().slow().GetObject(repair_key, &healthy).ok());
  ASSERT_TRUE(db->env().fast().WriteStringToFile(repair_key, healthy).ok());
  ASSERT_TRUE(db->env().slow().CorruptObjectAtRest(repair_key, 7).ok());

  // Table 2: rot the only copy. The scrub must quarantine it.
  ASSERT_TRUE(db->env()
                  .slow()
                  .CorruptObjectAtRest(
                      "lsm/" + lsm::TableFileName(doomed->table_id), 7)
                  .ok());

  core::Scrubber::PassReport report;
  ASSERT_TRUE(db->ScrubNow(&report).ok());
  EXPECT_EQ(report.tables_scanned, tables.size());
  EXPECT_EQ(report.corruptions_found, 2u);
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_GT(report.bytes_verified, 0u);

  // Metrics/health agree with the pass report.
  const obs::MetricsSnapshot snap = db->Metrics();
  EXPECT_EQ(snap.CounterOr0("scrub.corruptions_found"), 2u);
  EXPECT_EQ(snap.CounterOr0("scrub.repaired"), 1u);
  EXPECT_EQ(snap.CounterOr0("scrub.quarantined"), 1u);
  EXPECT_EQ(snap.CounterOr0("scrub.passes"), 1u);
  const core::HealthReport health = db->HealthReport();
  EXPECT_EQ(health.scrub_corruptions_found, 2u);
  EXPECT_EQ(health.scrub_repaired, 1u);
  EXPECT_EQ(health.scrub_quarantined, 1u);
  EXPECT_EQ(health.scrub_passes, 1u);

  // The repaired table serves byte-identical data; the quarantined one is
  // out of the manifest, so its span is flagged, never silently wrong.
  const core::QueryResult after = QueryAll(db.get());
  ExpectMatchesControlModuloMissing(after, control);
  EXPECT_FALSE(after.complete);

  // A second pass over the healed tree finds nothing new.
  core::Scrubber::PassReport second;
  ASSERT_TRUE(db->ScrubNow(&second).ok());
  EXPECT_EQ(second.corruptions_found, 0u);
  EXPECT_EQ(second.repaired, 0u);
  EXPECT_EQ(second.quarantined, 0u);

  db.reset();
  RemoveDirRecursive(ws);
}

TEST(ScrubTest, BudgetedTicksResumeFromPersistedCursor) {
  const std::string ws = "/tmp/timeunion_test/integrity_cursor";
  RemoveDirRecursive(ws);
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(IntegrityWorkloadOptions(ws), &db).ok());
  IngestWorkload(db.get());

  const size_t num_tables = db->time_lsm()->ListTables().size();
  ASSERT_GT(num_tables, 2u);

  // A 1-byte budget stops every tick after a single table.
  core::ScrubOptions sopts;
  sopts.bytes_per_tick = 1;
  core::Scrubber scrubber(db->time_lsm(), &db->env(), sopts,
                          &db->metrics_registry());
  obs::Counter* scanned = db->metrics_registry().counter("scrub.tables_scanned");
  obs::Counter* passes = db->metrics_registry().counter("scrub.passes");
  const uint64_t scanned0 = scanned->value();

  ASSERT_TRUE(scrubber.Tick().ok());
  EXPECT_EQ(scanned->value() - scanned0, 1u);
  EXPECT_EQ(passes->value(), 0u);
  // The cursor survived to disk, pointing past the scanned table.
  std::string cursor;
  ASSERT_TRUE(db->env().fast().ReadFileToString("SCRUB_CURSOR", &cursor).ok());
  EXPECT_FALSE(cursor.empty());
  EXPECT_NE(cursor, "0");

  // A fresh scrubber (a restart) resumes mid-pass instead of rescanning.
  core::Scrubber resumed(db->time_lsm(), &db->env(), sopts,
                         &db->metrics_registry());
  for (size_t i = 1; i < num_tables; ++i) {
    ASSERT_TRUE(resumed.Tick().ok());
  }
  EXPECT_EQ(scanned->value() - scanned0, num_tables);
  EXPECT_EQ(passes->value(), 1u);  // exactly one full pass, no rescans
  ASSERT_TRUE(db->env().fast().ReadFileToString("SCRUB_CURSOR", &cursor).ok());
  EXPECT_EQ(cursor, "0");

  db.reset();
  RemoveDirRecursive(ws);
}

TEST(ScrubTest, MaintenanceTickDrivesScrub) {
  const std::string ws = "/tmp/timeunion_test/integrity_bg";
  RemoveDirRecursive(ws);
  core::DBOptions opts = IntegrityWorkloadOptions(ws);
  opts.scrub.enabled = true;
  opts.scrub.bytes_per_tick = 0;  // whole pass per tick
  opts.background_maintenance = true;
  opts.maintenance_interval_ms = 10;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
  IngestWorkload(db.get());

  // Corrupt the only copy of a slow table, then wait for the background
  // tick to find it.
  const auto tables = db->time_lsm()->ListTables();
  const TimePartitionedLsm::TableListEntry* victim = nullptr;
  for (const auto& t : tables) {
    if (t.on_slow) victim = &t;
  }
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(db->env()
                  .slow()
                  .CorruptObjectAtRest(
                      "lsm/" + lsm::TableFileName(victim->table_id), 3)
                  .ok());
  obs::Counter* found =
      db->metrics_registry().counter("scrub.corruptions_found");
  for (int i = 0; i < 500 && found->value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(found->value(), 1u);
  EXPECT_EQ(db->metrics_registry().counter("scrub.quarantined")->value(), 1u);
  db.reset();
  RemoveDirRecursive(ws);
}

TEST(ScrubTest, LeveledBackendRejectsScrubConfig) {
  core::DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/integrity_leveled";
  opts.backend = core::DBOptions::Backend::kLeveled;
  opts.scrub.enabled = true;
  std::unique_ptr<core::TimeUnionDB> db;
  Status s = core::TimeUnionDB::Open(opts, &db);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("scrub"), std::string::npos);
}

// -- Upload read-back verification -------------------------------------------

TEST(UploadVerifyTest, WriteSideFlipCaughtByCrcAndHealedByRetry) {
  const std::string ws = "/tmp/timeunion_test/integrity_upload";
  RemoveDirRecursive(ws);
  core::DBOptions opts = IntegrityWorkloadOptions(ws);
  opts.lsm.integrity.verify_upload = true;
  opts.env_options.slow_sim.retry.real_sleep = false;
  auto fi = std::make_shared<FaultInjector>(31);
  // The first L2 upload persists one flipped byte; the read-back CRC must
  // catch it (as Corruption, not Busy) and the retry re-put heals it.
  fi->AddRule(FaultRule::BitFlipWrite(1, "lsm/"));
  opts.env_options.slow_sim.fault = fi;

  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
  IngestWorkload(db.get());  // upload succeeds despite the flip

  const cloud::TierCounters& slow = db->env().slow().counters();
  EXPECT_GT(slow.faults_injected.load(), 0u);
  EXPECT_GT(slow.retries.load(), 0u);
  EXPECT_EQ(slow.retry_give_ups.load(), 0u);

  // Everything on the slow tier verifies clean end-to-end.
  core::Scrubber::PassReport report;
  ASSERT_TRUE(db->ScrubNow(&report).ok());
  EXPECT_EQ(report.corruptions_found, 0u);
  db.reset();
  RemoveDirRecursive(ws);
}

// -- Deterministic corruption-fuzz smoke -------------------------------------

TEST(CorruptionFuzzTest, SeededSingleByteFlipsAlwaysDetected) {
  const std::string ws = "/tmp/timeunion_test/integrity_fuzz";
  RemoveDirRecursive(ws);
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(IntegrityWorkloadOptions(ws), &db).ok());
  IngestWorkload(db.get());

  TimePartitionedLsm* tree = db->time_lsm();
  const auto tables = tree->ListTables();
  const TimePartitionedLsm::TableListEntry* victim = nullptr;
  for (const auto& t : tables) {
    if (!t.on_slow) victim = &t;
  }
  ASSERT_NE(victim, nullptr);
  const std::string fname = "lsm/" + lsm::TableFileName(victim->table_id);

  std::mt19937_64 rng(0xf00dcafe);  // fixed seed: the fuzz is reproducible
  for (int round = 0; round < 24; ++round) {
    const uint64_t offset = rng() % victim->file_size;
    const uint8_t mask = static_cast<uint8_t>(1u << (rng() % 8));
    ASSERT_TRUE(db->env().fast().CorruptFileAtRest(fname, offset, mask).ok());
    ScrubOutcome outcome;
    std::string detail;
    ASSERT_TRUE(
        tree->ScrubOneTable(victim->table_id, /*repair=*/false, &outcome,
                            &detail)
            .ok());
    EXPECT_EQ(outcome, ScrubOutcome::kCorrupt)
        << "round " << round << " offset " << offset << " mask "
        << static_cast<int>(mask);
    // XOR is an involution: the same call restores the byte.
    ASSERT_TRUE(db->env().fast().CorruptFileAtRest(fname, offset, mask).ok());
  }
  ScrubOutcome outcome;
  std::string detail;
  ASSERT_TRUE(tree->ScrubOneTable(victim->table_id, /*repair=*/false, &outcome,
                                  &detail)
                  .ok());
  EXPECT_EQ(outcome, ScrubOutcome::kClean);
  db.reset();
  RemoveDirRecursive(ws);
}

}  // namespace
}  // namespace tu
