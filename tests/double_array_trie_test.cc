#include "index/double_array_trie.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "util/mmap_file.h"
#include "util/random.h"

namespace tu::index {
namespace {

class TrieTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/timeunion_test/trie_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed() ^
               reinterpret_cast<uintptr_t>(this));
    RemoveDirRecursive(dir_);
    TrieOptions opts;
    opts.slots_per_file = 4096;
    opts.tail_file_bytes = 4096;
    trie_ = std::make_unique<DoubleArrayTrie>(dir_, "t", opts);
    ASSERT_TRUE(trie_->Init().ok());
  }

  void TearDown() override {
    trie_.reset();
    RemoveDirRecursive(dir_);
  }

  std::string dir_;
  std::unique_ptr<DoubleArrayTrie> trie_;
};

TEST_F(TrieTest, EmptyLookup) {
  uint64_t v;
  EXPECT_TRUE(trie_->Lookup("missing", &v).IsNotFound());
  EXPECT_EQ(trie_->num_keys(), 0u);
}

TEST_F(TrieTest, SingleKey) {
  ASSERT_TRUE(trie_->Insert("metric$cpu", 7).ok());
  uint64_t v = 0;
  ASSERT_TRUE(trie_->Lookup("metric$cpu", &v).ok());
  EXPECT_EQ(v, 7u);
  EXPECT_TRUE(trie_->Lookup("metric$cp", &v).IsNotFound());
  EXPECT_TRUE(trie_->Lookup("metric$cpux", &v).IsNotFound());
  EXPECT_EQ(trie_->num_keys(), 1u);
}

TEST_F(TrieTest, PaperExample) {
  // Fig. 8: metric$cpu and metric$disk share the prefix "metric$".
  ASSERT_TRUE(trie_->Insert("metric$cpu", 1).ok());
  ASSERT_TRUE(trie_->Insert("metric$disk", 2).ok());
  uint64_t v = 0;
  ASSERT_TRUE(trie_->Lookup("metric$cpu", &v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(trie_->Lookup("metric$disk", &v).ok());
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(trie_->num_keys(), 2u);
}

TEST_F(TrieTest, OverwriteValue) {
  ASSERT_TRUE(trie_->Insert("key", 1).ok());
  ASSERT_TRUE(trie_->Insert("key", 2).ok());
  uint64_t v = 0;
  ASSERT_TRUE(trie_->Lookup("key", &v).ok());
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(trie_->num_keys(), 1u);
}

TEST_F(TrieTest, PrefixOfExistingKey) {
  ASSERT_TRUE(trie_->Insert("abcdef", 1).ok());
  ASSERT_TRUE(trie_->Insert("abc", 2).ok());
  ASSERT_TRUE(trie_->Insert("abcdefgh", 3).ok());
  uint64_t v = 0;
  ASSERT_TRUE(trie_->Lookup("abcdef", &v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(trie_->Lookup("abc", &v).ok());
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(trie_->Lookup("abcdefgh", &v).ok());
  EXPECT_EQ(v, 3u);
}

TEST_F(TrieTest, EmptyKey) {
  ASSERT_TRUE(trie_->Insert("", 42).ok());
  uint64_t v = 0;
  ASSERT_TRUE(trie_->Lookup("", &v).ok());
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(trie_->Lookup("a", &v).IsNotFound());
}

TEST_F(TrieTest, BinaryKeys) {
  const std::string k1("\x00\x01\xff", 3);
  const std::string k2("\x00\x01\xfe", 3);
  ASSERT_TRUE(trie_->Insert(k1, 1).ok());
  ASSERT_TRUE(trie_->Insert(k2, 2).ok());
  uint64_t v = 0;
  ASSERT_TRUE(trie_->Lookup(k1, &v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(trie_->Lookup(k2, &v).ok());
  EXPECT_EQ(v, 2u);
}

TEST_F(TrieTest, ScanPrefix) {
  ASSERT_TRUE(trie_->Insert("metric$cpu", 1).ok());
  ASSERT_TRUE(trie_->Insert("metric$disk", 2).ok());
  ASSERT_TRUE(trie_->Insert("metric$diskio", 3).ok());
  ASSERT_TRUE(trie_->Insert("host$a", 4).ok());

  std::map<std::string, uint64_t> found;
  ASSERT_TRUE(trie_
                  ->ScanPrefix("metric$",
                               [&](const std::string& k, uint64_t val) {
                                 found[k] = val;
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(found.size(), 3u);
  EXPECT_EQ(found["metric$cpu"], 1u);
  EXPECT_EQ(found["metric$disk"], 2u);
  EXPECT_EQ(found["metric$diskio"], 3u);

  found.clear();
  ASSERT_TRUE(trie_
                  ->ScanPrefix("metric$disk",
                               [&](const std::string& k, uint64_t val) {
                                 found[k] = val;
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(found.size(), 2u);

  found.clear();
  ASSERT_TRUE(trie_
                  ->ScanPrefix("",
                               [&](const std::string& k, uint64_t val) {
                                 found[k] = val;
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(found.size(), 4u);
}

TEST_F(TrieTest, ScanPrefixEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(trie_->Insert("k" + std::to_string(i), i).ok());
  }
  int seen = 0;
  ASSERT_TRUE(trie_
                  ->ScanPrefix("k",
                               [&](const std::string&, uint64_t) {
                                 return ++seen < 3;
                               })
                  .ok());
  EXPECT_EQ(seen, 3);
}

// Property test: the trie must agree with std::map on random key sets.
class TrieRandomTest : public TrieTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(TrieRandomTest, MatchesReferenceMap) {
  Random rng(GetParam());
  std::map<std::string, uint64_t> reference;
  const char* alphabet = "abcdefgh$0123";
  for (int i = 0; i < 2000; ++i) {
    std::string key;
    const size_t len = rng.Uniform(24);
    for (size_t j = 0; j < len; ++j) {
      key.push_back(alphabet[rng.Uniform(13)]);
    }
    const uint64_t value = rng.Next64();
    reference[key] = value;
    ASSERT_TRUE(trie_->Insert(key, value).ok()) << "key=" << key;
  }
  EXPECT_EQ(trie_->num_keys(), reference.size());
  for (const auto& [key, value] : reference) {
    uint64_t v = 0;
    ASSERT_TRUE(trie_->Lookup(key, &v).ok()) << "key=" << key;
    EXPECT_EQ(v, value) << "key=" << key;
  }
  // Scan must enumerate exactly the reference keys.
  std::map<std::string, uint64_t> scanned;
  ASSERT_TRUE(trie_
                  ->ScanPrefix("",
                               [&](const std::string& k, uint64_t val) {
                                 scanned[k] = val;
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(scanned, reference);
  // Lookups of perturbed keys must not produce false positives.
  for (const auto& [key, value] : reference) {
    std::string miss = key + "~";
    if (reference.count(miss)) continue;
    uint64_t v = 0;
    EXPECT_TRUE(trie_->Lookup(miss, &v).IsNotFound()) << "key=" << miss;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieRandomTest, ::testing::Values(1, 2, 3, 7, 42));

TEST_F(TrieTest, MemoryUsageGrows) {
  const uint64_t before = trie_->MemoryUsage();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(trie_->Insert("series_tag_" + std::to_string(i), i).ok());
  }
  EXPECT_GT(trie_->MemoryUsage(), before);
}

TEST_F(TrieTest, SyncPersistsWithoutError) {
  ASSERT_TRUE(trie_->Insert("a", 1).ok());
  EXPECT_TRUE(trie_->Sync().ok());
  trie_->AdviseDontNeed();
  uint64_t v = 0;
  ASSERT_TRUE(trie_->Lookup("a", &v).ok());
  EXPECT_EQ(v, 1u);
}

}  // namespace
}  // namespace tu::index
