#include "core/wal.h"

#include <gtest/gtest.h>

#include "util/mmap_file.h"

namespace tu::core {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = "/tmp/timeunion_test/wal";
    RemoveDirRecursive(ws_);
    store_ = std::make_unique<cloud::BlockStore>(
        ws_, cloud::TierSimOptions::Instant());
  }
  void TearDown() override {
    store_.reset();
    RemoveDirRecursive(ws_);
  }

  std::vector<WalRecord> Replay() {
    std::vector<WalRecord> records;
    stats_ = WalReplayStats{};
    EXPECT_TRUE(ReplayWal(store_.get(), "WAL",
                          [&](const WalRecord& r) {
                            records.push_back(r);
                            return Status::OK();
                          },
                          &stats_)
                    .ok());
    return records;
  }

  std::string ws_;
  std::unique_ptr<cloud::BlockStore> store_;
  WalReplayStats stats_;
};

TEST_F(WalTest, AllRecordTypesRoundTrip) {
  WalWriter writer(store_.get(), "WAL");
  ASSERT_TRUE(writer.Open().ok());

  WalRecord reg;
  reg.type = WalRecordType::kRegisterSeries;
  reg.id = 7;
  reg.labels = {{"metric", "cpu"}, {"host", "a"}};
  ASSERT_TRUE(writer.Append(reg).ok());

  WalRecord greg;
  greg.type = WalRecordType::kRegisterGroup;
  greg.id = 8;
  greg.labels = {{"hostname", "h1"}};
  ASSERT_TRUE(writer.Append(greg).ok());

  WalRecord member;
  member.type = WalRecordType::kRegisterMember;
  member.id = 8;
  member.slot = 3;
  member.labels = {{"metric", "mem"}};
  ASSERT_TRUE(writer.Append(member).ok());

  WalRecord sample;
  sample.type = WalRecordType::kSample;
  sample.id = 7;
  sample.seq = 42;
  sample.ts = -123456;  // negative timestamps must survive
  sample.value = 3.25;
  ASSERT_TRUE(writer.Append(sample).ok());

  WalRecord gsample;
  gsample.type = WalRecordType::kGroupSample;
  gsample.id = 8;
  gsample.seq = 43;
  gsample.ts = 1000;
  gsample.slots = {0, 3};
  gsample.values = {1.5, 2.5};
  ASSERT_TRUE(writer.Append(gsample).ok());

  WalRecord mark;
  mark.type = WalRecordType::kFlushMark;
  mark.id = 7;
  mark.seq = 42;
  ASSERT_TRUE(writer.Append(mark).ok());
  ASSERT_TRUE(writer.Sync().ok());

  const auto records = Replay();
  ASSERT_EQ(records.size(), 6u);
  // An intact log replays clean: boundary EOF, nothing dropped.
  EXPECT_TRUE(stats_.Clean());
  EXPECT_TRUE(stats_.clean_eof);
  EXPECT_FALSE(stats_.torn_tail);
  EXPECT_EQ(stats_.records_applied, 6u);
  EXPECT_EQ(stats_.records_dropped, 0u);
  EXPECT_EQ(records[0].type, WalRecordType::kRegisterSeries);
  EXPECT_EQ(records[0].labels.size(), 2u);
  EXPECT_EQ(records[2].slot, 3u);
  EXPECT_EQ(records[3].ts, -123456);
  EXPECT_EQ(records[3].value, 3.25);
  EXPECT_EQ(records[4].slots, (std::vector<uint32_t>{0, 3}));
  EXPECT_EQ(records[4].values, (std::vector<double>{1.5, 2.5}));
  EXPECT_EQ(records[5].type, WalRecordType::kFlushMark);
}

TEST_F(WalTest, TruncatedTailToleratedAtReplay) {
  WalWriter writer(store_.get(), "WAL");
  ASSERT_TRUE(writer.Open().ok());
  WalRecord sample;
  sample.type = WalRecordType::kSample;
  sample.id = 1;
  sample.seq = 1;
  sample.ts = 10;
  sample.value = 1.0;
  ASSERT_TRUE(writer.Append(sample).ok());
  sample.seq = 2;
  ASSERT_TRUE(writer.Append(sample).ok());
  ASSERT_TRUE(writer.Sync().ok());

  // Chop bytes off the tail (torn final write).
  std::string contents;
  ASSERT_TRUE(store_->ReadFileToString("WAL", &contents).ok());
  contents.resize(contents.size() - 5);
  ASSERT_TRUE(store_->WriteStringToFile("WAL", contents).ok());

  const auto records = Replay();
  EXPECT_EQ(records.size(), 1u);  // the intact record survives
  // A torn tail is the benign crash-mid-append shape, not corruption.
  EXPECT_TRUE(stats_.Clean());
  EXPECT_TRUE(stats_.torn_tail);
  EXPECT_FALSE(stats_.clean_eof);
  EXPECT_EQ(stats_.records_applied, 1u);
  EXPECT_EQ(stats_.records_dropped, 0u);
}

TEST_F(WalTest, CorruptRecordStopsReplay) {
  WalWriter writer(store_.get(), "WAL");
  ASSERT_TRUE(writer.Open().ok());
  WalRecord sample;
  sample.type = WalRecordType::kSample;
  sample.id = 1;
  sample.seq = 1;
  sample.ts = 10;
  sample.value = 1.0;
  ASSERT_TRUE(writer.Append(sample).ok());
  ASSERT_TRUE(writer.Append(sample).ok());
  ASSERT_TRUE(writer.Sync().ok());

  std::string contents;
  ASSERT_TRUE(store_->ReadFileToString("WAL", &contents).ok());
  contents[10] ^= 0x42;  // flip a payload byte of record 1
  ASSERT_TRUE(store_->WriteStringToFile("WAL", contents).ok());
  EXPECT_TRUE(Replay().empty());  // CRC catches it, replay stops
  // Mid-log corruption: first frame bad, so everything was dropped —
  // including the second record, which still frames+checksums correctly.
  EXPECT_FALSE(stats_.Clean());
  EXPECT_EQ(stats_.corruption_offset, 0u);
  EXPECT_EQ(stats_.records_applied, 0u);
  EXPECT_EQ(stats_.records_dropped, 1u);
  EXPECT_EQ(stats_.bytes_dropped, contents.size());
  EXPECT_FALSE(stats_.torn_tail);
}

TEST_F(WalTest, MidLogCorruptionStatsLocateTheDamage) {
  WalWriter writer(store_.get(), "WAL");
  ASSERT_TRUE(writer.Open().ok());
  WalRecord sample;
  sample.type = WalRecordType::kSample;
  sample.id = 1;
  sample.value = 1.0;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    sample.seq = seq;
    sample.ts = static_cast<int64_t>(10 * seq);
    ASSERT_TRUE(writer.Append(sample).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());

  std::string contents;
  ASSERT_TRUE(store_->ReadFileToString("WAL", &contents).ok());
  const uint64_t frame_size = contents.size() / 3;  // identical records
  contents[frame_size + 9] ^= 0x42;  // corrupt record 2's payload
  ASSERT_TRUE(store_->WriteStringToFile("WAL", contents).ok());

  const auto records = Replay();
  ASSERT_EQ(records.size(), 1u);  // record 1 applied
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_FALSE(stats_.Clean());
  EXPECT_EQ(stats_.records_applied, 1u);
  EXPECT_EQ(stats_.corruption_offset, frame_size);
  EXPECT_EQ(stats_.bytes_dropped, contents.size() - frame_size);
  EXPECT_EQ(stats_.records_dropped, 1u);  // record 3, intact but untrusted
  // The human-readable summary names the damage.
  EXPECT_NE(stats_.ToString().find("corruption_at="), std::string::npos);
}

TEST_F(WalTest, PurgeDropsFlushedSamples) {
  WalWriter writer(store_.get(), "WAL");
  ASSERT_TRUE(writer.Open().ok());

  WalRecord reg;
  reg.type = WalRecordType::kRegisterSeries;
  reg.id = 1;
  reg.labels = {{"m", "cpu"}};
  ASSERT_TRUE(writer.Append(reg).ok());

  for (uint64_t seq = 1; seq <= 10; ++seq) {
    WalRecord sample;
    sample.type = WalRecordType::kSample;
    sample.id = 1;
    sample.seq = seq;
    sample.ts = static_cast<int64_t>(seq);
    sample.value = 1.0;
    ASSERT_TRUE(writer.Append(sample).ok());
  }
  WalRecord mark;
  mark.type = WalRecordType::kFlushMark;
  mark.id = 1;
  mark.seq = 7;  // samples 1..7 are now durable in the LSM
  ASSERT_TRUE(writer.Append(mark).ok());

  ASSERT_TRUE(writer.Purge().ok());

  const auto records = Replay();
  // Register + samples 8..10 survive; flush mark consumed.
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].type, WalRecordType::kRegisterSeries);
  EXPECT_EQ(records[1].seq, 8u);
  EXPECT_EQ(records[3].seq, 10u);

  // The writer stays usable after a purge.
  WalRecord more;
  more.type = WalRecordType::kSample;
  more.id = 1;
  more.seq = 11;
  more.ts = 11;
  more.value = 2.0;
  ASSERT_TRUE(writer.Append(more).ok());
  EXPECT_EQ(Replay().size(), 5u);
}

TEST_F(WalTest, ReopenPreservesContents) {
  {
    WalWriter writer(store_.get(), "WAL");
    ASSERT_TRUE(writer.Open().ok());
    WalRecord sample;
    sample.type = WalRecordType::kSample;
    sample.id = 1;
    sample.seq = 1;
    sample.ts = 5;
    sample.value = 9.0;
    ASSERT_TRUE(writer.Append(sample).ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  WalWriter writer(store_.get(), "WAL");
  ASSERT_TRUE(writer.Open().ok());
  WalRecord sample;
  sample.type = WalRecordType::kSample;
  sample.id = 1;
  sample.seq = 2;
  sample.ts = 6;
  sample.value = 10.0;
  ASSERT_TRUE(writer.Append(sample).ok());
  ASSERT_TRUE(writer.Sync().ok());
  EXPECT_EQ(Replay().size(), 2u);
}

}  // namespace
}  // namespace tu::core
