#include "lsm/chunk_merge.h"

#include <gtest/gtest.h>

#include "compress/chunk.h"

namespace tu::lsm {
namespace {

using compress::GroupRow;
using compress::Sample;

// MergeChunks takes a mutable boundary list (it may extend it to cover
// out-of-range rows); most tests only care about the merge result.
Status MergeWith(const std::vector<ChunkInput>& inputs,
                 std::vector<int64_t> boundaries, uint32_t cap,
                 std::vector<MergedChunk>* out) {
  return MergeChunks(inputs, &boundaries, cap, out);
}

std::string SeriesValue(uint64_t seq, std::vector<Sample> samples) {
  std::string payload;
  compress::EncodeSeriesChunk(seq, samples, &payload);
  return MakeChunkValue(ChunkType::kSeries, payload);
}

TEST(PartitionIndexOf, Boundaries) {
  const std::vector<int64_t> b = {0, 100, 200};
  EXPECT_EQ(PartitionIndexOf(b, -1), -1);
  EXPECT_EQ(PartitionIndexOf(b, 0), 0);
  EXPECT_EQ(PartitionIndexOf(b, 99), 0);
  EXPECT_EQ(PartitionIndexOf(b, 100), 1);
  EXPECT_EQ(PartitionIndexOf(b, 250), 2);
}

TEST(MergeChunks, MergesAndSortsSeriesSamples) {
  const std::string v1 = SeriesValue(1, {{100, 1.0}, {300, 3.0}});
  const std::string v2 = SeriesValue(2, {{200, 2.0}, {400, 4.0}});
  std::vector<ChunkInput> inputs = {{1, Slice(v1)}, {2, Slice(v2)}};

  std::vector<MergedChunk> out;
  ASSERT_TRUE(MergeWith(inputs, {0, 1000}, 256, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].start_ts, 100);

  uint64_t seq;
  std::vector<Sample> samples;
  ASSERT_TRUE(compress::DecodeSeriesChunk(
                  ChunkValuePayload(out[0].value), &seq, &samples)
                  .ok());
  EXPECT_EQ(samples, (std::vector<Sample>{
                         {100, 1.0}, {200, 2.0}, {300, 3.0}, {400, 4.0}}));
  EXPECT_EQ(seq, 2u);  // max input seq survives
}

TEST(MergeChunks, NewestWinsOnDuplicateTimestamps) {
  const std::string old_chunk = SeriesValue(1, {{100, 1.0}, {200, 2.0}});
  const std::string new_chunk = SeriesValue(5, {{200, 9.0}});
  std::vector<ChunkInput> inputs = {{1, Slice(old_chunk)},
                                    {5, Slice(new_chunk)}};
  std::vector<MergedChunk> out;
  ASSERT_TRUE(MergeWith(inputs, {0, 1000}, 256, &out).ok());
  uint64_t seq;
  std::vector<Sample> samples;
  ASSERT_TRUE(compress::DecodeSeriesChunk(
                  ChunkValuePayload(out[0].value), &seq, &samples)
                  .ok());
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[1], (Sample{200, 9.0}));
}

TEST(MergeChunks, SplitsAtPartitionBoundaries) {
  const std::string v =
      SeriesValue(1, {{50, 1.0}, {150, 2.0}, {250, 3.0}});
  std::vector<ChunkInput> inputs = {{1, Slice(v)}};
  std::vector<MergedChunk> out;
  ASSERT_TRUE(MergeWith(inputs, {0, 100, 200, 300}, 256, &out).ok());
  ASSERT_EQ(out.size(), 3u);  // one chunk per partition
  EXPECT_EQ(out[0].start_ts, 50);
  EXPECT_EQ(out[1].start_ts, 150);
  EXPECT_EQ(out[2].start_ts, 250);
}

TEST(MergeChunks, CapsSamplesPerChunk) {
  std::vector<Sample> many;
  for (int i = 0; i < 100; ++i) many.push_back({i * 10LL, 1.0});
  const std::string v = SeriesValue(1, many);
  std::vector<ChunkInput> inputs = {{1, Slice(v)}};
  std::vector<MergedChunk> out;
  ASSERT_TRUE(MergeWith(inputs, {0, 100000}, 32, &out).ok());
  EXPECT_EQ(out.size(), 4u);  // 100 samples / 32 cap
}

TEST(MergeChunks, GroupCellwiseNewestWins) {
  std::vector<GroupRow> old_rows(1);
  old_rows[0] = {100, {1.0, 2.0}};
  std::vector<GroupRow> new_rows(1);
  new_rows[0] = {100, {9.0, std::nullopt}};  // member 1 missing in new chunk
  std::string old_payload, new_payload;
  compress::EncodeGroupChunk(1, 2, old_rows, &old_payload);
  compress::EncodeGroupChunk(5, 2, new_rows, &new_payload);
  const std::string v1 = MakeChunkValue(ChunkType::kGroup, old_payload);
  const std::string v2 = MakeChunkValue(ChunkType::kGroup, new_payload);

  std::vector<ChunkInput> inputs = {{1, Slice(v1)}, {5, Slice(v2)}};
  std::vector<MergedChunk> out;
  ASSERT_TRUE(MergeWith(inputs, {0, 1000}, 256, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(ChunkValueType(out[0].value), ChunkType::kGroup);

  uint64_t seq;
  uint32_t members;
  std::vector<GroupRow> rows;
  ASSERT_TRUE(compress::DecodeGroupChunk(ChunkValuePayload(out[0].value),
                                         &seq, &members, &rows)
                  .ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(*rows[0].values[0], 9.0);  // newest non-null wins
  EXPECT_EQ(*rows[0].values[1], 2.0);  // older value fills the NULL
}

TEST(MergeChunks, GroupWidthGrowsToNewestMembership) {
  std::vector<GroupRow> narrow(1);
  narrow[0] = {100, {1.0}};
  std::vector<GroupRow> wide(1);
  wide[0] = {200, {1.5, 2.5, 3.5}};
  std::string p1, p2;
  compress::EncodeGroupChunk(1, 1, narrow, &p1);
  compress::EncodeGroupChunk(2, 3, wide, &p2);
  const std::string v1 = MakeChunkValue(ChunkType::kGroup, p1);
  const std::string v2 = MakeChunkValue(ChunkType::kGroup, p2);

  std::vector<ChunkInput> inputs = {{1, Slice(v1)}, {2, Slice(v2)}};
  std::vector<MergedChunk> out;
  ASSERT_TRUE(MergeWith(inputs, {0, 1000}, 256, &out).ok());
  uint64_t seq;
  uint32_t members;
  std::vector<GroupRow> rows;
  ASSERT_TRUE(compress::DecodeGroupChunk(ChunkValuePayload(out[0].value),
                                         &seq, &members, &rows)
                  .ok());
  EXPECT_EQ(members, 3u);
  ASSERT_EQ(rows.size(), 2u);
  // The old row is padded with NULLs for the new members (§3.3).
  EXPECT_FALSE(rows[0].values[1].has_value());
  EXPECT_FALSE(rows[0].values[2].has_value());
}

TEST(MergeChunks, MixedTypesRejected) {
  const std::string series = SeriesValue(1, {{100, 1.0}});
  std::vector<GroupRow> rows(1);
  rows[0] = {100, {1.0}};
  std::string gp;
  compress::EncodeGroupChunk(1, 1, rows, &gp);
  const std::string group = MakeChunkValue(ChunkType::kGroup, gp);
  std::vector<ChunkInput> inputs = {{1, Slice(series)}, {2, Slice(group)}};
  std::vector<MergedChunk> out;
  EXPECT_TRUE(MergeWith(inputs, {0, 1000}, 256, &out).IsCorruption());
}

TEST(MergeChunks, ExtendsBoundariesToCoverOutOfRangeRows) {
  // Rows both before the first boundary and past the last: the merge must
  // grow the boundary list by whole steps (never clamp rows into an edge
  // interval) and still split output chunks at every boundary.
  const std::string v =
      SeriesValue(7, {{-150, 1.0}, {50, 2.0}, {250, 3.0}});
  std::vector<ChunkInput> inputs = {{7, Slice(v)}};
  std::vector<int64_t> boundaries = {0, 100};
  std::vector<MergedChunk> out;
  ASSERT_TRUE(MergeChunks(inputs, &boundaries, 256, &out).ok());
  EXPECT_EQ(boundaries, (std::vector<int64_t>{-200, -100, 0, 100, 200, 300}));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].start_ts, -150);
  EXPECT_EQ(out[1].start_ts, 50);
  EXPECT_EQ(out[2].start_ts, 250);
  for (const MergedChunk& c : out) EXPECT_EQ(c.max_seq, 7u);
}

TEST(MergeChunks, EmptyInput) {
  std::vector<MergedChunk> out;
  ASSERT_TRUE(MergeWith({}, {0, 1000}, 256, &out).ok());
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace tu::lsm
