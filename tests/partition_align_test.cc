// Tests for the Fig. 12 partition split/align policy and the manifest
// recovery of the time-partitioned tree.
#include <gtest/gtest.h>

#include <map>

#include "compress/chunk.h"
#include "lsm/key_format.h"
#include "lsm/time_lsm.h"
#include "util/mmap_file.h"

namespace tu::lsm {
namespace {

constexpr int64_t kMin = 60 * 1000;
constexpr int64_t kHour = 60 * kMin;

std::string OneSampleChunk(uint64_t seq, int64_t ts, double v) {
  std::string payload;
  compress::EncodeSeriesChunk(seq, {compress::Sample{ts, v}}, &payload);
  return MakeChunkValue(ChunkType::kSeries, payload);
}

class PartitionAlignTest : public ::testing::Test {
 protected:
  void SetUp() override { Recreate(false); }

  void Recreate(bool persist_manifest, bool wipe = true) {
    lsm_.reset();
    env_.reset();
    ws_ = "/tmp/timeunion_test/align";
    if (wipe) RemoveDirRecursive(ws_);
    env_ = std::make_unique<cloud::TieredEnv>(ws_,
                                              cloud::TieredEnvOptions::Instant());
    cache_ = std::make_unique<BlockCache>(8 << 20);
    TimeLsmOptions opts;
    opts.memtable_bytes = 16 << 10;
    opts.persist_manifest = persist_manifest;
    lsm_ = std::make_unique<TimePartitionedLsm>(env_.get(), "db", opts,
                                                cache_.get());
    ASSERT_TRUE(lsm_->Open().ok());
  }

  void TearDown() override {
    lsm_.reset();
    env_.reset();
    RemoveDirRecursive(ws_);
  }

  std::map<int64_t, double> Query(uint64_t id, int64_t t0, int64_t t1) {
    std::unique_ptr<Iterator> it;
    EXPECT_TRUE(lsm_->NewIteratorForId(id, t0, t1, &it).ok());
    std::map<int64_t, std::pair<uint64_t, double>> best;
    for (it->Seek(MakeChunkKey(id, INT64_MIN)); it->Valid(); it->Next()) {
      const Slice user_key = InternalKeyUserKey(it->key());
      if (ChunkKeyId(user_key) != id) break;
      uint64_t seq;
      std::vector<compress::Sample> samples;
      EXPECT_TRUE(compress::DecodeSeriesChunk(ChunkValuePayload(it->value()),
                                              &seq, &samples)
                      .ok());
      for (const auto& s : samples) {
        if (s.timestamp < t0 || s.timestamp > t1) continue;
        auto f = best.find(s.timestamp);
        if (f == best.end() || seq >= f->second.first) {
          best[s.timestamp] = {seq, s.value};
        }
      }
    }
    std::map<int64_t, double> out;
    for (const auto& [ts, sv] : best) out[ts] = sv.second;
    return out;
  }

  std::string ws_;
  std::unique_ptr<cloud::TieredEnv> env_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<TimePartitionedLsm> lsm_;
};

TEST_F(PartitionAlignTest, L1PartitionsAlignedToPartitionGrid) {
  uint64_t seq = 0;
  for (int64_t ts = 0; ts < 4 * kHour; ts += kMin) {
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_TRUE(lsm_->Put(MakeChunkKey(id, ts),
                            OneSampleChunk(++seq, ts, 1.0))
                      .ok());
    }
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  // Everything queryable, partitions on the fast tier until window close.
  EXPECT_EQ(Query(2, 0, 4 * kHour).size(),
            static_cast<size_t>(4 * 60));
  EXPECT_GT(lsm_->NumL1Partitions() + lsm_->NumL2Partitions(), 0u);
}

TEST_F(PartitionAlignTest, StaleL0PartitionMergedWithOverlappingL1) {
  uint64_t seq = 0;
  // Build 3.5 hours: the [0,2h) window migrates to L2 and [2h,2.5h)
  // remains as an L1 partition.
  for (int64_t ts = 0; ts < 3 * kHour + 30 * kMin; ts += kMin) {
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(1, ts), OneSampleChunk(++seq, ts, 1.0)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  const size_t l1_before = lsm_->NumL1Partitions();
  ASSERT_GT(l1_before, 0u);

  // Stale data into the window now in L1: its L0 partition is out-of-order
  // and must sort-merge with the overlapping L1 partition (§3.3).
  const int64_t stale_start = 2 * kHour;
  for (int64_t ts = stale_start; ts < stale_start + 30 * kMin; ts += kMin) {
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(1, ts), OneSampleChunk(++seq, ts, 7.0)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());

  const auto samples = Query(1, stale_start, stale_start + 30 * kMin);
  for (int64_t ts = stale_start; ts < stale_start + 30 * kMin; ts += kMin) {
    EXPECT_EQ(samples.at(ts), 7.0) << ts;
  }
  // No patches: the merge happened entirely on the fast tier.
  EXPECT_EQ(lsm_->stats().patches_created.load(), 0u);
}

TEST_F(PartitionAlignTest, ManifestRecoveryRestoresTree) {
  Recreate(/*persist_manifest=*/true);
  uint64_t seq = 0;
  for (int64_t ts = 0; ts < 10 * kHour; ts += kMin) {
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(1, ts), OneSampleChunk(++seq, ts, 2.0)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  const size_t l2 = lsm_->NumL2Partitions();
  const auto before = Query(1, 0, 10 * kHour);
  ASSERT_GT(l2, 0u);

  // Reopen over the same files: manifest restores levels and counters.
  Recreate(/*persist_manifest=*/true, /*wipe=*/false);
  EXPECT_EQ(lsm_->NumL2Partitions(), l2);
  EXPECT_EQ(Query(1, 0, 10 * kHour), before);

  // The tree stays writable with correct table-id continuation.
  for (int64_t ts = 10 * kHour; ts < 11 * kHour; ts += kMin) {
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(1, ts), OneSampleChunk(++seq, ts, 3.0)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  EXPECT_EQ(Query(1, 10 * kHour, 11 * kHour).size(), 60u);
}

TEST_F(PartitionAlignTest, PatchesRoutedByIdRange) {
  uint64_t seq = 0;
  // Many series so L2 partitions hold multiple tables with distinct ID
  // ranges (patch routing, Fig. 11).
  TimeLsmOptions opts;
  for (int64_t ts = 0; ts < 10 * kHour; ts += 2 * kMin) {
    for (uint64_t id = 0; id < 32; ++id) {
      ASSERT_TRUE(lsm_->Put(MakeChunkKey(id, ts),
                            OneSampleChunk(++seq, ts, 1.0))
                      .ok());
    }
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  ASSERT_GT(lsm_->NumL2Partitions(), 0u);

  // Stale writes for two distant IDs.
  for (int64_t ts = 0; ts < kHour; ts += 4 * kMin) {
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(3, ts), OneSampleChunk(++seq, ts, 8.0)).ok());
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(30, ts), OneSampleChunk(++seq, ts, 9.0)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  EXPECT_GT(lsm_->stats().patches_created.load(), 0u);

  EXPECT_EQ(Query(3, 0, kHour).at(0), 8.0);
  EXPECT_EQ(Query(30, 0, kHour).at(0), 9.0);
  EXPECT_EQ(Query(5, 0, kHour).at(0), 1.0);  // untouched series unaffected
}

}  // namespace
}  // namespace tu::lsm
