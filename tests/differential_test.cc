// Differential tests: the full TimeUnion engine against a trivial
// in-memory reference model, under randomized workload programs that mix
// every API — series/group inserts, fast paths, out-of-order writes,
// duplicate overwrites, flushes, reopen-with-WAL — then verify every
// series via both Query and QueryIterators.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "core/timeunion_db.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace tu::core {
namespace {

using index::Labels;
using index::TagMatcher;

constexpr int64_t kMin = 60 * 1000;

/// The reference model: per series key, newest-write-wins sample map.
struct Reference {
  std::map<std::string, std::map<int64_t, double>> series;  // by labels key
  std::map<std::string, Labels> labels;

  void Write(const Labels& sorted, int64_t ts, double v) {
    const std::string key = index::LabelsKey(sorted);
    series[key][ts] = v;
    labels[key] = sorted;
  }
};

class DifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    ws_ = "/tmp/timeunion_test/diff_" + std::to_string(GetParam());
    RemoveDirRecursive(ws_);
  }
  void TearDown() override { RemoveDirRecursive(ws_); }

  static Labels SeriesLabels(int family, int member) {
    return Labels{{"family", "f" + std::to_string(family)},
                  {"member", "m" + std::to_string(member)}};
  }

  void VerifyAll(TimeUnionDB* db, const Reference& ref, int64_t t1) {
    for (const auto& [key, samples] : ref.series) {
      const Labels& labels = ref.labels.at(key);
      std::vector<TagMatcher> matchers;
      for (const auto& l : labels) {
        matchers.push_back(TagMatcher::Equal(l.name, l.value));
      }
      QueryResult result;
      ASSERT_TRUE(db->Query(matchers, 0, t1, &result).ok()) << key;
      ASSERT_EQ(result.size(), 1u) << key;
      std::map<int64_t, double> got;
      for (const auto& s : result[0].samples) got[s.timestamp] = s.value;
      ASSERT_EQ(got, samples) << key;

      // Streaming path must agree with the materialized path.
      std::vector<TimeUnionDB::SeriesIterResult> streaming;
      ASSERT_TRUE(db->QueryIterators(matchers, 0, t1, &streaming).ok());
      ASSERT_EQ(streaming.size(), 1u) << key;
      std::map<int64_t, double> drained;
      auto* it = streaming[0].iter.get();
      while (it->Valid()) {
        drained[it->value().timestamp] = it->value().value;
        it->Next();
      }
      ASSERT_TRUE(it->status().ok());
      ASSERT_EQ(drained, samples) << key << " (streaming)";
    }
  }

  std::string ws_;
};

TEST_P(DifferentialTest, MixedSeriesWorkload) {
  Random rng(GetParam() * 7919 + 13);
  DBOptions opts;
  opts.workspace = ws_;
  opts.lsm.memtable_bytes = 24 << 10;
  opts.enable_wal = (GetParam() % 2 == 0);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  Reference ref;
  std::map<std::string, uint64_t> refs;
  int64_t clock = 0;

  for (int op = 0; op < 4000; ++op) {
    const int family = static_cast<int>(rng.Uniform(3));
    const int member = static_cast<int>(rng.Uniform(4));
    Labels labels = SeriesLabels(family, member);
    index::SortLabels(&labels);
    const std::string key = index::LabelsKey(labels);

    // Mostly advancing time, some out-of-order, some exact duplicates.
    int64_t ts;
    const uint64_t mode = rng.Uniform(10);
    if (mode < 7 || clock == 0) {
      clock += rng.Uniform(3) * kMin;
      ts = clock;
    } else if (mode < 9) {
      ts = static_cast<int64_t>(rng.Uniform(clock / kMin + 1)) * kMin;
    } else {
      ts = clock;  // duplicate of the newest timestamp
    }
    const double v = rng.NextGaussian(100, 20);

    auto it = refs.find(key);
    if (it == refs.end() || rng.OneIn(20)) {
      uint64_t r = 0;
      ASSERT_TRUE(db->Insert(labels, ts, v, &r).ok());
      refs[key] = r;
    } else {
      ASSERT_TRUE(db->InsertFast(it->second, ts, v).ok());
    }
    ref.Write(labels, ts, v);

    if (rng.OneIn(500)) ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  VerifyAll(db.get(), ref, clock + kMin);

  if (opts.enable_wal) {
    // Crash-reopen over the same workspace; everything must survive.
    db.reset();
    ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());
    VerifyAll(db.get(), ref, clock + kMin);
  }
}

TEST_P(DifferentialTest, MixedGroupWorkload) {
  Random rng(GetParam() * 104729 + 7);
  DBOptions opts;
  opts.workspace = ws_;
  opts.lsm.memtable_bytes = 24 << 10;
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  const int kGroups = 2;
  const int kMaxMembers = 5;
  Reference ref;
  std::vector<uint64_t> grefs(kGroups, 0);
  std::vector<std::vector<uint32_t>> slots(kGroups);
  std::vector<int> member_count(kGroups, 2);
  int64_t clock = 0;

  auto group_tags = [](int g) {
    return Labels{{"host", "g" + std::to_string(g)}};
  };
  auto member_tags = [](int m) {
    return Labels{{"metric", "x" + std::to_string(m)}};
  };
  auto full_labels = [&](int g, int m) {
    Labels full = group_tags(g);
    const Labels mt = member_tags(m);
    full.insert(full.end(), mt.begin(), mt.end());
    index::SortLabels(&full);
    return full;
  };

  for (int op = 0; op < 1500; ++op) {
    const int g = static_cast<int>(rng.Uniform(kGroups));
    // Occasionally a new member joins the group (§3.1 case 2).
    if (member_count[g] < kMaxMembers && rng.OneIn(100)) ++member_count[g];
    // A random subset of members reports this round (§3.1 case 3).
    std::vector<Labels> present_tags;
    std::vector<double> values;
    std::vector<int> present;
    for (int m = 0; m < member_count[g]; ++m) {
      if (rng.OneIn(4)) continue;  // member missing this round
      present.push_back(m);
      present_tags.push_back(member_tags(m));
      values.push_back(rng.NextGaussian(50, 5));
    }
    if (present.empty()) continue;

    int64_t ts;
    if (rng.Uniform(10) < 8 || clock == 0) {
      clock += rng.Uniform(3) * kMin;
      ts = clock;
    } else {
      ts = static_cast<int64_t>(rng.Uniform(clock / kMin + 1)) * kMin;
    }

    std::vector<uint32_t> row_slots;
    ASSERT_TRUE(db->InsertGroup(group_tags(g), present_tags, ts, values,
                                &grefs[g], &row_slots)
                    .ok());
    for (size_t i = 0; i < present.size(); ++i) {
      ref.Write(full_labels(g, present[i]), ts, values[i]);
    }
    if (rng.OneIn(400)) ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  VerifyAll(db.get(), ref, clock + kMin);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace tu::core
