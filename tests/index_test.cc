#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "index/labels.h"
#include "index/postings.h"
#include "index/tag_store.h"
#include "util/mmap_file.h"

namespace tu::index {
namespace {

TEST(PostingsTest, InsertSortedDedup) {
  Postings p;
  PostingsInsert(&p, 5);
  PostingsInsert(&p, 1);
  PostingsInsert(&p, 9);
  PostingsInsert(&p, 5);  // duplicate
  EXPECT_EQ(p, (Postings{1, 5, 9}));
  PostingsRemove(&p, 5);
  EXPECT_EQ(p, (Postings{1, 9}));
  PostingsRemove(&p, 42);  // absent: no-op
  EXPECT_EQ(p.size(), 2u);
}

TEST(PostingsTest, SetOperations) {
  const Postings a = {1, 3, 5, 7};
  const Postings b = {3, 4, 5, 6};
  EXPECT_EQ(PostingsIntersect(a, b), (Postings{3, 5}));
  EXPECT_EQ(PostingsUnion(a, b), (Postings{1, 3, 4, 5, 6, 7}));
  EXPECT_TRUE(PostingsIntersect(a, {}).empty());
  const Postings c = {5, 100};
  EXPECT_EQ(PostingsIntersectAll({&a, &b, &c}), (Postings{5}));
  EXPECT_TRUE(PostingsIntersectAll({}).empty());
}

TEST(LabelsTest, KeyAndGroupExtraction) {
  Labels labels = {{"metric", "cpu"}, {"hostname", "h1"}, {"core", "0"}};
  SortLabels(&labels);
  EXPECT_EQ(labels[0].name, "core");
  EXPECT_EQ(LabelsKey(labels), "core$0,hostname$h1,metric$cpu");

  Labels group_tags, unique_tags;
  EXPECT_TRUE(ExtractGroupTags(labels, {"hostname"}, &group_tags,
                               &unique_tags));
  ASSERT_EQ(group_tags.size(), 1u);
  EXPECT_EQ(group_tags[0].value, "h1");
  EXPECT_EQ(unique_tags.size(), 2u);
  // Missing group tag.
  EXPECT_FALSE(ExtractGroupTags(labels, {"rack"}, &group_tags, &unique_tags));
}

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = "/tmp/timeunion_test/invidx";
    RemoveDirRecursive(ws_);
    TrieOptions opts;
    opts.slots_per_file = 1 << 14;
    index_ = std::make_unique<InvertedIndex>(ws_, "idx", opts);
    ASSERT_TRUE(index_->Init().ok());
  }
  void TearDown() override {
    index_.reset();
    RemoveDirRecursive(ws_);
  }
  std::string ws_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(InvertedIndexTest, SelectIntersection) {
  ASSERT_TRUE(index_->Add(1, {{"metric", "cpu"}, {"host", "a"}}).ok());
  ASSERT_TRUE(index_->Add(2, {{"metric", "cpu"}, {"host", "b"}}).ok());
  ASSERT_TRUE(index_->Add(3, {{"metric", "mem"}, {"host", "a"}}).ok());

  Postings out;
  ASSERT_TRUE(index_->Select({TagMatcher::Equal("metric", "cpu")}, &out).ok());
  EXPECT_EQ(out, (Postings{1, 2}));
  ASSERT_TRUE(index_
                  ->Select({TagMatcher::Equal("metric", "cpu"),
                            TagMatcher::Equal("host", "a")},
                           &out)
                  .ok());
  EXPECT_EQ(out, (Postings{1}));
  ASSERT_TRUE(
      index_->Select({TagMatcher::Equal("metric", "disk")}, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(index_->Select({}, &out).ok());
  EXPECT_TRUE(out.empty());  // empty matcher set selects nothing
}

TEST_F(InvertedIndexTest, RegexSelect) {
  ASSERT_TRUE(index_->Add(1, {{"metric", "disk_read"}}).ok());
  ASSERT_TRUE(index_->Add(2, {{"metric", "disk_write"}}).ok());
  ASSERT_TRUE(index_->Add(3, {{"metric", "cpu"}}).ok());

  Postings out;
  ASSERT_TRUE(index_->Select({TagMatcher::Regex("metric", "disk.*")}, &out)
                  .ok());
  EXPECT_EQ(out, (Postings{1, 2}));
  // Anchored semantics: must match the whole value.
  ASSERT_TRUE(index_->Select({TagMatcher::Regex("metric", "disk")}, &out)
                  .ok());
  EXPECT_TRUE(out.empty());
  // Invalid regex is an error, not a crash.
  EXPECT_FALSE(index_->Select({TagMatcher::Regex("metric", "[")}, &out).ok());
}

TEST_F(InvertedIndexTest, RemoveSupportsRetention) {
  const Labels labels = {{"metric", "cpu"}, {"host", "x"}};
  ASSERT_TRUE(index_->Add(9, labels).ok());
  Postings out;
  ASSERT_TRUE(index_->GetPostings("metric", "cpu", &out).ok());
  EXPECT_EQ(out, (Postings{9}));
  ASSERT_TRUE(index_->Remove(9, labels).ok());
  ASSERT_TRUE(index_->GetPostings("metric", "cpu", &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(InvertedIndexTest, SharedPostingsForGroups) {
  // Group semantics: many tag pairs map to ONE group id (§3.1).
  for (int member = 0; member < 50; ++member) {
    ASSERT_TRUE(
        index_->Add(7, {{"fieldname", "f" + std::to_string(member)}}).ok());
  }
  ASSERT_TRUE(index_->Add(7, {{"hostname", "h1"}}).ok());
  Postings out;
  ASSERT_TRUE(index_->GetPostings("hostname", "h1", &out).ok());
  EXPECT_EQ(out, (Postings{7}));
  ASSERT_TRUE(index_->GetPostings("fieldname", "f13", &out).ok());
  EXPECT_EQ(out, (Postings{7}));
  EXPECT_EQ(index_->NumTagPairs(), 51u);
}

TEST_F(InvertedIndexTest, MemoryUsageTracked) {
  const uint64_t before = index_->MemoryUsage();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        index_->Add(i, {{"tag", "value_" + std::to_string(i)}}).ok());
  }
  EXPECT_GT(index_->MemoryUsage(), before);
}

TEST(TagStoreTest, AppendReadRoundTrip) {
  const std::string ws = "/tmp/timeunion_test/tagstore";
  RemoveDirRecursive(ws);
  {
    TagStore store(ws, "tags", 1 << 12);  // small files force crossings
    std::vector<uint64_t> offsets;
    std::vector<Labels> expected;
    for (int i = 0; i < 200; ++i) {
      Labels labels = {{"hostname", "host_" + std::to_string(i)},
                       {"metric", std::string(i % 50, 'm')}};
      uint64_t offset = 0;
      ASSERT_TRUE(store.Append(labels, &offset).ok());
      offsets.push_back(offset);
      expected.push_back(labels);
    }
    for (int i = 0; i < 200; ++i) {
      Labels got;
      ASSERT_TRUE(store.Read(offsets[i], &got).ok());
      EXPECT_EQ(got, expected[i]) << i;
    }
    EXPECT_GT(store.BytesUsed(), 0u);
  }
  RemoveDirRecursive(ws);
}

}  // namespace
}  // namespace tu::index
