#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/bitmap.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/histogram.h"
#include "util/interval_set.h"
#include "util/lru_cache.h"
#include "util/memory_tracker.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tu {
namespace {

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("missing key");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
}

TEST(SliceTest, CompareAndPrefix) {
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("hello").starts_with("hel"));
  EXPECT_FALSE(Slice("he").starts_with("hel"));
  Slice s("abcdef");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
}

TEST(CodingTest, VarintRoundTrip) {
  const std::vector<uint64_t> values = {0,        1,        127,
                                        128,      300,      1ull << 32,
                                        UINT64_MAX};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), static_cast<size_t>(VarintLength(v)));
    Slice in(buf);
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, UINT64_MAX);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  uint64_t got = 0;
  EXPECT_FALSE(GetVarint64(&in, &got));
}

TEST(CodingTest, BigEndianIsSortable) {
  std::string a, b, c;
  PutBigEndian64(&a, 5);
  PutBigEndian64(&b, 255);
  PutBigEndian64(&c, 1ull << 40);
  EXPECT_LT(Slice(a).compare(b), 0);
  EXPECT_LT(Slice(b).compare(c), 0);
  EXPECT_EQ(DecodeBigEndian64(c.data()), 1ull << 40);
}

TEST(CodingTest, OrderedInt64HandlesNegatives) {
  std::string neg, zero, pos;
  PutOrderedInt64(&neg, -1000);
  PutOrderedInt64(&zero, 0);
  PutOrderedInt64(&pos, 1000);
  EXPECT_LT(Slice(neg).compare(zero), 0);
  EXPECT_LT(Slice(zero).compare(pos), 0);
  EXPECT_EQ(DecodeOrderedInt64(neg.data()), -1000);
  EXPECT_EQ(DecodeOrderedInt64(pos.data()), 1000);
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, "hello");
  PutLengthPrefixedSlice(&buf, "");
  PutLengthPrefixedSlice(&buf, "world");
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.ToString(), "world");
}

TEST(Crc32cTest, KnownProperties) {
  const uint32_t crc1 = crc32c::Value("hello", 5);
  const uint32_t crc2 = crc32c::Value("hello", 5);
  const uint32_t crc3 = crc32c::Value("hellp", 5);
  EXPECT_EQ(crc1, crc2);
  EXPECT_NE(crc1, crc3);
  // Extend must equal one-shot.
  uint32_t ext = crc32c::Value("he", 2);
  ext = crc32c::Extend(ext, "llo", 3);
  EXPECT_EQ(ext, crc1);
  // Mask is reversible and changes the value.
  EXPECT_NE(crc32c::Mask(crc1), crc1);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc1)), crc1);
}

// Pins the wire format of the slice-by-8 implementation to the standard
// CRC32C (Castagnoli) test vectors: any change to the tables or the word
// loop that alters produced checksums breaks these, so block trailers,
// whole-object CRCs and manifest/WAL checksums provably stay compatible.
TEST(Crc32cTest, StandardVectors) {
  // RFC 3720 B.4 / LevelDB crc32c_test vectors.
  EXPECT_EQ(crc32c::Value("", 0), 0x00000000u);
  EXPECT_EQ(crc32c::Value("a", 1), 0xc1d04330u);
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);

  char buf[32];
  std::memset(buf, 0, sizeof(buf));
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x8a9136aau);
  std::memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x62a8ab43u);
  for (size_t i = 0; i < sizeof(buf); ++i) buf[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x46dd794eu);
  for (size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<char>(31 - i);
  }
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x113fdb5cu);

  // An iSCSI read command PDU (RFC 3720 B.4 "Bytes 48 .. 79").
  unsigned char iscsi[48] = {
      0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  EXPECT_EQ(crc32c::Value(reinterpret_cast<const char*>(iscsi), sizeof(iscsi)),
            0xd9963a56u);
}

// The slice-by-8 word loop must agree with pure byte-at-a-time folding on
// every length and alignment, including the <8-byte tail and unaligned
// starting offsets.
TEST(Crc32cTest, ExtendMatchesBytewiseAtAllSplits) {
  std::string data;
  for (int i = 0; i < 257; ++i) data.push_back(static_cast<char>(i * 131 + 7));
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = crc32c::Value(data.data(), split);
    crc = crc32c::Extend(crc, data.data() + split, data.size() - split);
    ASSERT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(BitmapTest, SetClearFind) {
  Bitmap bm(100);
  EXPECT_EQ(bm.FirstClear(), 0u);
  for (size_t i = 0; i < 10; ++i) bm.Set(i);
  EXPECT_EQ(bm.FirstClear(), 10u);
  EXPECT_EQ(bm.CountSet(), 10u);
  bm.Clear(5);
  EXPECT_EQ(bm.FirstClear(), 5u);
  EXPECT_FALSE(bm.Test(5));
  EXPECT_TRUE(bm.Test(6));
  for (size_t i = 0; i < 100; ++i) bm.Set(i);
  EXPECT_EQ(bm.FirstClear(), 100u);  // full
  bm.ClearAll();
  EXPECT_EQ(bm.CountSet(), 0u);
}

TEST(ArenaTest, AllocationsDisjointAndAligned) {
  Arena arena;
  std::set<char*> seen;
  for (int i = 1; i < 300; ++i) {
    char* p = arena.AllocateAligned(i);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    memset(p, 0xab, i);  // must be writable
    EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(LRUCacheTest, EvictsLeastRecentlyUsed) {
  LRUCacheShard<int> cache(100);
  cache.Insert("a", std::make_shared<int>(1), 40);
  cache.Insert("b", std::make_shared<int>(2), 40);
  EXPECT_NE(cache.Lookup("a"), nullptr);  // touch a -> b becomes LRU
  cache.Insert("c", std::make_shared<int>(3), 40);
  EXPECT_EQ(cache.Lookup("b"), nullptr);  // evicted
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_LE(cache.usage(), 100u);
}

TEST(LRUCacheTest, ShardedCacheCounts) {
  LRUCache<int> cache(16 << 10);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("key" + std::to_string(i), std::make_shared<int>(i), 10);
  }
  int found = 0;
  for (int i = 0; i < 100; ++i) {
    if (cache.Lookup("key" + std::to_string(i))) ++found;
  }
  EXPECT_EQ(found, 100);
  EXPECT_GT(cache.hits(), 0u);
  cache.Erase("key5");
  EXPECT_EQ(cache.Lookup("key5"), nullptr);
}

TEST(MemoryTrackerTest, CategoriesIndependent) {
  MemoryTracker tracker;
  tracker.Add(MemCategory::kSamples, 100);
  tracker.Add(MemCategory::kCache, 50);
  tracker.Sub(MemCategory::kSamples, 30);
  EXPECT_EQ(tracker.Get(MemCategory::kSamples), 70);
  EXPECT_EQ(tracker.Get(MemCategory::kCache), 50);
  EXPECT_EQ(tracker.Total(), 120);
  tracker.Reset();
  EXPECT_EQ(tracker.Total(), 0);
}

TEST(HistogramTest, PercentilesAndMerge) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Average(), 50.5);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 100);
  EXPECT_NEAR(h.Percentile(50), 50.5, 1.0);
  EXPECT_NEAR(h.Percentile(99), 99, 1.5);

  Histogram other;
  other.Add(1000);
  h.Merge(other);
  EXPECT_EQ(h.Max(), 1000);
  EXPECT_EQ(h.count(), 101u);
}

TEST(ThreadPoolTest, RunsAllTasksAndWaitsIdle) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, ScheduleAfterShutdownIsDropped) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  // Work scheduled after shutdown must be silently dropped (no workers
  // remain to run it) — not crash or hang.
  pool.Schedule([&counter] { counter.fetch_add(100); });
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(RandomTest, DeterministicAndBounded) {
  Random a(42), b(42), c(43);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.Uniform(10), 10u);
    const double d = a.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  // Gaussian sanity: mean near target.
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += a.NextGaussian(5, 1);
  EXPECT_NEAR(sum / 10000, 5.0, 0.1);
}

TEST(IntervalSetTest, MergesOverlappingAndAdjacent) {
  std::vector<util::TimeInterval> iv = {
      {10, 20}, {15, 25}, {26, 30},  // overlap + adjacent (closed intervals)
      {50, 60}, {40, 45},            // out of order, disjoint
  };
  util::MergeIntervals(&iv);
  ASSERT_EQ(iv.size(), 3u);
  EXPECT_EQ(iv[0], util::TimeInterval(10, 30));
  EXPECT_EQ(iv[1], util::TimeInterval(40, 45));
  EXPECT_EQ(iv[2], util::TimeInterval(50, 60));
}

TEST(IntervalSetTest, DropsInvertedKeepsPointsHandlesExtremes) {
  std::vector<util::TimeInterval> iv = {
      {30, 10},                    // inverted: dropped
      {5, 5},                      // single point survives
      {INT64_MAX - 1, INT64_MAX},  // no +1 overflow on the adjacency test
      {INT64_MIN, INT64_MIN + 5},
  };
  util::MergeIntervals(&iv);
  ASSERT_EQ(iv.size(), 3u);
  EXPECT_EQ(iv[0].first, INT64_MIN);
  EXPECT_EQ(iv[1], util::TimeInterval(5, 5));
  EXPECT_EQ(iv[2].second, INT64_MAX);

  std::vector<util::TimeInterval> empty;
  util::MergeIntervals(&empty);
  EXPECT_TRUE(empty.empty());
}

TEST(IntervalSetTest, ContainmentProbesClosedBounds) {
  const std::vector<util::TimeInterval> iv = {{10, 20}, {40, 40}};
  EXPECT_TRUE(util::IntervalsContain(iv, 10));
  EXPECT_TRUE(util::IntervalsContain(iv, 20));
  EXPECT_TRUE(util::IntervalsContain(iv, 40));
  EXPECT_FALSE(util::IntervalsContain(iv, 9));
  EXPECT_FALSE(util::IntervalsContain(iv, 21));
  EXPECT_FALSE(util::IntervalsContain(iv, 39));
  EXPECT_FALSE(util::IntervalsContain({}, 0));
}

}  // namespace
}  // namespace tu
