// Fault-injection / crash-recovery suite (`ctest -L fault`):
//   - FaultInjector rule matching (Nth-op, probabilistic, prefix, torn).
//   - RunWithRetry backoff semantics and give-up accounting.
//   - End-to-end workload under a 10% transient slow-tier error rate:
//     insert -> flush -> compact -> query must complete via retries.
//   - Crash matrix: fork a child, arm one crash point (WAL append, L0
//     flush, L2 upload pre/post commit), let it _Exit mid-operation, then
//     reopen and verify every acknowledged sample survived and a second
//     reopen finds nothing left to quarantine or sweep.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "cloud/circuit_breaker.h"
#include "cloud/fault_injector.h"
#include "cloud/object_store.h"
#include "cloud/retry_policy.h"
#include "cloud/tiered_env.h"
#include "core/timeunion_db.h"
#include "util/interval_set.h"
#include "util/mmap_file.h"

namespace tu {
namespace {

using cloud::FaultInjector;
using cloud::FaultOp;
using cloud::FaultOpMask;
using cloud::FaultRule;

// -- Injector rule matching --------------------------------------------------

TEST(FaultInjectorTest, NthOpRuleFiresExactlyOnce) {
  FaultInjector fi;
  fi.AddRule(FaultRule::Permanent(FaultOpMask(FaultOp::kPut), 2));
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "a").ok());
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "b").IsIOError());
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "c").ok());
  EXPECT_EQ(fi.faults_injected(), 1u);
}

TEST(FaultInjectorTest, OpMaskAndPrefixFilterMatches) {
  FaultInjector fi;
  fi.AddRule(FaultRule::Permanent(FaultOpMask(FaultOp::kGet), 1, "lsm/"));
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "lsm/x").ok());  // wrong op kind
  EXPECT_TRUE(fi.Intercept(FaultOp::kGet, "wal/x").ok());  // wrong prefix
  EXPECT_TRUE(fi.Intercept(FaultOp::kGet, "lsm/x").IsIOError());
}

TEST(FaultInjectorTest, TransientIsRetryableAndBoundedByMaxFires) {
  FaultInjector fi;
  FaultRule rule = FaultRule::Transient(cloud::kAllFaultOps, 1.0);
  rule.max_fires = 2;
  fi.AddRule(rule);
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "k").IsBusy());
  EXPECT_TRUE(fi.Intercept(FaultOp::kSync, "k").IsBusy());
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "k").ok());  // budget exhausted
  EXPECT_EQ(fi.faults_injected(), 2u);
}

TEST(FaultInjectorTest, TornWriteReportsKeptPrefix) {
  FaultInjector fi;
  fi.AddRule(FaultRule::TornWrite(FaultOpMask(FaultOp::kAppend), 1, 0.5));
  size_t keep = 999;
  Status s = fi.InterceptWrite(FaultOp::kAppend, "WAL", 100, &keep);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(keep, 50u);
  keep = 999;
  EXPECT_TRUE(fi.InterceptWrite(FaultOp::kAppend, "WAL", 100, &keep).ok());
  EXPECT_EQ(keep, 0u);
}

TEST(FaultInjectorTest, TornPutThroughObjectStorePersistsPrefix) {
  const std::string ws = "/tmp/timeunion_test/fault_torn";
  RemoveDirRecursive(ws);
  auto fi = std::make_shared<FaultInjector>();
  fi->AddRule(FaultRule::TornWrite(FaultOpMask(FaultOp::kPut), 1, 0.25));
  cloud::TierSimOptions sim = cloud::TierSimOptions::Instant();
  sim.fault = fi;
  cloud::ObjectStore store(ws, sim);

  EXPECT_FALSE(store.PutObject("k", std::string(16, 'x')).ok());
  uint64_t size = 0;
  ASSERT_TRUE(store.ObjectSize("k", &size).ok());
  EXPECT_EQ(size, 4u);  // only the torn prefix landed
  EXPECT_EQ(store.counters().faults_injected.load(), 1u);

  // The next Put overwrites the torn object cleanly.
  ASSERT_TRUE(store.PutObject("k", std::string(16, 'x')).ok());
  ASSERT_TRUE(store.ObjectSize("k", &size).ok());
  EXPECT_EQ(size, 16u);
  RemoveDirRecursive(ws);
}

// -- RunWithRetry ------------------------------------------------------------

TEST(RetryPolicyTest, TransientErrorsRetriedUntilSuccess) {
  cloud::TierCounters counters;
  cloud::RetryPolicy policy;
  policy.real_sleep = false;
  int calls = 0;
  Status s = cloud::RunWithRetry(policy, &counters, "op", [&] {
    return ++calls < 3 ? Status::Busy("throttled") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(counters.retries.load(), 2u);
  EXPECT_EQ(counters.retry_give_ups.load(), 0u);
}

TEST(RetryPolicyTest, PermanentErrorsSurfaceImmediately) {
  cloud::TierCounters counters;
  cloud::RetryPolicy policy;
  policy.real_sleep = false;
  int calls = 0;
  Status s = cloud::RunWithRetry(policy, &counters, "op", [&] {
    ++calls;
    return Status::IOError("disk on fire");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(counters.retries.load(), 0u);
  EXPECT_EQ(counters.retry_give_ups.load(), 0u);
}

TEST(RetryPolicyTest, ExhaustedAttemptsCountAsGiveUp) {
  cloud::TierCounters counters;
  cloud::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.real_sleep = false;
  int calls = 0;
  Status s = cloud::RunWithRetry(policy, &counters, "upload 0001.sst", [&] {
    ++calls;
    return Status::Busy("throttled");
  });
  EXPECT_TRUE(s.IsIOError());  // give-up converts to a permanent failure
  EXPECT_NE(s.ToString().find("upload 0001.sst"), std::string::npos);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(counters.retries.load(), 2u);
  EXPECT_EQ(counters.retry_give_ups.load(), 1u);
}

// -- Circuit breaker state machine -------------------------------------------

cloud::CircuitBreakerOptions TestBreakerOptions(uint64_t* fake_now) {
  cloud::CircuitBreakerOptions o;
  o.enabled = true;
  o.window = 8;
  o.min_samples = 4;
  o.failure_rate_to_open = 0.5;
  o.consecutive_failures_to_open = 3;
  o.open_cooldown_us = 1000;
  o.half_open_max_probes = 2;
  o.half_open_successes_to_close = 2;
  o.now_us = [fake_now] { return *fake_now; };
  return o;
}

TEST(CircuitBreakerTest, DisabledBreakerAdmitsEverything) {
  uint64_t now = 0;
  cloud::CircuitBreakerOptions o = TestBreakerOptions(&now);
  o.enabled = false;
  cloud::CircuitBreaker breaker(o, nullptr);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(breaker.Admit().ok());
    breaker.OnResult(Status::IOError("down"));
  }
  EXPECT_EQ(breaker.state(), cloud::BreakerState::kClosed);
  EXPECT_EQ(breaker.rejections(), 0u);
}

TEST(CircuitBreakerTest, ConsecutiveFailuresTripAndCooldownProbesClose) {
  uint64_t now = 0;
  cloud::TierCounters counters;
  cloud::CircuitBreaker breaker(TestBreakerOptions(&now), &counters);

  // Three consecutive failures trip the fast condition.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.OnResult(Status::IOError("down"));
  }
  EXPECT_EQ(breaker.state(), cloud::BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);

  // While open (cooldown pending) every call is rejected instantly with
  // the non-retryable class, and the rejections mirror into the tier
  // counters.
  Status rejected = breaker.Admit();
  EXPECT_TRUE(rejected.IsUnavailable());
  EXPECT_GT(breaker.rejections(), 0u);
  EXPECT_EQ(counters.breaker_rejections.load(), breaker.rejections());
  EXPECT_EQ(counters.breaker_opens.load(), 1u);

  // Cooldown elapses -> half-open: at most two concurrent probes admitted.
  now += 1001;
  EXPECT_EQ(breaker.state(), cloud::BreakerState::kHalfOpen);
  ASSERT_TRUE(breaker.Admit().ok());
  ASSERT_TRUE(breaker.Admit().ok());
  EXPECT_TRUE(breaker.Admit().IsUnavailable());  // probe slots exhausted
  breaker.OnResult(Status::OK());
  breaker.OnResult(Status::OK());
  EXPECT_EQ(breaker.state(), cloud::BreakerState::kClosed);

  // Closed again: admissions flow freely.
  EXPECT_TRUE(breaker.Admit().ok());
  breaker.OnResult(Status::OK());
}

TEST(CircuitBreakerTest, FailureRateTripsAndProbeFailureReopens) {
  uint64_t now = 0;
  cloud::CircuitBreakerOptions o = TestBreakerOptions(&now);
  o.consecutive_failures_to_open = 100;  // isolate the rate condition
  cloud::CircuitBreaker breaker(o, nullptr);

  // Alternate success/failure: 50% failure rate over >= min_samples.
  for (int i = 0; i < 4 && breaker.state() == cloud::BreakerState::kClosed;
       ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.OnResult(Status::OK());
    if (breaker.Admit().ok()) breaker.OnResult(Status::Busy("throttle"));
  }
  EXPECT_EQ(breaker.state(), cloud::BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);

  // A failed half-open probe re-opens immediately and restarts cooldown.
  now += 1001;
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.OnResult(Status::IOError("still down"));
  EXPECT_EQ(breaker.state(), cloud::BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_TRUE(breaker.Admit().IsUnavailable());

  // NotFound is evidence of liveness, not failure: probes that hit missing
  // keys still close the breaker.
  now += 1001;
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.OnResult(Status::NotFound("no such key"));
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.OnResult(Status::NotFound("no such key"));
  EXPECT_EQ(breaker.state(), cloud::BreakerState::kClosed);
}

// -- Acceptance workload: 10% transient slow-tier faults ---------------------

TEST(FaultInjectionDbTest, TransientSlowTierFaultsAbsorbedByRetries) {
  const std::string ws = "/tmp/timeunion_test/fault_db";
  RemoveDirRecursive(ws);

  core::DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  // Every slow-tier Put/Get fails transiently 10% of the time.
  auto fi = std::make_shared<FaultInjector>(7);
  fi->AddRule(FaultRule::Transient(FaultOp::kPut | FaultOp::kGet, 0.10));
  opts.env_options.slow_sim.fault = fi;
  opts.env_options.slow_sim.retry.max_attempts = 6;
  opts.env_options.slow_sim.retry.real_sleep = false;
  // Tiny partitions so the workload exercises L2 uploads and reads.
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.l0_partition_trigger = 1;

  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  const int n = 2000;
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_GT(db->time_lsm()->NumL2Partitions(), 0u);

  core::QueryResult result;
  ASSERT_TRUE(db->Query({index::TagMatcher::Equal("metric", "cpu")}, 0,
                        n * 250LL, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), static_cast<size_t>(n));

  // The workload only completed because retries absorbed every fault.
  const cloud::TierCounters& slow = db->env().slow().counters();
  EXPECT_GT(slow.faults_injected.load(), 0u);
  EXPECT_GT(slow.retries.load(), 0u);
  EXPECT_EQ(slow.retry_give_ups.load(), 0u);
  const std::string report = db->env().CountersReport();
  EXPECT_NE(report.find("retries="), std::string::npos);
  EXPECT_NE(report.find("give_ups="), std::string::npos);

  db.reset();
  RemoveDirRecursive(ws);
}

// -- Degraded operation: full outage lifecycle -------------------------------

// Tiny-partition workload options shared by the control and outage DBs.
// The outage DB additionally gets the fault injector and a breaker driven
// by a fake clock (so "open" holds exactly until the test advances time).
core::DBOptions OutageWorkloadOptions(const std::string& ws) {
  core::DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.enable_wal = true;
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.l0_partition_trigger = 1;
  return opts;
}

void ArmOutageBreaker(core::DBOptions* opts,
                      std::shared_ptr<std::atomic<uint64_t>> clock) {
  opts->env_options.slow_sim.retry.max_attempts = 2;
  opts->env_options.slow_sim.retry.real_sleep = false;
  cloud::CircuitBreakerOptions& b = opts->env_options.slow_sim.breaker;
  b.enabled = true;
  b.window = 8;
  b.min_samples = 4;
  b.consecutive_failures_to_open = 3;
  b.open_cooldown_us = 1000;
  b.half_open_max_probes = 2;
  b.half_open_successes_to_close = 2;
  b.now_us = [clock] { return clock->load(); };
}

FaultRule TotalSlowTierOutage() {
  FaultRule rule;
  rule.ops = cloud::kAllFaultOps;
  rule.probability = 1.0;
  rule.kind = FaultRule::Kind::kPermanent;
  return rule;
}

// Failed writes trip the breaker implicitly; this makes it deterministic
// before a partial query depends on the open state.
void TripBreakerHard(core::TimeUnionDB* db) {
  cloud::ObjectStore& slow = db->env().slow();
  for (int i = 0; i < 20 && slow.breaker().state() != cloud::BreakerState::kOpen;
       ++i) {
    (void)slow.PutObject("breaker_probe", "x");
  }
  ASSERT_EQ(slow.breaker().state(), cloud::BreakerState::kOpen);
}

TEST(OutageLifecycleTest, IngestQueryDeferDrainAcrossSlowTierOutage) {
  const std::string ws = "/tmp/timeunion_test/outage_lifecycle";
  const std::string control_ws = ws + "_control";
  RemoveDirRecursive(ws);
  RemoveDirRecursive(control_ws);

  constexpr int kPreOutage = 1000;
  constexpr int kTotal = 2000;
  constexpr int64_t kStepMs = 250;
  const auto matcher = index::TagMatcher::Equal("metric", "cpu");

  // Control run: identical workload, healthy slow tier throughout.
  std::unique_ptr<core::TimeUnionDB> control;
  ASSERT_TRUE(
      core::TimeUnionDB::Open(OutageWorkloadOptions(control_ws), &control)
          .ok());

  auto fi = std::make_shared<FaultInjector>(11);
  auto clock = std::make_shared<std::atomic<uint64_t>>(0);
  core::DBOptions opts = OutageWorkloadOptions(ws);
  opts.env_options.slow_sim.fault = fi;
  ArmOutageBreaker(&opts, clock);
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  uint64_t ref = 0, control_ref = 0;
  auto ingest = [&](core::TimeUnionDB* target, uint64_t* r, int from,
                    int to) {
    for (int i = from; i < to; ++i) {
      Status s = (i == 0) ? target->Insert({{"metric", "cpu"}}, 0, 0.0, r)
                          : target->InsertFast(*r, i * kStepMs, 1.0 * i);
      ASSERT_TRUE(s.ok()) << "sample " << i << ": " << s.ToString();
    }
  };

  // Phase 1 (healthy): both DBs ingest and flush; data reaches L2.
  ingest(control.get(), &control_ref, 0, kPreOutage);
  ingest(db.get(), &ref, 0, kPreOutage);
  ASSERT_TRUE(control->Flush().ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumL2Partitions(), 0u);
  ASSERT_EQ(db->time_lsm()->NumDeferredTables(), 0u);

  // Phase 2: total slow-tier outage. Ingest must continue error-free;
  // L1->L2 compaction parks its outputs on the fast tier.
  fi->AddRule(TotalSlowTierOutage());
  TripBreakerHard(db.get());
  ingest(control.get(), &control_ref, kPreOutage, kTotal);
  ingest(db.get(), &ref, kPreOutage, kTotal);
  ASSERT_TRUE(control->Flush().ok());
  ASSERT_TRUE(db->Flush().ok());

  core::HealthReport health = db->HealthReport();
  EXPECT_EQ(health.slow_breaker, cloud::BreakerState::kOpen);
  EXPECT_GT(health.breaker_opens, 0u);
  EXPECT_GT(health.breaker_rejections, 0u);
  EXPECT_GT(health.deferred_tables, 0u);
  EXPECT_GT(health.deferred_bytes, 0u);
  EXPECT_TRUE(health.last_background_error.ok())
      << health.last_background_error.ToString();

  // Mid-outage query: answers from the fast tier, flags the L2 gap.
  core::QueryResult control_result;
  ASSERT_TRUE(
      control->Query({matcher}, 0, kTotal * kStepMs, &control_result).ok());
  ASSERT_EQ(control_result.size(), 1u);
  ASSERT_EQ(control_result[0].samples.size(), static_cast<size_t>(kTotal));

  auto check_partial = [&](core::TimeUnionDB* target) {
    core::QueryResult partial;
    ASSERT_TRUE(target->Query({matcher}, 0, kTotal * kStepMs, &partial).ok());
    EXPECT_FALSE(partial.complete);
    ASSERT_FALSE(partial.missing_ranges.empty());
    ASSERT_EQ(partial.size(), 1u);
    EXPECT_LT(partial[0].samples.size(), static_cast<size_t>(kTotal));
    // Returned samples match the control bit-for-bit; absent ones lie
    // inside the reported gaps.
    std::map<int64_t, double> got;
    for (const auto& s : partial[0].samples) got[s.timestamp] = s.value;
    for (const auto& s : control_result[0].samples) {
      auto it = got.find(s.timestamp);
      if (it != got.end()) {
        EXPECT_EQ(it->second, s.value) << "ts " << s.timestamp;
      } else {
        EXPECT_TRUE(
            util::IntervalsContain(partial.missing_ranges, s.timestamp))
            << "lost sample at ts " << s.timestamp
            << " not covered by missing_ranges";
      }
    }
    // The streaming path reports the same degradation.
    std::vector<core::TimeUnionDB::SeriesIterResult> iters;
    ASSERT_TRUE(
        target->QueryIterators({matcher}, 0, kTotal * kStepMs, &iters).ok());
    ASSERT_EQ(iters.size(), 1u);
    EXPECT_FALSE(iters[0].complete);
    EXPECT_FALSE(iters[0].missing_ranges.empty());
  };
  check_partial(db.get());

  // Phase 3: reopen mid-outage. The deferred queue is manifest-recorded,
  // and recovery must not quarantine slow-tier tables it merely cannot
  // verify while the tier is down.
  const size_t deferred_before = db->time_lsm()->NumDeferredTables();
  ASSERT_GT(deferred_before, 0u);
  db.reset();
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
  EXPECT_EQ(db->recovery_report().tables_quarantined, 0u);
  // Replay-triggered compactions may park additional tables, but nothing
  // deferred may be lost across the reopen.
  const size_t deferred_after_reopen = db->time_lsm()->NumDeferredTables();
  EXPECT_GE(deferred_after_reopen, deferred_before);
  TripBreakerHard(db.get());
  check_partial(db.get());

  // Phase 4: outage ends. The breaker's cooldown elapses, half-open
  // probes succeed, and the drainer uploads every parked table.
  fi->Clear();
  clock->fetch_add(10'000);
  size_t drained = 0;
  ASSERT_TRUE(db->time_lsm()->DrainDeferredUploads(&drained).ok());
  EXPECT_EQ(drained, deferred_after_reopen);
  EXPECT_EQ(db->time_lsm()->NumDeferredTables(), 0u);
  EXPECT_EQ(db->env().slow().breaker().state(), cloud::BreakerState::kClosed);
  health = db->HealthReport();
  EXPECT_EQ(health.deferred_tables, 0u);
  EXPECT_EQ(health.deferred_uploads_drained, deferred_after_reopen);

  // Post-outage query: complete again, identical to the no-fault control.
  core::QueryResult final_result;
  ASSERT_TRUE(
      db->Query({matcher}, 0, kTotal * kStepMs, &final_result).ok());
  EXPECT_TRUE(final_result.complete);
  EXPECT_TRUE(final_result.missing_ranges.empty());
  ASSERT_EQ(final_result.size(), 1u);
  ASSERT_EQ(final_result[0].samples.size(),
            control_result[0].samples.size());
  for (size_t i = 0; i < final_result[0].samples.size(); ++i) {
    EXPECT_EQ(final_result[0].samples[i].timestamp,
              control_result[0].samples[i].timestamp);
    EXPECT_EQ(final_result[0].samples[i].value,
              control_result[0].samples[i].value);
  }

  db.reset();
  control.reset();
  RemoveDirRecursive(ws);
  RemoveDirRecursive(control_ws);
}

// -- Degraded operation: teardown, sticky errors, admission ------------------

TEST(FaultInjectionDbTest, TeardownDuringOutageDoesNotWaitOutBackoffs) {
  const std::string ws = "/tmp/timeunion_test/fault_teardown";
  RemoveDirRecursive(ws);

  auto fi = std::make_shared<FaultInjector>(3);
  fi->AddRule(TotalSlowTierOutage());
  core::DBOptions opts = OutageWorkloadOptions(ws);
  opts.enable_wal = false;
  opts.env_options.slow_sim.fault = fi;
  // Real, slow backoffs with an unlimited budget: an uncancelled upload
  // would sleep for many seconds inside RunWithRetry. No breaker — this
  // exercises the retry cancellation path alone.
  opts.env_options.slow_sim.retry.max_attempts = 10;
  opts.env_options.slow_sim.retry.initial_backoff_us = 200'000;
  opts.env_options.slow_sim.retry.max_backoff_us = 2'000'000;
  opts.env_options.slow_sim.retry.total_budget_us = 0;
  opts.env_options.slow_sim.retry.real_sleep = true;
  opts.lsm.background_flush = true;

  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < 2000; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  // Wait until a background upload attempt has actually hit the outage
  // (so teardown races an in-flight retry loop, not an idle pool).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db->env().slow().counters().faults_injected.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(db->env().slow().counters().faults_injected.load(), 0u);

  const auto start = std::chrono::steady_clock::now();
  db.reset();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Cancellation slices sleeps at ~1ms; with an unlimited retry budget an
  // uncancelled backoff ladder would never finish at all, so any finite
  // bound proves cancellation — keep it well below a single full ladder
  // slipping through (~13s: 200ms doubling to a 2s cap over 10 attempts).
  // The slack above the uncontended teardown (~tens of ms) absorbs
  // wall-clock noise from parallel ctest runs on small hosts; sanitizer
  // instrumentation slows the clock severalfold, so scale further there.
  int64_t bound_ms = 5000;
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  bound_ms *= 10;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  bound_ms *= 10;
#endif
#endif
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            bound_ms);
  RemoveDirRecursive(ws);
}

TEST(FaultInjectionDbTest, BackgroundFlushErrorIsStickyAndObservable) {
  const std::string ws = "/tmp/timeunion_test/fault_bg_error";
  RemoveDirRecursive(ws);

  // Permanent faults on fast-tier LSM file appends: every background
  // memtable flush fails at the table write. (WAL off so the injector
  // only sees LSM files; BlockStore writes go through kAppend, not kPut.)
  auto fi = std::make_shared<FaultInjector>(5);
  FaultRule rule;
  rule.ops = FaultOpMask(FaultOp::kAppend);
  rule.key_prefix = "lsm/";
  rule.probability = 1.0;
  rule.kind = FaultRule::Kind::kPermanent;
  fi->AddRule(rule);

  core::DBOptions opts = OutageWorkloadOptions(ws);
  opts.enable_wal = false;
  opts.env_options.fast_sim.fault = fi;
  opts.lsm.background_flush = true;
  opts.lsm.memtable_bytes = 4 << 10;
  std::atomic<int> callbacks{0};
  opts.lsm.on_background_error = [&callbacks](lsm::BgWorkKind,
                                              const Status& s) {
    EXPECT_FALSE(s.ok());
    callbacks.fetch_add(1);
  };

  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref).ok());
  // 1 ms steps and a hard iteration cap keep the virtual time span (and
  // thus the partition/flush backlog teardown must chew through) small
  // even if the callback never fires and the test fails.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int i = 1;
  while (callbacks.load() == 0 && i < 100'000 &&
         std::chrono::steady_clock::now() < deadline) {
    Status s = db->InsertFast(ref, i, 1.0 * i);
    if (!s.ok()) {
      // The error handler may quiesce writes before this loop observes the
      // callback counter; that fail-fast IS the error surfacing.
      ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
      break;
    }
    ++i;
  }
  // The callback fires on the flush worker right after the handler trips
  // the write gate, so give it a moment when the gate won the race.
  while (callbacks.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(callbacks.load(), 0) << "background flush error never surfaced";

  // The same error is latched for polling callers and in HealthReport, and
  // the error handler classified it as soft (write-quiesce, auto-resume).
  EXPECT_FALSE(db->time_lsm()->last_background_error().ok());
  EXPECT_FALSE(db->HealthReport().last_background_error.ok());
  EXPECT_EQ(db->Health(), core::DbHealth::kDegradedWrites);
  EXPECT_FALSE(db->error_handler().LastError().ok());

  // Clear the injector and resume manually: retained memtables flush,
  // the latched error clears, and the write path reopens.
  fi->Clear();
  ASSERT_TRUE(db->Resume().ok());
  EXPECT_EQ(db->Health(), core::DbHealth::kHealthy);
  EXPECT_TRUE(db->time_lsm()->last_background_error().ok());
  EXPECT_TRUE(db->HealthReport().last_background_error.ok());
  ASSERT_TRUE(db->InsertFast(ref, 200'000, 1.0).ok());

  db.reset();
  RemoveDirRecursive(ws);
}

TEST(FaultInjectionDbTest, AdmissionControlDelaysThenRejectsWrites) {
  const std::string ws = "/tmp/timeunion_test/fault_admission";

  // Phase A: soft watermark only (hard unreachable) — writes are delayed
  // but all admitted.
  RemoveDirRecursive(ws);
  core::DBOptions opts = OutageWorkloadOptions(ws);
  opts.enable_wal = false;
  opts.lsm.fast_storage_limit_bytes = 1;  // any resident table exceeds it
  opts.admission.enabled = true;
  opts.admission.soft_watermark = 1.0;
  opts.admission.hard_watermark = 1e15;
  opts.admission.soft_delay_us = 0;  // count delays without slowing the test
  opts.admission.refresh_every_ops = 1;
  {
    std::unique_ptr<core::TimeUnionDB> db;
    ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
    uint64_t ref = 0;
    ASSERT_TRUE(db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref).ok());
    for (int i = 1; i < 200; ++i) {
      ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
    }
    ASSERT_TRUE(db->Flush().ok());  // something now lives on the fast tier
    for (int i = 200; i < 400; ++i) {
      ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
    }
    core::HealthReport health = db->HealthReport();
    EXPECT_GT(health.writers_delayed, 0u);
    EXPECT_EQ(health.writes_rejected, 0u);
    db.reset();
  }

  // Phase B: hard watermark at the soft level — the same pressure now
  // rejects with the dedicated status code. Writes are admitted until the
  // first flush parks a table on the fast tier (memtables also rotate at
  // partition boundaries on their own, so rejection can arrive before the
  // explicit Flush); after that the refreshed gauge trips the watermark.
  RemoveDirRecursive(ws);
  opts.admission.hard_watermark = 1.0;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref).ok());
  Status rejected;
  for (int i = 1; i < 400 && rejected.ok(); ++i) {
    Status s = db->InsertFast(ref, i * 250LL, 1.0 * i);
    if (s.IsResourceExhausted()) {
      rejected = s;
      break;
    }
    ASSERT_TRUE(s.ok()) << s.ToString();
    if (i == 100) {
      ASSERT_TRUE(db->Flush().ok());
    }
  }
  EXPECT_TRUE(rejected.IsResourceExhausted()) << rejected.ToString();
  EXPECT_GT(db->HealthReport().writes_rejected, 0u);

  db.reset();
  RemoveDirRecursive(ws);
}

// -- Crash matrix ------------------------------------------------------------

// One armed crash site per case; skip_hits lets a few hits commit first so
// the child dies mid-stream rather than on its very first operation.
struct CrashCase {
  const char* site;
  uint64_t skip_hits;
};

core::DBOptions CrashWorkloadOptions(const std::string& ws) {
  core::DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.enable_wal = true;
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.l0_partition_trigger = 1;
  return opts;
}

constexpr int kCrashSamples = 300;
constexpr int64_t kCrashIntervalMs = 250;

// Records "samples [0, n) are acknowledged" durably (write + rename so the
// parent never reads a half-written count).
void WriteAck(const std::string& ws, int n) {
  const std::string tmp = ws + "/ack.tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) std::_Exit(85);
  std::fprintf(f, "%d", n);
  std::fclose(f);
  if (std::rename(tmp.c_str(), (ws + "/ack").c_str()) != 0) std::_Exit(86);
}

int ReadAck(const std::string& ws) {
  std::ifstream in(ws + "/ack");
  int n = 0;
  in >> n;
  return n;
}

// Child body: insert+sync+ack until the armed crash point _Exits the
// process with kFaultCrashExitCode. Exit codes other than 43 mark distinct
// unexpected failures for the parent's diagnostics. Never returns.
[[noreturn]] void CrashChildWorkload(const std::string& ws,
                                     const CrashCase& c) {
  auto fi = std::make_shared<FaultInjector>();
  fi->ArmCrashPoint(c.site, c.skip_hits);
  core::DBOptions opts = CrashWorkloadOptions(ws);
  opts.env_options.fast_sim.fault = fi;
  opts.env_options.slow_sim.fault = fi;

  std::unique_ptr<core::TimeUnionDB> db;
  if (!core::TimeUnionDB::Open(opts, &db).ok()) std::_Exit(81);
  uint64_t ref = 0;
  for (int i = 0; i < kCrashSamples; ++i) {
    Status s = (i == 0)
                   ? db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref)
                   : db->InsertFast(ref, i * kCrashIntervalMs, 1.0 * i);
    if (!s.ok()) std::_Exit(82);
    if (!db->SyncWal().ok()) std::_Exit(83);
    WriteAck(ws, i + 1);  // sample i is now acknowledged
    if ((i + 1) % 16 == 0 && !db->Flush().ok()) std::_Exit(84);
  }
  std::_Exit(0);  // crash point never fired — the parent flags this
}

class CrashRecoveryTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashRecoveryTest, AcknowledgedSamplesSurviveCrash) {
  const CrashCase c = GetParam();
  std::string ws = "/tmp/timeunion_test/crash_";
  for (const char* p = c.site; *p != '\0'; ++p) {
    ws += (*p == '.') ? '_' : *p;
  }
  RemoveDirRecursive(ws);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) CrashChildWorkload(ws, c);  // never returns

  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << c.site;
  ASSERT_EQ(WEXITSTATUS(wstatus), cloud::kFaultCrashExitCode)
      << c.site << ": child exited " << WEXITSTATUS(wstatus)
      << " (0 = crash point never reached; 8x = workload error)";

  const int acked = ReadAck(ws);
  ASSERT_GT(acked, 0) << c.site;

  // First reopen: recovery may quarantine/sweep crash leftovers, then WAL
  // replay must restore every acknowledged sample.
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(CrashWorkloadOptions(ws), &db).ok())
      << c.site;

  core::QueryResult result;
  ASSERT_TRUE(db->Query({index::TagMatcher::Equal("metric", "cpu")}, 0,
                        kCrashSamples * kCrashIntervalMs, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u) << c.site;
  // No duplicated data: timestamps strictly ascending.
  for (size_t i = 1; i < result[0].samples.size(); ++i) {
    ASSERT_LT(result[0].samples[i - 1].timestamp,
              result[0].samples[i].timestamp)
        << c.site;
  }
  std::map<int64_t, double> samples;
  for (const auto& s : result[0].samples) samples[s.timestamp] = s.value;
  for (int i = 0; i < acked; ++i) {
    auto it = samples.find(i * kCrashIntervalMs);
    ASSERT_NE(it, samples.end())
        << c.site << ": acked sample " << i << "/" << acked << " lost";
    EXPECT_EQ(it->second, 1.0 * i) << c.site << ": sample " << i;
  }

  // Second reopen: the first recovery left nothing dangling behind.
  db.reset();
  ASSERT_TRUE(core::TimeUnionDB::Open(CrashWorkloadOptions(ws), &db).ok())
      << c.site;
  EXPECT_EQ(db->recovery_report().tables_quarantined, 0u) << c.site;
  EXPECT_EQ(db->recovery_report().orphans_swept, 0u) << c.site;

  db.reset();
  RemoveDirRecursive(ws);
}

INSTANTIATE_TEST_SUITE_P(
    CrashMatrix, CrashRecoveryTest,
    ::testing::Values(CrashCase{"wal.append", 25},
                      CrashCase{"l0.flush.pre_manifest", 0},
                      CrashCase{"l2.upload.pre_commit", 0},
                      CrashCase{"l2.upload.post_commit", 1}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      std::string name = info.param.site;
      for (char& ch : name) {
        if (ch == '.') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tu
