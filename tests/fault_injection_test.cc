// Fault-injection / crash-recovery suite (`ctest -L fault`):
//   - FaultInjector rule matching (Nth-op, probabilistic, prefix, torn).
//   - RunWithRetry backoff semantics and give-up accounting.
//   - End-to-end workload under a 10% transient slow-tier error rate:
//     insert -> flush -> compact -> query must complete via retries.
//   - Crash matrix: fork a child, arm one crash point (WAL append, L0
//     flush, L2 upload pre/post commit), let it _Exit mid-operation, then
//     reopen and verify every acknowledged sample survived and a second
//     reopen finds nothing left to quarantine or sweep.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "cloud/fault_injector.h"
#include "cloud/object_store.h"
#include "cloud/retry_policy.h"
#include "cloud/tiered_env.h"
#include "core/timeunion_db.h"
#include "util/mmap_file.h"

namespace tu {
namespace {

using cloud::FaultInjector;
using cloud::FaultOp;
using cloud::FaultOpMask;
using cloud::FaultRule;

// -- Injector rule matching --------------------------------------------------

TEST(FaultInjectorTest, NthOpRuleFiresExactlyOnce) {
  FaultInjector fi;
  fi.AddRule(FaultRule::Permanent(FaultOpMask(FaultOp::kPut), 2));
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "a").ok());
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "b").IsIOError());
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "c").ok());
  EXPECT_EQ(fi.faults_injected(), 1u);
}

TEST(FaultInjectorTest, OpMaskAndPrefixFilterMatches) {
  FaultInjector fi;
  fi.AddRule(FaultRule::Permanent(FaultOpMask(FaultOp::kGet), 1, "lsm/"));
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "lsm/x").ok());  // wrong op kind
  EXPECT_TRUE(fi.Intercept(FaultOp::kGet, "wal/x").ok());  // wrong prefix
  EXPECT_TRUE(fi.Intercept(FaultOp::kGet, "lsm/x").IsIOError());
}

TEST(FaultInjectorTest, TransientIsRetryableAndBoundedByMaxFires) {
  FaultInjector fi;
  FaultRule rule = FaultRule::Transient(cloud::kAllFaultOps, 1.0);
  rule.max_fires = 2;
  fi.AddRule(rule);
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "k").IsBusy());
  EXPECT_TRUE(fi.Intercept(FaultOp::kSync, "k").IsBusy());
  EXPECT_TRUE(fi.Intercept(FaultOp::kPut, "k").ok());  // budget exhausted
  EXPECT_EQ(fi.faults_injected(), 2u);
}

TEST(FaultInjectorTest, TornWriteReportsKeptPrefix) {
  FaultInjector fi;
  fi.AddRule(FaultRule::TornWrite(FaultOpMask(FaultOp::kAppend), 1, 0.5));
  size_t keep = 999;
  Status s = fi.InterceptWrite(FaultOp::kAppend, "WAL", 100, &keep);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(keep, 50u);
  keep = 999;
  EXPECT_TRUE(fi.InterceptWrite(FaultOp::kAppend, "WAL", 100, &keep).ok());
  EXPECT_EQ(keep, 0u);
}

TEST(FaultInjectorTest, TornPutThroughObjectStorePersistsPrefix) {
  const std::string ws = "/tmp/timeunion_test/fault_torn";
  RemoveDirRecursive(ws);
  auto fi = std::make_shared<FaultInjector>();
  fi->AddRule(FaultRule::TornWrite(FaultOpMask(FaultOp::kPut), 1, 0.25));
  cloud::TierSimOptions sim = cloud::TierSimOptions::Instant();
  sim.fault = fi;
  cloud::ObjectStore store(ws, sim);

  EXPECT_FALSE(store.PutObject("k", std::string(16, 'x')).ok());
  uint64_t size = 0;
  ASSERT_TRUE(store.ObjectSize("k", &size).ok());
  EXPECT_EQ(size, 4u);  // only the torn prefix landed
  EXPECT_EQ(store.counters().faults_injected.load(), 1u);

  // The next Put overwrites the torn object cleanly.
  ASSERT_TRUE(store.PutObject("k", std::string(16, 'x')).ok());
  ASSERT_TRUE(store.ObjectSize("k", &size).ok());
  EXPECT_EQ(size, 16u);
  RemoveDirRecursive(ws);
}

// -- RunWithRetry ------------------------------------------------------------

TEST(RetryPolicyTest, TransientErrorsRetriedUntilSuccess) {
  cloud::TierCounters counters;
  cloud::RetryPolicy policy;
  policy.real_sleep = false;
  int calls = 0;
  Status s = cloud::RunWithRetry(policy, &counters, "op", [&] {
    return ++calls < 3 ? Status::Busy("throttled") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(counters.retries.load(), 2u);
  EXPECT_EQ(counters.retry_give_ups.load(), 0u);
}

TEST(RetryPolicyTest, PermanentErrorsSurfaceImmediately) {
  cloud::TierCounters counters;
  cloud::RetryPolicy policy;
  policy.real_sleep = false;
  int calls = 0;
  Status s = cloud::RunWithRetry(policy, &counters, "op", [&] {
    ++calls;
    return Status::IOError("disk on fire");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(counters.retries.load(), 0u);
  EXPECT_EQ(counters.retry_give_ups.load(), 0u);
}

TEST(RetryPolicyTest, ExhaustedAttemptsCountAsGiveUp) {
  cloud::TierCounters counters;
  cloud::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.real_sleep = false;
  int calls = 0;
  Status s = cloud::RunWithRetry(policy, &counters, "upload 0001.sst", [&] {
    ++calls;
    return Status::Busy("throttled");
  });
  EXPECT_TRUE(s.IsIOError());  // give-up converts to a permanent failure
  EXPECT_NE(s.ToString().find("upload 0001.sst"), std::string::npos);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(counters.retries.load(), 2u);
  EXPECT_EQ(counters.retry_give_ups.load(), 1u);
}

// -- Acceptance workload: 10% transient slow-tier faults ---------------------

TEST(FaultInjectionDbTest, TransientSlowTierFaultsAbsorbedByRetries) {
  const std::string ws = "/tmp/timeunion_test/fault_db";
  RemoveDirRecursive(ws);

  core::DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  // Every slow-tier Put/Get fails transiently 10% of the time.
  auto fi = std::make_shared<FaultInjector>(7);
  fi->AddRule(FaultRule::Transient(FaultOp::kPut | FaultOp::kGet, 0.10));
  opts.env_options.slow_sim.fault = fi;
  opts.env_options.slow_sim.retry.max_attempts = 6;
  opts.env_options.slow_sim.retry.real_sleep = false;
  // Tiny partitions so the workload exercises L2 uploads and reads.
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.l0_partition_trigger = 1;

  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  const int n = 2000;
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_GT(db->time_lsm()->NumL2Partitions(), 0u);

  core::QueryResult result;
  ASSERT_TRUE(db->Query({index::TagMatcher::Equal("metric", "cpu")}, 0,
                        n * 250LL, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), static_cast<size_t>(n));

  // The workload only completed because retries absorbed every fault.
  const cloud::TierCounters& slow = db->env().slow().counters();
  EXPECT_GT(slow.faults_injected.load(), 0u);
  EXPECT_GT(slow.retries.load(), 0u);
  EXPECT_EQ(slow.retry_give_ups.load(), 0u);
  const std::string report = db->env().CountersReport();
  EXPECT_NE(report.find("retries="), std::string::npos);
  EXPECT_NE(report.find("give_ups="), std::string::npos);

  db.reset();
  RemoveDirRecursive(ws);
}

// -- Crash matrix ------------------------------------------------------------

// One armed crash site per case; skip_hits lets a few hits commit first so
// the child dies mid-stream rather than on its very first operation.
struct CrashCase {
  const char* site;
  uint64_t skip_hits;
};

core::DBOptions CrashWorkloadOptions(const std::string& ws) {
  core::DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.enable_wal = true;
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.l0_partition_trigger = 1;
  return opts;
}

constexpr int kCrashSamples = 300;
constexpr int64_t kCrashIntervalMs = 250;

// Records "samples [0, n) are acknowledged" durably (write + rename so the
// parent never reads a half-written count).
void WriteAck(const std::string& ws, int n) {
  const std::string tmp = ws + "/ack.tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) std::_Exit(85);
  std::fprintf(f, "%d", n);
  std::fclose(f);
  if (std::rename(tmp.c_str(), (ws + "/ack").c_str()) != 0) std::_Exit(86);
}

int ReadAck(const std::string& ws) {
  std::ifstream in(ws + "/ack");
  int n = 0;
  in >> n;
  return n;
}

// Child body: insert+sync+ack until the armed crash point _Exits the
// process with kFaultCrashExitCode. Exit codes other than 43 mark distinct
// unexpected failures for the parent's diagnostics. Never returns.
[[noreturn]] void CrashChildWorkload(const std::string& ws,
                                     const CrashCase& c) {
  auto fi = std::make_shared<FaultInjector>();
  fi->ArmCrashPoint(c.site, c.skip_hits);
  core::DBOptions opts = CrashWorkloadOptions(ws);
  opts.env_options.fast_sim.fault = fi;
  opts.env_options.slow_sim.fault = fi;

  std::unique_ptr<core::TimeUnionDB> db;
  if (!core::TimeUnionDB::Open(opts, &db).ok()) std::_Exit(81);
  uint64_t ref = 0;
  for (int i = 0; i < kCrashSamples; ++i) {
    Status s = (i == 0)
                   ? db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref)
                   : db->InsertFast(ref, i * kCrashIntervalMs, 1.0 * i);
    if (!s.ok()) std::_Exit(82);
    if (!db->SyncWal().ok()) std::_Exit(83);
    WriteAck(ws, i + 1);  // sample i is now acknowledged
    if ((i + 1) % 16 == 0 && !db->Flush().ok()) std::_Exit(84);
  }
  std::_Exit(0);  // crash point never fired — the parent flags this
}

class CrashRecoveryTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashRecoveryTest, AcknowledgedSamplesSurviveCrash) {
  const CrashCase c = GetParam();
  std::string ws = "/tmp/timeunion_test/crash_";
  for (const char* p = c.site; *p != '\0'; ++p) {
    ws += (*p == '.') ? '_' : *p;
  }
  RemoveDirRecursive(ws);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) CrashChildWorkload(ws, c);  // never returns

  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << c.site;
  ASSERT_EQ(WEXITSTATUS(wstatus), cloud::kFaultCrashExitCode)
      << c.site << ": child exited " << WEXITSTATUS(wstatus)
      << " (0 = crash point never reached; 8x = workload error)";

  const int acked = ReadAck(ws);
  ASSERT_GT(acked, 0) << c.site;

  // First reopen: recovery may quarantine/sweep crash leftovers, then WAL
  // replay must restore every acknowledged sample.
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(CrashWorkloadOptions(ws), &db).ok())
      << c.site;

  core::QueryResult result;
  ASSERT_TRUE(db->Query({index::TagMatcher::Equal("metric", "cpu")}, 0,
                        kCrashSamples * kCrashIntervalMs, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u) << c.site;
  // No duplicated data: timestamps strictly ascending.
  for (size_t i = 1; i < result[0].samples.size(); ++i) {
    ASSERT_LT(result[0].samples[i - 1].timestamp,
              result[0].samples[i].timestamp)
        << c.site;
  }
  std::map<int64_t, double> samples;
  for (const auto& s : result[0].samples) samples[s.timestamp] = s.value;
  for (int i = 0; i < acked; ++i) {
    auto it = samples.find(i * kCrashIntervalMs);
    ASSERT_NE(it, samples.end())
        << c.site << ": acked sample " << i << "/" << acked << " lost";
    EXPECT_EQ(it->second, 1.0 * i) << c.site << ": sample " << i;
  }

  // Second reopen: the first recovery left nothing dangling behind.
  db.reset();
  ASSERT_TRUE(core::TimeUnionDB::Open(CrashWorkloadOptions(ws), &db).ok())
      << c.site;
  EXPECT_EQ(db->recovery_report().tables_quarantined, 0u) << c.site;
  EXPECT_EQ(db->recovery_report().orphans_swept, 0u) << c.site;

  db.reset();
  RemoveDirRecursive(ws);
}

INSTANTIATE_TEST_SUITE_P(
    CrashMatrix, CrashRecoveryTest,
    ::testing::Values(CrashCase{"wal.append", 25},
                      CrashCase{"l0.flush.pre_manifest", 0},
                      CrashCase{"l2.upload.pre_commit", 0},
                      CrashCase{"l2.upload.post_commit", 1}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      std::string name = info.param.site;
      for (char& ch : name) {
        if (ch == '.') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tu
