#include "core/maintenance.h"

#include <gtest/gtest.h>

#include <atomic>

#include "core/timeunion_db.h"
#include "util/mmap_file.h"

namespace tu::core {
namespace {

using index::TagMatcher;

constexpr int64_t kHour = 3600LL * 1000;

TEST(MaintenanceWorkerTest, TicksPeriodically) {
  MaintenanceOptions opts;
  opts.interval_ms = 5;
  std::atomic<int> ticks{0};
  MaintenanceWorker worker(opts, [&](int64_t) { ++ticks; });
  worker.Start();
  while (ticks.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  worker.Stop();
  EXPECT_GE(ticks.load(), 3);
  const int after_stop = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ticks.load(), after_stop);  // no ticks after Stop
}

TEST(MaintenanceWorkerTest, WatermarkFromInjectedClock) {
  MaintenanceOptions opts;
  opts.interval_ms = 1000;
  opts.retention_ms = 100;
  opts.now = [] { return int64_t{5000}; };
  int64_t seen = 0;
  MaintenanceWorker worker(opts, [&](int64_t wm) { seen = wm; });
  worker.TickNow();
  EXPECT_EQ(seen, 4900);
  EXPECT_EQ(worker.ticks(), 1u);
}

TEST(MaintenanceWorkerTest, RetentionDisabledYieldsSentinel) {
  MaintenanceOptions opts;
  opts.retention_ms = 0;
  int64_t seen = 0;
  MaintenanceWorker worker(opts, [&](int64_t wm) { seen = wm; });
  worker.TickNow();
  EXPECT_EQ(seen, INT64_MIN);
}

TEST(MaintenanceWorkerTest, StopIdempotentAndRestartable) {
  MaintenanceOptions opts;
  opts.interval_ms = 5;
  std::atomic<int> ticks{0};
  MaintenanceWorker worker(opts, [&](int64_t) { ++ticks; });
  worker.Stop();  // never started: no-op
  worker.Start();
  worker.Start();  // double start: no-op
  while (ticks.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  worker.Stop();
  worker.Stop();
  worker.Start();  // restart works
  const int before = ticks.load();
  while (ticks.load() == before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  worker.Stop();
}

TEST(DbMaintenanceTest, BackgroundRetentionPurgesOldData) {
  DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/maint_db";
  RemoveDirRecursive(opts.workspace);
  opts.lsm.memtable_bytes = 32 << 10;
  opts.background_maintenance = true;
  opts.maintenance_interval_ms = 10;
  opts.retention_ms = 6 * kHour;
  // Virtual clock: held at 0 during ingest (watermark -6h purges nothing,
  // so a tick firing mid-loop can't retire the half-written series), then
  // advanced to hour 30 of the data's timeline.
  std::shared_ptr<std::atomic<int64_t>> now =
      std::make_shared<std::atomic<int64_t>>(0);
  opts.maintenance_clock = [now] { return now->load(); };

  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 1.0, &ref).ok());
  for (int i = 1; i < 28 * 60; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 60'000LL, 1.0).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  now->store(30 * kHour);

  // Wait for a few maintenance ticks to apply the retention watermark
  // (hour 24 = 30 - 6).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  QueryResult result;
  ASSERT_TRUE(
      db->Query({TagMatcher::Equal("m", "cpu")}, 0, 20 * kHour, &result).ok());
  EXPECT_TRUE(result.empty()) << "data older than the watermark must be gone";
  ASSERT_TRUE(db->Query({TagMatcher::Equal("m", "cpu")}, 26 * kHour,
                        28 * kHour, &result)
                  .ok());
  EXPECT_FALSE(result.empty()) << "recent data must survive";

  db.reset();
  RemoveDirRecursive(opts.workspace);
}

}  // namespace
}  // namespace tu::core
