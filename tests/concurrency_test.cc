// Concurrency and failure-injection tests: background flushing with
// concurrent readers (the pinned-iterator path), and corruption surfacing
// through the query path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "compress/chunk.h"
#include "core/timeunion_db.h"
#include "lsm/key_format.h"
#include "lsm/time_lsm.h"
#include "util/mmap_file.h"

namespace tu {
namespace {

constexpr int64_t kMin = 60 * 1000;

TEST(ConcurrencyTest, BackgroundFlushWithConcurrentQueries) {
  const std::string ws = "/tmp/timeunion_test/conc_lsm";
  RemoveDirRecursive(ws);
  cloud::TieredEnv env(ws, cloud::TieredEnvOptions::Instant());
  lsm::BlockCache cache(8 << 20);
  lsm::TimeLsmOptions opts;
  opts.memtable_bytes = 16 << 10;
  opts.background_flush = true;
  lsm::TimePartitionedLsm tree(&env, "db", opts, &cache);
  ASSERT_TRUE(tree.Open().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> query_errors{0};
  std::atomic<int64_t> watermark{0};

  // Reader thread: repeatedly scans series 1 while the writer churns
  // flushes and compactions underneath it.
  std::thread reader([&] {
    while (!stop.load()) {
      std::unique_ptr<lsm::Iterator> it;
      Status s = tree.NewIteratorForId(1, 0, watermark.load(), &it);
      if (!s.ok()) {
        ++query_errors;
        continue;
      }
      for (it->Seek(lsm::MakeChunkKey(1, 0)); it->Valid(); it->Next()) {
        const Slice user_key = lsm::InternalKeyUserKey(it->key());
        if (lsm::ChunkKeyId(user_key) != 1) break;
        uint64_t seq;
        std::vector<compress::Sample> samples;
        if (!compress::DecodeSeriesChunk(lsm::ChunkValuePayload(it->value()),
                                         &seq, &samples)
                 .ok()) {
          ++query_errors;
          break;
        }
      }
      if (!it->status().ok()) ++query_errors;
    }
  });

  uint64_t seq = 0;
  for (int64_t ts = 0; ts < 8LL * 3600 * 1000; ts += 30'000) {
    for (uint64_t id = 1; id <= 4; ++id) {
      std::string payload;
      compress::EncodeSeriesChunk(++seq, {compress::Sample{ts, 1.0}},
                                  &payload);
      ASSERT_TRUE(
          tree.Put(lsm::MakeChunkKey(id, ts),
                   lsm::MakeChunkValue(lsm::ChunkType::kSeries, payload))
              .ok());
    }
    watermark.store(ts);
  }
  ASSERT_TRUE(tree.FlushAll().ok());
  stop.store(true);
  reader.join();
  EXPECT_EQ(query_errors.load(), 0);

  // Everything inserted is present after the storm.
  std::unique_ptr<lsm::Iterator> it;
  ASSERT_TRUE(tree.NewIteratorForId(1, 0, 8LL * 3600 * 1000, &it).ok());
  size_t total = 0;
  for (it->Seek(lsm::MakeChunkKey(1, 0)); it->Valid(); it->Next()) {
    const Slice user_key = lsm::InternalKeyUserKey(it->key());
    if (lsm::ChunkKeyId(user_key) != 1) break;
    uint64_t s;
    std::vector<compress::Sample> samples;
    ASSERT_TRUE(compress::DecodeSeriesChunk(
                    lsm::ChunkValuePayload(it->value()), &s, &samples)
                    .ok());
    total += samples.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(8 * 120));
  RemoveDirRecursive(ws);
}

TEST(ConcurrencyTest, ParallelInsertersThroughDb) {
  core::DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/conc_db";
  RemoveDirRecursive(opts.workspace);
  opts.lsm.memtable_bytes = 32 << 10;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  // Register refs up front, then hammer from 4 threads on disjoint series.
  const int kThreads = 4;
  const int kSeriesPerThread = 8;
  const int kSamples = 500;
  std::vector<uint64_t> refs(kThreads * kSeriesPerThread);
  for (size_t i = 0; i < refs.size(); ++i) {
    ASSERT_TRUE(db->RegisterSeries({{"t", std::to_string(i)}}, &refs[i]).ok());
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSamples; ++i) {
        for (int s = 0; s < kSeriesPerThread; ++s) {
          if (!db->InsertFast(refs[t * kSeriesPerThread + s], i * kMin, t)
                   .ok()) {
            ++errors;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  ASSERT_TRUE(db->Flush().ok());

  for (size_t i = 0; i < refs.size(); ++i) {
    core::QueryResult result;
    ASSERT_TRUE(db->Query({index::TagMatcher::Equal("t", std::to_string(i))},
                          0, kSamples * kMin, &result)
                    .ok());
    ASSERT_EQ(result.size(), 1u) << i;
    EXPECT_EQ(result[0].samples.size(), static_cast<size_t>(kSamples)) << i;
  }
  RemoveDirRecursive(opts.workspace);
}

TEST(FailureInjectionTest, CorruptedSlowTierObjectSurfacesError) {
  const std::string ws = "/tmp/timeunion_test/conc_corrupt";
  RemoveDirRecursive(ws);
  cloud::TieredEnv env(ws, cloud::TieredEnvOptions::Instant());
  lsm::BlockCache cache(8 << 20);
  lsm::TimeLsmOptions opts;
  opts.memtable_bytes = 16 << 10;
  lsm::TimePartitionedLsm tree(&env, "db", opts, &cache);
  ASSERT_TRUE(tree.Open().ok());

  uint64_t seq = 0;
  for (int64_t ts = 0; ts < 12LL * 3600 * 1000; ts += kMin) {
    std::string payload;
    compress::EncodeSeriesChunk(++seq, {compress::Sample{ts, 1.0}}, &payload);
    ASSERT_TRUE(
        tree.Put(lsm::MakeChunkKey(1, ts),
                 lsm::MakeChunkValue(lsm::ChunkType::kSeries, payload))
            .ok());
  }
  ASSERT_TRUE(tree.FlushAll().ok());
  ASSERT_GT(tree.NumL2Partitions(), 0u);

  // Corrupt the middle of every slow-tier object.
  std::vector<std::string> keys;
  ASSERT_TRUE(env.slow().ListObjects("db/", &keys).ok());
  ASSERT_FALSE(keys.empty());
  for (const auto& key : keys) {
    std::string blob;
    ASSERT_TRUE(env.slow().GetObject(key, &blob).ok());
    blob[blob.size() / 2] ^= 0x77;
    ASSERT_TRUE(env.slow().PutObject(key, blob).ok());
  }

  // Reading old data must fail loudly (checksums), never silently return
  // wrong samples.
  std::unique_ptr<lsm::Iterator> it;
  Status s = tree.NewIteratorForId(1, 0, 2LL * 3600 * 1000, &it);
  bool saw_error = !s.ok();
  if (s.ok()) {
    for (it->Seek(lsm::MakeChunkKey(1, 0)); it->Valid(); it->Next()) {
    }
    saw_error = !it->status().ok();
  }
  EXPECT_TRUE(saw_error);
  RemoveDirRecursive(ws);
}

}  // namespace
}  // namespace tu
