// Concurrency and failure-injection tests: background flushing with
// concurrent readers (the pinned-iterator path), and corruption surfacing
// through the query path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cloud/fault_injector.h"
#include "compress/chunk.h"
#include "core/timeunion_db.h"
#include "lsm/key_format.h"
#include "lsm/time_lsm.h"
#include "util/mmap_file.h"

namespace tu {
namespace {

constexpr int64_t kMin = 60 * 1000;

TEST(ConcurrencyTest, BackgroundFlushWithConcurrentQueries) {
  const std::string ws = "/tmp/timeunion_test/conc_lsm";
  RemoveDirRecursive(ws);
  cloud::TieredEnv env(ws, cloud::TieredEnvOptions::Instant());
  lsm::BlockCache cache(8 << 20);
  lsm::TimeLsmOptions opts;
  opts.memtable_bytes = 16 << 10;
  opts.background_flush = true;
  lsm::TimePartitionedLsm tree(&env, "db", opts, &cache);
  ASSERT_TRUE(tree.Open().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> query_errors{0};
  std::atomic<int64_t> watermark{0};

  // Reader thread: repeatedly scans series 1 while the writer churns
  // flushes and compactions underneath it.
  std::thread reader([&] {
    while (!stop.load()) {
      std::unique_ptr<lsm::Iterator> it;
      Status s = tree.NewIteratorForId(1, 0, watermark.load(), &it);
      if (!s.ok()) {
        ++query_errors;
        continue;
      }
      for (it->Seek(lsm::MakeChunkKey(1, 0)); it->Valid(); it->Next()) {
        const Slice user_key = lsm::InternalKeyUserKey(it->key());
        if (lsm::ChunkKeyId(user_key) != 1) break;
        uint64_t seq;
        std::vector<compress::Sample> samples;
        if (!compress::DecodeSeriesChunk(lsm::ChunkValuePayload(it->value()),
                                         &seq, &samples)
                 .ok()) {
          ++query_errors;
          break;
        }
      }
      if (!it->status().ok()) ++query_errors;
    }
  });

  uint64_t seq = 0;
  for (int64_t ts = 0; ts < 8LL * 3600 * 1000; ts += 30'000) {
    for (uint64_t id = 1; id <= 4; ++id) {
      std::string payload;
      compress::EncodeSeriesChunk(++seq, {compress::Sample{ts, 1.0}},
                                  &payload);
      ASSERT_TRUE(
          tree.Put(lsm::MakeChunkKey(id, ts),
                   lsm::MakeChunkValue(lsm::ChunkType::kSeries, payload))
              .ok());
    }
    watermark.store(ts);
  }
  ASSERT_TRUE(tree.FlushAll().ok());
  stop.store(true);
  reader.join();
  EXPECT_EQ(query_errors.load(), 0);

  // Everything inserted is present after the storm.
  std::unique_ptr<lsm::Iterator> it;
  ASSERT_TRUE(tree.NewIteratorForId(1, 0, 8LL * 3600 * 1000, &it).ok());
  size_t total = 0;
  for (it->Seek(lsm::MakeChunkKey(1, 0)); it->Valid(); it->Next()) {
    const Slice user_key = lsm::InternalKeyUserKey(it->key());
    if (lsm::ChunkKeyId(user_key) != 1) break;
    uint64_t s;
    std::vector<compress::Sample> samples;
    ASSERT_TRUE(compress::DecodeSeriesChunk(
                    lsm::ChunkValuePayload(it->value()), &s, &samples)
                    .ok());
    total += samples.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(8 * 120));
  RemoveDirRecursive(ws);
}

TEST(ConcurrencyTest, ParallelInsertersThroughDb) {
  core::DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/conc_db";
  RemoveDirRecursive(opts.workspace);
  opts.lsm.memtable_bytes = 32 << 10;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  // Register refs up front, then hammer from 4 threads on disjoint series.
  const int kThreads = 4;
  const int kSeriesPerThread = 8;
  const int kSamples = 500;
  std::vector<uint64_t> refs(kThreads * kSeriesPerThread);
  for (size_t i = 0; i < refs.size(); ++i) {
    ASSERT_TRUE(db->RegisterSeries({{"t", std::to_string(i)}}, &refs[i]).ok());
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSamples; ++i) {
        for (int s = 0; s < kSeriesPerThread; ++s) {
          if (!db->InsertFast(refs[t * kSeriesPerThread + s], i * kMin, t)
                   .ok()) {
            ++errors;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  ASSERT_TRUE(db->Flush().ok());

  for (size_t i = 0; i < refs.size(); ++i) {
    core::QueryResult result;
    ASSERT_TRUE(db->Query({index::TagMatcher::Equal("t", std::to_string(i))},
                          0, kSamples * kMin, &result)
                    .ok());
    ASSERT_EQ(result.size(), 1u) << i;
    EXPECT_EQ(result[0].samples.size(), static_cast<size_t>(kSamples)) << i;
  }
  RemoveDirRecursive(opts.workspace);
}

// Checks one queried series: every expected timestamp present exactly once,
// in strictly ascending order.
void ExpectCompleteSeries(const core::QueryResult& result, size_t expected) {
  ASSERT_EQ(result.size(), 1u);
  ASSERT_EQ(result[0].samples.size(), expected);
  for (size_t i = 0; i < result[0].samples.size(); ++i) {
    ASSERT_EQ(result[0].samples[i].timestamp, static_cast<int64_t>(i) * kMin);
    if (i > 0) {
      ASSERT_GT(result[0].samples[i].timestamp,
                result[0].samples[i - 1].timestamp);
    }
  }
}

// K writer threads, each owning a disjoint set of series: the sharded fast
// path must lose no samples and keep per-series timestamps monotonic.
TEST(ConcurrencyTest, MultiWriterDisjointSeriesLosesNothing) {
  core::DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/conc_disjoint";
  RemoveDirRecursive(opts.workspace);
  opts.lsm.memtable_bytes = 32 << 10;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  const int kThreads = 8;
  const int kSeriesPerThread = 4;
  const int kSamples = 400;
  std::vector<uint64_t> refs(kThreads * kSeriesPerThread);
  for (size_t i = 0; i < refs.size(); ++i) {
    ASSERT_TRUE(
        db->RegisterSeries({{"d", std::to_string(i)}}, &refs[i]).ok());
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSamples; ++i) {
        for (int s = 0; s < kSeriesPerThread; ++s) {
          if (!db->InsertFast(refs[t * kSeriesPerThread + s], i * kMin, t)
                   .ok()) {
            ++errors;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  ASSERT_TRUE(db->Flush().ok());

  EXPECT_EQ(db->NumSeries(), refs.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    core::QueryResult result;
    ASSERT_TRUE(db->Query({index::TagMatcher::Equal("d", std::to_string(i))},
                          0, kSamples * kMin, &result)
                    .ok());
    ExpectCompleteSeries(result, kSamples);
  }
  RemoveDirRecursive(opts.workspace);
}

// All writers hammer the SAME series with interleaved timestamp ranges:
// the per-entry lock serializes them, and out-of-order samples (relative
// to whatever another thread just appended) take the too-old single-chunk
// path — either way nothing is lost.
TEST(ConcurrencyTest, MultiWriterSharedSeriesLosesNothing) {
  core::DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/conc_shared";
  RemoveDirRecursive(opts.workspace);
  opts.lsm.memtable_bytes = 32 << 10;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  const int kThreads = 4;
  const int kSamplesPerThread = 300;
  uint64_t ref = 0;
  ASSERT_TRUE(db->RegisterSeries({{"m", "shared"}}, &ref).ok());

  // Thread t owns timestamps t, t+K, t+2K, ... — all threads interleave
  // over one timeline, so appends constantly land out of order.
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSamplesPerThread; ++i) {
        const int64_t ts = (static_cast<int64_t>(i) * kThreads + t) * kMin;
        if (!db->InsertFast(ref, ts, 1.0).ok()) ++errors;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  ASSERT_TRUE(db->Flush().ok());

  core::QueryResult result;
  const int total = kThreads * kSamplesPerThread;
  ASSERT_TRUE(db->Query({index::TagMatcher::Equal("m", "shared")}, 0,
                        static_cast<int64_t>(total) * kMin, &result)
                  .ok());
  ExpectCompleteSeries(result, total);
  RemoveDirRecursive(opts.workspace);
}

// Readers + slow-path registrars at full tilt: Query and ListTagValues
// must never error or see a key→ref mapping without its entry while new
// series register concurrently.
TEST(ConcurrencyTest, QueriesDuringSlowPathRegistration) {
  core::DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/conc_register";
  RemoveDirRecursive(opts.workspace);
  opts.lsm.memtable_bytes = 32 << 10;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  const int kWriters = 4;
  const int kSeriesPerWriter = 200;
  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load()) {
      core::QueryResult result;
      if (!db->Query({index::TagMatcher::Equal("job", "ingest")}, 0,
                     1'000'000, &result)
               .ok()) {
        ++errors;
      }
      for (const auto& series : result) {
        if (series.samples.empty()) ++errors;
      }
      std::vector<std::string> values;
      if (!db->ListTagValues("s", &values).ok()) ++errors;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kSeriesPerWriter; ++i) {
        uint64_t ref = 0;
        const std::string name = std::to_string(t) + "_" + std::to_string(i);
        if (!db->Insert({{"job", "ingest"}, {"s", name}}, 60'000, 1.0, &ref)
                 .ok()) {
          ++errors;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(errors.load(), 0);

  EXPECT_EQ(db->NumSeries(),
            static_cast<uint64_t>(kWriters * kSeriesPerWriter));
  std::vector<std::string> values;
  ASSERT_TRUE(db->ListTagValues("s", &values).ok());
  EXPECT_EQ(values.size(), static_cast<size_t>(kWriters * kSeriesPerWriter));
  RemoveDirRecursive(opts.workspace);
}

// Writers + explicit Flush + retention ticks, all concurrent. Retention's
// watermark sits below every inserted timestamp, so no sample may vanish.
TEST(ConcurrencyTest, ConcurrentFlushAndRetentionTicks) {
  core::DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/conc_flush";
  RemoveDirRecursive(opts.workspace);
  opts.lsm.memtable_bytes = 32 << 10;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  const int kThreads = 4;
  const int kSeries = 8;
  const int kSamples = 300;
  std::vector<uint64_t> refs(kSeries);
  for (int i = 0; i < kSeries; ++i) {
    ASSERT_TRUE(db->RegisterSeries({{"f", std::to_string(i)}}, &refs[i]).ok());
  }

  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};
  std::thread maintainer([&] {
    while (!stop.load()) {
      if (!db->Flush().ok()) ++errors;
      // Watermark below all data: must retire nothing.
      if (!db->ApplyRetention(-1).ok()) ++errors;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Thread t writes series where s % kThreads == t (disjoint).
      for (int i = 0; i < kSamples; ++i) {
        for (int s = t; s < kSeries; s += kThreads) {
          if (!db->InsertFast(refs[s], i * kMin, t).ok()) ++errors;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  maintainer.join();
  EXPECT_EQ(errors.load(), 0);
  ASSERT_TRUE(db->Flush().ok());

  EXPECT_EQ(db->NumSeries(), static_cast<uint64_t>(kSeries));
  for (int i = 0; i < kSeries; ++i) {
    core::QueryResult result;
    ASSERT_TRUE(db->Query({index::TagMatcher::Equal("f", std::to_string(i))},
                          0, kSamples * kMin, &result)
                    .ok());
    ExpectCompleteSeries(result, kSamples);
  }
  RemoveDirRecursive(opts.workspace);
}

// Multi-writer with the WAL on: the serialized WAL append point must keep
// per-series (id, seq) consistent so a reopen replays to the same state.
TEST(ConcurrencyTest, MultiWriterWithWalSurvivesReopen) {
  core::DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/conc_wal";
  RemoveDirRecursive(opts.workspace);
  opts.lsm.memtable_bytes = 32 << 10;
  opts.enable_wal = true;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  const int kThreads = 4;
  const int kSeriesPerThread = 2;
  const int kSamples = 200;
  std::vector<uint64_t> refs(kThreads * kSeriesPerThread);
  for (size_t i = 0; i < refs.size(); ++i) {
    ASSERT_TRUE(db->RegisterSeries({{"w", std::to_string(i)}}, &refs[i]).ok());
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSamples; ++i) {
        for (int s = 0; s < kSeriesPerThread; ++s) {
          if (!db->InsertFast(refs[t * kSeriesPerThread + s], i * kMin, t)
                   .ok()) {
            ++errors;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  ASSERT_TRUE(db->SyncWal().ok());

  // Drop the DB without Flush: everything lives in WAL + whatever the
  // memtables spilled. Reopen must replay it all.
  db.reset();
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());
  EXPECT_TRUE(db->recovery_report().wal.Clean());
  for (size_t i = 0; i < refs.size(); ++i) {
    core::QueryResult result;
    ASSERT_TRUE(db->Query({index::TagMatcher::Equal("w", std::to_string(i))},
                          0, kSamples * kMin, &result)
                    .ok());
    ExpectCompleteSeries(result, kSamples);
  }
  db.reset();
  RemoveDirRecursive(opts.workspace);
}

// Parallel group fast-path ingest on disjoint groups.
TEST(ConcurrencyTest, MultiWriterGroupFastPath) {
  core::DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/conc_group";
  RemoveDirRecursive(opts.workspace);
  opts.lsm.memtable_bytes = 32 << 10;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  const int kThreads = 4;
  const int kMembers = 3;
  const int kRows = 300;
  std::vector<uint64_t> group_refs(kThreads);
  std::vector<std::vector<uint32_t>> slots(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    std::vector<index::Labels> members;
    std::vector<double> row;
    for (int m = 0; m < kMembers; ++m) {
      members.push_back({{"core", std::to_string(m)}});
      row.push_back(m);
    }
    ASSERT_TRUE(db->InsertGroup({{"host", std::to_string(t)}}, members, 0,
                                row, &group_refs[t], &slots[t])
                    .ok());
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<double> row(kMembers, t);
      for (int i = 1; i <= kRows; ++i) {
        if (!db->InsertGroupFast(group_refs[t], slots[t], i * kMin, row)
                 .ok()) {
          ++errors;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  ASSERT_TRUE(db->Flush().ok());

  for (int t = 0; t < kThreads; ++t) {
    core::QueryResult result;
    ASSERT_TRUE(
        db->Query({index::TagMatcher::Equal("host", std::to_string(t))}, 0,
                  (kRows + 1) * kMin, &result)
            .ok());
    ASSERT_EQ(result.size(), static_cast<size_t>(kMembers));
    for (const auto& series : result) {
      EXPECT_EQ(series.samples.size(), static_cast<size_t>(kRows + 1));
    }
  }
  RemoveDirRecursive(opts.workspace);
}

// Eight writers under a 10% transient slow-tier fault rate: every write
// must succeed (retries + deferred uploads absorb the churn) and the
// fault/retry/breaker/deferred counter families must stay mutually
// consistent despite concurrent updates. Runs under TSan via
// scripts/tsan.sh.
TEST(ConcurrencyTest, FaultCountersConsistentUnderConcurrentWriters) {
  core::DBOptions opts;
  opts.workspace = "/tmp/timeunion_test/conc_fault_counters";
  RemoveDirRecursive(opts.workspace);
  auto fi = std::make_shared<cloud::FaultInjector>(17);
  fi->AddRule(cloud::FaultRule::Transient(cloud::kAllFaultOps, 0.10));
  opts.env_options.slow_sim.fault = fi;
  opts.env_options.slow_sim.retry.max_attempts = 8;
  opts.env_options.slow_sim.retry.real_sleep = false;
  opts.env_options.slow_sim.breaker.enabled = true;
  // Tiny partitions so writers drive L2 uploads while the faults fire.
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.l0_partition_trigger = 1;

  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  const int kThreads = 8;
  const int kSamples = 400;
  std::vector<uint64_t> refs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(
        db->RegisterSeries({{"w", std::to_string(t)}}, &refs[t]).ok());
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSamples; ++i) {
        if (!db->InsertFast(refs[t], i * 250LL, 1.0 * i).ok()) ++errors;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  ASSERT_TRUE(db->Flush().ok());

  // Counter consistency: every retry and every give-up was caused by an
  // injected fault (breaker rejections are separate — they are refusals,
  // not faults), and rejections can only exist once the breaker opened.
  const cloud::TierCounters& slow = db->env().slow().counters();
  EXPECT_GT(slow.faults_injected.load(), 0u);
  EXPECT_GT(slow.retries.load(), 0u);
  EXPECT_LE(slow.retries.load() + slow.retry_give_ups.load(),
            slow.faults_injected.load());
  EXPECT_EQ(fi->faults_injected(), slow.faults_injected.load());
  if (slow.breaker_rejections.load() > 0) {
    EXPECT_GT(slow.breaker_opens.load(), 0u);
  }
  EXPECT_EQ(slow.breaker_opens.load(), db->env().slow().breaker().opens());

  // Give-ups park L2 tables on the fast tier; once the faults stop, the
  // drainer uploads them all and the deferred counters reconcile. The loop
  // tolerates a pass skipped by the maintenance tick holding the drain
  // lock or by a breaker cooldown still running down.
  const auto& stats = db->time_lsm()->stats();
  EXPECT_GE(stats.deferred_tables_created.load(),
            stats.deferred_uploads_drained.load());
  fi->Clear();
  for (int i = 0; i < 400 && db->time_lsm()->NumDeferredTables() > 0; ++i) {
    ASSERT_TRUE(db->time_lsm()->DrainDeferredUploads().ok());
    if (db->time_lsm()->NumDeferredTables() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_EQ(db->time_lsm()->NumDeferredTables(), 0u);
  EXPECT_EQ(stats.deferred_tables_created.load(),
            stats.deferred_uploads_drained.load());

  // Admission control is off: the health report must show no outcomes.
  core::HealthReport health = db->HealthReport();
  EXPECT_EQ(health.writers_delayed, 0u);
  EXPECT_EQ(health.writes_rejected, 0u);
  EXPECT_TRUE(health.last_background_error.ok());

  // With the backlog drained every write is durable and fully readable.
  for (int t = 0; t < kThreads; ++t) {
    core::QueryResult result;
    ASSERT_TRUE(db->Query({index::TagMatcher::Equal("w", std::to_string(t))},
                          0, kSamples * 250LL, &result)
                    .ok());
    EXPECT_TRUE(result.complete);
    ASSERT_EQ(result.size(), 1u) << t;
    ASSERT_EQ(result[0].samples.size(), static_cast<size_t>(kSamples)) << t;
    for (int i = 0; i < kSamples; ++i) {
      ASSERT_EQ(result[0].samples[i].timestamp, i * 250LL) << t;
    }
  }
  RemoveDirRecursive(opts.workspace);
}

TEST(FailureInjectionTest, CorruptedSlowTierObjectSurfacesError) {
  const std::string ws = "/tmp/timeunion_test/conc_corrupt";
  RemoveDirRecursive(ws);
  cloud::TieredEnv env(ws, cloud::TieredEnvOptions::Instant());
  lsm::BlockCache cache(8 << 20);
  lsm::TimeLsmOptions opts;
  opts.memtable_bytes = 16 << 10;
  lsm::TimePartitionedLsm tree(&env, "db", opts, &cache);
  ASSERT_TRUE(tree.Open().ok());

  uint64_t seq = 0;
  for (int64_t ts = 0; ts < 12LL * 3600 * 1000; ts += kMin) {
    std::string payload;
    compress::EncodeSeriesChunk(++seq, {compress::Sample{ts, 1.0}}, &payload);
    ASSERT_TRUE(
        tree.Put(lsm::MakeChunkKey(1, ts),
                 lsm::MakeChunkValue(lsm::ChunkType::kSeries, payload))
            .ok());
  }
  ASSERT_TRUE(tree.FlushAll().ok());
  ASSERT_GT(tree.NumL2Partitions(), 0u);

  // Corrupt the middle of every slow-tier object.
  std::vector<std::string> keys;
  ASSERT_TRUE(env.slow().ListObjects("db/", &keys).ok());
  ASSERT_FALSE(keys.empty());
  for (const auto& key : keys) {
    std::string blob;
    ASSERT_TRUE(env.slow().GetObject(key, &blob).ok());
    blob[blob.size() / 2] ^= 0x77;
    ASSERT_TRUE(env.slow().PutObject(key, blob).ok());
  }

  // Reading old data must fail loudly (checksums), never silently return
  // wrong samples.
  std::unique_ptr<lsm::Iterator> it;
  Status s = tree.NewIteratorForId(1, 0, 2LL * 3600 * 1000, &it);
  bool saw_error = !s.ok();
  if (s.ok()) {
    for (it->Seek(lsm::MakeChunkKey(1, 0)); it->Valid(); it->Next()) {
    }
    saw_error = !it->status().ok();
  }
  EXPECT_TRUE(saw_error);
  RemoveDirRecursive(ws);
}

}  // namespace
}  // namespace tu
