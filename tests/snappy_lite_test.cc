#include "compress/snappy_lite.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace tu::compress {
namespace {

void RoundTrip(const std::string& input) {
  std::string compressed, output;
  SnappyLiteCompress(input, &compressed);
  EXPECT_LE(compressed.size(), SnappyLiteMaxCompressedSize(input.size()));
  ASSERT_TRUE(SnappyLiteUncompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(SnappyLite, EmptyAndTiny) {
  RoundTrip("");
  RoundTrip("a");
  RoundTrip("abc");
}

TEST(SnappyLite, RepetitiveDataCompresses) {
  std::string input;
  for (int i = 0; i < 100; ++i) input += "hello world, hello block! ";
  std::string compressed;
  SnappyLiteCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 4);
  std::string output;
  ASSERT_TRUE(SnappyLiteUncompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(SnappyLite, RleStyleOverlappingCopies) {
  RoundTrip(std::string(10'000, 'x'));
  std::string ab;
  for (int i = 0; i < 5000; ++i) ab += (i % 2) ? 'a' : 'b';
  RoundTrip(ab);
}

TEST(SnappyLite, IncompressibleDataSurvives) {
  Random rng(1);
  std::string input;
  for (int i = 0; i < 10'000; ++i) {
    input.push_back(static_cast<char>(rng.Next64() & 0xff));
  }
  RoundTrip(input);
}

class SnappyLiteRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SnappyLiteRandomTest, MixedEntropyRoundTrips) {
  Random rng(GetParam());
  std::string input;
  while (input.size() < 50'000) {
    if (rng.OneIn(3)) {
      input.append(rng.Uniform(300) + 1, static_cast<char>(rng.Uniform(256)));
    } else if (rng.OneIn(2) && input.size() > 100) {
      const size_t start = rng.Uniform(input.size() - 50);
      input.append(input, start, rng.Uniform(50) + 1);
    } else {
      for (int i = 0; i < 20; ++i) {
        input.push_back(static_cast<char>(rng.Next64() & 0xff));
      }
    }
  }
  RoundTrip(input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnappyLiteRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SnappyLite, MalformedInputRejected) {
  std::string output;
  EXPECT_FALSE(SnappyLiteUncompress(Slice("", 0), &output).ok());
  // Claims a long literal run but the data is short.
  std::string bogus;
  bogus.push_back(20);   // uncompressed length varint
  bogus.push_back(100);  // literal run of 101 bytes...
  bogus += "short";
  EXPECT_FALSE(SnappyLiteUncompress(bogus, &output).ok());
  // Copy referencing data before the start of the output.
  std::string bad_copy;
  bad_copy.push_back(10);
  bad_copy.push_back(static_cast<char>(0xF0));
  bad_copy.push_back(50);  // offset 50 > output size 0
  bad_copy.push_back(4);
  EXPECT_FALSE(SnappyLiteUncompress(bad_copy, &output).ok());
}

TEST(SnappyLite, LengthMismatchDetected) {
  std::string compressed;
  SnappyLiteCompress("hello world", &compressed);
  // Tamper with the declared length.
  compressed[0] = 5;
  std::string output;
  EXPECT_FALSE(SnappyLiteUncompress(compressed, &output).ok());
}

}  // namespace
}  // namespace tu::compress
