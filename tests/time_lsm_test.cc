#include "lsm/time_lsm.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "compress/chunk.h"
#include "lsm/key_format.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace tu::lsm {
namespace {

constexpr int64_t kMin = 60 * 1000;
constexpr int64_t kHour = 60 * kMin;

std::string OneSampleChunk(uint64_t seq, int64_t ts, double v) {
  std::string payload;
  compress::EncodeSeriesChunk(seq, {compress::Sample{ts, v}}, &payload);
  return MakeChunkValue(ChunkType::kSeries, payload);
}

class TimeLsmTest : public ::testing::Test {
 protected:
  void SetUp() override { Recreate(DefaultOptions()); }

  static TimeLsmOptions DefaultOptions() {
    TimeLsmOptions opts;
    opts.l0_partition_ms = 30 * kMin;
    opts.l2_partition_ms = 2 * kHour;
    opts.partition_lower_bound_ms = 15 * kMin;
    opts.memtable_bytes = 32 << 10;
    opts.max_output_table_bytes = 256 << 10;
    opts.l0_partition_trigger = 2;
    opts.patch_threshold = 3;
    return opts;
  }

  void Recreate(const TimeLsmOptions& opts) {
    lsm_.reset();
    env_.reset();
    workspace_ = "/tmp/timeunion_test/time_lsm";
    RemoveDirRecursive(workspace_);
    env_ = std::make_unique<cloud::TieredEnv>(workspace_,
                                              cloud::TieredEnvOptions::Instant());
    cache_ = std::make_unique<BlockCache>(8 << 20);
    lsm_ = std::make_unique<TimePartitionedLsm>(env_.get(), "db", opts,
                                                cache_.get());
    ASSERT_TRUE(lsm_->Open().ok());
  }

  void TearDown() override {
    lsm_.reset();
    env_.reset();
    RemoveDirRecursive(workspace_);
  }

  /// Collects all decoded samples of `id` within [t0, t1] (newest-wins on
  /// duplicate timestamps).
  std::map<int64_t, double> Query(uint64_t id, int64_t t0, int64_t t1) {
    std::unique_ptr<Iterator> it;
    EXPECT_TRUE(lsm_->NewIteratorForId(id, t0, t1, &it).ok());
    // Entries arrive keyed ascending; equal user keys newest-seq first.
    // Within a single LSM the same timestamp can appear in multiple chunks;
    // keep the sample from the newest chunk (largest seq).
    std::map<int64_t, std::pair<uint64_t, double>> best;  // ts -> (seq, v)
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      const Slice user_key = InternalKeyUserKey(it->key());
      if (ChunkKeyId(user_key) != id) continue;
      uint64_t seq;
      std::vector<compress::Sample> samples;
      EXPECT_TRUE(compress::DecodeSeriesChunk(ChunkValuePayload(it->value()),
                                              &seq, &samples)
                      .ok());
      for (const auto& s : samples) {
        if (s.timestamp < t0 || s.timestamp > t1) continue;
        auto found = best.find(s.timestamp);
        if (found == best.end() || seq >= found->second.first) {
          best[s.timestamp] = {seq, s.value};
        }
      }
    }
    std::map<int64_t, double> out;
    for (const auto& [ts, sv] : best) out[ts] = sv.second;
    return out;
  }

  std::string workspace_;
  std::unique_ptr<cloud::TieredEnv> env_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<TimePartitionedLsm> lsm_;
};

TEST_F(TimeLsmTest, InOrderInsertAndQuery) {
  // 10 series, 6 hours of one-sample chunks every 5 minutes.
  std::map<uint64_t, std::map<int64_t, double>> reference;
  uint64_t seq = 0;
  for (int64_t ts = 0; ts < 6 * kHour; ts += 5 * kMin) {
    for (uint64_t id = 0; id < 10; ++id) {
      const double v = static_cast<double>(id) + ts * 1e-9;
      reference[id][ts] = v;
      ASSERT_TRUE(
          lsm_->Put(MakeChunkKey(id, ts), OneSampleChunk(++seq, ts, v)).ok());
    }
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());

  for (uint64_t id = 0; id < 10; ++id) {
    EXPECT_EQ(Query(id, 0, 6 * kHour), reference[id]) << "id=" << id;
  }
  // Time-bounded query returns only the window.
  const auto window = Query(3, 2 * kHour, 3 * kHour);
  for (const auto& [ts, v] : window) {
    EXPECT_GE(ts, 2 * kHour);
    EXPECT_LE(ts, 3 * kHour);
  }
  EXPECT_FALSE(window.empty());
}

TEST_F(TimeLsmTest, DataMigratesToSlowTierAsOneLevel) {
  uint64_t seq = 0;
  for (int64_t ts = 0; ts < 12 * kHour; ts += kMin) {
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_TRUE(lsm_->Put(MakeChunkKey(id, ts),
                            OneSampleChunk(++seq, ts, 1.0))
                      .ok());
    }
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());

  EXPECT_GT(lsm_->NumL2Partitions(), 0u);
  EXPECT_GT(lsm_->SlowBytesUsed(), 0u);
  EXPECT_GT(lsm_->stats().l1_to_l2_compactions.load(), 0u);
  // The single-slow-level design: an in-order workload never reads from
  // the slow tier during compaction (Eq. 9: writes only).
  EXPECT_EQ(env_->slow().counters().get_ops.load(), 0u);

  // Old data is still queryable from L2.
  const auto samples = Query(2, 0, 2 * kHour);
  EXPECT_EQ(samples.size(), static_cast<size_t>(2 * kHour / kMin) + 1);
}

TEST_F(TimeLsmTest, OutOfOrderIntoL0L1MergesInFastTier) {
  uint64_t seq = 0;
  // In-order recent data.
  for (int64_t ts = 0; ts < 2 * kHour; ts += kMin) {
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(1, ts), OneSampleChunk(++seq, ts, 1.0)).ok());
  }
  // Out-of-order data into the same recent window (overwrites value).
  for (int64_t ts = 0; ts < kHour; ts += 2 * kMin) {
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(1, ts), OneSampleChunk(++seq, ts, 2.0)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());

  const auto samples = Query(1, 0, 2 * kHour);
  for (int64_t ts = 0; ts < kHour; ts += 2 * kMin) {
    EXPECT_EQ(samples.at(ts), 2.0) << "ts=" << ts;  // newest wins
  }
  EXPECT_EQ(samples.at(kMin), 1.0);
}

TEST_F(TimeLsmTest, OutOfOrderIntoL2GeneratesPatches) {
  uint64_t seq = 0;
  // Fill 12 hours so early windows migrate to L2.
  for (int64_t ts = 0; ts < 12 * kHour; ts += kMin) {
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_TRUE(lsm_->Put(MakeChunkKey(id, ts),
                            OneSampleChunk(++seq, ts, 1.0))
                      .ok());
    }
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  ASSERT_GT(lsm_->NumL2Partitions(), 0u);
  const uint64_t slow_gets_before = env_->slow().counters().get_ops.load();

  // Stale data for hour 0 (already in L2).
  for (int64_t ts = 0; ts < kHour; ts += 3 * kMin) {
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_TRUE(lsm_->Put(MakeChunkKey(id, ts),
                            OneSampleChunk(++seq, ts, 9.0))
                      .ok());
    }
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());

  EXPECT_GT(lsm_->stats().patches_created.load(), 0u);
  // Patch generation appends to L2 without reading existing L2 tables.
  EXPECT_EQ(env_->slow().counters().get_ops.load(), slow_gets_before);

  // Queries see the patched (newest) values.
  const auto samples = Query(2, 0, kHour);
  EXPECT_EQ(samples.at(0), 9.0);
  EXPECT_EQ(samples.at(3 * kMin), 9.0);
  EXPECT_EQ(samples.at(kMin), 1.0);  // untouched timestamps keep old values
}

TEST_F(TimeLsmTest, PatchMergeTriggersBeyondThreshold) {
  auto opts = DefaultOptions();
  opts.patch_threshold = 1;  // merge after the 2nd patch
  Recreate(opts);

  uint64_t seq = 0;
  for (int64_t ts = 0; ts < 12 * kHour; ts += kMin) {
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(1, ts), OneSampleChunk(++seq, ts, 1.0)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  ASSERT_GT(lsm_->NumL2Partitions(), 0u);

  // Repeatedly send stale rounds targeting hour 0.
  for (int round = 0; round < 4; ++round) {
    for (int64_t ts = 0; ts < kHour; ts += 2 * kMin) {
      ASSERT_TRUE(lsm_->Put(MakeChunkKey(1, ts),
                            OneSampleChunk(++seq, ts, 10.0 + round))
                      .ok());
    }
    ASSERT_TRUE(lsm_->FlushAll().ok());
  }
  EXPECT_GT(lsm_->stats().patch_merges.load(), 0u);

  const auto samples = Query(1, 0, kHour);
  EXPECT_EQ(samples.at(0), 13.0);  // last round wins
}

TEST_F(TimeLsmTest, RetentionDropsOldPartitions) {
  uint64_t seq = 0;
  for (int64_t ts = 0; ts < 12 * kHour; ts += kMin) {
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(1, ts), OneSampleChunk(++seq, ts, 1.0)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  const size_t l2_before = lsm_->NumL2Partitions();
  ASSERT_GT(l2_before, 1u);

  ASSERT_TRUE(lsm_->ApplyRetention(4 * kHour).ok());
  EXPECT_LT(lsm_->NumL2Partitions(), l2_before);
  EXPECT_GT(lsm_->stats().partitions_retired.load(), 0u);

  EXPECT_TRUE(Query(1, 0, 4 * kHour - kMin).empty());
  EXPECT_FALSE(Query(1, 5 * kHour, 6 * kHour).empty());
}

TEST_F(TimeLsmTest, DynamicSizeControlShrinksPartitions) {
  auto opts = DefaultOptions();
  opts.fast_storage_limit_bytes = 32 << 10;  // very tight budget
  Recreate(opts);

  const int64_t initial_len = lsm_->l0_partition_ms();
  uint64_t seq = 0;
  Random rng(5);
  for (int64_t ts = 0; ts < 4 * kHour; ts += 10 * 1000) {
    for (uint64_t id = 0; id < 16; ++id) {
      ASSERT_TRUE(lsm_->Put(MakeChunkKey(id, ts),
                            OneSampleChunk(++seq, ts, rng.NextDouble()))
                      .ok());
    }
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  EXPECT_LT(lsm_->l0_partition_ms(), initial_len);
  EXPECT_GE(lsm_->l0_partition_ms(), opts.partition_lower_bound_ms);
}

TEST_F(TimeLsmTest, BackgroundFlushMatchesInline) {
  auto opts = DefaultOptions();
  opts.background_flush = true;
  Recreate(opts);

  std::map<int64_t, double> reference;
  uint64_t seq = 0;
  Random rng(3);
  for (int64_t ts = 0; ts < 6 * kHour; ts += kMin) {
    const double v = rng.NextDouble();
    reference[ts] = v;
    ASSERT_TRUE(
        lsm_->Put(MakeChunkKey(1, ts), OneSampleChunk(++seq, ts, v)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());
  EXPECT_EQ(Query(1, 0, 6 * kHour), reference);
}

TEST_F(TimeLsmTest, GroupChunksSurviveCompactions) {
  uint64_t seq = 0;
  auto put_group = [&](int64_t ts, double base) {
    std::vector<compress::GroupRow> rows(1);
    rows[0].timestamp = ts;
    rows[0].values = {base, base + 1, std::nullopt};
    std::string payload;
    compress::EncodeGroupChunk(++seq, 3, rows, &payload);
    return lsm_->Put(MakeChunkKey(100, ts),
                     MakeChunkValue(ChunkType::kGroup, payload));
  };
  for (int64_t ts = 0; ts < 8 * kHour; ts += kMin) {
    ASSERT_TRUE(put_group(ts, static_cast<double>(ts / kMin)).ok());
  }
  ASSERT_TRUE(lsm_->FlushAll().ok());

  std::unique_ptr<Iterator> it;
  ASSERT_TRUE(lsm_->NewIteratorForId(100, 0, kHour, &it).ok());
  size_t rows_seen = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    if (ChunkKeyId(InternalKeyUserKey(it->key())) != 100) continue;
    ASSERT_EQ(ChunkValueType(it->value()), ChunkType::kGroup);
    std::vector<compress::Sample> member1;
    ASSERT_TRUE(compress::DecodeGroupMember(ChunkValuePayload(it->value()), 1,
                                            &member1)
                    .ok());
    for (const auto& s : member1) {
      if (s.timestamp <= kHour) {
        EXPECT_EQ(s.value, static_cast<double>(s.timestamp / kMin) + 1);
        ++rows_seen;
      }
    }
  }
  EXPECT_EQ(rows_seen, static_cast<size_t>(kHour / kMin) + 1);
}

}  // namespace
}  // namespace tu::lsm
