#include "compress/gorilla.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/chunk.h"
#include "util/random.h"

namespace tu::compress {
namespace {

TEST(BitStream, RoundTripBits) {
  char buf[64] = {};
  BitWriter w(buf, sizeof(buf));
  w.WriteBit(true);
  w.WriteBit(false);
  w.WriteBits(0b1011, 4);
  w.WriteBits(0xdeadbeefcafebabeull, 64);
  w.WriteBits(7, 3);

  BitReader r(buf, sizeof(buf));
  EXPECT_TRUE(r.ReadBit());
  EXPECT_FALSE(r.ReadBit());
  EXPECT_EQ(r.ReadBits(4), 0b1011u);
  EXPECT_EQ(r.ReadBits(64), 0xdeadbeefcafebabeull);
  EXPECT_EQ(r.ReadBits(3), 7u);
}

TEST(BitStream, RemainingBits) {
  char buf[2];
  BitWriter w(buf, sizeof(buf));
  EXPECT_EQ(w.RemainingBits(), 16u);
  w.WriteBits(0, 10);
  EXPECT_EQ(w.RemainingBits(), 6u);
  EXPECT_EQ(w.BytesUsed(), 2u);
}

std::vector<int64_t> RegularTimestamps(int n, int64_t start, int64_t step) {
  std::vector<int64_t> out;
  for (int i = 0; i < n; ++i) out.push_back(start + i * step);
  return out;
}

TEST(GorillaTimestamps, RegularInterval) {
  char buf[512] = {};
  BitWriter w(buf, sizeof(buf));
  TimestampEncoder enc;
  const auto ts = RegularTimestamps(120, 1600000000000, 30000);
  for (int64_t t : ts) enc.Append(&w, t);

  // Regular intervals compress to ~1 bit/sample after the first two.
  EXPECT_LT(w.BytesUsed(), 40u);

  BitReader r(buf, sizeof(buf));
  TimestampDecoder dec;
  for (int64_t t : ts) EXPECT_EQ(dec.Next(&r), t);
}

TEST(GorillaTimestamps, JitteredAndNegativeDeltas) {
  char buf[4096] = {};
  BitWriter w(buf, sizeof(buf));
  TimestampEncoder enc;
  Random rng(99);
  std::vector<int64_t> ts;
  int64_t t = -5000;  // pre-epoch start
  for (int i = 0; i < 500; ++i) {
    t += static_cast<int64_t>(rng.Uniform(5000)) - 200;  // may go backwards
    ts.push_back(t);
    enc.Append(&w, t);
  }
  BitReader r(buf, sizeof(buf));
  TimestampDecoder dec;
  for (int64_t expect : ts) EXPECT_EQ(dec.Next(&r), expect);
}

TEST(GorillaTimestamps, AllDodBuckets) {
  // Exercise every delta-of-delta bucket boundary.
  const std::vector<int64_t> dods = {0,     1,     -63,   64,     65,
                                     -255,  256,   257,   -2047,  2048,
                                     2049,  100000, -100000, 1ll << 40};
  std::vector<int64_t> ts = {0, 1000};
  int64_t delta = 1000;
  for (int64_t dod : dods) {
    delta += dod;
    ts.push_back(ts.back() + delta);
  }
  char buf[4096] = {};
  BitWriter w(buf, sizeof(buf));
  TimestampEncoder enc;
  for (int64_t t : ts) enc.Append(&w, t);
  BitReader r(buf, sizeof(buf));
  TimestampDecoder dec;
  for (int64_t expect : ts) EXPECT_EQ(dec.Next(&r), expect);
}

TEST(GorillaValues, ConstantValueCompressesToBits) {
  char buf[512] = {};
  BitWriter w(buf, sizeof(buf));
  ValueEncoder enc;
  for (int i = 0; i < 100; ++i) enc.Append(&w, 42.5);
  EXPECT_LT(w.BytesUsed(), 24u);  // 8 bytes raw + ~1 bit each after

  BitReader r(buf, sizeof(buf));
  ValueDecoder dec;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dec.Next(&r), 42.5);
}

TEST(GorillaValues, SpecialDoubles) {
  const std::vector<double> values = {
      0.0, -0.0, 1.0, -1.0, 1e308, -1e308, 5e-324,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(), 3.141592653589793};
  char buf[4096] = {};
  BitWriter w(buf, sizeof(buf));
  ValueEncoder enc;
  for (double v : values) enc.Append(&w, v);
  BitReader r(buf, sizeof(buf));
  ValueDecoder dec;
  for (double expect : values) {
    EXPECT_EQ(std::bit_cast<uint64_t>(dec.Next(&r)),
              std::bit_cast<uint64_t>(expect));
  }
}

TEST(GorillaValues, NaNRoundTrips) {
  char buf[256] = {};
  BitWriter w(buf, sizeof(buf));
  ValueEncoder enc;
  enc.Append(&w, std::nan(""));
  enc.Append(&w, 1.0);
  BitReader r(buf, sizeof(buf));
  ValueDecoder dec;
  EXPECT_TRUE(std::isnan(dec.Next(&r)));
  EXPECT_EQ(dec.Next(&r), 1.0);
}

class GorillaValueRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(GorillaValueRandomTest, RandomWalkRoundTrips) {
  Random rng(GetParam());
  std::vector<double> values;
  double v = 100.0;
  for (int i = 0; i < 1000; ++i) {
    v += rng.NextGaussian(0, 1.5);
    values.push_back(v);
  }
  std::vector<char> buf(values.size() * 12);
  BitWriter w(buf.data(), buf.size());
  ValueEncoder enc;
  for (double x : values) {
    ASSERT_GE(w.RemainingBits(), kMaxBitsPerValue);
    enc.Append(&w, x);
  }
  BitReader r(buf.data(), buf.size());
  ValueDecoder dec;
  for (double expect : values) EXPECT_EQ(dec.Next(&r), expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GorillaValueRandomTest,
                         ::testing::Values(1, 17, 23, 99));

TEST(NullableValues, NullsInterleaved) {
  char buf[1024] = {};
  BitWriter w(buf, sizeof(buf));
  NullableValueEncoder enc;
  enc.AppendValue(&w, 1.5);
  enc.AppendNull(&w);
  enc.AppendNull(&w);
  enc.AppendValue(&w, 2.5);
  enc.AppendValue(&w, 2.5);
  enc.AppendNull(&w);

  BitReader r(buf, sizeof(buf));
  NullableValueDecoder dec;
  double v = 0;
  EXPECT_TRUE(dec.Next(&r, &v));
  EXPECT_EQ(v, 1.5);
  EXPECT_FALSE(dec.Next(&r, &v));
  EXPECT_FALSE(dec.Next(&r, &v));
  EXPECT_TRUE(dec.Next(&r, &v));
  EXPECT_EQ(v, 2.5);
  EXPECT_TRUE(dec.Next(&r, &v));
  EXPECT_EQ(v, 2.5);
  EXPECT_FALSE(dec.Next(&r, &v));
}

TEST(NullableValues, AllNullColumn) {
  char buf[64] = {};
  BitWriter w(buf, sizeof(buf));
  NullableValueEncoder enc;
  for (int i = 0; i < 100; ++i) enc.AppendNull(&w);
  EXPECT_LE(w.BytesUsed(), 13u);  // 1 bit per NULL

  BitReader r(buf, sizeof(buf));
  NullableValueDecoder dec;
  double v;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(dec.Next(&r, &v));
}

}  // namespace
}  // namespace tu::compress
