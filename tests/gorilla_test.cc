#include "compress/gorilla.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "compress/chunk.h"
#include "util/random.h"

namespace tu::compress {
namespace {

TEST(BitStream, RoundTripBits) {
  char buf[64] = {};
  BitWriter w(buf, sizeof(buf));
  w.WriteBit(true);
  w.WriteBit(false);
  w.WriteBits(0b1011, 4);
  w.WriteBits(0xdeadbeefcafebabeull, 64);
  w.WriteBits(7, 3);

  BitReader r(buf, sizeof(buf));
  EXPECT_TRUE(r.ReadBit());
  EXPECT_FALSE(r.ReadBit());
  EXPECT_EQ(r.ReadBits(4), 0b1011u);
  EXPECT_EQ(r.ReadBits(64), 0xdeadbeefcafebabeull);
  EXPECT_EQ(r.ReadBits(3), 7u);
}

TEST(BitStream, RemainingBits) {
  char buf[2];
  BitWriter w(buf, sizeof(buf));
  EXPECT_EQ(w.RemainingBits(), 16u);
  w.WriteBits(0, 10);
  EXPECT_EQ(w.RemainingBits(), 6u);
  EXPECT_EQ(w.BytesUsed(), 2u);
}

std::vector<int64_t> RegularTimestamps(int n, int64_t start, int64_t step) {
  std::vector<int64_t> out;
  for (int i = 0; i < n; ++i) out.push_back(start + i * step);
  return out;
}

TEST(GorillaTimestamps, RegularInterval) {
  char buf[512] = {};
  BitWriter w(buf, sizeof(buf));
  TimestampEncoder enc;
  const auto ts = RegularTimestamps(120, 1600000000000, 30000);
  for (int64_t t : ts) enc.Append(&w, t);

  // Regular intervals compress to ~1 bit/sample after the first two.
  EXPECT_LT(w.BytesUsed(), 40u);

  BitReader r(buf, sizeof(buf));
  TimestampDecoder dec;
  for (int64_t t : ts) EXPECT_EQ(dec.Next(&r), t);
}

TEST(GorillaTimestamps, JitteredAndNegativeDeltas) {
  char buf[4096] = {};
  BitWriter w(buf, sizeof(buf));
  TimestampEncoder enc;
  Random rng(99);
  std::vector<int64_t> ts;
  int64_t t = -5000;  // pre-epoch start
  for (int i = 0; i < 500; ++i) {
    t += static_cast<int64_t>(rng.Uniform(5000)) - 200;  // may go backwards
    ts.push_back(t);
    enc.Append(&w, t);
  }
  BitReader r(buf, sizeof(buf));
  TimestampDecoder dec;
  for (int64_t expect : ts) EXPECT_EQ(dec.Next(&r), expect);
}

TEST(GorillaTimestamps, AllDodBuckets) {
  // Exercise every delta-of-delta bucket boundary.
  const std::vector<int64_t> dods = {0,     1,     -63,   64,     65,
                                     -255,  256,   257,   -2047,  2048,
                                     2049,  100000, -100000, 1ll << 40};
  std::vector<int64_t> ts = {0, 1000};
  int64_t delta = 1000;
  for (int64_t dod : dods) {
    delta += dod;
    ts.push_back(ts.back() + delta);
  }
  char buf[4096] = {};
  BitWriter w(buf, sizeof(buf));
  TimestampEncoder enc;
  for (int64_t t : ts) enc.Append(&w, t);
  BitReader r(buf, sizeof(buf));
  TimestampDecoder dec;
  for (int64_t expect : ts) EXPECT_EQ(dec.Next(&r), expect);
}

TEST(GorillaValues, ConstantValueCompressesToBits) {
  char buf[512] = {};
  BitWriter w(buf, sizeof(buf));
  ValueEncoder enc;
  for (int i = 0; i < 100; ++i) enc.Append(&w, 42.5);
  EXPECT_LT(w.BytesUsed(), 24u);  // 8 bytes raw + ~1 bit each after

  BitReader r(buf, sizeof(buf));
  ValueDecoder dec;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dec.Next(&r), 42.5);
}

TEST(GorillaValues, SpecialDoubles) {
  const std::vector<double> values = {
      0.0, -0.0, 1.0, -1.0, 1e308, -1e308, 5e-324,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(), 3.141592653589793};
  char buf[4096] = {};
  BitWriter w(buf, sizeof(buf));
  ValueEncoder enc;
  for (double v : values) enc.Append(&w, v);
  BitReader r(buf, sizeof(buf));
  ValueDecoder dec;
  for (double expect : values) {
    EXPECT_EQ(std::bit_cast<uint64_t>(dec.Next(&r)),
              std::bit_cast<uint64_t>(expect));
  }
}

TEST(GorillaValues, NaNRoundTrips) {
  char buf[256] = {};
  BitWriter w(buf, sizeof(buf));
  ValueEncoder enc;
  enc.Append(&w, std::nan(""));
  enc.Append(&w, 1.0);
  BitReader r(buf, sizeof(buf));
  ValueDecoder dec;
  EXPECT_TRUE(std::isnan(dec.Next(&r)));
  EXPECT_EQ(dec.Next(&r), 1.0);
}

class GorillaValueRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(GorillaValueRandomTest, RandomWalkRoundTrips) {
  Random rng(GetParam());
  std::vector<double> values;
  double v = 100.0;
  for (int i = 0; i < 1000; ++i) {
    v += rng.NextGaussian(0, 1.5);
    values.push_back(v);
  }
  std::vector<char> buf(values.size() * 12);
  BitWriter w(buf.data(), buf.size());
  ValueEncoder enc;
  for (double x : values) {
    ASSERT_GE(w.RemainingBits(), kMaxBitsPerValue);
    enc.Append(&w, x);
  }
  BitReader r(buf.data(), buf.size());
  ValueDecoder dec;
  for (double expect : values) EXPECT_EQ(dec.Next(&r), expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GorillaValueRandomTest,
                         ::testing::Values(1, 17, 23, 99));

TEST(NullableValues, NullsInterleaved) {
  char buf[1024] = {};
  BitWriter w(buf, sizeof(buf));
  NullableValueEncoder enc;
  enc.AppendValue(&w, 1.5);
  enc.AppendNull(&w);
  enc.AppendNull(&w);
  enc.AppendValue(&w, 2.5);
  enc.AppendValue(&w, 2.5);
  enc.AppendNull(&w);

  BitReader r(buf, sizeof(buf));
  NullableValueDecoder dec;
  double v = 0;
  EXPECT_TRUE(dec.Next(&r, &v));
  EXPECT_EQ(v, 1.5);
  EXPECT_FALSE(dec.Next(&r, &v));
  EXPECT_FALSE(dec.Next(&r, &v));
  EXPECT_TRUE(dec.Next(&r, &v));
  EXPECT_EQ(v, 2.5);
  EXPECT_TRUE(dec.Next(&r, &v));
  EXPECT_EQ(v, 2.5);
  EXPECT_FALSE(dec.Next(&r, &v));
}

TEST(NullableValues, AllNullColumn) {
  char buf[64] = {};
  BitWriter w(buf, sizeof(buf));
  NullableValueEncoder enc;
  for (int i = 0; i < 100; ++i) enc.AppendNull(&w);
  EXPECT_LE(w.BytesUsed(), 13u);  // 1 bit per NULL

  BitReader r(buf, sizeof(buf));
  NullableValueDecoder dec;
  double v;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(dec.Next(&r, &v));
}

// ---------------------------------------------------------------------------
// Bulk decode parity: DecodeAll must be bit-exact with n scalar Next()
// calls AND leave the reader/decoder in the identical state, so scalar and
// bulk reads can interleave on one stream.
// ---------------------------------------------------------------------------

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

class BulkParityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BulkParityTest, TimestampBulkMatchesScalar) {
  Random rng(GetParam());
  std::vector<int64_t> ts;
  int64_t t = static_cast<int64_t>(rng.Uniform(1u << 30)) - (1 << 29);
  for (int i = 0; i < 800; ++i) {
    // Mix regular runs with jumps that hit every dod bucket.
    switch (rng.Uniform(5)) {
      case 0: t += 30000; break;
      case 1: t += 30000 + static_cast<int64_t>(rng.Uniform(128)) - 64; break;
      case 2: t += static_cast<int64_t>(rng.Uniform(4096)) - 2048; break;
      case 3: t += static_cast<int64_t>(rng.Uniform(1u << 20)); break;
      default: t -= static_cast<int64_t>(rng.Uniform(1u << 14)); break;
    }
    ts.push_back(t);
  }
  std::vector<char> buf(ts.size() * 12);
  BitWriter w(buf.data(), buf.size());
  TimestampEncoder enc;
  for (int64_t x : ts) enc.Append(&w, x);

  // Whole-stream bulk decode.
  BitReader rb(buf.data(), buf.size());
  TimestampDecoder bulk;
  std::vector<int64_t> got(ts.size());
  bulk.DecodeAll(&rb, got.size(), got.data());
  EXPECT_EQ(got, ts);

  // Scalar/bulk interleave at a random split: positions must stay in sync.
  const size_t split = rng.Uniform(static_cast<uint32_t>(ts.size()));
  BitReader ri(buf.data(), buf.size());
  TimestampDecoder dec;
  for (size_t i = 0; i < split; ++i) EXPECT_EQ(dec.Next(&ri), ts[i]);
  std::vector<int64_t> rest(ts.size() - split);
  dec.DecodeAll(&ri, rest.size() - 1, rest.data());
  EXPECT_EQ(dec.Next(&ri), ts.back());  // scalar again after bulk
  for (size_t i = 0; i + split + 1 < ts.size(); ++i) {
    EXPECT_EQ(rest[i], ts[split + i]);
  }
}

TEST_P(BulkParityTest, ValueBulkMatchesScalar) {
  Random rng(GetParam());
  std::vector<double> vals;
  double v = 100.0;
  for (int i = 0; i < 800; ++i) {
    // Repeats (xor == 0), small drifts (window reuse) and resets (new
    // window) all occur; occasional exact zero exercises sigbits wrap.
    switch (rng.Uniform(4)) {
      case 0: break;  // repeat previous value
      case 1: v += rng.NextGaussian(0, 1e-3); break;
      case 2: v = rng.NextGaussian(0, 1e6); break;
      default: v = 0.0; break;
    }
    vals.push_back(v);
  }
  std::vector<char> buf(vals.size() * 12);
  BitWriter w(buf.data(), buf.size());
  ValueEncoder enc;
  for (double x : vals) enc.Append(&w, x);

  BitReader rb(buf.data(), buf.size());
  ValueDecoder bulk;
  std::vector<double> got(vals.size());
  bulk.DecodeAll(&rb, got.size(), got.data());
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(Bits(got[i]), Bits(vals[i]));

  const size_t split = rng.Uniform(static_cast<uint32_t>(vals.size()));
  BitReader ri(buf.data(), buf.size());
  ValueDecoder dec;
  for (size_t i = 0; i < split; ++i) EXPECT_EQ(Bits(dec.Next(&ri)), Bits(vals[i]));
  std::vector<double> rest(vals.size() - split);
  dec.DecodeAll(&ri, rest.size() - 1, rest.data());
  EXPECT_EQ(Bits(dec.Next(&ri)), Bits(vals.back()));
  for (size_t i = 0; i + split + 1 < vals.size(); ++i) {
    EXPECT_EQ(Bits(rest[i]), Bits(vals[split + i]));
  }
}

TEST_P(BulkParityTest, NullableBulkMatchesScalar) {
  Random rng(GetParam());
  std::vector<bool> present;
  std::vector<double> vals;  // parallel; value only meaningful when present
  double v = 42.0;
  for (int i = 0; i < 600; ++i) {
    const bool p = rng.Uniform(3) != 0;
    present.push_back(p);
    if (p) v += rng.NextGaussian(0, 2.0);
    vals.push_back(v);
  }
  std::vector<char> buf(vals.size() * 12 + 128);
  BitWriter w(buf.data(), buf.size());
  NullableValueEncoder enc;
  for (size_t i = 0; i < vals.size(); ++i) {
    if (present[i]) {
      enc.AppendValue(&w, vals[i]);
    } else {
      enc.AppendNull(&w);
    }
  }

  BitReader rb(buf.data(), buf.size());
  NullableValueDecoder bulk;
  std::vector<double> got(vals.size(), -1.0);
  std::vector<uint64_t> validity((vals.size() + 63) / 64, 0);
  bulk.DecodeAll(&rb, vals.size(), got.data(), validity.data());
  for (size_t i = 0; i < vals.size(); ++i) {
    const bool bit = (validity[i >> 6] >> (i & 63)) & 1;
    EXPECT_EQ(bit, static_cast<bool>(present[i])) << "slot " << i;
    if (present[i]) {
      EXPECT_EQ(Bits(got[i]), Bits(vals[i])) << "slot " << i;
    } else {
      EXPECT_EQ(got[i], -1.0) << "NULL slot must stay untouched";
    }
  }

  // Scalar reference over the same stream.
  BitReader rs(buf.data(), buf.size());
  NullableValueDecoder dec;
  for (size_t i = 0; i < vals.size(); ++i) {
    double x = 0;
    const bool got_present = dec.Next(&rs, &x);
    EXPECT_EQ(got_present, static_cast<bool>(present[i]));
    if (present[i]) EXPECT_EQ(Bits(x), Bits(vals[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BulkParityTest,
                         ::testing::Values(2, 29, 71, 1234, 99991));

}  // namespace
}  // namespace tu::compress
