#include "core/timeunion_db.h"

#include <gtest/gtest.h>

#include <map>

#include "util/mmap_file.h"
#include "util/random.h"

namespace tu::core {
namespace {

using index::Label;
using index::Labels;
using index::TagMatcher;

constexpr int64_t kMin = 60 * 1000;
constexpr int64_t kHour = 60 * kMin;

class TimeUnionDBTest : public ::testing::Test {
 protected:
  void SetUp() override { Recreate(DefaultOptions()); }

  DBOptions DefaultOptions() {
    DBOptions opts;
    opts.workspace = "/tmp/timeunion_test/db";
    opts.lsm.memtable_bytes = 64 << 10;
    return opts;
  }

  void Recreate(DBOptions opts, bool wipe = true) {
    db_.reset();
    if (wipe) RemoveDirRecursive(opts.workspace);
    ASSERT_TRUE(TimeUnionDB::Open(opts, &db_).ok());
  }

  void TearDown() override {
    db_.reset();
    RemoveDirRecursive("/tmp/timeunion_test/db");
  }

  static Labels SeriesLabels(int host, const std::string& metric) {
    return Labels{{"hostname", "host_" + std::to_string(host)},
                  {"metric", metric},
                  {"region", "tokyo"}};
  }

  std::unique_ptr<TimeUnionDB> db_;
};

TEST_F(TimeUnionDBTest, InsertAndQuerySingleSeries) {
  uint64_t ref = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        db_->Insert(SeriesLabels(1, "cpu"), i * kMin, 1.0 * i, &ref).ok());
  }
  EXPECT_EQ(db_->NumSeries(), 1u);

  QueryResult result;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "cpu")}, 0, 100 * kMin,
                         &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  ASSERT_EQ(result[0].samples.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(result[0].samples[i].timestamp, i * kMin);
    EXPECT_EQ(result[0].samples[i].value, 1.0 * i);
  }
}

TEST_F(TimeUnionDBTest, FastPathMatchesSlowPath) {
  uint64_t ref = 0;
  ASSERT_TRUE(db_->Insert(SeriesLabels(1, "mem"), 0, 1.0, &ref).ok());
  for (int i = 1; i < 200; ++i) {
    ASSERT_TRUE(db_->InsertFast(ref, i * kMin, 1.0 + i).ok());
  }
  QueryResult result;
  ASSERT_TRUE(
      db_->Query({TagMatcher::Equal("metric", "mem")}, 0, 200 * kMin, &result)
          .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), 200u);
}

TEST_F(TimeUnionDBTest, InsertFastUnknownRefFails) {
  EXPECT_TRUE(db_->InsertFast(999, 0, 1.0).IsNotFound());
}

TEST_F(TimeUnionDBTest, MultipleSeriesSelectors) {
  uint64_t ref = 0;
  for (int host = 0; host < 4; ++host) {
    for (const char* metric : {"cpu", "mem", "disk"}) {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(db_->Insert(SeriesLabels(host, metric), i * kMin,
                                host + i * 0.1, &ref)
                        .ok());
      }
    }
  }
  EXPECT_EQ(db_->NumSeries(), 12u);

  QueryResult result;
  // Exact: one host, one metric.
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("hostname", "host_2"),
                          TagMatcher::Equal("metric", "cpu")},
                         0, kHour, &result)
                  .ok());
  EXPECT_EQ(result.size(), 1u);

  // Regex across metrics.
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("hostname", "host_1"),
                          TagMatcher::Regex("metric", "cpu|mem")},
                         0, kHour, &result)
                  .ok());
  EXPECT_EQ(result.size(), 2u);

  // Regex prefix (the paper's metric="disk.*" example).
  ASSERT_TRUE(db_->Query({TagMatcher::Regex("metric", "disk.*")}, 0, kHour,
                         &result)
                  .ok());
  EXPECT_EQ(result.size(), 4u);

  // No match.
  ASSERT_TRUE(
      db_->Query({TagMatcher::Equal("metric", "nope")}, 0, kHour, &result)
          .ok());
  EXPECT_TRUE(result.empty());
}

TEST_F(TimeUnionDBTest, LongRangeSpillsToLsmAndQueriesBack) {
  // 26 hours, 1-minute interval: data flows through L0/L1 into L2.
  uint64_t ref = 0;
  ASSERT_TRUE(db_->Insert(SeriesLabels(1, "cpu"), 0, 0.0, &ref).ok());
  const int n = 26 * 60;
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(db_->InsertFast(ref, i * kMin, 1.0 * i).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_GT(db_->time_lsm()->NumL2Partitions(), 0u);

  QueryResult result;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "cpu")}, 0,
                         n * kMin, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  ASSERT_EQ(result[0].samples.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(result[0].samples[i].value, 1.0 * i);
  }

  // Bounded window query over old (L2) data.
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "cpu")}, 2 * kHour,
                         3 * kHour, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), 61u);
}

TEST_F(TimeUnionDBTest, OutOfOrderSamples) {
  uint64_t ref = 0;
  ASSERT_TRUE(db_->Insert(SeriesLabels(1, "cpu"), 0, 0.0, &ref).ok());
  for (int i = 1; i < 240; ++i) {
    ASSERT_TRUE(db_->InsertFast(ref, i * kMin, 1.0).ok());
  }
  // In-open-chunk out-of-order + duplicate overwrite.
  ASSERT_TRUE(db_->InsertFast(ref, 239 * kMin - 30000, 5.0).ok());
  ASSERT_TRUE(db_->InsertFast(ref, 238 * kMin, 7.0).ok());
  // Far-in-the-past out-of-order (older than the open chunk).
  ASSERT_TRUE(db_->InsertFast(ref, 10 * kMin, 9.0).ok());

  QueryResult result;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "cpu")}, 0, 4 * kHour,
                         &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  std::map<int64_t, double> samples;
  for (const auto& s : result[0].samples) samples[s.timestamp] = s.value;
  EXPECT_EQ(samples.at(239 * kMin - 30000), 5.0);
  EXPECT_EQ(samples.at(238 * kMin), 7.0);   // newest wins on duplicate
  EXPECT_EQ(samples.at(10 * kMin), 9.0);
  EXPECT_EQ(samples.at(11 * kMin), 1.0);
}

TEST_F(TimeUnionDBTest, GroupInsertAndQuery) {
  // A host group: shared tag hostname, members differ by metric tags
  // (the Fig. 6/7 model).
  const Labels group_tags{{"hostname", "host_9"}};
  std::vector<Labels> members = {
      {{"metric", "cpu"}, {"core", "0"}},
      {{"metric", "cpu"}, {"core", "1"}},
      {{"metric", "mem"}},
  };
  uint64_t gref = 0;
  std::vector<uint32_t> slots;
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> values = {1.0 * i, 2.0 * i, 3.0 * i};
    if (i == 0) {
      ASSERT_TRUE(db_->InsertGroup(group_tags, members, i * kMin, values,
                                   &gref, &slots)
                      .ok());
      ASSERT_EQ(slots.size(), 3u);
    } else {
      ASSERT_TRUE(db_->InsertGroupFast(gref, slots, i * kMin, values).ok());
    }
  }
  EXPECT_EQ(db_->NumGroups(), 1u);

  // Query one member by its unique tags.
  QueryResult result;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("hostname", "host_9"),
                          TagMatcher::Equal("metric", "cpu"),
                          TagMatcher::Equal("core", "1")},
                         0, kHour, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  ASSERT_EQ(result[0].samples.size(), 50u);
  EXPECT_EQ(result[0].samples[10].value, 20.0);

  // Query spanning members: both cores.
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "cpu")}, 0, kHour,
                         &result)
                  .ok());
  EXPECT_EQ(result.size(), 2u);

  // Group-tag query returns all members.
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("hostname", "host_9")}, 0, kHour,
                         &result)
                  .ok());
  EXPECT_EQ(result.size(), 3u);
}

TEST_F(TimeUnionDBTest, GroupMissingAndNewMembers) {
  const Labels group_tags{{"hostname", "host_5"}};
  uint64_t gref = 0;
  std::vector<uint32_t> slots;
  // Round 0: members A, B.
  ASSERT_TRUE(db_->InsertGroup(group_tags,
                               {{{"metric", "a"}}, {{"metric", "b"}}}, 0,
                               {1.0, 2.0}, &gref, &slots)
                  .ok());
  // Round 1: only A reports (B missing -> NULL).
  ASSERT_TRUE(db_->InsertGroup(group_tags, {{{"metric", "a"}}}, kMin, {1.5},
                               &gref, &slots)
                  .ok());
  // Round 2: new member C joins (backfilled NULLs for rounds 0-1).
  ASSERT_TRUE(db_->InsertGroup(group_tags,
                               {{{"metric", "a"}},
                                {{"metric", "b"}},
                                {{"metric", "c"}}},
                               2 * kMin, {1.7, 2.7, 3.7}, &gref, &slots)
                  .ok());

  QueryResult result;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "b")}, 0, kHour,
                         &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  ASSERT_EQ(result[0].samples.size(), 2u);  // missing round yields no sample
  EXPECT_EQ(result[0].samples[0].timestamp, 0);
  EXPECT_EQ(result[0].samples[1].timestamp, 2 * kMin);

  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "c")}, 0, kHour,
                         &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  ASSERT_EQ(result[0].samples.size(), 1u);
  EXPECT_EQ(result[0].samples[0].timestamp, 2 * kMin);
}

TEST_F(TimeUnionDBTest, GroupLongRangeThroughLsm) {
  const Labels group_tags{{"hostname", "host_1"}};
  std::vector<Labels> members;
  for (int m = 0; m < 5; ++m) {
    members.push_back(Labels{{"metric", "m" + std::to_string(m)}});
  }
  uint64_t gref = 0;
  std::vector<uint32_t> slots;
  const int n = 26 * 60;
  for (int i = 0; i < n; ++i) {
    std::vector<double> values;
    for (int m = 0; m < 5; ++m) values.push_back(m + i * 0.001);
    if (i == 0) {
      ASSERT_TRUE(db_->InsertGroup(group_tags, members, 0, values, &gref,
                                   &slots)
                      .ok());
    } else {
      ASSERT_TRUE(db_->InsertGroupFast(gref, slots, i * kMin, values).ok());
    }
  }
  ASSERT_TRUE(db_->Flush().ok());

  QueryResult result;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "m3")}, 0, n * kMin,
                         &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  ASSERT_EQ(result[0].samples.size(), static_cast<size_t>(n));
  EXPECT_DOUBLE_EQ(result[0].samples[1000].value, 3 + 1000 * 0.001);
}

TEST_F(TimeUnionDBTest, RetentionPurgesSeries) {
  uint64_t ref_old = 0, ref_new = 0;
  ASSERT_TRUE(db_->Insert(SeriesLabels(1, "old"), 0, 1.0, &ref_old).ok());
  ASSERT_TRUE(
      db_->Insert(SeriesLabels(1, "new"), 10 * kHour, 1.0, &ref_new).ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->ApplyRetention(5 * kHour).ok());

  EXPECT_EQ(db_->NumSeries(), 1u);
  QueryResult result;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "old")}, 0, 20 * kHour,
                         &result)
                  .ok());
  EXPECT_TRUE(result.empty());
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "new")}, 0, 20 * kHour,
                         &result)
                  .ok());
  EXPECT_EQ(result.size(), 1u);
}

TEST_F(TimeUnionDBTest, WalRecoveryRestoresUnflushedData) {
  DBOptions opts = DefaultOptions();
  opts.enable_wal = true;
  Recreate(opts);

  uint64_t ref = 0;
  ASSERT_TRUE(db_->Insert(SeriesLabels(1, "cpu"), 0, 42.0, &ref).ok());
  for (int i = 1; i < 10; ++i) {
    ASSERT_TRUE(db_->InsertFast(ref, i * kMin, 42.0 + i).ok());
  }
  uint64_t gref = 0;
  std::vector<uint32_t> slots;
  ASSERT_TRUE(db_->InsertGroup({{"hostname", "h"}},
                               {{{"metric", "g1"}}, {{"metric", "g2"}}}, 0,
                               {7.0, 8.0}, &gref, &slots)
                  .ok());
  // Simulate a crash: drop the DB without Flush(); reopen on the same
  // workspace.
  db_.reset();
  Recreate(opts, /*wipe=*/false);

  QueryResult result;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "cpu")}, 0, kHour,
                         &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  ASSERT_EQ(result[0].samples.size(), 10u);
  EXPECT_EQ(result[0].samples[3].value, 45.0);

  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "g2")}, 0, kHour,
                         &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples[0].value, 8.0);

  // The fast path still works against recovered state.
  ASSERT_TRUE(db_->Insert(SeriesLabels(1, "cpu"), 10 * kMin, 99.0, &ref).ok());
}

TEST_F(TimeUnionDBTest, WalRecoverySkipsFlushedData) {
  DBOptions opts = DefaultOptions();
  opts.enable_wal = true;
  Recreate(opts);

  uint64_t ref = 0;
  const int n = 26 * 60;
  ASSERT_TRUE(db_->Insert(SeriesLabels(1, "cpu"), 0, 0.0, &ref).ok());
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(db_->InsertFast(ref, i * kMin, 1.0 * i).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  db_.reset();
  Recreate(opts, /*wipe=*/false);

  QueryResult result;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("metric", "cpu")}, 0, n * kMin,
                         &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), static_cast<size_t>(n));
}

class DBPropertyTest : public TimeUnionDBTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(DBPropertyTest, RandomWorkloadMatchesReference) {
  Random rng(GetParam());
  std::map<std::string, std::map<int64_t, double>> reference;
  std::map<std::string, uint64_t> refs;

  for (int i = 0; i < 3000; ++i) {
    const int host = static_cast<int>(rng.Uniform(5));
    const char* metrics[] = {"cpu", "mem", "net"};
    const char* metric = metrics[rng.Uniform(3)];
    // Mostly in-order per series; 10% out-of-order.
    int64_t ts = (i / 10) * kMin;
    if (rng.OneIn(10)) ts = rng.Uniform(i + 1) * kMin / 10;
    const double v = rng.NextGaussian(50, 10);
    const Labels labels = SeriesLabels(host, metric);
    const std::string key = index::LabelsKey(labels);
    uint64_t ref = 0;
    ASSERT_TRUE(db_->Insert(labels, ts, v, &ref).ok());
    reference[key][ts] = v;  // newest write wins, like the DB
    refs[key] = ref;
  }

  for (const auto& [key, samples] : reference) {
    // key format: hostname$host_X,metric$Y,region$tokyo
    const size_t h0 = key.find("host_");
    const size_t h1 = key.find(',', h0);
    const std::string host = key.substr(h0, h1 - h0);
    const size_t m0 = key.find("metric$") + 7;
    const size_t m1 = key.find(',', m0);
    const std::string metric = key.substr(m0, m1 - m0);

    QueryResult result;
    ASSERT_TRUE(db_->Query({TagMatcher::Equal("hostname", host),
                            TagMatcher::Equal("metric", metric)},
                           0, 1000 * kMin, &result)
                    .ok());
    ASSERT_EQ(result.size(), 1u) << key;
    std::map<int64_t, double> got;
    for (const auto& s : result[0].samples) got[s.timestamp] = s.value;
    EXPECT_EQ(got, samples) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DBPropertyTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace tu::core
