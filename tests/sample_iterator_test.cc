#include <gtest/gtest.h>

#include <map>

#include "core/timeunion_db.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace tu::core {
namespace {

using index::TagMatcher;

constexpr int64_t kMin = 60 * 1000;
constexpr int64_t kHour = 60 * kMin;

class SampleIteratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DBOptions opts;
    opts.workspace = "/tmp/timeunion_test/sample_iter";
    RemoveDirRecursive(opts.workspace);
    opts.lsm.memtable_bytes = 32 << 10;
    ASSERT_TRUE(TimeUnionDB::Open(opts, &db_).ok());
  }
  void TearDown() override {
    db_.reset();
    RemoveDirRecursive("/tmp/timeunion_test/sample_iter");
  }

  /// Drains an iterator into a map, checking ordering.
  std::map<int64_t, double> Drain(SampleIterator* iter) {
    std::map<int64_t, double> out;
    int64_t prev = INT64_MIN;
    while (iter->Valid()) {
      EXPECT_GT(iter->value().timestamp, prev);  // strictly ascending
      prev = iter->value().timestamp;
      out[iter->value().timestamp] = iter->value().value;
      iter->Next();
    }
    EXPECT_TRUE(iter->status().ok());
    return out;
  }

  std::unique_ptr<TimeUnionDB> db_;
};

TEST_F(SampleIteratorTest, StreamsMatchMaterializedQuery) {
  uint64_t ref = 0;
  ASSERT_TRUE(db_->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  const int n = 26 * 60;  // spans head + L0/L1 + L2
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(db_->InsertFast(ref, i * kMin, 1.0 * i).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());

  QueryResult materialized;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("m", "cpu")}, 0, n * kMin,
                         &materialized)
                  .ok());
  std::vector<TimeUnionDB::SeriesIterResult> streaming;
  ASSERT_TRUE(db_->QueryIterators({TagMatcher::Equal("m", "cpu")}, 0,
                                  n * kMin, &streaming)
                  .ok());
  ASSERT_EQ(streaming.size(), 1u);
  const auto drained = Drain(streaming[0].iter.get());
  ASSERT_EQ(drained.size(), materialized[0].samples.size());
  for (const auto& s : materialized[0].samples) {
    EXPECT_EQ(drained.at(s.timestamp), s.value);
  }
}

TEST_F(SampleIteratorTest, TimeBoundsRespected) {
  uint64_t ref = 0;
  ASSERT_TRUE(db_->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < 500; ++i) {
    ASSERT_TRUE(db_->InsertFast(ref, i * kMin, 1.0 * i).ok());
  }
  std::vector<TimeUnionDB::SeriesIterResult> streaming;
  ASSERT_TRUE(db_->QueryIterators({TagMatcher::Equal("m", "cpu")}, 2 * kHour,
                                  3 * kHour, &streaming)
                  .ok());
  const auto drained = Drain(streaming[0].iter.get());
  ASSERT_EQ(drained.size(), 61u);
  EXPECT_EQ(drained.begin()->first, 2 * kHour);
  EXPECT_EQ(drained.rbegin()->first, 3 * kHour);
}

TEST_F(SampleIteratorTest, NewestWinsAcrossOverlappingChunks) {
  uint64_t ref = 0;
  ASSERT_TRUE(db_->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < 300; ++i) {
    ASSERT_TRUE(db_->InsertFast(ref, i * kMin, 1.0).ok());
  }
  // Out-of-order overwrites landing in separate chunks.
  for (int i = 10; i < 50; i += 5) {
    ASSERT_TRUE(db_->InsertFast(ref, i * kMin, 99.0).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());

  std::vector<TimeUnionDB::SeriesIterResult> streaming;
  ASSERT_TRUE(db_->QueryIterators({TagMatcher::Equal("m", "cpu")}, 0,
                                  300 * kMin, &streaming)
                  .ok());
  const auto drained = Drain(streaming[0].iter.get());
  EXPECT_EQ(drained.at(10 * kMin), 99.0);
  EXPECT_EQ(drained.at(45 * kMin), 99.0);
  EXPECT_EQ(drained.at(11 * kMin), 1.0);
  EXPECT_EQ(drained.size(), 300u);
}

TEST_F(SampleIteratorTest, GroupMemberStreaming) {
  uint64_t gref = 0;
  std::vector<uint32_t> slots;
  ASSERT_TRUE(db_->InsertGroup({{"host", "h"}},
                               {{{"m", "a"}}, {{"m", "b"}}}, 0, {1.0, 2.0},
                               &gref, &slots)
                  .ok());
  for (int i = 1; i < 200; ++i) {
    ASSERT_TRUE(
        db_->InsertGroupFast(gref, slots, i * kMin, {1.0 + i, 2.0 + i}).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());

  std::vector<TimeUnionDB::SeriesIterResult> streaming;
  ASSERT_TRUE(db_->QueryIterators({TagMatcher::Equal("m", "b")}, 0,
                                  200 * kMin, &streaming)
                  .ok());
  ASSERT_EQ(streaming.size(), 1u);
  const auto drained = Drain(streaming[0].iter.get());
  ASSERT_EQ(drained.size(), 200u);
  EXPECT_EQ(drained.at(100 * kMin), 102.0);
}

TEST_F(SampleIteratorTest, EmptyRangeIsImmediatelyInvalid) {
  uint64_t ref = 0;
  ASSERT_TRUE(db_->Insert({{"m", "cpu"}}, 0, 1.0, &ref).ok());
  std::vector<TimeUnionDB::SeriesIterResult> streaming;
  ASSERT_TRUE(db_->QueryIterators({TagMatcher::Equal("m", "cpu")}, 5 * kHour,
                                  6 * kHour, &streaming)
                  .ok());
  ASSERT_EQ(streaming.size(), 1u);
  EXPECT_FALSE(streaming[0].iter->Valid());
  EXPECT_TRUE(streaming[0].iter->status().ok());
}

TEST_F(SampleIteratorTest, ListTagValues) {
  uint64_t ref = 0;
  for (const char* host : {"web-01", "web-02", "db-01"}) {
    ASSERT_TRUE(
        db_->Insert({{"hostname", host}, {"metric", "cpu"}}, 0, 1.0, &ref)
            .ok());
  }
  std::vector<std::string> values;
  ASSERT_TRUE(db_->ListTagValues("hostname", &values).ok());
  EXPECT_EQ(values,
            (std::vector<std::string>{"db-01", "web-01", "web-02"}));
  ASSERT_TRUE(db_->ListTagValues("nope", &values).ok());
  EXPECT_TRUE(values.empty());
}

class IteratorPropertyTest : public SampleIteratorTest,
                             public ::testing::WithParamInterface<int> {};

TEST_P(IteratorPropertyTest, RandomWorkloadStreamEqualsMaterialized) {
  Random rng(GetParam());
  uint64_t ref = 0;
  ASSERT_TRUE(db_->Insert({{"m", "x"}}, 0, 0.0, &ref).ok());
  for (int i = 0; i < 2000; ++i) {
    int64_t ts = (i / 2) * kMin;
    if (rng.OneIn(8)) ts = rng.Uniform(i + 1) * kMin / 2;
    ASSERT_TRUE(db_->InsertFast(ref, ts, rng.NextDouble()).ok());
  }
  if (GetParam() % 2) ASSERT_TRUE(db_->Flush().ok());

  QueryResult materialized;
  ASSERT_TRUE(db_->Query({TagMatcher::Equal("m", "x")}, 0, 2000 * kMin,
                         &materialized)
                  .ok());
  std::vector<TimeUnionDB::SeriesIterResult> streaming;
  ASSERT_TRUE(db_->QueryIterators({TagMatcher::Equal("m", "x")}, 0,
                                  2000 * kMin, &streaming)
                  .ok());
  const auto drained = Drain(streaming[0].iter.get());
  ASSERT_EQ(drained.size(), materialized[0].samples.size());
  for (const auto& s : materialized[0].samples) {
    EXPECT_EQ(drained.at(s.timestamp), s.value) << s.timestamp;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IteratorPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tu::core
