#include <gtest/gtest.h>

#include "cloud/block_store.h"
#include "cloud/cost_model.h"
#include "cloud/object_store.h"
#include "cloud/tiered_env.h"
#include "util/mmap_file.h"

namespace tu::cloud {
namespace {

class CloudStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = "/tmp/timeunion_test/cloud";
    RemoveDirRecursive(ws_);
  }
  void TearDown() override { RemoveDirRecursive(ws_); }
  std::string ws_;
};

TEST_F(CloudStorageTest, BlockStoreFileLifecycle) {
  BlockStore store(ws_ + "/fast", TierSimOptions::Instant());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(store.NewWritableFile("data.bin", &file).ok());
  ASSERT_TRUE(file->Append("hello ").ok());
  ASSERT_TRUE(file->Append("world").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());

  uint64_t size = 0;
  ASSERT_TRUE(store.GetFileSize("data.bin", &size).ok());
  EXPECT_EQ(size, 11u);

  std::unique_ptr<RandomAccessFile> reader;
  ASSERT_TRUE(store.NewRandomAccessFile("data.bin", &reader).ok());
  Slice result;
  std::string scratch;
  ASSERT_TRUE(reader->Read(6, 5, &result, &scratch).ok());
  EXPECT_EQ(result.ToString(), "world");

  ASSERT_TRUE(store.RenameFile("data.bin", "data2.bin").ok());
  EXPECT_TRUE(store.FileExists("data.bin").IsNotFound());
  EXPECT_TRUE(store.FileExists("data2.bin").ok());
  ASSERT_TRUE(store.DeleteFile("data2.bin").ok());
  EXPECT_TRUE(store.DeleteFile("data2.bin").IsNotFound());
}

TEST_F(CloudStorageTest, BlockStoreCountersAndFirstReadPenalty) {
  TierSimOptions sim;
  sim.per_op_latency_us = 100;
  sim.bandwidth_mb_per_s = 100;
  sim.first_read_penalty = 2.0;
  sim.real_sleep = false;
  BlockStore store(ws_ + "/fast2", sim);

  ASSERT_TRUE(store.WriteStringToFile("f", std::string(1000, 'x')).ok());
  EXPECT_GT(store.counters().bytes_written.load(), 999u);

  std::unique_ptr<RandomAccessFile> reader;
  ASSERT_TRUE(store.NewRandomAccessFile("f", &reader).ok());
  Slice result;
  std::string scratch;
  const uint64_t before = store.counters().charged_us.load();
  reader->Read(0, 1000, &result, &scratch);
  const uint64_t first = store.counters().charged_us.load() - before;
  reader->Read(0, 1000, &result, &scratch);
  const uint64_t second =
      store.counters().charged_us.load() - before - first;
  EXPECT_NEAR(static_cast<double>(first) / second, 2.0, 0.2);
}

TEST_F(CloudStorageTest, ObjectStorePutGetRangeDelete) {
  ObjectStore store(ws_ + "/slow", TierSimOptions::Instant());
  const std::string data = "0123456789abcdef";
  ASSERT_TRUE(store.PutObject("lsm/0001.sst", data).ok());

  std::string out;
  ASSERT_TRUE(store.GetObject("lsm/0001.sst", &out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(store.GetRange("lsm/0001.sst", 10, 6, &out).ok());
  EXPECT_EQ(out, "abcdef");
  // Range past the end truncates.
  ASSERT_TRUE(store.GetRange("lsm/0001.sst", 12, 100, &out).ok());
  EXPECT_EQ(out, "cdef");

  uint64_t size = 0;
  ASSERT_TRUE(store.ObjectSize("lsm/0001.sst", &size).ok());
  EXPECT_EQ(size, data.size());
  // Every GetRange is one request (the Eq. 4/6 cost structure).
  EXPECT_EQ(store.counters().get_ops.load(), 3u);

  EXPECT_TRUE(store.GetObject("missing", &out).IsNotFound());
  ASSERT_TRUE(store.DeleteObject("lsm/0001.sst").ok());
  EXPECT_TRUE(store.ObjectExists("lsm/0001.sst").IsNotFound());
}

TEST_F(CloudStorageTest, ObjectStoreGetRangeBoundaries) {
  ObjectStore store(ws_ + "/slow_b", TierSimOptions::Instant());
  const std::string data = "0123456789abcdef";
  ASSERT_TRUE(store.PutObject("k", data).ok());

  std::string out;
  // Short read within bounds succeeds.
  ASSERT_TRUE(store.GetRange("k", 12, 100, &out).ok());
  EXPECT_EQ(out, "cdef");
  // Offset exactly at the object size: nothing there to read.
  EXPECT_TRUE(store.GetRange("k", data.size(), 1, &out).IsInvalidArgument());
  // Offset past the end likewise.
  EXPECT_TRUE(store.GetRange("k", data.size() + 10, 4, &out).IsInvalidArgument());
  // Zero-length reads are fine anywhere (degenerate but harmless).
  ASSERT_TRUE(store.GetRange("k", 0, 0, &out).ok());
  EXPECT_TRUE(out.empty());

  // Empty object: only n == 0 works.
  ASSERT_TRUE(store.PutObject("empty", "").ok());
  ASSERT_TRUE(store.GetRange("empty", 0, 0, &out).ok());
  EXPECT_TRUE(store.GetRange("empty", 0, 1, &out).IsInvalidArgument());
}

TEST_F(CloudStorageTest, BlockStoreReadBoundaries) {
  BlockStore store(ws_ + "/fast_b", TierSimOptions::Instant());
  ASSERT_TRUE(store.WriteStringToFile("f", "hello").ok());

  std::unique_ptr<RandomAccessFile> reader;
  ASSERT_TRUE(store.NewRandomAccessFile("f", &reader).ok());
  Slice result;
  std::string scratch;
  // Short read within bounds succeeds.
  ASSERT_TRUE(reader->Read(3, 100, &result, &scratch).ok());
  EXPECT_EQ(result.ToString(), "lo");
  // Offset at / past EOF with n > 0 is an error.
  EXPECT_TRUE(reader->Read(5, 1, &result, &scratch).IsInvalidArgument());
  EXPECT_TRUE(reader->Read(99, 1, &result, &scratch).IsInvalidArgument());
  // n == 0 is fine (ReadFileToString on an empty file relies on this).
  ASSERT_TRUE(reader->Read(0, 0, &result, &scratch).ok());
  EXPECT_EQ(result.size(), 0u);
}

TEST_F(CloudStorageTest, ObjectStoreRenameObject) {
  ObjectStore store(ws_ + "/slow_r", TierSimOptions::Instant());
  ASSERT_TRUE(store.PutObject("lsm/0001.sst.tmp", "payload").ok());
  ASSERT_TRUE(store.RenameObject("lsm/0001.sst.tmp", "lsm/0001.sst").ok());
  EXPECT_TRUE(store.ObjectExists("lsm/0001.sst.tmp").IsNotFound());
  std::string out;
  ASSERT_TRUE(store.GetObject("lsm/0001.sst", &out).ok());
  EXPECT_EQ(out, "payload");
  EXPECT_TRUE(store.RenameObject("missing", "x").IsNotFound());
}

TEST_F(CloudStorageTest, ObjectStoreListByPrefix) {
  ObjectStore store(ws_ + "/slow2", TierSimOptions::Instant());
  ASSERT_TRUE(store.PutObject("a/1", "x").ok());
  ASSERT_TRUE(store.PutObject("a/2", "x").ok());
  ASSERT_TRUE(store.PutObject("b/1", "x").ok());
  std::vector<std::string> keys;
  ASSERT_TRUE(store.ListObjects("a/", &keys).ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a/1", "a/2"}));
  ASSERT_TRUE(store.ListObjects("", &keys).ok());
  EXPECT_EQ(keys.size(), 3u);
}

TEST_F(CloudStorageTest, TieredEnvLayout) {
  TieredEnv env(ws_ + "/env", TieredEnvOptions::Instant());
  ASSERT_TRUE(env.fast().WriteStringToFile("f", "fast data").ok());
  ASSERT_TRUE(env.slow().PutObject("o", "slow data").ok());
  EXPECT_EQ(env.fast().TotalBytesUsed(), 9u);
  EXPECT_EQ(env.slow().TotalBytesUsed(), 9u);
  EXPECT_FALSE(env.CountersReport().empty());
}

TEST(TierSimTest, ChargeFormula) {
  TierSimOptions sim;
  sim.per_op_latency_us = 100;
  sim.bandwidth_mb_per_s = 1;  // 1 B/us
  sim.first_read_penalty = 1.5;
  EXPECT_DOUBLE_EQ(sim.ChargeUs(1000, false), 1100.0);
  EXPECT_DOUBLE_EQ(sim.ChargeUs(1000, true), 1650.0);
  // Defaults: S3 per-request dominates EBS per-request by ~20x.
  const auto ebs = TierSimOptions::EbsDefaults();
  const auto s3 = TierSimOptions::S3Defaults();
  EXPECT_GT(s3.per_op_latency_us / ebs.per_op_latency_us, 10);
}

TEST(CostModelTest, PricingRatios) {
  StoragePricing p;
  EXPECT_NEAR(p.ebs_gp2_per_gb_month / p.s3_per_gb_month, 4.0, 0.5);
  EXPECT_GT(p.ram_per_gb_month / p.ebs_gp2_per_gb_month, 100);
  EXPECT_GT(p.MonthlyCost(1, 0, 0), p.MonthlyCost(0, 1, 0));
  EXPECT_GT(p.MonthlyCost(0, 1, 0), p.MonthlyCost(0, 0, 1));
}

TEST(CostModelTest, GroupingIndexCostMatchesPaperExample) {
  // §3.1: TSBS DevOps: Sg=101, Tu=118, Tg=1, Sp=8, St=15 => grouping
  // beneficial.
  GroupingParams p;
  p.n = 101000;
  p.t = 12;
  p.s_p = 8;
  p.s_t = 15;
  p.s_g = 101;
  p.t_g = 1;
  p.t_u = 118;
  EXPECT_TRUE(GroupingSavesIndexSpace(p));
  EXPECT_LT(IndexCostGrouping(p), IndexCostNoGrouping(p));
  // Degenerate grouping (one series per group, no shared tags' benefit).
  p.s_g = 1;
  p.t_u = 12;
  EXPECT_FALSE(GroupingSavesIndexSpace(p));
}

TEST(CostModelTest, CompactionCostMatchesPaperExample) {
  // §3.3 example: Sb=64MB, M=10, fast=1GB, data=100GB => >= 64GB saved.
  CompactionCostParams c;
  c.s_b = 64e6;
  c.m = 10;
  c.s_fast = 1e9;
  c.s_d = 100e9;
  EXPECT_NEAR(NumLevels(c.s_d, c.s_b, c.m), 4.2, 0.1);
  EXPECT_NEAR(NumLevels(c.s_fast, c.s_b, c.m), 2.2, 0.1);
  EXPECT_GE(SlowWriteCostSaving(c), 64e9 * 0.99);
  EXPECT_GT(SlowWriteCostMultiLevel(c), SlowWriteCostOneLevel(c));
}

TEST(CostModelTest, QueryCostCrossover) {
  // Grouping wins on S3 when the target series share a group (L>G); the
  // individual model wins on EBS for small member counts.
  QueryCostParams q;
  q.p = 12;
  q.s_data = 240 * 16;
  q.l = 5;
  q.g = 1;
  q.s_g = 101;
  EXPECT_LT(QueryCostGroupingS3(q), QueryCostNoGroupingS3(q));
  EXPECT_GT(QueryCostGroupingEbs(q), QueryCostNoGroupingEbs(q));
  // With L == G == 1 the individual model wins on S3 too (Fig. 14's
  // 1-1-24 explanation).
  q.l = 1;
  EXPECT_GT(QueryCostGroupingS3(q), QueryCostNoGroupingS3(q));
}

}  // namespace
}  // namespace tu::cloud
