// Unified query pipeline suite (`ctest -L query`):
//   - Differential: Query must be byte-identical to draining QueryIterators
//     over random workloads (out-of-order writes, group series, and a
//     breaker-open partial-read window) — both entry points sit on the same
//     QueryIteratorsImpl pipeline, and this pins that contract.
//   - Input validation: t0 > t1 and an empty matcher list are
//     InvalidArgument from both entry points.
//   - Pruning counters: a query over a window whose data is entirely on the
//     fast tier must not fetch a single slow-tier object even when older
//     L2-resident partitions exist (QueryStats + env counter deltas).
//   - Block cache surfacing: hits/misses/evictions through QueryStats,
//     HealthReport and CountersReport; block_cache_bytes = 0 disables
//     caching entirely.
//   - TableReader upper-bound pruning: a bounded blind drain stops reading
//     data blocks once the index key passes the bound.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/block_store.h"
#include "cloud/fault_injector.h"
#include "cloud/object_store.h"
#include "cloud/tiered_env.h"
#include "core/timeunion_db.h"
#include "lsm/key_format.h"
#include "lsm/table_builder.h"
#include "lsm/table_reader.h"
#include "query/read_context.h"
#include "util/interval_set.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace tu {
namespace {

using cloud::FaultInjector;
using cloud::FaultRule;
using core::DBOptions;
using core::QueryResult;
using core::TimeUnionDB;
using index::TagMatcher;

// Tiny partitions so modest workloads span head + L0/L1 + slow-tier L2.
DBOptions SmallPartitionOptions(const std::string& ws) {
  DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.partition_upper_bound_ms = 4000;
  opts.lsm.l0_partition_trigger = 1;
  return opts;
}

/// Materializes the streaming result exactly like Query does: drain each
/// iterator, drop empty series, union the per-iterator gap spans.
struct Materialized {
  QueryResult result;
  Status status = Status::OK();
};

Materialized Drain(std::vector<TimeUnionDB::SeriesIterResult> iters) {
  Materialized m;
  std::vector<std::pair<int64_t, int64_t>> missing;
  for (auto& r : iters) {
    core::SeriesResult series;
    series.id = r.id;
    series.labels = std::move(r.labels);
    int64_t prev = INT64_MIN;
    for (auto* it = r.iter.get(); it->Valid(); it->Next()) {
      EXPECT_GT(it->value().timestamp, prev);  // strictly ascending
      prev = it->value().timestamp;
      series.samples.push_back(it->value());
    }
    if (!r.iter->status().ok()) {
      m.status = r.iter->status();
      return m;
    }
    if (!r.complete) {
      missing.insert(missing.end(), r.missing_ranges.begin(),
                     r.missing_ranges.end());
    }
    if (!series.samples.empty()) m.result.push_back(std::move(series));
  }
  util::MergeIntervals(&missing);
  if (!missing.empty()) {
    m.result.complete = false;
    m.result.missing_ranges = std::move(missing);
  }
  return m;
}

void ExpectIdentical(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    ASSERT_EQ(a[i].labels.size(), b[i].labels.size());
    for (size_t l = 0; l < a[i].labels.size(); ++l) {
      EXPECT_EQ(a[i].labels[l].name, b[i].labels[l].name);
      EXPECT_EQ(a[i].labels[l].value, b[i].labels[l].value);
    }
    ASSERT_EQ(a[i].samples.size(), b[i].samples.size()) << "series " << i;
    for (size_t s = 0; s < a[i].samples.size(); ++s) {
      EXPECT_EQ(a[i].samples[s].timestamp, b[i].samples[s].timestamp);
      EXPECT_EQ(a[i].samples[s].value, b[i].samples[s].value);
    }
  }
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.missing_ranges, b.missing_ranges);
}

// -- Input validation --------------------------------------------------------

TEST(QueryValidationTest, RejectsInvertedRangeAndEmptyMatchers) {
  const std::string ws = "/tmp/timeunion_test/query_validation";
  RemoveDirRecursive(ws);
  DBOptions opts;
  opts.workspace = ws;
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 1.0, &ref).ok());

  QueryResult result;
  std::vector<TimeUnionDB::SeriesIterResult> iters;
  const auto matcher = TagMatcher::Equal("m", "cpu");

  EXPECT_TRUE(db->Query({matcher}, 10, 5, &result).IsInvalidArgument());
  EXPECT_TRUE(db->Query({}, 0, 10, &result).IsInvalidArgument());
  EXPECT_TRUE(
      db->QueryIterators({matcher}, 10, 5, &iters).IsInvalidArgument());
  EXPECT_TRUE(db->QueryIterators({}, 0, 10, &iters).IsInvalidArgument());

  // A single-point range (t0 == t1) is legal.
  EXPECT_TRUE(db->Query({matcher}, 0, 0, &result).ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), 1u);

  db.reset();
  RemoveDirRecursive(ws);
}

// -- Differential: Query vs drained QueryIterators ---------------------------

class QueryDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryDifferentialTest, RandomWorkloadIdenticalAcrossEntryPoints) {
  const std::string ws = "/tmp/timeunion_test/query_differential";
  RemoveDirRecursive(ws);
  DBOptions opts = SmallPartitionOptions(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  Random rng(GetParam());
  constexpr int kSeries = 3;
  constexpr int kSamplesPerSeries = 1200;
  constexpr int64_t kStepMs = 250;

  // Individual series share dc=east with the group below, so one matcher
  // exercises both head kinds; out-of-order rewrites land in older chunks.
  uint64_t refs[kSeries] = {0, 0, 0};
  for (int s = 0; s < kSeries; ++s) {
    ASSERT_TRUE(db->Insert({{"dc", "east"}, {"m", "s" + std::to_string(s)}},
                           0, 0.0, &refs[s])
                    .ok());
  }
  uint64_t gref = 0;
  std::vector<uint32_t> slots;
  ASSERT_TRUE(db->InsertGroup({{"dc", "east"}, {"g", "1"}},
                              {{{"mem", "a"}}, {{"mem", "b"}}}, 0, {0.0, 0.0},
                              &gref, &slots)
                  .ok());

  for (int i = 1; i < kSamplesPerSeries; ++i) {
    for (int s = 0; s < kSeries; ++s) {
      int64_t ts = i * kStepMs;
      if (rng.OneIn(8)) ts = rng.Uniform(i) * kStepMs;
      ASSERT_TRUE(db->InsertFast(refs[s], ts, rng.NextDouble()).ok());
    }
    ASSERT_TRUE(db->InsertGroupFast(gref, slots, i * kStepMs,
                                    {rng.NextDouble(), rng.NextDouble()})
                    .ok());
    if (i == kSamplesPerSeries / 2 && GetParam() % 2) {
      ASSERT_TRUE(db->Flush().ok());
    }
  }
  if (GetParam() % 3 == 0) ASSERT_TRUE(db->Flush().ok());

  // Several windows, including ones cutting through chunk boundaries.
  const int64_t span = kSamplesPerSeries * kStepMs;
  const std::pair<int64_t, int64_t> windows[] = {
      {0, span}, {span / 3, 2 * span / 3}, {span - 1000, span}, {0, 0}};
  for (const auto& [t0, t1] : windows) {
    QueryResult materialized;
    ASSERT_TRUE(
        db->Query({TagMatcher::Equal("dc", "east")}, t0, t1, &materialized)
            .ok());
    query::QueryStats stats;
    std::vector<TimeUnionDB::SeriesIterResult> iters;
    ASSERT_TRUE(db->QueryIterators({TagMatcher::Equal("dc", "east")}, t0, t1,
                                   &iters, &stats)
                    .ok());
    Materialized streamed = Drain(std::move(iters));
    ASSERT_TRUE(streamed.status.ok()) << streamed.status.ToString();
    ExpectIdentical(materialized, streamed.result);
    // Both passes walked the same pipeline; the counters must agree on the
    // creation-time pruning decisions.
    EXPECT_EQ(materialized.stats.tables_considered, stats.tables_considered);
    EXPECT_EQ(materialized.stats.tables_pruned(), stats.tables_pruned());
    if (t1 > t0) {
      EXPECT_GT(materialized.stats.chunks_decoded, 0u);
    }
  }

  db.reset();
  RemoveDirRecursive(ws);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// The two entry points must also agree while the slow tier is down and the
// read is partial (breaker open, unreachable L2 tables skipped).
TEST(QueryDifferentialTest, BreakerOpenPartialReadsIdentical) {
  const std::string ws = "/tmp/timeunion_test/query_partial_diff";
  RemoveDirRecursive(ws);
  auto fi = std::make_shared<FaultInjector>(13);
  DBOptions opts = SmallPartitionOptions(ws);
  opts.env_options.slow_sim.fault = fi;
  opts.env_options.slow_sim.retry.max_attempts = 2;
  opts.env_options.slow_sim.retry.real_sleep = false;
  cloud::CircuitBreakerOptions& b = opts.env_options.slow_sim.breaker;
  b.enabled = true;
  b.window = 8;
  b.min_samples = 4;
  b.consecutive_failures_to_open = 3;

  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());
  constexpr int kTotal = 2000;
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < kTotal; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumL2Partitions(), 0u);

  // Total outage; trip the breaker deterministically before querying.
  FaultRule outage;
  outage.ops = cloud::kAllFaultOps;
  outage.probability = 1.0;
  outage.kind = FaultRule::Kind::kPermanent;
  fi->AddRule(outage);
  cloud::ObjectStore& slow = db->env().slow();
  for (int i = 0;
       i < 20 && slow.breaker().state() != cloud::BreakerState::kOpen; ++i) {
    (void)slow.PutObject("breaker_probe", "x");
  }
  ASSERT_EQ(slow.breaker().state(), cloud::BreakerState::kOpen);

  QueryResult materialized;
  ASSERT_TRUE(db->Query({TagMatcher::Equal("m", "cpu")}, 0, kTotal * 250LL,
                        &materialized)
                  .ok());
  EXPECT_FALSE(materialized.complete);
  ASSERT_FALSE(materialized.missing_ranges.empty());
  EXPECT_GT(materialized.stats.tables_skipped_unreachable, 0u);

  std::vector<TimeUnionDB::SeriesIterResult> iters;
  query::QueryStats stats;
  ASSERT_TRUE(db->QueryIterators({TagMatcher::Equal("m", "cpu")}, 0,
                                 kTotal * 250LL, &iters, &stats)
                  .ok());
  EXPECT_GT(stats.tables_skipped_unreachable, 0u);
  Materialized streamed = Drain(std::move(iters));
  ASSERT_TRUE(streamed.status.ok()) << streamed.status.ToString();
  ExpectIdentical(materialized, streamed.result);

  db.reset();
  RemoveDirRecursive(ws);
}

// -- Pruning: cold L2 data outside the window is never fetched ---------------

TEST(QueryPruningTest, FastWindowQueryFetchesNothingFromSlowTier) {
  const std::string ws = "/tmp/timeunion_test/query_pruning";
  RemoveDirRecursive(ws);
  DBOptions opts = SmallPartitionOptions(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  constexpr int kOld = 2000;
  constexpr int kRecent = 100;
  constexpr int64_t kStepMs = 250;
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < kOld; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * kStepMs, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumL2Partitions(), 0u);
  // Recent samples land after the flush and stay on the fast tier.
  for (int i = kOld; i < kOld + kRecent; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * kStepMs, 1.0 * i).ok());
  }

  const auto matcher = TagMatcher::Equal("m", "cpu");
  const cloud::TierCounters& slow = db->env().slow().counters();

  // Recent-window query: every L2 partition ends before t0, so partition /
  // table pruning must keep the read entirely on the fast tier.
  const uint64_t gets_before = slow.get_ops.load();
  QueryResult recent;
  ASSERT_TRUE(db->Query({matcher}, kOld * kStepMs,
                        (kOld + kRecent) * kStepMs, &recent)
                  .ok());
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].samples.size(), static_cast<size_t>(kRecent));
  EXPECT_EQ(slow.get_ops.load(), gets_before)
      << "recent-window query reached the slow tier";
  EXPECT_EQ(recent.stats.slow_tier_fetches, 0u);
  EXPECT_GT(recent.stats.partitions_pruned + recent.stats.tables_pruned_time,
            0u);

  // Control: an old window must hit L2 — this proves the counters above
  // were not trivially zero.
  const uint64_t gets_mid = slow.get_ops.load();
  QueryResult old;
  ASSERT_TRUE(db->Query({matcher}, 0, 8000, &old).ok());
  ASSERT_EQ(old.size(), 1u);
  EXPECT_EQ(old[0].samples.size(), static_cast<size_t>(8000 / kStepMs + 1));
  EXPECT_GT(slow.get_ops.load(), gets_mid);
  EXPECT_GT(old.stats.slow_tier_fetches, 0u);
  EXPECT_GT(old.stats.blocks_read, 0u);

  const std::string report = db->CountersReport();
  EXPECT_NE(report.find("queries: run="), std::string::npos);
  EXPECT_NE(report.find("block_cache:"), std::string::npos);

  db.reset();
  RemoveDirRecursive(ws);
}

// -- Block cache surfacing ---------------------------------------------------

TEST(BlockCacheSurfacingTest, HitsAndMissesReachReports) {
  const std::string ws = "/tmp/timeunion_test/query_cache_hits";
  RemoveDirRecursive(ws);
  DBOptions opts = SmallPartitionOptions(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < 2000; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumL2Partitions(), 0u);

  const auto matcher = TagMatcher::Equal("m", "cpu");
  QueryResult cold;
  ASSERT_TRUE(db->Query({matcher}, 0, 2000 * 250LL, &cold).ok());
  EXPECT_GT(cold.stats.cache_misses, 0u);

  core::HealthReport health = db->HealthReport();
  EXPECT_TRUE(health.block_cache_enabled);
  EXPECT_GT(health.block_cache_misses, 0u);
  EXPECT_GT(health.block_cache_usage, 0u);

  // Identical warm query: data blocks come from the cache, not the tier.
  const cloud::TierCounters& slow = db->env().slow().counters();
  const uint64_t gets_before = slow.get_ops.load();
  QueryResult warm;
  ASSERT_TRUE(db->Query({matcher}, 0, 2000 * 250LL, &warm).ok());
  EXPECT_GT(warm.stats.cache_hits, 0u);
  EXPECT_EQ(warm.stats.slow_tier_fetches, 0u);
  EXPECT_EQ(slow.get_ops.load(), gets_before);
  ExpectIdentical(cold, warm);

  health = db->HealthReport();
  EXPECT_GT(health.block_cache_hits, 0u);
  const std::string report = db->CountersReport();
  EXPECT_NE(report.find("block_cache: hits="), std::string::npos);

  db.reset();
  RemoveDirRecursive(ws);
}

TEST(BlockCacheSurfacingTest, TinyCacheReportsEvictions) {
  const std::string ws = "/tmp/timeunion_test/query_cache_evict";
  RemoveDirRecursive(ws);
  DBOptions opts = SmallPartitionOptions(ws);
  opts.block_cache_bytes = 8 << 10;  // 512 B per shard: every block evicts
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < 2000; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  QueryResult result;
  ASSERT_TRUE(
      db->Query({TagMatcher::Equal("m", "cpu")}, 0, 2000 * 250LL, &result)
          .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), 2000u);

  core::HealthReport health = db->HealthReport();
  EXPECT_TRUE(health.block_cache_enabled);
  EXPECT_GT(health.block_cache_evictions, 0u);
  EXPECT_NE(db->CountersReport().find("evictions="), std::string::npos);

  db.reset();
  RemoveDirRecursive(ws);
}

TEST(BlockCacheSurfacingTest, ZeroBytesDisablesCaching) {
  const std::string ws = "/tmp/timeunion_test/query_cache_off";
  RemoveDirRecursive(ws);
  DBOptions opts = SmallPartitionOptions(ws);
  opts.block_cache_bytes = 0;
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < 2000; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumL2Partitions(), 0u);

  // Queries work — every cold block is re-fetched, none is cached.
  const auto matcher = TagMatcher::Equal("m", "cpu");
  QueryResult first, second;
  ASSERT_TRUE(db->Query({matcher}, 0, 2000 * 250LL, &first).ok());
  ASSERT_TRUE(db->Query({matcher}, 0, 2000 * 250LL, &second).ok());
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].samples.size(), 2000u);
  ExpectIdentical(first, second);
  EXPECT_EQ(first.stats.cache_hits, 0u);
  EXPECT_EQ(first.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.cache_hits, 0u);

  core::HealthReport health = db->HealthReport();
  EXPECT_FALSE(health.block_cache_enabled);
  EXPECT_EQ(health.block_cache_usage, 0u);
  EXPECT_NE(db->CountersReport().find("block_cache: disabled"),
            std::string::npos);

  db.reset();
  RemoveDirRecursive(ws);
}

}  // namespace

// -- TableReader upper-bound block pruning -----------------------------------

namespace lsm {
namespace {

TEST(TableReaderBoundTest, BlindDrainStopsAtUpperBound) {
  const std::string ws = "/tmp/timeunion_test/query_table_bound";
  RemoveDirRecursive(ws);
  auto fast = std::make_unique<cloud::BlockStore>(
      ws + "/fast", cloud::TierSimOptions::Instant());

  std::unique_ptr<cloud::WritableFile> file;
  ASSERT_TRUE(fast->NewWritableFile("bound.sst", &file).ok());
  FileTableSink sink(std::move(file));
  TableBuilderOptions bopts;
  bopts.block_size = 256;  // many small blocks for the pruning assertion
  TableBuilder builder(bopts, &sink);
  constexpr int kEntries = 300;
  uint64_t seq = 0;
  for (int i = 0; i < kEntries; ++i) {
    ASSERT_TRUE(builder
                    .Add(MakeInternalKey(MakeChunkKey(7, i * 1000), ++seq),
                         "chunk-" + std::to_string(i))
                    .ok());
  }
  TableMeta meta;
  ASSERT_TRUE(builder.Finish(&meta).ok());
  ASSERT_TRUE(sink.Close().ok());

  std::unique_ptr<TableSource> source;
  ASSERT_TRUE(FastTableSource::Open(fast.get(), "bound.sst", &source).ok());
  std::unique_ptr<TableReader> reader;
  ASSERT_TRUE(
      TableReader::Open(TableReaderOptions{}, std::move(source), &reader)
          .ok());

  // Unbounded blind drain sees every entry and prunes nothing.
  query::QueryStats full_stats;
  {
    auto it = reader->NewIterator(&full_stats, std::string());
    int n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) ++n;
    ASSERT_TRUE(it->status().ok());
    EXPECT_EQ(n, kEntries);
  }
  EXPECT_EQ(full_stats.blocks_pruned, 0u);
  EXPECT_GT(full_stats.blocks_read, 1u);

  // Bounded drain: the iterator exhausts the block straddling the bound,
  // then refuses to load the remaining blocks instead of walking them.
  constexpr int kBound = 100;
  query::QueryStats stats;
  auto it = reader->NewIterator(&stats, MakeChunkKey(7, kBound * 1000));
  int n = 0;
  int64_t last_ts = INT64_MIN;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    last_ts = ChunkKeyTimestamp(InternalKeyUserKey(it->key()));
    ++n;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_GE(n, kBound + 1);  // everything up to the bound is delivered
  EXPECT_LT(n, kEntries);    // but not the whole table
  EXPECT_GE(last_ts, kBound * 1000);
  EXPECT_GT(stats.blocks_pruned, 0u);
  EXPECT_LT(stats.blocks_read, full_stats.blocks_read);
  // Every block is accounted for exactly once: read or pruned.
  EXPECT_EQ(stats.blocks_read + stats.blocks_pruned, full_stats.blocks_read);

  reader.reset();
  fast.reset();
  RemoveDirRecursive(ws);
}

}  // namespace
}  // namespace lsm
}  // namespace tu
