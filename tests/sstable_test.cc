#include <gtest/gtest.h>

#include <map>

#include "cloud/block_store.h"
#include "cloud/object_store.h"
#include "lsm/block.h"
#include "lsm/key_format.h"
#include "lsm/memtable.h"
#include "lsm/merging_iterator.h"
#include "lsm/table_builder.h"
#include "lsm/table_reader.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace tu::lsm {
namespace {

TEST(BlockTest, RoundTrip) {
  BlockBuilder builder(4);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    entries[key] = "value" + std::to_string(i);
  }
  for (const auto& [k, v] : entries) builder.Add(k, v);
  Block block(builder.Finish());

  auto it = block.NewIterator();
  EXPECT_FALSE(it->Valid());
  it->SeekToFirst();
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), k);
    EXPECT_EQ(it->value().ToString(), v);
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, SeekSemantics) {
  BlockBuilder builder(3);
  builder.Add("b", "1");
  builder.Add("d", "2");
  builder.Add("f", "3");
  Block block(builder.Finish());
  auto it = block.NewIterator();

  it->Seek("a");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "b");
  it->Seek("d");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "d");
  it->Seek("e");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "f");
  it->Seek("g");
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, EmptyBlock) {
  BlockBuilder builder;
  Block block(builder.Finish());
  auto it = block.NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->Seek("x");
  EXPECT_FALSE(it->Valid());
}

TEST(MemTableTest, OrderedWithDuplicateUserKeysNewestFirst) {
  MemTable mem;
  mem.Add(1, MakeChunkKey(5, 100), "old");
  mem.Add(2, MakeChunkKey(5, 100), "new");
  mem.Add(3, MakeChunkKey(4, 200), "other");

  auto it = mem.NewIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ChunkKeyId(InternalKeyUserKey(it->key())), 4u);
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ChunkKeyId(InternalKeyUserKey(it->key())), 5u);
  EXPECT_EQ(it->value().ToString(), "new");  // newest seq first
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().ToString(), "old");
  it->Next();
  EXPECT_FALSE(it->Valid());
  EXPECT_EQ(mem.min_ts(), 100);
  EXPECT_EQ(mem.max_ts(), 200);
}

class SSTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workspace_ = "/tmp/timeunion_test/sstable";
    RemoveDirRecursive(workspace_);
    fast_ = std::make_unique<cloud::BlockStore>(
        workspace_ + "/fast", cloud::TierSimOptions::Instant());
    slow_ = std::make_unique<cloud::ObjectStore>(
        workspace_ + "/slow", cloud::TierSimOptions::Instant());
  }

  void TearDown() override { RemoveDirRecursive(workspace_); }

  /// Builds a table of n chunk entries on the fast tier; returns the meta.
  TableMeta BuildTable(const std::string& fname, int n) {
    std::unique_ptr<cloud::WritableFile> file;
    EXPECT_TRUE(fast_->NewWritableFile(fname, &file).ok());
    FileTableSink sink(std::move(file));
    TableBuilder builder(TableBuilderOptions{}, &sink);
    uint64_t seq = 0;
    for (int i = 0; i < n; ++i) {
      const std::string key =
          MakeInternalKey(MakeChunkKey(i / 10, 1000 * (i % 10)), ++seq);
      EXPECT_TRUE(builder.Add(key, "chunk-" + std::to_string(i)).ok());
    }
    TableMeta meta;
    EXPECT_TRUE(builder.Finish(&meta).ok());
    EXPECT_TRUE(sink.Close().ok());
    return meta;
  }

  std::string workspace_;
  std::unique_ptr<cloud::BlockStore> fast_;
  std::unique_ptr<cloud::ObjectStore> slow_;
};

TEST_F(SSTableTest, BuildAndScanFastTier) {
  const TableMeta meta = BuildTable("t1.sst", 500);
  EXPECT_EQ(meta.num_entries, 500u);
  EXPECT_EQ(meta.min_series_id, 0u);
  EXPECT_EQ(meta.max_series_id, 49u);

  std::unique_ptr<TableSource> source;
  ASSERT_TRUE(FastTableSource::Open(fast_.get(), "t1.sst", &source).ok());
  std::unique_ptr<TableReader> reader;
  ASSERT_TRUE(TableReader::Open(TableReaderOptions{}, std::move(source),
                                &reader)
                  .ok());

  auto it = reader->NewIterator();
  it->SeekToFirst();
  int count = 0;
  std::string prev;
  while (it->Valid()) {
    if (!prev.empty()) EXPECT_LT(prev, it->key().ToString());
    prev = it->key().ToString();
    ++count;
    it->Next();
  }
  EXPECT_TRUE(it->status().ok());
  EXPECT_EQ(count, 500);
}

TEST_F(SSTableTest, SeekOnTable) {
  BuildTable("t2.sst", 1000);
  std::unique_ptr<TableSource> source;
  ASSERT_TRUE(FastTableSource::Open(fast_.get(), "t2.sst", &source).ok());
  std::unique_ptr<TableReader> reader;
  ASSERT_TRUE(TableReader::Open(TableReaderOptions{}, std::move(source),
                                &reader)
                  .ok());

  // Seek to series 42's chunks: keys (42, *) — 10 chunks.
  auto it = reader->NewIterator();
  it->Seek(MakeChunkKey(42, INT64_MIN));
  int found = 0;
  while (it->Valid() &&
         ChunkKeyId(InternalKeyUserKey(it->key())) == 42u) {
    ++found;
    it->Next();
  }
  EXPECT_EQ(found, 10);
}

TEST_F(SSTableTest, SlowTierWithBlockCache) {
  // Build in memory and upload as one object (the L1->L2 flow).
  BufferTableSink sink;
  TableBuilder builder(TableBuilderOptions{}, &sink);
  uint64_t seq = 0;
  for (int i = 0; i < 300; ++i) {
    builder.Add(MakeInternalKey(MakeChunkKey(7, i * 500), ++seq),
                std::string(100, 'v'));
  }
  TableMeta meta;
  ASSERT_TRUE(builder.Finish(&meta).ok());
  ASSERT_TRUE(slow_->PutObject("0001.sst", sink.buffer()).ok());

  BlockCache cache(1 << 20);
  TableReaderOptions opts;
  opts.block_cache = &cache;
  opts.cache_id = "sst:1";

  std::unique_ptr<TableSource> source;
  ASSERT_TRUE(SlowTableSource::Open(slow_.get(), "0001.sst", &source).ok());
  std::unique_ptr<TableReader> reader;
  ASSERT_TRUE(TableReader::Open(opts, std::move(source), &reader).ok());

  const uint64_t gets_before = slow_->counters().get_ops.load();
  auto scan = [&] {
    auto it = reader->NewIterator();
    it->SeekToFirst();
    int n = 0;
    while (it->Valid()) {
      ++n;
      it->Next();
    }
    return n;
  };
  EXPECT_EQ(scan(), 300);
  const uint64_t gets_first = slow_->counters().get_ops.load() - gets_before;
  EXPECT_EQ(scan(), 300);
  const uint64_t gets_second =
      slow_->counters().get_ops.load() - gets_before - gets_first;
  // Second scan is served from the block cache.
  EXPECT_EQ(gets_second, 0u);
  EXPECT_GT(gets_first, 0u);
}

TEST_F(SSTableTest, BloomFilterRejectsAbsentIds) {
  BuildTable("t3.sst", 100);
  std::unique_ptr<TableSource> source;
  ASSERT_TRUE(FastTableSource::Open(fast_.get(), "t3.sst", &source).ok());
  std::unique_ptr<TableReader> reader;
  ASSERT_TRUE(TableReader::Open(TableReaderOptions{}, std::move(source),
                                &reader)
                  .ok());
  // Present IDs must pass (no false negatives).
  for (uint64_t id = 0; id < 10; ++id) {
    EXPECT_TRUE(reader->MayContainId(id)) << id;
  }
  // Absent IDs are mostly rejected (~1% FP rate at 10 bits/key).
  int rejected = 0;
  for (uint64_t id = 1000; id < 1200; ++id) {
    if (!reader->MayContainId(id)) ++rejected;
  }
  EXPECT_GT(rejected, 150);
}

TEST_F(SSTableTest, CorruptBlockDetected) {
  BuildTable("t4.sst", 50);
  // Flip a byte in the middle of the file.
  std::string contents;
  ASSERT_TRUE(fast_->ReadFileToString("t4.sst", &contents).ok());
  contents[contents.size() / 3] ^= 0x5a;
  ASSERT_TRUE(fast_->WriteStringToFile("t4.sst", contents).ok());

  std::unique_ptr<TableSource> source;
  ASSERT_TRUE(FastTableSource::Open(fast_.get(), "t4.sst", &source).ok());
  std::unique_ptr<TableReader> reader;
  Status open_status =
      TableReader::Open(TableReaderOptions{}, std::move(source), &reader);
  if (!open_status.ok()) {
    EXPECT_TRUE(open_status.IsCorruption());
    return;  // corruption hit the index block
  }
  auto it = reader->NewIterator();
  it->SeekToFirst();
  while (it->Valid()) it->Next();
  EXPECT_FALSE(it->status().ok());
}

TEST(MergingIteratorTest, MergesSortedStreams) {
  MemTable a, b;
  a.Add(1, MakeChunkKey(1, 100), "a1");
  a.Add(2, MakeChunkKey(3, 100), "a2");
  b.Add(3, MakeChunkKey(2, 100), "b1");
  b.Add(4, MakeChunkKey(4, 100), "b2");

  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(a.NewIterator());
  children.push_back(b.NewIterator());
  auto merged = NewMergingIterator(std::move(children));

  merged->SeekToFirst();
  std::vector<uint64_t> ids;
  while (merged->Valid()) {
    ids.push_back(ChunkKeyId(InternalKeyUserKey(merged->key())));
    merged->Next();
  }
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2, 3, 4}));
}

TEST(MergingIteratorTest, EmptyChildren) {
  std::vector<std::unique_ptr<Iterator>> children;
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
}

}  // namespace
}  // namespace tu::lsm
