#include "baseline/tsdb_engine.h"

#include <gtest/gtest.h>

#include "util/memory_tracker.h"
#include "util/mmap_file.h"

namespace tu::baseline {
namespace {

using index::Labels;
using index::TagMatcher;

constexpr int64_t kMin = 60 * 1000;
constexpr int64_t kHour = 60 * kMin;

class TsdbEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { Recreate(DefaultOptions()); }

  static TsdbOptions DefaultOptions() {
    TsdbOptions opts;
    opts.workspace = "/tmp/timeunion_test/tsdb";
    opts.samples_per_chunk = 120;
    return opts;
  }

  void Recreate(TsdbOptions opts) {
    engine_.reset();
    RemoveDirRecursive(opts.workspace);
    ASSERT_TRUE(TsdbEngine::Open(opts, &engine_).ok());
  }

  void TearDown() override {
    engine_.reset();
    RemoveDirRecursive("/tmp/timeunion_test/tsdb");
  }

  static Labels MakeLabels(int host, const std::string& metric) {
    return Labels{{"hostname", "host_" + std::to_string(host)},
                  {"metric", metric}};
  }

  std::unique_ptr<TsdbEngine> engine_;
};

TEST_F(TsdbEngineTest, HeadInsertAndQuery) {
  uint64_t ref = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        engine_->Insert(MakeLabels(1, "cpu"), i * kMin, 1.0 * i, &ref).ok());
  }
  std::vector<TsdbSeriesResult> result;
  ASSERT_TRUE(engine_->Query({TagMatcher::Equal("metric", "cpu")}, 0,
                             100 * kMin, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), 100u);
}

TEST_F(TsdbEngineTest, RejectsOutOfOrder) {
  uint64_t ref = 0;
  ASSERT_TRUE(engine_->Insert(MakeLabels(1, "cpu"), 100, 1.0, &ref).ok());
  EXPECT_TRUE(engine_->InsertFast(ref, 50, 2.0).IsNotSupported());
  EXPECT_TRUE(engine_->InsertFast(ref, 100, 2.0).IsNotSupported());
  EXPECT_EQ(engine_->stats().rejected_out_of_order.load(), 2u);
}

TEST_F(TsdbEngineTest, BlocksCutAndRemainQueryable) {
  uint64_t ref = 0;
  ASSERT_TRUE(engine_->Insert(MakeLabels(1, "cpu"), 0, 0.0, &ref).ok());
  const int n = 8 * 60;  // 8 hours -> multiple 2h blocks
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(engine_->InsertFast(ref, i * kMin, 1.0 * i).ok());
  }
  ASSERT_TRUE(engine_->Flush().ok());
  EXPECT_GT(engine_->stats().blocks_cut.load(), 1u);

  std::vector<TsdbSeriesResult> result;
  ASSERT_TRUE(engine_->Query({TagMatcher::Equal("metric", "cpu")}, 0,
                             n * kMin, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), static_cast<size_t>(n));
  // Blocks live on the slow tier by default (cloud support).
  EXPECT_GT(engine_->env().slow().counters().put_ops.load(), 0u);
}

TEST_F(TsdbEngineTest, BlockCompactionMergesBlocks) {
  auto opts = DefaultOptions();
  opts.compact_block_count = 2;
  Recreate(opts);
  uint64_t ref = 0;
  ASSERT_TRUE(engine_->Insert(MakeLabels(1, "cpu"), 0, 0.0, &ref).ok());
  for (int i = 1; i < 12 * 60; ++i) {
    ASSERT_TRUE(engine_->InsertFast(ref, i * kMin, 1.0).ok());
  }
  ASSERT_TRUE(engine_->Flush().ok());
  EXPECT_GT(engine_->stats().compactions.load(), 0u);

  std::vector<TsdbSeriesResult> result;
  ASSERT_TRUE(engine_->Query({TagMatcher::Equal("metric", "cpu")}, 0,
                             12 * kHour, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), static_cast<size_t>(12 * 60));
}

TEST_F(TsdbEngineTest, LevelDbSampleStorageMode) {
  auto opts = DefaultOptions();
  opts.use_leveldb_samples = true;
  opts.leveled.num_fast_levels = 0;  // SSTables on S3, like tsdb-LDB
  Recreate(opts);

  uint64_t ref = 0;
  ASSERT_TRUE(engine_->Insert(MakeLabels(1, "cpu"), 0, 0.0, &ref).ok());
  for (int i = 1; i < 6 * 60; ++i) {
    ASSERT_TRUE(engine_->InsertFast(ref, i * kMin, 2.0 * i).ok());
  }
  ASSERT_TRUE(engine_->Flush().ok());

  std::vector<TsdbSeriesResult> result;
  ASSERT_TRUE(engine_->Query({TagMatcher::Equal("metric", "cpu")}, 0,
                             6 * kHour, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].samples.size(), static_cast<size_t>(6 * 60));
  EXPECT_EQ(result[0].samples[100].value, 200.0);
}

TEST_F(TsdbEngineTest, IndexMemoryGrowsLinearlyWithSeries) {
  MemoryTracker::Global().Reset();
  uint64_t ref = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine_->Register(MakeLabels(i, "cpu"), &ref).ok());
  }
  const int64_t after_100 =
      MemoryTracker::Global().Get(MemCategory::kInvertedIndex);
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(engine_->Register(MakeLabels(i, "cpu"), &ref).ok());
  }
  const int64_t after_200 =
      MemoryTracker::Global().Get(MemCategory::kInvertedIndex);
  EXPECT_GT(after_100, 0);
  // Roughly linear: the second hundred costs within 2x of the first.
  EXPECT_LT(after_200, after_100 * 3);
  EXPECT_GT(after_200, after_100 * 3 / 2);
}

}  // namespace
}  // namespace tu::baseline
