// Observability subsystem suite (`ctest -L concurrency`, runs under TSan):
//   - Histogram bucket math and percentile estimates vs a reference
//     quantile (log-scale buckets guarantee estimates within 2x).
//   - Multi-threaded Histogram/Counter hammer: totals must be exact and
//     the recording path race-free.
//   - EventTrace ring semantics: bounded size, monotone seqs, drop
//     detection via total_recorded().
//   - MetricsSnapshot::ToJson schema stability (exact string) and
//     Prometheus text exposition.
//   - DB-level: TimeUnionDB::Metrics() covers ingest/flush/compaction/
//     query/slow-tier instruments after a real workload; HealthReport and
//     CountersReport are views over the same snapshot; metrics.jsonl
//     emission; DBOptions::Validate rejections.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/timeunion_db.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "util/mmap_file.h"

namespace tu {
namespace {

using core::DBOptions;
using core::QueryResult;
using core::TimeUnionDB;
using index::TagMatcher;

// -- Histogram ----------------------------------------------------------------

TEST(HistogramTest, BucketMath) {
  EXPECT_EQ(obs::Histogram::BucketFor(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketFor(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketFor(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketFor(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketFor(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketFor(1023), 10u);
  EXPECT_EQ(obs::Histogram::BucketFor(1024), 11u);
  EXPECT_EQ(obs::Histogram::BucketFor(UINT64_MAX),
            obs::Histogram::kBuckets - 1);
  // Every value lands inside its bucket's [lower, upper) range.
  for (uint64_t us : {0ull, 1ull, 7ull, 100ull, 4096ull, 1000000ull}) {
    const size_t b = obs::Histogram::BucketFor(us);
    EXPECT_GE(us, obs::Histogram::BucketLower(b));
    EXPECT_LT(us, obs::Histogram::BucketUpper(b));
  }
}

TEST(HistogramTest, CountSumMax) {
  obs::Histogram h;
  uint64_t sum = 0;
  for (uint64_t v = 0; v < 100; ++v) {
    h.Observe(v);
    sum += v;
  }
  const obs::HistogramSnapshot s = h.Snapshot("t");
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum_us, sum);
  EXPECT_EQ(s.max_us, 99u);
  EXPECT_LE(s.p50_us, static_cast<double>(s.max_us));
  EXPECT_LE(s.p99_us, static_cast<double>(s.max_us));
}

// Reference quantile (nearest-rank) over the raw observations.
uint64_t ReferenceQuantile(std::vector<uint64_t> v, double q) {
  std::sort(v.begin(), v.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(v.size()));
  if (rank < 1) rank = 1;
  if (rank > v.size()) rank = v.size();
  return v[rank - 1];
}

TEST(HistogramTest, PercentilesTrackReferenceQuantile) {
  // A skewed latency-like distribution: mostly fast ops, a slow tail.
  obs::Histogram h;
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; ++i) values.push_back(20 + (i * 7) % 80);
  for (int i = 0; i < 200; ++i) values.push_back(1000 + (i * 13) % 3000);
  for (int i = 0; i < 20; ++i) values.push_back(50000 + i * 1000);
  for (uint64_t v : values) h.Observe(v);

  const obs::HistogramSnapshot s = h.Snapshot("lat");
  for (const auto& [est, q] : {std::pair<double, double>{s.p50_us, 0.50},
                               {s.p90_us, 0.90},
                               {s.p99_us, 0.99}}) {
    const double ref = static_cast<double>(ReferenceQuantile(values, q));
    // The estimate interpolates inside the power-of-two bucket holding the
    // true quantile, so it is within a factor of 2 by construction.
    EXPECT_GE(est, ref * 0.5) << "q=" << q;
    EXPECT_LE(est, ref * 2.0) << "q=" << q;
  }
  EXPECT_LE(s.p50_us, s.p90_us);
  EXPECT_LE(s.p90_us, s.p99_us);
  EXPECT_LE(s.p99_us, static_cast<double>(s.max_us));
}

// 8 threads hammer one histogram + one counter; totals must be exact.
// Runs under TSan via the concurrency label (scripts/tsan.sh).
TEST(HistogramTest, ConcurrentHammerExactTotals) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.histogram("hammer_us");
  obs::Counter* c = reg.counter("hammer_ops");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(static_cast<uint64_t>((i + t) % 1000));
        c->Add();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterOr0("hammer_ops"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const obs::HistogramSnapshot* hs = snap.FindHistogram("hammer_us");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_LE(hs->max_us, 1006u);
}

// -- EventTrace ---------------------------------------------------------------

TEST(EventTraceTest, RingBoundsAndSequenceNumbers) {
  obs::EventTrace trace(4);
  for (int i = 0; i < 10; ++i) {
    trace.Record("kind", "detail " + std::to_string(i));
  }
  EXPECT_EQ(trace.total_recorded(), 10u);
  const std::vector<obs::TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 4u);  // ring kept only the newest `capacity`
  // Drop detection: the first retained seq is > 0 when history was lost.
  EXPECT_EQ(events.front().seq, 6u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.back().detail, "detail 9");
}

// -- Registry -----------------------------------------------------------------

TEST(RegistryTest, StablePointersPerName) {
  obs::MetricsRegistry reg;
  obs::Counter* c1 = reg.counter("a");
  obs::Counter* c2 = reg.counter("a");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.counter("b"), c1);
  EXPECT_EQ(reg.histogram("h"), reg.histogram("h"));
  EXPECT_EQ(reg.gauge("g"), reg.gauge("g"));
}

// -- Snapshot serialization ---------------------------------------------------

// The JSON schema is a public contract (metrics.jsonl consumers, the CI
// bench-smoke parse check); this pins it byte-for-byte on a deterministic
// snapshot.
TEST(SnapshotTest, ToJsonSchemaIsStable) {
  obs::MetricsSnapshot snap;
  snap.counters.emplace_back("ops", 3);
  snap.gauges.emplace_back("level", -2);
  snap.strings.emplace_back("health", "healthy");
  obs::HistogramSnapshot h;
  h.name = "lat_us";
  h.count = 2;
  h.sum_us = 6;
  h.max_us = 4;
  h.p50_us = 2.0;
  h.p90_us = 4.0;
  h.p99_us = 4.0;
  snap.histograms.push_back(h);
  obs::TraceEvent e;
  e.seq = 0;
  e.wall_ms = 1234;
  e.kind = "flush";
  e.detail = "partitions=1";
  snap.events.push_back(e);
  snap.Canonicalize();

  EXPECT_EQ(snap.ToJson(),
            "{\"counters\":{\"ops\":3},"
            "\"gauges\":{\"level\":-2},"
            "\"strings\":{\"health\":\"healthy\"},"
            "\"histograms\":{\"lat_us\":{\"count\":2,\"sum_us\":6,"
            "\"max_us\":4,\"p50_us\":2.0,\"p90_us\":4.0,\"p99_us\":4.0}},"
            "\"events\":[{\"seq\":0,\"wall_ms\":1234,\"kind\":\"flush\","
            "\"detail\":\"partitions=1\"}]}");
}

TEST(SnapshotTest, ToJsonEscapesStrings) {
  obs::MetricsSnapshot snap;
  obs::TraceEvent e;
  e.kind = "k\"ind";
  e.detail = "line1\nline2\\";
  snap.events.push_back(e);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("k\\\"ind"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\\\"), std::string::npos);
}

TEST(SnapshotTest, PrometheusTextExposition) {
  obs::MetricsSnapshot snap;
  snap.counters.emplace_back("ingest.samples", 42);
  snap.gauges.emplace_back("lsm.fast_bytes", 7);
  snap.strings.emplace_back("db.health", "degraded_writes");
  obs::HistogramSnapshot h;
  h.name = "query.e2e_us";
  h.count = 1;
  h.sum_us = 5;
  h.max_us = 5;
  h.p50_us = h.p90_us = h.p99_us = 5.0;
  snap.histograms.push_back(h);

  const std::string text = snap.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE tu_ingest_samples counter\n"), std::string::npos);
  EXPECT_NE(text.find("tu_ingest_samples 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tu_lsm_fast_bytes gauge\n"), std::string::npos);
  EXPECT_NE(text.find("tu_db_health_info{value=\"degraded_writes\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tu_query_e2e_us{quantile=\"0.99\"} 5.0\n"),
            std::string::npos);
  EXPECT_NE(text.find("tu_query_e2e_us_count 1\n"), std::string::npos);
}

// -- DB-level -----------------------------------------------------------------

// Tiny partitions so a modest workload spans head + L0/L1 + slow-tier L2
// (same shape as query_pipeline_test).
DBOptions SmallPartitionOptions(const std::string& ws) {
  DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.partition_upper_bound_ms = 4000;
  opts.lsm.l0_partition_trigger = 1;
  return opts;
}

TEST(DbMetricsTest, SnapshotCoversWholePipeline) {
  const std::string ws = "/tmp/timeunion_test/obs_pipeline";
  RemoveDirRecursive(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(SmallPartitionOptions(ws), &db).ok());

  constexpr int kTotal = 2000;
  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < kTotal; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GT(db->time_lsm()->NumL2Partitions(), 0u);

  QueryResult result;
  ASSERT_TRUE(db->Query({TagMatcher::Equal("m", "cpu")}, 0, kTotal * 250LL,
                        &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);

  const obs::MetricsSnapshot snap = db->Metrics();
  // Ingest counters bump on every append; latency is sampled.
  EXPECT_EQ(snap.CounterOr0("ingest.samples"), static_cast<uint64_t>(kTotal));
  EXPECT_GT(snap.CounterOr0("flush.chunks"), 0u);
  const obs::HistogramSnapshot* ingest = snap.FindHistogram("ingest.append_us");
  ASSERT_NE(ingest, nullptr);
  EXPECT_GT(ingest->count, 0u);  // 2000 appends → ~31 sampled at 1/64
  EXPECT_LE(ingest->count, static_cast<uint64_t>(kTotal));

  // Flush / LSM background instruments.
  for (const char* name : {"flush.chunk_us", "lsm.memflush_us",
                           "lsm.table_build_us"}) {
    const obs::HistogramSnapshot* h = snap.FindHistogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count, 0u) << name;
    EXPECT_GE(h->max_us, h->p99_us) << name;
  }
  EXPECT_GT(snap.CounterOr0("lsm.flushes"), 0u);

  // Slow-tier ops carry the cost model's charged latency per op.
  const obs::HistogramSnapshot* put = snap.FindHistogram("slow.put_us");
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->count, snap.CounterOr0("slow.puts"));
  EXPECT_GT(put->count, 0u);
  // Instant() charges ~0us/op, so assert the recorded sum tracks the cost
  // model rather than a positive value.
  EXPECT_LE(put->sum_us, snap.CounterOr0("slow.charged_us"));

  // Query pipeline: e2e histogram + stats folded into query.* totals.
  const obs::HistogramSnapshot* e2e = snap.FindHistogram("query.e2e_us");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count, 1u);
  EXPECT_EQ(snap.CounterOr0("query.runs"), 1u);
  EXPECT_GT(snap.CounterOr0("query.chunks_decoded"), 0u);
  EXPECT_GT(result.stats.setup_us + result.stats.drain_us, 0u);
  EXPECT_EQ(snap.CounterOr0("query.setup_us_total"), result.stats.setup_us);
  EXPECT_EQ(snap.CounterOr0("query.drain_us_total"), result.stats.drain_us);

  // Background-job events were traced (at least the memtable flushes).
  EXPECT_FALSE(snap.events.empty());
  bool saw_flush = false;
  for (const obs::TraceEvent& e : snap.events) {
    if (e.kind == "flush") saw_flush = true;
  }
  EXPECT_TRUE(saw_flush);

  // The snapshot serializes.
  EXPECT_FALSE(snap.ToJson().empty());
  EXPECT_FALSE(snap.ToPrometheusText().empty());

  db.reset();
  RemoveDirRecursive(ws);
}

// HealthReport is a typed view over Metrics(); on a quiesced DB the two
// must agree field by field.
TEST(DbMetricsTest, HealthReportMatchesMetricsSnapshot) {
  const std::string ws = "/tmp/timeunion_test/obs_health";
  RemoveDirRecursive(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(SmallPartitionOptions(ws), &db).ok());

  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < 500; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  QueryResult result;
  ASSERT_TRUE(db->Query({TagMatcher::Equal("m", "cpu")}, 0, 500 * 250LL,
                        &result)
                  .ok());

  const core::HealthReport health = db->HealthReport();
  const obs::MetricsSnapshot snap = db->Metrics();
  EXPECT_EQ(health.breaker_enabled, snap.GaugeOr0("breaker.enabled") != 0);
  EXPECT_EQ(static_cast<int64_t>(health.slow_breaker),
            snap.GaugeOr0("breaker.state"));
  EXPECT_EQ(health.breaker_rejections,
            snap.CounterOr0("slow.breaker_rejections"));
  EXPECT_EQ(health.breaker_opens, snap.CounterOr0("slow.breaker_opens"));
  EXPECT_EQ(health.deferred_tables,
            static_cast<size_t>(snap.GaugeOr0("lsm.deferred_tables")));
  EXPECT_EQ(health.fast_bytes,
            static_cast<uint64_t>(snap.GaugeOr0("lsm.fast_bytes")));
  EXPECT_EQ(health.writers_delayed,
            snap.CounterOr0("admission.writers_delayed"));
  EXPECT_EQ(health.writes_rejected,
            snap.CounterOr0("admission.writes_rejected"));
  EXPECT_EQ(health.block_cache_enabled, snap.GaugeOr0("cache.enabled") != 0);
  EXPECT_EQ(health.block_cache_hits, snap.CounterOr0("cache.hits"));
  EXPECT_EQ(health.block_cache_misses, snap.CounterOr0("cache.misses"));
  EXPECT_TRUE(health.last_background_error.ok());
  // server.* fields exist (and are zero) even with no server attached —
  // the HealthReport schema does not depend on the front door running.
  EXPECT_EQ(health.server_open_connections,
            static_cast<uint64_t>(snap.GaugeOr0("server.open_connections")));
  EXPECT_EQ(health.server_inflight_requests,
            static_cast<uint64_t>(snap.GaugeOr0("server.inflight_requests")));
  EXPECT_EQ(health.server_tenant_rejects,
            snap.CounterOr0("server.tenant_rejects"));
  EXPECT_EQ(health.server_open_connections, 0u);
  EXPECT_EQ(health.server_tenant_rejects, 0u);

  db.reset();
  RemoveDirRecursive(ws);
}

// With the network front door attached, the server.* instruments land in
// the same registry: Metrics() picks them up without any schema change
// and HealthReport's typed server fields track them exactly.
TEST(DbMetricsTest, ServerInstrumentsSurfaceInHealthAndMetrics) {
  const std::string ws = "/tmp/timeunion_test/obs_server";
  RemoveDirRecursive(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(SmallPartitionOptions(ws), &db).ok());
  auto srv = std::make_unique<server::Server>(db.get(), server::ServerOptions{});
  ASSERT_TRUE(srv->Start().ok());

  std::unique_ptr<server::Client> client;
  ASSERT_TRUE(server::Client::Connect("127.0.0.1", srv->port(), "acme",
                                      &client)
                  .ok());
  core::WriteBatch batch;
  batch.AddSample(index::Labels{{"m", "cpu"}}, 1, 1.0);
  server::WriteAck ack;
  ASSERT_TRUE(client->Write(batch, &ack).ok());
  ASSERT_TRUE(ack.remote_status.ok());
  // A validation reject (reserved tag) bumps the tenant reject counters.
  core::WriteBatch bad;
  bad.AddSample(index::Labels{{server::kTenantTag, "x"}}, 1, 1.0);
  ASSERT_TRUE(client->Write(bad, &ack).ok());
  ASSERT_FALSE(ack.remote_status.ok());

  const obs::MetricsSnapshot snap = db->Metrics();
  EXPECT_GE(snap.GaugeOr0("server.open_connections"), 1);
  EXPECT_GE(snap.CounterOr0("server.frames"), 2u);
  EXPECT_GE(snap.CounterOr0("server.tenant_rejects"), 1u);
  EXPECT_GE(snap.CounterOr0("server.tenant.acme.requests"), 2u);
  EXPECT_GE(snap.CounterOr0("server.tenant.acme.samples"), 1u);
  EXPECT_GE(snap.CounterOr0("server.tenant.acme.rejects"), 1u);

  const core::HealthReport health = db->HealthReport();
  EXPECT_EQ(health.server_open_connections,
            static_cast<uint64_t>(snap.GaugeOr0("server.open_connections")));
  EXPECT_EQ(health.server_tenant_rejects,
            snap.CounterOr0("server.tenant_rejects"));

  // The snapshot still serializes under the pinned schema — server.*
  // names are plain counters/gauges, not a new section.
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"server.open_connections\""), std::string::npos);
  EXPECT_NE(json.find("\"server.tenant.acme.samples\""), std::string::npos);

  client->Close();
  srv->Shutdown();
  srv.reset();
  // Instruments outlive the server (registry owns them); the gauge drops
  // back to zero on drain.
  EXPECT_EQ(db->HealthReport().server_open_connections, 0u);
  db.reset();
  RemoveDirRecursive(ws);
}

// CountersReport is a formatter over the same snapshot: its tier lines
// must match the TieredEnv's own report exactly on a quiesced DB.
TEST(DbMetricsTest, CountersReportMatchesEnvReport) {
  const std::string ws = "/tmp/timeunion_test/obs_counters";
  RemoveDirRecursive(ws);
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(SmallPartitionOptions(ws), &db).ok());

  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < 1000; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  const std::string env_report = db->env().CountersReport();
  const std::string db_report = db->CountersReport();
  EXPECT_EQ(db_report.substr(0, env_report.size()), env_report);
  EXPECT_NE(db_report.find("\nblock_cache: hits="), std::string::npos);
  EXPECT_NE(db_report.find("\nqueries: run=0 "), std::string::npos);

  db.reset();
  RemoveDirRecursive(ws);
}

// metrics.enabled = false: hot paths record nothing, but Metrics() still
// reports the externally-derived counters.
TEST(DbMetricsTest, DisabledMetricsStillReportExternalCounters) {
  const std::string ws = "/tmp/timeunion_test/obs_disabled";
  RemoveDirRecursive(ws);
  DBOptions opts = SmallPartitionOptions(ws);
  opts.metrics.enabled = false;
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 0.0, &ref).ok());
  for (int i = 1; i < 200; ++i) {
    ASSERT_TRUE(db->InsertFast(ref, i * 250LL, 1.0 * i).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  const obs::MetricsSnapshot snap = db->Metrics();
  EXPECT_EQ(snap.FindHistogram("ingest.append_us"), nullptr);
  EXPECT_EQ(snap.CounterOr0("ingest.samples"), 0u);
  EXPECT_GT(snap.CounterOr0("fast.puts"), 0u);  // external tier counters
  EXPECT_GT(snap.CounterOr0("lsm.flushes"), 0u);

  db.reset();
  RemoveDirRecursive(ws);
}

// emit_jsonl: the maintenance tick appends parseable JSON lines.
TEST(DbMetricsTest, MaintenanceEmitsMetricsJsonl) {
  const std::string ws = "/tmp/timeunion_test/obs_jsonl";
  RemoveDirRecursive(ws);
  DBOptions opts = SmallPartitionOptions(ws);
  opts.background_maintenance = true;
  opts.maintenance_interval_ms = 10;
  opts.metrics.emit_jsonl = true;
  std::unique_ptr<TimeUnionDB> db;
  ASSERT_TRUE(TimeUnionDB::Open(opts, &db).ok());

  uint64_t ref = 0;
  ASSERT_TRUE(db->Insert({{"m", "cpu"}}, 0, 1.0, &ref).ok());

  const std::string path = ws + "/metrics.jsonl";
  std::string line;
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::ifstream in(path);
    if (in && std::getline(in, line) && !line.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(line.empty()) << "no metrics.jsonl line after 2s";
  EXPECT_EQ(line.rfind("{\"ts_ms\":", 0), 0u);
  EXPECT_NE(line.find(",\"metrics\":{\"counters\":{"), std::string::npos);
  EXPECT_EQ(line.back(), '}');

  db.reset();
  RemoveDirRecursive(ws);
}

// -- DBOptions::Validate ------------------------------------------------------

TEST(DBOptionsValidateTest, RejectsIncoherentConfigs) {
  const std::string ws = "/tmp/timeunion_test/obs_validate";
  RemoveDirRecursive(ws);
  auto expect_invalid = [&](DBOptions opts, const std::string& field) {
    opts.workspace = ws;
    std::unique_ptr<TimeUnionDB> db;
    const Status s = TimeUnionDB::Open(std::move(opts), &db);
    EXPECT_TRUE(s.IsInvalidArgument()) << field << ": " << s.ToString();
    EXPECT_NE(s.ToString().find(field), std::string::npos) << s.ToString();
  };

  {
    DBOptions opts;
    opts.samples_per_chunk = 0;
    expect_invalid(std::move(opts), "samples_per_chunk");
  }
  {
    DBOptions opts;
    opts.registry_shards = 0;
    expect_invalid(std::move(opts), "registry_shards");
  }
  {
    DBOptions opts;
    opts.append_lock_stripes = 0;
    expect_invalid(std::move(opts), "append_lock_stripes");
  }
  {
    DBOptions opts;
    opts.retention_ms = -1;
    expect_invalid(std::move(opts), "retention_ms");
  }
  {
    DBOptions opts;
    opts.admission.enabled = true;
    opts.admission.soft_watermark = 1.0;
    opts.admission.hard_watermark = 0.5;  // hard below soft
    opts.lsm.fast_storage_limit_bytes = 1 << 20;
    expect_invalid(std::move(opts), "hard_watermark");
  }
  {
    DBOptions opts;
    opts.admission.enabled = true;  // no fast_storage_limit_bytes budget
    expect_invalid(std::move(opts), "fast_storage_limit_bytes");
  }
  RemoveDirRecursive(ws);
}

TEST(DBOptionsValidateTest, AcceptsEqualWatermarksAndDefaults) {
  EXPECT_TRUE(DBOptions{}.Validate().ok());
  // hard == soft is a valid (reject-at-the-watermark) configuration.
  DBOptions opts;
  opts.admission.enabled = true;
  opts.admission.soft_watermark = 1.0;
  opts.admission.hard_watermark = 1.0;
  opts.lsm.fast_storage_limit_bytes = 1 << 20;
  EXPECT_TRUE(opts.Validate().ok());
}

}  // namespace
}  // namespace tu
