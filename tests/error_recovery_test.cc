// Background-error recovery suite (`ctest -L fault`):
//   - ErrorHandler state machine: classification by (scope x status code),
//     write-quiesce gating, resume backoff, escalation to read-only after
//     backoff exhaustion, fatal manifest corruption.
//   - ENOSPC drill: fast tier goes disk-full mid-ingest. Appends fail fast
//     (kResourceExhausted) while reads keep serving; once space is
//     released the maintenance tick auto-resumes and the DB ends
//     byte-identical to a fault-free control run.
//   - fsync-failure discipline: a failed WAL sync poisons the writer
//     (fsyncgate: the dirty pages may be gone), Rotate() rebuilds the log
//     from the durable prefix plus the in-memory unsynced tail, and replay
//     afterwards sees every record that was ever acknowledged.
//   - Crash while degraded: a process that dies mid-quiesce must still
//     recover every acknowledged sample on reopen.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/fault_injector.h"
#include "core/error_handler.h"
#include "core/timeunion_db.h"
#include "core/wal.h"
#include "util/mmap_file.h"

namespace tu {
namespace {

using cloud::FaultInjector;
using cloud::FaultOp;
using cloud::FaultOpMask;
using cloud::FaultRule;
using core::BgErrorScope;
using core::DbHealth;
using core::ErrorHandler;
using core::ErrorHandlerOptions;

// -- ErrorHandler state machine ----------------------------------------------

TEST(ErrorHandlerTest, ClassifiesByScopeAndCode) {
  ErrorHandler h;
  // Retryable / resource classes are soft regardless of scope.
  EXPECT_EQ(h.OnBackgroundError(BgErrorScope::kFlush,
                                Status::OutOfSpace("disk full"), 0),
            ErrorHandler::Severity::kSoft);
  EXPECT_EQ(h.health(), DbHealth::kDegradedWrites);
  EXPECT_TRUE(h.CheckWriteAllowed().IsResourceExhausted());
  EXPECT_TRUE(h.CanResume());

  // Deferred-drain failures are expected during outages: noted, never
  // latched into the health state.
  ErrorHandler noted;
  EXPECT_EQ(noted.OnBackgroundError(BgErrorScope::kDeferredDrain,
                                    Status::IOError("tier down"), 0),
            ErrorHandler::Severity::kNoted);
  EXPECT_EQ(noted.health(), DbHealth::kHealthy);
  EXPECT_TRUE(noted.CheckWriteAllowed().ok());

  // Corruption outside the manifest is hard (stop writes, manual resume).
  ErrorHandler hard;
  EXPECT_EQ(hard.OnBackgroundError(BgErrorScope::kCompaction,
                                   Status::Corruption("bad chunk"), 0),
            ErrorHandler::Severity::kHard);
  EXPECT_EQ(hard.health(), DbHealth::kReadOnly);
  EXPECT_TRUE(hard.CheckWriteAllowed().IsUnavailable());
  EXPECT_TRUE(hard.CanResume());
  EXPECT_FALSE(hard.ShouldAttemptResume(1'000'000));  // auto never, manual ok

  // Manifest corruption is fatal: no resume path short of a reopen.
  ErrorHandler fatal;
  EXPECT_EQ(fatal.OnBackgroundError(BgErrorScope::kManifest,
                                    Status::Corruption("manifest"), 0),
            ErrorHandler::Severity::kFatal);
  EXPECT_EQ(fatal.health(), DbHealth::kFatal);
  EXPECT_FALSE(fatal.CanResume());
}

TEST(ErrorHandlerTest, ResumeClearsErrorAndCountersAccumulate) {
  ErrorHandler h;
  h.OnBackgroundError(BgErrorScope::kWalSync, Status::IOError("fsync"), 100);
  EXPECT_FALSE(h.LastError().ok());
  EXPECT_EQ(h.LastScope(), BgErrorScope::kWalSync);
  // First probe is due immediately at the error's timestamp.
  EXPECT_TRUE(h.ShouldAttemptResume(100));

  h.OnResumeAttempt();
  h.OnResumeSuccess();
  EXPECT_EQ(h.health(), DbHealth::kHealthy);
  EXPECT_TRUE(h.LastError().ok());
  EXPECT_TRUE(h.CheckWriteAllowed().ok());

  const ErrorHandler::Counters c = h.counters();
  EXPECT_EQ(c.errors_total, 1u);
  EXPECT_EQ(c.soft_errors, 1u);
  EXPECT_EQ(c.errors_by_scope[static_cast<int>(BgErrorScope::kWalSync)], 1u);
  EXPECT_EQ(c.resume_attempts, 1u);
  EXPECT_EQ(c.resumes_succeeded, 1u);
  EXPECT_EQ(c.consecutive_resume_failures, 0u);
}

TEST(ErrorHandlerTest, BackoffDoublesAndExhaustionEscalatesToReadOnly) {
  ErrorHandlerOptions opts;
  opts.max_resume_attempts = 3;
  opts.resume_backoff_initial_ms = 100;
  opts.resume_backoff_max_ms = 10'000;
  ErrorHandler h(opts);

  h.OnBackgroundError(BgErrorScope::kFlush, Status::Busy("throttled"), 1000);
  ASSERT_EQ(h.health(), DbHealth::kDegradedWrites);
  ASSERT_TRUE(h.ShouldAttemptResume(1000));

  // Failure 1: next probe 100ms out, not before.
  h.OnResumeAttempt();
  h.OnResumeFailure(Status::Busy("still"), 1000);
  EXPECT_EQ(h.health(), DbHealth::kDegradedWrites);
  EXPECT_FALSE(h.ShouldAttemptResume(1050));
  EXPECT_TRUE(h.ShouldAttemptResume(1100));

  // Failure 2: backoff doubled to 200ms.
  h.OnResumeAttempt();
  h.OnResumeFailure(Status::Busy("still"), 1100);
  EXPECT_FALSE(h.ShouldAttemptResume(1250));
  EXPECT_TRUE(h.ShouldAttemptResume(1300));

  // Failure 3 exhausts the budget: read-only, auto probes stop, manual
  // Resume() remains possible.
  h.OnResumeAttempt();
  h.OnResumeFailure(Status::Busy("still"), 1300);
  EXPECT_EQ(h.health(), DbHealth::kReadOnly);
  EXPECT_FALSE(h.ShouldAttemptResume(1'000'000));
  EXPECT_TRUE(h.CanResume());
  EXPECT_TRUE(h.CheckWriteAllowed().IsUnavailable());
  EXPECT_EQ(h.counters().consecutive_resume_failures, 3u);

  // A manual resume that succeeds recovers even from read-only.
  h.OnResumeAttempt();
  h.OnResumeSuccess();
  EXPECT_EQ(h.health(), DbHealth::kHealthy);
  EXPECT_TRUE(h.CheckWriteAllowed().ok());
}

// -- fsync-failure discipline (WAL rotation) ---------------------------------

core::WalRecord SampleRecord(uint64_t id, uint64_t seq) {
  core::WalRecord r;
  r.type = core::WalRecordType::kSample;
  r.id = id;
  r.seq = seq;
  r.ts = static_cast<int64_t>(seq) * 250;
  r.value = 1.0 * static_cast<double>(seq);
  return r;
}

TEST(WalRotationTest, FsyncFailurePoisonsThenRotationPreservesUnsyncedTail) {
  const std::string ws = "/tmp/timeunion_test/error_recovery_wal";
  RemoveDirRecursive(ws);
  auto fi = std::make_shared<FaultInjector>(7);
  cloud::TierSimOptions sim = cloud::TierSimOptions::Instant();
  sim.fault = fi;
  cloud::BlockStore store(ws, sim);

  core::WalWriter writer(&store, "WAL");
  ASSERT_TRUE(writer.Open().ok());

  // Records 0..9: appended AND synced — the durable prefix.
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.Append(SampleRecord(1, i)).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());

  // Records 10..14: appended but not yet synced when the disk fills.
  for (uint64_t i = 10; i < 15; ++i) {
    ASSERT_TRUE(writer.Append(SampleRecord(1, i)).ok());
  }
  fi->AddRule(FaultRule::NoSpace(FaultOpMask(FaultOp::kSync), "WAL",
                                 /*release_after_fires=*/1));
  Status s = writer.Sync();
  ASSERT_FALSE(s.ok()) << "injected fsync failure must surface";
  ASSERT_FALSE(writer.poison().ok());

  // fsyncgate: the poisoned fd fails everything fast — no retrying the
  // sync, no appending past a possibly-partial frame.
  EXPECT_FALSE(writer.Append(SampleRecord(1, 99)).ok());
  EXPECT_FALSE(writer.Sync().ok());
  EXPECT_FALSE(writer.Purge().ok());

  // Rotation rebuilds from the synced prefix + the in-memory tail; the
  // writer is clean again and keeps accepting records.
  ASSERT_TRUE(writer.Rotate().ok());
  EXPECT_TRUE(writer.poison().ok());
  for (uint64_t i = 15; i < 20; ++i) {
    ASSERT_TRUE(writer.Append(SampleRecord(1, i)).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());

  // Replay parity: every record framed before the failure survived the
  // rotation — including the unsynced 10..14 tail — in order, clean EOF.
  std::vector<core::WalRecord> records;
  core::WalReplayStats stats;
  ASSERT_TRUE(core::ReplayWal(&store, "WAL",
                              [&](const core::WalRecord& r) {
                                records.push_back(r);
                                return Status::OK();
                              },
                              &stats)
                  .ok());
  ASSERT_EQ(records.size(), 20u);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(records[i].seq, i);
    EXPECT_EQ(records[i].ts, static_cast<int64_t>(i) * 250);
  }
  EXPECT_TRUE(stats.Clean());
  EXPECT_TRUE(stats.clean_eof);

  RemoveDirRecursive(ws);
}

// -- ENOSPC drill -------------------------------------------------------------

core::DBOptions DrillOptions(const std::string& ws) {
  core::DBOptions opts;
  opts.workspace = ws;
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.enable_wal = true;
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 4 << 10;
  opts.lsm.l0_partition_ms = 1000;
  opts.lsm.l2_partition_ms = 4000;
  opts.lsm.partition_lower_bound_ms = 1000;
  opts.lsm.l0_partition_trigger = 1;
  return opts;
}

TEST(EnospcDrillTest, QuiesceServeReadsReleaseThenAutoResume) {
  const std::string ws = "/tmp/timeunion_test/enospc_drill";
  const std::string control_ws = ws + "_control";
  RemoveDirRecursive(ws);
  RemoveDirRecursive(control_ws);
  constexpr int64_t kStepMs = 250;

  // Control: identical acked workload, never a fault.
  std::unique_ptr<core::TimeUnionDB> control;
  ASSERT_TRUE(
      core::TimeUnionDB::Open(DrillOptions(control_ws), &control).ok());

  auto fi = std::make_shared<FaultInjector>(13);
  core::DBOptions opts = DrillOptions(ws);
  opts.env_options.fast_sim.fault = fi;
  opts.lsm.background_flush = true;
  opts.background_maintenance = true;
  opts.maintenance_interval_ms = 10;
  opts.error_handler.resume_backoff_initial_ms = 10;
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(opts, &db).ok());

  uint64_t ref = 0, control_ref = 0;
  ASSERT_TRUE(db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref).ok());
  ASSERT_TRUE(control->Insert({{"metric", "cpu"}}, 0, 0.0, &control_ref).ok());
  int acked = 1;  // samples [0, acked) are in both DBs

  // Phase 1 (healthy): several memtables' worth reaches the fast tier.
  for (; acked < 400; ++acked) {
    ASSERT_TRUE(db->InsertFast(ref, acked * kStepMs, 1.0 * acked).ok());
    ASSERT_TRUE(
        control->InsertFast(control_ref, acked * kStepMs, 1.0 * acked).ok());
  }

  // Phase 2: the fast tier's disk fills. Background flushes start failing;
  // the error handler must quiesce appends (fail-fast, no pile-up).
  fi->AddRule(FaultRule::NoSpace(FaultOp::kAppend | FaultOp::kSync, "lsm/"));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  Status quiesced;
  while (quiesced.ok() && acked < 100'000 &&
         std::chrono::steady_clock::now() < deadline) {
    Status s = db->InsertFast(ref, acked * kStepMs, 1.0 * acked);
    if (!s.ok()) {
      quiesced = s;
      break;
    }
    ASSERT_TRUE(
        control->InsertFast(control_ref, acked * kStepMs, 1.0 * acked).ok());
    ++acked;
  }
  ASSERT_FALSE(quiesced.ok()) << "disk-full never quiesced the write path";
  EXPECT_TRUE(quiesced.IsResourceExhausted()) << quiesced.ToString();
  EXPECT_EQ(db->Health(), DbHealth::kDegradedWrites);

  // Reads keep serving the full acked history while writes are quiesced.
  const auto matcher = index::TagMatcher::Equal("metric", "cpu");
  {
    core::QueryResult degraded, reference;
    ASSERT_TRUE(db->Query({matcher}, 0, acked * kStepMs, &degraded).ok());
    ASSERT_TRUE(
        control->Query({matcher}, 0, acked * kStepMs, &reference).ok());
    ASSERT_EQ(degraded.size(), 1u);
    ASSERT_EQ(reference.size(), 1u);
    ASSERT_EQ(degraded[0].samples.size(), reference[0].samples.size());
  }

  // The degradation is fully observable from one snapshot.
  {
    const obs::MetricsSnapshot snap = db->Metrics();
    const std::string* health = snap.FindString("db.health");
    ASSERT_NE(health, nullptr);
    EXPECT_EQ(*health, "degraded_writes");
    const std::string* err = snap.FindString("db.last_background_error");
    ASSERT_NE(err, nullptr);
    EXPECT_NE(err->find("disk full"), std::string::npos) << *err;
    EXPECT_GT(snap.CounterOr0("error_handler.errors_soft"), 0u);
    EXPECT_GT(snap.GaugeOr0("db.health_state"), 0);
  }

  // Phase 3: space is released. The maintenance tick's resume probe
  // retries the retained flush work and reopens the write path — no
  // reopen, no manual intervention.
  ASSERT_GT(fi->ReleaseNoSpace(), 0u);
  while (db->Health() != DbHealth::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(db->Health(), DbHealth::kHealthy) << "auto-resume never fired";
  {
    const core::HealthReport health = db->HealthReport();
    EXPECT_GT(health.resume_attempts, 0u);
    EXPECT_GT(health.resumes_succeeded, 0u);
    EXPECT_TRUE(health.last_background_error.ok());
  }

  // Phase 4: ingest continues where it left off; both DBs flush and must
  // be byte-identical over the whole history.
  const int total = acked + 300;
  for (; acked < total; ++acked) {
    ASSERT_TRUE(db->InsertFast(ref, acked * kStepMs, 1.0 * acked).ok());
    ASSERT_TRUE(
        control->InsertFast(control_ref, acked * kStepMs, 1.0 * acked).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(control->Flush().ok());

  core::QueryResult got, want;
  ASSERT_TRUE(db->Query({matcher}, 0, total * kStepMs, &got).ok());
  ASSERT_TRUE(control->Query({matcher}, 0, total * kStepMs, &want).ok());
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(want.size(), 1u);
  ASSERT_EQ(got[0].samples.size(), want[0].samples.size());
  for (size_t i = 0; i < got[0].samples.size(); ++i) {
    ASSERT_EQ(got[0].samples[i].timestamp, want[0].samples[i].timestamp)
        << "sample " << i;
    uint64_t gb, wb;
    std::memcpy(&gb, &got[0].samples[i].value, sizeof(gb));
    std::memcpy(&wb, &want[0].samples[i].value, sizeof(wb));
    ASSERT_EQ(gb, wb) << "sample " << i;
  }

  db.reset();
  control.reset();
  RemoveDirRecursive(ws);
  RemoveDirRecursive(control_ws);
}

// -- Crash while degraded -----------------------------------------------------

void WriteAck(const std::string& ws, int n) {
  const std::string tmp = ws + "/ack.tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) std::_Exit(85);
  std::fprintf(f, "%d", n);
  std::fclose(f);
  if (std::rename(tmp.c_str(), (ws + "/ack").c_str()) != 0) std::_Exit(86);
}

int ReadAck(const std::string& ws) {
  std::ifstream in(ws + "/ack");
  int n = 0;
  in >> n;
  return n;
}

constexpr int64_t kCrashStepMs = 250;

// Child: ingest with per-sample WAL sync + ack; fill the disk mid-stream;
// once the write path quiesces, die hard — the process never gets to clean
// up its degraded state.
[[noreturn]] void DegradedCrashChild(const std::string& ws) {
  auto fi = std::make_shared<FaultInjector>(3);
  core::DBOptions opts = DrillOptions(ws);
  opts.env_options.fast_sim.fault = fi;
  opts.lsm.background_flush = true;

  std::unique_ptr<core::TimeUnionDB> db;
  if (!core::TimeUnionDB::Open(opts, &db).ok()) std::_Exit(81);
  uint64_t ref = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (int i = 0; i < 100'000; ++i) {
    if (std::chrono::steady_clock::now() >= deadline) std::_Exit(82);
    Status s = (i == 0) ? db->Insert({{"metric", "cpu"}}, 0, 0.0, &ref)
                        : db->InsertFast(ref, i * kCrashStepMs, 1.0 * i);
    if (!s.ok()) {
      // Quiesced. The WAL holds every acked sample; die without teardown.
      if (!s.IsResourceExhausted()) std::_Exit(87);
      if (db->Health() != DbHealth::kDegradedWrites) std::_Exit(88);
      std::_Exit(cloud::kFaultCrashExitCode);
    }
    if (!db->SyncWal().ok()) std::_Exit(83);
    WriteAck(ws, i + 1);
    if (i == 200) {
      fi->AddRule(
          FaultRule::NoSpace(FaultOp::kAppend | FaultOp::kSync, "lsm/"));
    }
  }
  std::_Exit(84);  // never quiesced
}

TEST(CrashWhileDegradedTest, AckedSamplesSurviveCrashDuringQuiesce) {
  const std::string ws = "/tmp/timeunion_test/crash_degraded";
  RemoveDirRecursive(ws);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) DegradedCrashChild(ws);  // never returns

  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), cloud::kFaultCrashExitCode)
      << "child exited " << WEXITSTATUS(wstatus)
      << " (8x = workload error, see DegradedCrashChild)";

  const int acked = ReadAck(ws);
  ASSERT_GT(acked, 200) << "crash must happen after the disk filled";

  // Reopen on a healthy disk: WAL replay + recovery sweep must restore
  // every acknowledged sample, despite the crash landing mid-quiesce with
  // retained memtables and possibly half-written .tmp tables.
  std::unique_ptr<core::TimeUnionDB> db;
  ASSERT_TRUE(core::TimeUnionDB::Open(DrillOptions(ws), &db).ok());
  EXPECT_EQ(db->Health(), DbHealth::kHealthy);

  core::QueryResult result;
  ASSERT_TRUE(db->Query({index::TagMatcher::Equal("metric", "cpu")}, 0,
                        100'000 * kCrashStepMs, &result)
                  .ok());
  ASSERT_EQ(result.size(), 1u);
  std::map<int64_t, double> samples;
  for (const auto& s : result[0].samples) samples[s.timestamp] = s.value;
  for (int i = 0; i < acked; ++i) {
    auto it = samples.find(i * kCrashStepMs);
    ASSERT_NE(it, samples.end()) << "acked sample " << i << "/" << acked
                                 << " lost";
    EXPECT_EQ(it->second, 1.0 * i) << "sample " << i;
  }

  // Second reopen: the first recovery left nothing dangling.
  db.reset();
  ASSERT_TRUE(core::TimeUnionDB::Open(DrillOptions(ws), &db).ok());
  EXPECT_EQ(db->recovery_report().tables_quarantined, 0u);
  EXPECT_EQ(db->recovery_report().orphans_swept, 0u);

  db.reset();
  RemoveDirRecursive(ws);
}

}  // namespace
}  // namespace tu
