// Figure 18: TimeUnion configuration sweeps.
//  (a) different EBS limits: normalized insert throughput + query latency
//      as the fast-storage budget grows;
//  (b) different amounts of out-of-order data (p0/p5/p10/p20): insertion,
//      short- and long-range queries as stale-volume grows.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/timeunion_db.h"
#include "tsbs/devops.h"
#include "util/random.h"

using namespace tu;
using namespace tu::bench;

namespace {

struct RunResult {
  double insert_throughput = 0;
  double q_short_us = 0;  // 1-1-1
  double q_long_us = 0;   // 5-1-24
  uint64_t patches = 0;
  uint64_t fast_bytes = 0;
  int64_t final_l0_ms = 0;
};

Status RunTimeUnion(const std::string& tag, uint64_t fast_limit,
                    double ooo_fraction, RunResult* result) {
  tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = 4;
  gen_opts.interval_ms = 10'000;
  gen_opts.duration_ms = 12LL * 3600 * 1000;
  tsbs::DevOpsGenerator gen(gen_opts);

  core::DBOptions opts;
  opts.workspace = FreshWorkspace("fig18_" + tag);
  opts.lsm.memtable_bytes = 256 << 10;
  opts.lsm.fast_storage_limit_bytes = fast_limit;
  std::unique_ptr<core::TimeUnionDB> db;
  TU_RETURN_IF_ERROR(core::TimeUnionDB::Open(opts, &db));

  std::vector<uint64_t> refs(gen.num_series());
  const uint64_t start = NowUs();
  uint64_t samples = 0;
  for (uint64_t step = 0; step < gen.num_steps(); ++step) {
    const int64_t ts = gen.start_ts() + step * gen.interval_ms();
    for (uint64_t h = 0; h < gen.num_hosts(); ++h) {
      for (int s = 0; s < 101; ++s) {
        const size_t slot = h * 101 + s;
        if (step == 0) {
          TU_RETURN_IF_ERROR(db->Insert(gen.SeriesLabels(h, s), ts,
                                        gen.Value(h, s, ts), &refs[slot]));
        } else {
          TU_RETURN_IF_ERROR(
              db->InsertFast(refs[slot], ts, gen.Value(h, s, ts)));
        }
        ++samples;
      }
    }
  }
  // Out-of-order injection: after normal insertion, a p% volume of stale
  // samples at random past timestamps of random series (§4.3).
  if (ooo_fraction > 0) {
    Random rng(99);
    const uint64_t ooo_samples =
        static_cast<uint64_t>(samples * ooo_fraction);
    for (uint64_t i = 0; i < ooo_samples; ++i) {
      const uint64_t slot = rng.Uniform(refs.size());
      const int64_t ts = gen.start_ts() +
                         static_cast<int64_t>(rng.Uniform(gen.num_steps())) *
                             gen.interval_ms();
      TU_RETURN_IF_ERROR(db->InsertFast(refs[slot], ts, 999.0));
      ++samples;
    }
  }
  const double wall_s = (NowUs() - start) / 1e6;
  TU_RETURN_IF_ERROR(db->Flush());

  result->insert_throughput = samples / wall_s;
  result->patches = db->time_lsm()->stats().patches_created.load();
  result->fast_bytes = db->time_lsm()->FastBytesUsed();
  result->final_l0_ms = db->time_lsm()->l0_partition_ms();

  const auto patterns = tsbs::StandardPatterns();
  auto run_query = [&](const tsbs::QueryPattern& p, double* out) -> Status {
    double total = 0;
    for (int r = 0; r < 3; ++r) {
      const auto matchers = tsbs::PatternSelectors(p, gen, 40 + r);
      const int64_t t1 = gen.end_ts();
      const int64_t t0 = std::max<int64_t>(
          gen.start_ts(), t1 - p.hours * 3600LL * 1000);
      core::QueryResult qr;
      const uint64_t qstart = NowUs();
      TU_RETURN_IF_ERROR(db->Query(matchers, t0, t1, &qr));
      total += NowUs() - qstart;
    }
    *out = total / 3;
    return Status::OK();
  };
  TU_RETURN_IF_ERROR(run_query(patterns[0], &result->q_short_us));  // 1-1-1
  TU_RETURN_IF_ERROR(run_query(patterns[4], &result->q_long_us));   // 5-1-24
  return Status::OK();
}

}  // namespace

int main() {
  PrintHeader("Figure 18a", "different EBS limits (normalized to first)");
  const std::vector<uint64_t> limits = {256ull << 10, 1ull << 20, 4ull << 20,
                                        16ull << 20};
  RunResult base{};
  std::printf("  %-12s %14s %12s %12s %14s\n", "limit", "insert(norm)",
              "1-1-1(norm)", "5-1-24(norm)", "fast used(KB)");
  for (size_t i = 0; i < limits.size(); ++i) {
    RunResult r;
    Status st = RunTimeUnion("limit" + std::to_string(i), limits[i], 0, &r);
    if (!st.ok()) {
      std::printf("  FAILED: %s\n", st.ToString().c_str());
      return 1;
    }
    if (i == 0) base = r;
    std::printf("  %-12llu %14.2f %12.2f %12.2f %14.0f\n",
                static_cast<unsigned long long>(limits[i] >> 10),
                r.insert_throughput / base.insert_throughput,
                r.q_short_us / base.q_short_us,
                r.q_long_us / base.q_long_us, r.fast_bytes / 1024.0);
  }

  PrintHeader("Figure 18b", "different volumes of out-of-order data");
  std::printf("  %-6s %16s %12s %12s %10s\n", "ooo", "insert(sm/s)",
              "1-1-1(us)", "5-1-24(us)", "patches");
  for (double p : {0.0, 0.05, 0.10, 0.20}) {
    RunResult r;
    Status st =
        RunTimeUnion("p" + std::to_string(static_cast<int>(p * 100)),
                     4ull << 20, p, &r);
    if (!st.ok()) {
      std::printf("  FAILED: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("  p%-5d %16.0f %12.0f %12.0f %10llu\n",
                static_cast<int>(p * 100), r.insert_throughput, r.q_short_us,
                r.q_long_us, static_cast<unsigned long long>(r.patches));
  }
  std::printf(
      "\n  shape checks: insertion stable across limits and OOO volumes;\n"
      "  long-range latency falls as the EBS limit grows and rises with\n"
      "  more out-of-order data (more patch SSTables on S3).\n");
  return 0;
}
