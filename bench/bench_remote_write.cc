// Remote-write throughput through the network front door: N loopback
// clients stream WriteBatches of varying size at the server, which lands
// them on TimeUnionDB::Write. An embedded control (same batch shapes,
// db->Write directly, no network) anchors the embedded-vs-remote ingest
// ratio recorded in EXPERIMENTS.md.
//
// Emits one JSON line per remote configuration, e.g.
//   {"bench":"remote_write","clients":8,"batch":256,"samples":1600000,
//    "elapsed_s":1.9,"samples_per_s":842000.0,"p99_us":900.0,
//    "wire_bytes_per_sample":13.1}
// embedded-control lines use "throughput_sps" (no latency/wire fields),
// and a final summary line reports remote_vs_embedded per batch size.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/timeunion_db.h"
#include "core/write_batch.h"
#include "server/client.h"
#include "server/server.h"
#include "util/mmap_file.h"

namespace tu::bench {
namespace {

constexpr int kSeriesPerClient = 16;
constexpr int64_t kStepMs = 10'000;

// CI smoke mode (TU_BENCH_SMOKE): same configurations, tiny workload.
int SamplesPerClient() { return SmokeMode() ? 8'192 : 262'144; }

core::DBOptions BenchOptions(const std::string& ws) {
  core::DBOptions opts;
  opts.workspace = ws;
  opts.lsm.memtable_bytes = 4 << 20;
  opts.lsm.background_flush = true;
  opts.enable_wal = false;  // matches the embedded ingest bench's wal=false
  return opts;
}

/// Fills `batch` with `n` by-ref samples cycling through `refs` in
/// consecutive runs (run-detection friendly), advancing *next_ts.
void FillBatch(const std::vector<uint64_t>& refs, int n, int64_t* next_ts,
               core::WriteBatch* batch) {
  batch->Clear();
  const int nrefs = static_cast<int>(refs.size());
  const int per_series = std::max(1, (n + nrefs - 1) / nrefs);
  int produced = 0;
  for (uint64_t ref : refs) {
    for (int i = 0; i < per_series && produced < n; ++i, ++produced) {
      batch->AddSample(ref, *next_ts + static_cast<int64_t>(i) * kStepMs,
                       static_cast<double>(produced));
    }
    if (produced >= n) break;
  }
  *next_ts += static_cast<int64_t>(per_series) * kStepMs;
}

struct RemoteRun {
  double samples_per_s = 0;
  double p99_us = 0;
  double wire_bytes_per_sample = 0;
};

double Percentile(std::vector<uint64_t>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  const size_t idx = static_cast<size_t>(p * (v->size() - 1));
  return static_cast<double>((*v)[idx]);
}

RemoteRun RunRemote(int clients, int batch_size) {
  const std::string ws = FreshWorkspace("remote_write");
  std::unique_ptr<core::TimeUnionDB> db;
  Status s = core::TimeUnionDB::Open(BenchOptions(ws), &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }
  server::ServerOptions sopts;
  sopts.num_workers = std::max(2, clients);
  auto srv = std::make_unique<server::Server>(db.get(), sopts);
  s = srv->Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return {};
  }

  const int samples_per_client = SamplesPerClient();
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> wire_bytes{0};
  std::mutex lat_mu;
  std::vector<uint64_t> latencies_us;

  const uint64_t t_start = NowUs();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::unique_ptr<server::Client> client;
      if (!server::Client::Connect("127.0.0.1", srv->port(),
                                   "bench-" + std::to_string(c), &client)
               .ok()) {
        errors.fetch_add(1);
        return;
      }
      // Register this client's disjoint series with one labeled batch.
      core::WriteBatch reg;
      for (int i = 0; i < kSeriesPerClient; ++i) {
        reg.AddSample(
            index::Labels{{"host", std::to_string(c * kSeriesPerClient + i)},
                          {"m", "cpu"}},
            0, 0.0);
      }
      server::WriteAck ack;
      if (!client->Write(reg, &ack).ok() || !ack.remote_status.ok()) {
        errors.fetch_add(1);
        return;
      }
      std::vector<uint64_t> refs = ack.resolved_refs;

      std::vector<uint64_t> local_lat;
      local_lat.reserve(samples_per_client / batch_size + 1);
      core::WriteBatch batch;
      int64_t next_ts = kStepMs;
      int remaining = samples_per_client;
      while (remaining > 0) {
        const int n = std::min(remaining, batch_size);
        FillBatch(refs, n, &next_ts, &batch);
        const uint64_t t0 = NowUs();
        if (!client->Write(batch, &ack).ok() || !ack.remote_status.ok()) {
          errors.fetch_add(1);
          return;
        }
        local_lat.push_back(NowUs() - t0);
        remaining -= n;
      }
      wire_bytes.fetch_add(client->bytes_sent());
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies_us.insert(latencies_us.end(), local_lat.begin(),
                          local_lat.end());
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t t_end = NowUs();
  srv->Shutdown();
  srv.reset();
  db.reset();
  RemoveDirRecursive(ws);

  if (errors.load() != 0) {
    std::fprintf(stderr, "remote write errors: %llu\n",
                 static_cast<unsigned long long>(errors.load()));
    return {};
  }
  const uint64_t total =
      static_cast<uint64_t>(clients) * samples_per_client;
  const double elapsed_s = static_cast<double>(t_end - t_start) / 1e6;
  RemoteRun run;
  run.samples_per_s = static_cast<double>(total) / elapsed_s;
  run.p99_us = Percentile(&latencies_us, 0.99);
  run.wire_bytes_per_sample =
      static_cast<double>(wire_bytes.load()) / static_cast<double>(total);
  std::printf(
      "{\"bench\":\"remote_write\",\"clients\":%d,\"batch\":%d,"
      "\"samples\":%llu,\"elapsed_s\":%.3f,\"samples_per_s\":%.1f,"
      "\"p99_us\":%.1f,\"wire_bytes_per_sample\":%.2f}\n",
      clients, batch_size, static_cast<unsigned long long>(total), elapsed_s,
      run.samples_per_s, run.p99_us, run.wire_bytes_per_sample);
  std::fflush(stdout);
  return run;
}

/// Embedded control: same batch shapes straight into TimeUnionDB::Write.
double RunEmbedded(int threads_n, int batch_size) {
  const std::string ws = FreshWorkspace("remote_write_embedded");
  std::unique_ptr<core::TimeUnionDB> db;
  Status s = core::TimeUnionDB::Open(BenchOptions(ws), &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return -1;
  }
  const int samples_per_thread = SamplesPerClient();
  std::atomic<uint64_t> errors{0};
  const uint64_t t_start = NowUs();
  std::vector<std::thread> threads;
  for (int t = 0; t < threads_n; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint64_t> refs(kSeriesPerClient);
      for (int i = 0; i < kSeriesPerClient; ++i) {
        if (!db->RegisterSeries(
                   {{"host", std::to_string(t * kSeriesPerClient + i)},
                    {"m", "cpu"}},
                   &refs[i])
                 .ok()) {
          errors.fetch_add(1);
          return;
        }
      }
      core::WriteBatch batch;
      core::WriteResult result;
      int64_t next_ts = kStepMs;
      int remaining = samples_per_thread;
      while (remaining > 0) {
        const int n = std::min(remaining, batch_size);
        FillBatch(refs, n, &next_ts, &batch);
        if (!db->Write(batch, &result).ok() || !result.ok()) {
          errors.fetch_add(1);
          return;
        }
        remaining -= n;
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t t_end = NowUs();
  db.reset();
  RemoveDirRecursive(ws);

  if (errors.load() != 0) {
    std::fprintf(stderr, "embedded write errors: %llu\n",
                 static_cast<unsigned long long>(errors.load()));
    return -1;
  }
  const uint64_t total =
      static_cast<uint64_t>(threads_n) * samples_per_thread;
  const double elapsed_s = static_cast<double>(t_end - t_start) / 1e6;
  const double throughput = static_cast<double>(total) / elapsed_s;
  std::printf(
      "{\"bench\":\"remote_write\",\"mode\":\"embedded\",\"threads\":%d,"
      "\"batch\":%d,\"samples\":%llu,\"elapsed_s\":%.3f,"
      "\"throughput_sps\":%.1f}\n",
      threads_n, batch_size, static_cast<unsigned long long>(total),
      elapsed_s, throughput);
  std::fflush(stdout);
  return throughput;
}

int Main() {
  PrintHeader("remote_write",
              "loopback remote-write vs embedded batched ingest");
  for (int batch : {64, 256, 1024}) {
    for (int clients : {1, 4, 8}) {
      RunRemote(clients, batch);
    }
  }
  // Embedded-vs-remote ratio at the acceptance point: 8 writers, large
  // batches. Re-run the remote side next to its control so both see the
  // same machine state.
  for (int batch : {256, 1024}) {
    const double embedded = RunEmbedded(8, batch);
    const RemoteRun remote = RunRemote(8, batch);
    if (embedded > 0 && remote.samples_per_s > 0) {
      std::printf(
          "{\"bench\":\"remote_write\",\"summary\":true,\"batch\":%d,"
          "\"embedded_sps\":%.1f,\"remote_sps\":%.1f,"
          "\"remote_vs_embedded\":%.3f}\n",
          batch, embedded, remote.samples_per_s,
          remote.samples_per_s / embedded);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace tu::bench

int main() { return tu::bench::Main(); }
