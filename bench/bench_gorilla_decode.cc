// Gorilla decode microbench: scalar Next() loop vs the bulk DecodeAll
// paths the vectorized read pipeline uses, over the three codecs
// (timestamps, XOR doubles, NULL-extended member columns). Same encoded
// streams for both modes, so the ratio is pure decode-loop cost.
//
// Emits one JSON line per (codec, mode), e.g.
//   {"bench":"gorilla_decode","codec":"timestamp","mode":"bulk",
//    "samples":2000000,"elapsed_s":0.012,"samples_per_s":166666666.7,
//    "checksum":123456789}
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "compress/gorilla.h"
#include "util/random.h"

namespace tu::bench {
namespace {

using compress::BitReader;
using compress::BitWriter;

int ChunkSamples() { return 120; }
int Chunks() { return SmokeMode() ? 2000 : 20000; }
int Rounds() { return SmokeMode() ? 2 : 5; }

struct EncodedChunk {
  std::vector<char> bytes;
  uint32_t count = 0;
};

void EmitLine(const char* codec, const char* mode, uint64_t samples,
              double elapsed_s, uint64_t checksum) {
  std::printf(
      "{\"bench\":\"gorilla_decode\",\"codec\":\"%s\",\"mode\":\"%s\","
      "\"samples\":%llu,\"elapsed_s\":%.4f,\"samples_per_s\":%.1f,"
      "\"checksum\":%llu}\n",
      codec, mode, static_cast<unsigned long long>(samples), elapsed_s,
      static_cast<double>(samples) / elapsed_s,
      static_cast<unsigned long long>(checksum));
  std::fflush(stdout);
}

// -- Timestamps --------------------------------------------------------------

std::vector<EncodedChunk> BuildTimestampChunks(Random* rng) {
  std::vector<EncodedChunk> chunks(Chunks());
  int64_t t = 1600000000000;
  for (EncodedChunk& c : chunks) {
    c.count = ChunkSamples();
    c.bytes.resize(c.count * 12);
    BitWriter w(c.bytes.data(), c.bytes.size());
    compress::TimestampEncoder enc;
    for (uint32_t i = 0; i < c.count; ++i) {
      // Mostly regular 30 s scrape interval with occasional jitter, the
      // shape the dod buckets were designed for.
      t += 30000 + (rng->OneIn(10)
                        ? static_cast<int64_t>(rng->Uniform(256)) - 128
                        : 0);
      enc.Append(&w, t);
    }
  }
  return chunks;
}

void RunTimestamps(const std::vector<EncodedChunk>& chunks) {
  std::vector<int64_t> out(ChunkSamples());
  for (const char* mode : {"scalar", "bulk"}) {
    uint64_t checksum = 0;
    uint64_t samples = 0;
    const uint64_t start = NowUs();
    for (int r = 0; r < Rounds(); ++r) {
      for (const EncodedChunk& c : chunks) {
        BitReader reader(c.bytes.data(), c.bytes.size());
        compress::TimestampDecoder dec;
        if (mode[0] == 's') {
          for (uint32_t i = 0; i < c.count; ++i) out[i] = dec.Next(&reader);
        } else {
          dec.DecodeAll(&reader, c.count, out.data());
        }
        checksum += static_cast<uint64_t>(out[c.count - 1]);
        samples += c.count;
      }
    }
    EmitLine("timestamp", mode, samples,
             static_cast<double>(NowUs() - start) / 1e6, checksum);
  }
}

// -- XOR doubles -------------------------------------------------------------

std::vector<EncodedChunk> BuildValueChunks(Random* rng) {
  std::vector<EncodedChunk> chunks(Chunks());
  double v = 250.0;
  for (EncodedChunk& c : chunks) {
    c.count = ChunkSamples();
    c.bytes.resize(c.count * 12);
    BitWriter w(c.bytes.data(), c.bytes.size());
    compress::ValueEncoder enc;
    for (uint32_t i = 0; i < c.count; ++i) {
      if (!rng->OneIn(4)) v += rng->NextGaussian(0, 1.0);  // else repeat
      enc.Append(&w, v);
    }
  }
  return chunks;
}

void RunValues(const std::vector<EncodedChunk>& chunks) {
  std::vector<double> out(ChunkSamples());
  for (const char* mode : {"scalar", "bulk"}) {
    uint64_t checksum = 0;
    uint64_t samples = 0;
    const uint64_t start = NowUs();
    for (int r = 0; r < Rounds(); ++r) {
      for (const EncodedChunk& c : chunks) {
        BitReader reader(c.bytes.data(), c.bytes.size());
        compress::ValueDecoder dec;
        if (mode[0] == 's') {
          for (uint32_t i = 0; i < c.count; ++i) out[i] = dec.Next(&reader);
        } else {
          dec.DecodeAll(&reader, c.count, out.data());
        }
        uint64_t bits;
        std::memcpy(&bits, &out[c.count - 1], sizeof(bits));
        checksum += bits;
        samples += c.count;
      }
    }
    EmitLine("value", mode, samples,
             static_cast<double>(NowUs() - start) / 1e6, checksum);
  }
}

// -- NULL-extended member columns --------------------------------------------

std::vector<EncodedChunk> BuildNullableChunks(Random* rng) {
  std::vector<EncodedChunk> chunks(Chunks());
  double v = 42.0;
  for (EncodedChunk& c : chunks) {
    c.count = ChunkSamples();
    c.bytes.resize(c.count * 12 + 64);
    BitWriter w(c.bytes.data(), c.bytes.size());
    compress::NullableValueEncoder enc;
    for (uint32_t i = 0; i < c.count; ++i) {
      if (rng->OneIn(4)) {
        enc.AppendNull(&w);
      } else {
        v += rng->NextGaussian(0, 1.0);
        enc.AppendValue(&w, v);
      }
    }
  }
  return chunks;
}

void RunNullable(const std::vector<EncodedChunk>& chunks) {
  std::vector<double> out(ChunkSamples());
  std::vector<uint64_t> validity((ChunkSamples() + 63) / 64);
  for (const char* mode : {"scalar", "bulk"}) {
    uint64_t checksum = 0;
    uint64_t samples = 0;
    const uint64_t start = NowUs();
    for (int r = 0; r < Rounds(); ++r) {
      for (const EncodedChunk& c : chunks) {
        BitReader reader(c.bytes.data(), c.bytes.size());
        compress::NullableValueDecoder dec;
        if (mode[0] == 's') {
          uint32_t present = 0;
          for (uint32_t i = 0; i < c.count; ++i) {
            double x;
            if (dec.Next(&reader, &x)) ++present;
          }
          checksum += present;
        } else {
          std::fill(validity.begin(), validity.end(), 0);
          dec.DecodeAll(&reader, c.count, out.data(), validity.data());
          for (uint64_t word : validity) checksum += __builtin_popcountll(word);
        }
        samples += c.count;
      }
    }
    EmitLine("nullable", mode, samples,
             static_cast<double>(NowUs() - start) / 1e6, checksum);
  }
}

int Main() {
  PrintHeader("gorilla_decode",
              "Scalar vs bulk Gorilla decode throughput per codec");
  Random rng(42);
  RunTimestamps(BuildTimestampChunks(&rng));
  RunValues(BuildValueChunks(&rng));
  RunNullable(BuildNullableChunks(&rng));
  return 0;
}

}  // namespace
}  // namespace tu::bench

int main() { return tu::bench::Main(); }
