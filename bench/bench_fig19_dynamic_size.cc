// Figure 19: dynamic size control under a fixed (scaled) EBS limit.
// Three phases like the paper: dense samples (10 s) push the partition
// length down; sparse samples (60 s) let it grow; a second dense phase
// pushes it down again, with EBS usage staying under the limit.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/timeunion_db.h"
#include "tsbs/devops.h"

using namespace tu;
using namespace tu::bench;

int main() {
  const uint64_t kLimit = 3ull << 19;  // 1.5 MB, scaled from the paper's 512 MB

  core::DBOptions opts;
  opts.workspace = FreshWorkspace("fig19");
  opts.lsm.memtable_bytes = 128 << 10;
  opts.lsm.fast_storage_limit_bytes = kLimit;
  std::unique_ptr<core::TimeUnionDB> db;
  Status st = core::TimeUnionDB::Open(opts, &db);
  if (!st.ok()) {
    std::printf("FAILED: %s\n", st.ToString().c_str());
    return 1;
  }

  tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = 4;
  tsbs::DevOpsGenerator gen(gen_opts);
  std::vector<uint64_t> refs(gen.num_series(), 0);

  PrintHeader("Figure 19",
              "dynamic size control (1.5MB scaled limit; paper: 512MB)");
  std::printf("  %-26s %16s %14s\n", "phase/progress",
              "partition(min)", "EBS used(KB)");

  int64_t ts = 0;
  auto run_phase = [&](const char* name, int64_t interval_ms,
                       int64_t duration_ms) -> Status {
    const int64_t phase_end = ts + duration_ms;
    const int64_t report_stride = duration_ms / 4;
    int64_t next_report = ts + report_stride;
    while (ts < phase_end) {
      for (uint64_t h = 0; h < gen.num_hosts(); ++h) {
        for (int s = 0; s < 101; ++s) {
          const size_t slot = h * 101 + s;
          if (refs[slot] == 0) {
            TU_RETURN_IF_ERROR(db->Insert(gen.SeriesLabels(h, s), ts,
                                          gen.Value(h, s, ts), &refs[slot]));
          } else {
            TU_RETURN_IF_ERROR(
                db->InsertFast(refs[slot], ts, gen.Value(h, s, ts)));
          }
        }
      }
      ts += interval_ms;
      if (ts >= next_report) {
        std::printf("  %-26s %16.1f %14.0f\n", name,
                    db->time_lsm()->l0_partition_ms() / 60000.0,
                    db->time_lsm()->FastBytesUsed() / 1024.0);
        next_report += report_stride;
      }
    }
    return Status::OK();
  };

  st = run_phase("dense (10s interval)", 10'000, 6LL * 3600 * 1000);
  if (st.ok()) st = run_phase("sparse (60s interval)", 60'000,
                              18LL * 3600 * 1000);
  if (st.ok()) st = run_phase("dense again (10s)", 10'000,
                              6LL * 3600 * 1000);
  if (!st.ok()) {
    std::printf("FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "\n  shape checks: partition length halves under dense load, grows\n"
      "  in the sparse phase, halves again under the second dense phase;\n"
      "  EBS usage stays near/below the limit throughout.\n");
  return 0;
}
