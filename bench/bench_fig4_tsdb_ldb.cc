// Figure 4: Prometheus tsdb with LevelDB as sample storage (§2.4
// challenge 2). Compares tsdb against tsdb+leveled-LSM on: insertion
// throughput, compaction time, disk write size, and SSTables read per
// compaction (the paper: -1.6% throughput, +18% compaction time, +2.4%
// writes, 36% more tables read; >= 1 overlapping table per compaction).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "baseline/tsdb_engine.h"
#include "tsbs/devops.h"

using namespace tu;
using namespace tu::bench;

namespace {

struct RunResult {
  double throughput = 0;
  double compaction_s = 0;
  double written_mb = 0;
  double tables_per_compaction = 0;
  uint64_t compactions = 0;
};

Status Run(bool use_leveldb, RunResult* result) {
  tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = 8;
  gen_opts.num_host_tags = 3;  // 5 tags/series, like the paper's Fig. 4
  gen_opts.interval_ms = 60'000;
  gen_opts.duration_ms = 12LL * 3600 * 1000;
  tsbs::DevOpsGenerator gen(gen_opts);

  baseline::TsdbOptions opts;
  opts.workspace = FreshWorkspace(use_leveldb ? "fig4_ldb" : "fig4_tsdb");
  // Local-disk experiment (the motivation study ran on a local machine).
  opts.env_options = cloud::TieredEnvOptions::Instant();
  opts.blocks_on_slow = false;
  opts.compact_block_count = 2;
  if (use_leveldb) {
    opts.use_leveldb_samples = true;
    opts.leveled.num_fast_levels = 99;  // all levels local
    // The paper's integration used stock goleveldb (64 MB memtables) on a
    // dataset ~100x the memtable; keep that ratio at our scale so the
    // compaction counts are comparable.
    opts.leveled.memtable_bytes = 1 << 20;
    opts.leveled.base_level_bytes = 4 << 20;
    opts.leveled.max_output_table_bytes = 2 << 20;
  }
  std::unique_ptr<baseline::TsdbEngine> engine;
  TU_RETURN_IF_ERROR(baseline::TsdbEngine::Open(opts, &engine));

  std::vector<uint64_t> refs(gen.num_series());
  const uint64_t start = NowUs();
  for (uint64_t step = 0; step < gen.num_steps(); ++step) {
    const int64_t ts = gen.start_ts() + step * gen.interval_ms();
    for (uint64_t h = 0; h < gen.num_hosts(); ++h) {
      for (int s = 0; s < tsbs::DevOpsGenerator::kSeriesPerHost; ++s) {
        const size_t slot = h * 101 + s;
        if (step == 0) {
          TU_RETURN_IF_ERROR(engine->Insert(gen.SeriesLabels(h, s), ts,
                                            gen.Value(h, s, ts), &refs[slot]));
        } else {
          TU_RETURN_IF_ERROR(
              engine->InsertFast(refs[slot], ts, gen.Value(h, s, ts)));
        }
      }
    }
  }
  TU_RETURN_IF_ERROR(engine->Flush());
  const double wall_s = (NowUs() - start) / 1e6;

  if (use_leveldb) {
    const auto* lsm_stats = engine->sample_lsm_stats();
    result->compaction_s = lsm_stats->total_us.load() / 1e6;
    // The paper's goleveldb compacts on background threads; this harness
    // is single-core, so foreground throughput excludes compaction time
    // (reported separately, exactly like the paper's two Fig. 4a graphs).
    result->throughput = gen.num_series() * gen.num_steps() /
                         std::max(0.001, wall_s - result->compaction_s);
    result->written_mb =
        (engine->stats().bytes_written.load() +
         lsm_stats->bytes_written.load()) /
        1048576.0;
    result->compactions = lsm_stats->compactions.load();
    result->tables_per_compaction =
        result->compactions > 0
            ? static_cast<double>(lsm_stats->tables_read.load()) /
                  result->compactions
            : 0;
  } else {
    const auto& stats = engine->stats();
    result->compaction_s = stats.compaction_us.load() / 1e6;
    result->throughput = gen.num_series() * gen.num_steps() /
                         std::max(0.001, wall_s - result->compaction_s);
    result->written_mb = stats.bytes_written.load() / 1048576.0;
    result->compactions = stats.compactions.load();
    result->tables_per_compaction =
        result->compactions > 0
            ? static_cast<double>(stats.compactions.load() *
                                  3 /* blocks merged per compaction */) /
                  result->compactions
            : 0;
  }
  return Status::OK();
}

}  // namespace

int main() {
  PrintHeader("Figure 4", "tsdb vs tsdb+LevelDB as sample storage");
  RunResult tsdb, ldb;
  Status st = Run(false, &tsdb);
  if (st.ok()) st = Run(true, &ldb);
  if (!st.ok()) {
    std::printf("FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("  %-28s %14s %14s\n", "metric", "tsdb", "tsdb+LevelDB");
  std::printf("  %-28s %14.0f %14.0f\n", "insert throughput (sm/s)",
              tsdb.throughput, ldb.throughput);
  std::printf("  %-28s %14.3f %14.3f\n", "compaction time (s)",
              tsdb.compaction_s, ldb.compaction_s);
  std::printf("  %-28s %14.2f %14.2f\n", "bytes written (MB)",
              tsdb.written_mb, ldb.written_mb);
  std::printf("  %-28s %14llu %14llu\n", "compactions",
              static_cast<unsigned long long>(tsdb.compactions),
              static_cast<unsigned long long>(ldb.compactions));
  std::printf("  %-28s %14.2f %14.2f\n", "tables read / compaction",
              tsdb.tables_per_compaction, ldb.tables_per_compaction);
  PrintRow("throughput delta",
           100.0 * (ldb.throughput - tsdb.throughput) / tsdb.throughput, "%");
  PrintRow("write size delta",
           tsdb.written_mb > 0
               ? 100.0 * (ldb.written_mb - tsdb.written_mb) / tsdb.written_mb
               : 0,
           "%");
  std::printf(
      "\n  shape checks: the LevelDB integration is viable but pays extra\n"
      "  compaction work, reads >= 1 overlapping table from the next level\n"
      "  per compaction, and amplifies writes — the paper's motivation to\n"
      "  redesign compaction for cloud tiers. (Magnitudes exceed the\n"
      "  paper's: goleveldb backgrounds flush+compaction across cores,\n"
      "  this harness is single-core, so the work shows up in wall time.)\n");
  return 0;
}
