#include "engine_harness.h"

#include "bench_util.h"
#include "util/memory_tracker.h"
#include "util/mmap_file.h"

namespace tu::bench {

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kTsdb:
      return "tsdb";
    case EngineKind::kTsdbLdb:
      return "tsdb-LDB";
    case EngineKind::kTU:
      return "TU";
    case EngineKind::kTUGroup:
      return "TU-Group";
    case EngineKind::kTULdb:
      return "TU-LDB";
  }
  return "?";
}

EngineHarness::EngineHarness(EngineKind kind, HarnessOptions options)
    : kind_(kind), options_(std::move(options)) {}

EngineHarness::~EngineHarness() = default;

Status EngineHarness::Open() {
  RemoveDirRecursive(options_.workspace);
  switch (kind_) {
    case EngineKind::kTsdb:
    case EngineKind::kTsdbLdb: {
      baseline::TsdbOptions opts;
      opts.workspace = options_.workspace;
      opts.env_options = options_.env;
      opts.blocks_on_slow = !options_.ebs_only;
      opts.segment_cache_bytes = options_.block_cache_bytes;
      if (kind_ == EngineKind::kTsdbLdb) {
        opts.use_leveldb_samples = true;
        // Keep the paper's data:memtable ratio at laptop scale so the
        // leveled compactions (and their S3 traffic) actually happen.
        opts.leveled.memtable_bytes = options_.memtable_bytes / 16;
        opts.leveled.base_level_bytes = options_.memtable_bytes / 8;
        opts.leveled.max_output_table_bytes = options_.memtable_bytes / 16;
        opts.leveled.level_multiplier = 4;
        // tsdb-LDB stores SSTables on S3 (§4.1 baseline (a)).
        opts.leveled.num_fast_levels = options_.ebs_only ? 99 : 0;
      }
      return baseline::TsdbEngine::Open(opts, &tsdb_);
    }
    case EngineKind::kTU:
    case EngineKind::kTUGroup: {
      core::DBOptions opts;
      opts.workspace = options_.workspace;
      opts.env_options = options_.env;
      opts.lsm.memtable_bytes = options_.memtable_bytes / 8;
      opts.block_cache_bytes = options_.block_cache_bytes;
      opts.lsm.fast_storage_limit_bytes = options_.fast_limit_bytes;
      if (options_.ebs_only) {
        // Fig. 17: pin everything to the fast tier by making the L2
        // window enormous (data never migrates off EBS).
        opts.lsm.l2_partition_ms = 1LL << 50;
        opts.lsm.partition_upper_bound_ms = 1LL << 50;
      }
      return core::TimeUnionDB::Open(opts, &tu_);
    }
    case EngineKind::kTULdb: {
      core::DBOptions opts;
      opts.workspace = options_.workspace;
      opts.env_options = options_.env;
      opts.backend = core::DBOptions::Backend::kLeveled;
      opts.leveled.memtable_bytes = options_.memtable_bytes / 16;
      opts.leveled.base_level_bytes = options_.memtable_bytes / 8;
      opts.leveled.max_output_table_bytes = options_.memtable_bytes / 16;
      opts.leveled.level_multiplier = 4;
      opts.leveled.num_fast_levels = options_.ebs_only ? 99 : 2;
      opts.block_cache_bytes = options_.block_cache_bytes;
      return core::TimeUnionDB::Open(opts, &tu_);
    }
  }
  return Status::InvalidArgument("unknown engine kind");
}

Status EngineHarness::RunInsert(const tsbs::DevOpsGenerator& gen,
                                InsertReport* report) {
  const uint64_t start = NowUs();
  uint64_t samples = 0;
  const uint64_t hosts = gen.num_hosts();
  const int per_host = tsbs::DevOpsGenerator::kSeriesPerHost;

  if (kind_ == EngineKind::kTUGroup) {
    group_refs_.assign(hosts, 0);
    group_slots_.assign(hosts, {});
    std::vector<index::Labels> member_tags(per_host);
    for (int s = 0; s < per_host; ++s) member_tags[s] = gen.UniqueTags(s);

    std::vector<double> values(per_host);
    for (uint64_t step = 0; step < gen.num_steps(); ++step) {
      const int64_t ts = gen.start_ts() + step * gen.interval_ms();
      for (uint64_t h = 0; h < hosts; ++h) {
        for (int s = 0; s < per_host; ++s) values[s] = gen.Value(h, s, ts);
        if (step == 0) {
          TU_RETURN_IF_ERROR(tu_->InsertGroup(gen.HostTags(h), member_tags,
                                              ts, values, &group_refs_[h],
                                              &group_slots_[h]));
        } else {
          TU_RETURN_IF_ERROR(
              tu_->InsertGroupFast(group_refs_[h], group_slots_[h], ts,
                                   values));
        }
        samples += per_host;
      }
    }
  } else {
    series_refs_.assign(hosts * per_host, 0);
    for (uint64_t step = 0; step < gen.num_steps(); ++step) {
      const int64_t ts = gen.start_ts() + step * gen.interval_ms();
      for (uint64_t h = 0; h < hosts; ++h) {
        for (int s = 0; s < per_host; ++s) {
          const double v = gen.Value(h, s, ts);
          const size_t slot = h * per_host + s;
          if (step == 0) {
            const index::Labels labels = gen.SeriesLabels(h, s);
            if (tu_) {
              TU_RETURN_IF_ERROR(
                  tu_->Insert(labels, ts, v, &series_refs_[slot]));
            } else {
              TU_RETURN_IF_ERROR(
                  tsdb_->Insert(labels, ts, v, &series_refs_[slot]));
            }
          } else {
            if (tu_) {
              TU_RETURN_IF_ERROR(tu_->InsertFast(series_refs_[slot], ts, v));
            } else {
              TU_RETURN_IF_ERROR(tsdb_->InsertFast(series_refs_[slot], ts, v));
            }
          }
          ++samples;
        }
      }
    }
  }

  report->samples = samples;
  report->wall_seconds = static_cast<double>(NowUs() - start) / 1e6;
  report->throughput =
      report->wall_seconds > 0 ? samples / report->wall_seconds : 0;
  auto& tracker = MemoryTracker::Global();
  report->memory_total = tracker.Total();
  report->memory_index = tracker.Get(MemCategory::kInvertedIndex) +
                         tracker.Get(MemCategory::kTags);
  report->memory_samples = tracker.Get(MemCategory::kSamples);
  report->memory_block_meta = tracker.Get(MemCategory::kBlockMeta);
  return Status::OK();
}

Status EngineHarness::Flush() {
  if (tu_) return tu_->Flush();
  return tsdb_->Flush();
}

Status EngineHarness::RunQuery(const tsbs::DevOpsGenerator& gen,
                               const tsbs::QueryPattern& pattern, int repeats,
                               QueryReport* report) {
  report->pattern = pattern.name;
  report->latency_us = 0;
  report->series_returned = 0;
  report->samples_returned = 0;

  for (int r = 0; r < repeats; ++r) {
    const auto matchers = tsbs::PatternSelectors(pattern, gen, 1000 + r);
    int64_t t1 = gen.end_ts();
    int64_t t0;
    if (pattern.lastpoint) {
      t0 = t1 - 2 * gen.interval_ms();
    } else if (pattern.hours < 0) {
      t0 = gen.start_ts();
    } else {
      t0 = t1 - pattern.hours * 3600LL * 1000;
      if (t0 < gen.start_ts()) t0 = gen.start_ts();
    }

    const uint64_t start = NowUs();
    if (tu_) {
      core::QueryResult result;
      TU_RETURN_IF_ERROR(tu_->Query(matchers, t0, t1, &result));
      for (const auto& series : result) {
        const auto agg = pattern.lastpoint
                             ? std::vector<tsbs::AggPoint>{}
                             : tsbs::AggregateMax(
                                   series.samples,
                                   tsbs::QueryPattern::kAggWindowMs);
        (void)agg;
        report->samples_returned += series.samples.size();
      }
      report->series_returned += result.size();
    } else {
      std::vector<baseline::TsdbSeriesResult> result;
      TU_RETURN_IF_ERROR(tsdb_->Query(matchers, t0, t1, &result));
      for (const auto& series : result) {
        const auto agg = pattern.lastpoint
                             ? std::vector<tsbs::AggPoint>{}
                             : tsbs::AggregateMax(
                                   series.samples,
                                   tsbs::QueryPattern::kAggWindowMs);
        (void)agg;
        report->samples_returned += series.samples.size();
      }
      report->series_returned += result.size();
    }
    report->latency_us += static_cast<double>(NowUs() - start);
  }
  report->latency_us /= repeats;
  return Status::OK();
}

uint64_t EngineHarness::PersistedIndexBytes() const {
  if (tsdb_) return tsdb_->PersistedIndexBytes();
  // TimeUnion: the single global index (trie + postings + tag store).
  return tu_->IndexMemoryUsage();
}

uint64_t EngineHarness::PersistedDataBytes() const {
  if (kind_ == EngineKind::kTsdb) return tsdb_->PersistedDataBytes();
  if (kind_ == EngineKind::kTsdbLdb) {
    // Samples live in the LSM (on either tier); subtract the index blobs.
    const uint64_t total = tsdb_->env().slow().TotalBytesUsed() +
                           tsdb_->env().fast().TotalBytesUsed();
    const uint64_t index = tsdb_->PersistedIndexBytes();
    return total > index ? total - index : 0;
  }
  if (tu_->time_lsm()) {
    return tu_->time_lsm()->FastBytesUsed() + tu_->time_lsm()->SlowBytesUsed();
  }
  return tu_->env().fast().TotalBytesUsed() +
         tu_->env().slow().TotalBytesUsed();
}

cloud::TieredEnv* EngineHarness::env() {
  if (tu_) return &tu_->env();
  return &tsdb_->env();
}

}  // namespace tu::bench
