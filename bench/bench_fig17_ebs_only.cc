// Figure 17: evaluation with all data stored on EBS only (no object tier).
// Repeats the Fig. 14 comparison with every engine pinned to fast storage.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "engine_harness.h"
#include "util/memory_tracker.h"

using namespace tu;
using namespace tu::bench;

int main() {
  const EngineKind engines[] = {EngineKind::kTsdb, EngineKind::kTsdbLdb,
                                EngineKind::kTU, EngineKind::kTUGroup,
                                EngineKind::kTULdb};

  tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = 10;
  gen_opts.interval_ms = 30'000;
  gen_opts.duration_ms = 24LL * 3600 * 1000;
  tsbs::DevOpsGenerator gen(gen_opts);

  PrintHeader("Figure 17", "EBS-only evaluation (insert)");
  std::printf("  %-10s %16s %12s\n", "engine", "insert(sm/s)", "memory(MB)");

  std::vector<std::unique_ptr<EngineHarness>> harnesses;
  for (EngineKind kind : engines) {
    MemoryTracker::Global().Reset();
    HarnessOptions opts;
    opts.workspace =
        FreshWorkspace(std::string("fig17_") + EngineName(kind));
    opts.ebs_only = true;
    auto harness = std::make_unique<EngineHarness>(kind, opts);
    Status st = harness->Open();
    InsertReport report;
    if (st.ok()) st = harness->RunInsert(gen, &report);
    if (st.ok()) st = harness->Flush();
    if (!st.ok()) {
      std::printf("  %-10s FAILED: %s\n", EngineName(kind),
                  st.ToString().c_str());
      continue;
    }
    std::printf("  %-10s %16.0f %12.2f\n", EngineName(kind),
                report.throughput, report.memory_total / 1048576.0);
    harnesses.push_back(std::move(harness));
  }
  // No object-tier traffic must have occurred.
  for (auto& h : harnesses) {
    if (h->env()->slow().counters().put_ops.load() != 0) {
      std::printf("  WARNING: %s touched the object tier!\n",
                  EngineName(h->kind()));
    }
  }

  PrintHeader("Figure 17 (cont.)", "query latency, EBS only (us)");
  std::printf("  %-10s", "pattern");
  for (auto& h : harnesses) std::printf(" %12s", EngineName(h->kind()));
  std::printf("\n");
  for (const auto& pattern : tsbs::StandardPatterns()) {
    std::printf("  %-10s", pattern.name.c_str());
    for (auto& h : harnesses) {
      QueryReport report;
      Status st = h->RunQuery(gen, pattern, 3, &report);
      std::printf(" %12.0f", st.ok() ? report.latency_us : -1.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\n  shape checks: gaps shrink versus Fig. 14 — without the S3 cost,\n"
      "  tsdb's recent-data queries are competitive and TU-LDB's penalty\n"
      "  drops (compaction on EBS is fast).\n");
  return 0;
}
