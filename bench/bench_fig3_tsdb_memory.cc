// Figure 3: resource usage of Prometheus tsdb.
//  (a) memory vs #timeseries (each with 20 tags): index only, then 2 h of
//      samples at 10 s and 60 s intervals, then 12 h;
//  (b) breakdown of the 12 h / 60 s case: inverted index vs block metadata
//      vs data samples (paper: 51% / 34% / 15%).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "baseline/tsdb_engine.h"
#include "tsbs/devops.h"
#include "util/memory_tracker.h"

using namespace tu;
using namespace tu::bench;

namespace {

Status RunCase(uint64_t hosts, int64_t interval_ms, int64_t duration_ms,
               bool index_only, int64_t* total, int64_t* index,
               int64_t* samples, int64_t* block_meta) {
  MemoryTracker::Global().Reset();
  tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = hosts;
  gen_opts.num_host_tags = 18;  // + measurement + fieldname = 20 tags/series
  gen_opts.interval_ms = interval_ms;
  gen_opts.duration_ms = duration_ms;
  tsbs::DevOpsGenerator gen(gen_opts);

  baseline::TsdbOptions opts;
  opts.workspace = FreshWorkspace("fig3");
  std::unique_ptr<baseline::TsdbEngine> engine;
  TU_RETURN_IF_ERROR(baseline::TsdbEngine::Open(opts, &engine));

  std::vector<uint64_t> refs(gen.num_series());
  for (uint64_t h = 0; h < hosts; ++h) {
    for (int s = 0; s < tsbs::DevOpsGenerator::kSeriesPerHost; ++s) {
      TU_RETURN_IF_ERROR(
          engine->Register(gen.SeriesLabels(h, s), &refs[h * 101 + s]));
    }
  }
  if (!index_only) {
    for (uint64_t step = 0; step < gen.num_steps(); ++step) {
      const int64_t ts = gen.start_ts() + step * gen.interval_ms();
      for (uint64_t h = 0; h < hosts; ++h) {
        for (int s = 0; s < tsbs::DevOpsGenerator::kSeriesPerHost; ++s) {
          TU_RETURN_IF_ERROR(
              engine->InsertFast(refs[h * 101 + s], ts, gen.Value(h, s, ts)));
        }
      }
    }
  }
  auto& tracker = MemoryTracker::Global();
  *total = tracker.Total();
  *index = tracker.Get(MemCategory::kInvertedIndex) +
           tracker.Get(MemCategory::kTags);
  *samples = tracker.Get(MemCategory::kSamples);
  *block_meta = tracker.Get(MemCategory::kBlockMeta);
  return Status::OK();
}

}  // namespace

int main() {
  const int64_t kHour = 3600LL * 1000;
  PrintHeader("Figure 3a", "tsdb memory vs #series (20 tags each)");
  std::printf("  %-24s %10s %14s\n", "case", "#series", "memory(MB)");

  struct Case {
    const char* name;
    int64_t interval;
    int64_t duration;
    bool index_only;
  };
  const std::vector<Case> cases = {
      {"index only", 60'000, 2 * kHour, true},
      {"2h @ 60s", 60'000, 2 * kHour, false},
      {"2h @ 10s", 10'000, 2 * kHour, false},
      {"12h @ 60s", 60'000, 12 * kHour, false},
  };
  for (uint64_t hosts : {2, 5, 10}) {
    for (const Case& c : cases) {
      int64_t total, index, samples, block_meta;
      Status st = RunCase(hosts, c.interval, c.duration, c.index_only, &total,
                          &index, &samples, &block_meta);
      if (!st.ok()) {
        std::printf("  FAILED: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("  %-24s %10llu %14.2f\n", c.name,
                  static_cast<unsigned long long>(hosts * 101),
                  total / 1048576.0);
    }
  }

  PrintHeader("Figure 3b", "memory breakdown, 12h @ 60s (paper: 51/34/15%)");
  int64_t total, index, samples, block_meta;
  Status st =
      RunCase(10, 60'000, 12 * kHour, false, &total, &index, &samples,
              &block_meta);
  if (!st.ok()) return 1;
  PrintRow("inverted index + tags", 100.0 * index / total, "%");
  PrintRow("block metadata", 100.0 * block_meta / total, "%");
  PrintRow("data samples", 100.0 * samples / total, "%");
  std::printf(
      "\n  shape checks: memory linear in #series; denser samples cost\n"
      "  more; index is the largest share, then block metadata.\n");
  return 0;
}
