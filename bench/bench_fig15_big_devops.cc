// Figure 15: big DevOps timeseries — denser samples (10 s interval) and a
// longer span, with the whole-span query patterns 1-1-all / 5-1-all.
// Paper scale: 100 K series x 1-7 days; here scaled to laptop rounds.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "engine_harness.h"
#include "util/memory_tracker.h"

using namespace tu;
using namespace tu::bench;

int main(int argc, char** argv) {
  int span_hours = 24;
  if (argc > 1 && std::string(argv[1]) == "--large") span_hours = 48;

  const EngineKind engines[] = {EngineKind::kTsdb, EngineKind::kTsdbLdb,
                                EngineKind::kTU, EngineKind::kTUGroup,
                                EngineKind::kTULdb};

  PrintHeader("Figure 15", "big DevOps (10s interval) insertion + queries");
  std::printf("  %-10s %16s %12s\n", "engine", "insert(sm/s)", "memory(MB)");

  std::vector<std::unique_ptr<EngineHarness>> harnesses;
  tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = 3;
  gen_opts.interval_ms = 10'000;
  gen_opts.duration_ms = span_hours * 3600LL * 1000;
  tsbs::DevOpsGenerator gen(gen_opts);

  for (EngineKind kind : engines) {
    MemoryTracker::Global().Reset();
    HarnessOptions opts;
    opts.workspace =
        FreshWorkspace(std::string("fig15_") + EngineName(kind));
    auto harness = std::make_unique<EngineHarness>(kind, opts);
    Status st = harness->Open();
    InsertReport report;
    if (st.ok()) st = harness->RunInsert(gen, &report);
    if (st.ok()) st = harness->Flush();
    if (!st.ok()) {
      std::printf("  %-10s FAILED: %s\n", EngineName(kind),
                  st.ToString().c_str());
      continue;
    }
    std::printf("  %-10s %16.0f %12.2f\n", EngineName(kind),
                report.throughput, report.memory_total / 1048576.0);
    harnesses.push_back(std::move(harness));
  }

  PrintHeader("Figure 15 (cont.)", "query latency incl. whole-span (us)");
  std::printf("  %-10s", "pattern");
  for (auto& h : harnesses) std::printf(" %12s", EngineName(h->kind()));
  std::printf("\n");
  for (const auto& pattern : tsbs::BigPatterns()) {
    std::printf("  %-10s", pattern.name.c_str());
    for (auto& h : harnesses) {
      QueryReport report;
      Status st = h->RunQuery(gen, pattern, 3, &report);
      std::printf(" %12.0f", st.ok() ? report.latency_us : -1.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\n  shape checks: whole-span (1-1-all/5-1-all) queries strongly\n"
      "  favour TU over tsdb; TU-Group closes the gap when the queried\n"
      "  series come from the same group (5-1-all).\n");
  return 0;
}
