// Continuous-aggregate query cost: cold/warm AggregateQuery served from
// compaction-maintained rollup partitions vs the equivalent raw-drain
// fold, over a month-scale-in-miniature slow-tier layout (long L2
// partitions, small blocks, so every raw table is many data blocks deep).
// Each cold pass runs on a freshly reopened DB instance — unopened
// readers, empty block cache, zeroed tier counters — so the slow-tier
// get_ops deltas are the real per-query object-store bill. The two paths
// share the same fold kernel, so the bench verifies the aggregate points
// are bitwise identical before reporting any numbers.
//
// Emits one JSON line per (path, pass), e.g.
//   {"bench":"rollup_query","path":"rollup","cache":"cold","series":4,
//    "span_ms":1600000,"step_ms":10000,"points":640,"elapsed_us":1444.0,
//    "slow_gets":67,"rollup_buckets_served":624,"raw_edge_samples":3180}
// and a final summary line with the headline ratio:
//   {"bench":"rollup_query","summary":true,"cold_raw_gets":1051,
//    "cold_agg_gets":67,"gets_reduction":15.7,"results_equal":true}
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "compress/rollup.h"
#include "core/timeunion_db.h"
#include "query/aggregate.h"
#include "query/read_context.h"
#include "util/mmap_file.h"

namespace tu::bench {
namespace {

constexpr int64_t kSampleStepMs = 50;
constexpr int64_t kWindowStepMs = 10'000;

// CI smoke mode (TU_BENCH_SMOKE): same pipeline, tiny workload.
int SeriesCount() { return SmokeMode() ? 2 : 4; }
int SamplesPerSeries() { return SmokeMode() ? 4'000 : 32'000; }
int64_t SpanMs() { return SamplesPerSeries() * kSampleStepMs; }
// Unaligned tail so the raw-edge fallback stays on the measured path.
int64_t QueryT0() { return 0; }
int64_t QueryT1() { return SpanMs() - 300; }

core::DBOptions BenchOptions(const std::string& ws) {
  core::DBOptions opts;
  opts.workspace = ws;
  // Long L2 partitions + 256-byte blocks: a miniature of a month-scale
  // object-store layout where one raw table costs a footer/filter/index
  // walk plus dozens of data-block Gets, while its rollup summary is a
  // single prefetched object.
  opts.samples_per_chunk = 4;
  opts.lsm.memtable_bytes = 8 << 10;
  opts.lsm.l0_partition_ms = 10'000;
  opts.lsm.l2_partition_ms = 40'000;
  opts.lsm.partition_lower_bound_ms = 10'000;
  opts.lsm.partition_upper_bound_ms = 40'000;
  opts.lsm.l0_partition_trigger = 1;
  opts.lsm.table_options.block_size = 256;
  opts.lsm.rollup_granularities_ms = {1'000, kWindowStepMs};
  // The series registry replays from the WAL on the per-side reopens, and
  // maintenance must not re-derive anything between measured passes.
  opts.enable_wal = true;
  opts.background_maintenance = false;
  return opts;
}

std::unique_ptr<core::TimeUnionDB> OpenDb(const core::DBOptions& opts) {
  std::unique_ptr<core::TimeUnionDB> db;
  Status s = core::TimeUnionDB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return nullptr;
  }
  return db;
}

bool BuildWorkload(const core::DBOptions& opts) {
  std::unique_ptr<core::TimeUnionDB> db = OpenDb(opts);
  if (!db) return false;
  // Interleave by timestamp: sequential per-series loads would make every
  // series after the first out-of-order against already-compacted L2
  // windows, dirtying the very rollups under measurement.
  std::vector<uint64_t> refs(SeriesCount());
  for (int i = 0; i < SeriesCount(); ++i) {
    Status s = db->Insert({{"host", std::to_string(i)}, {"m", "cpu"}}, 0,
                          0.5 * i, &refs[i]);
    if (!s.ok()) return false;
  }
  for (int j = 1; j < SamplesPerSeries(); ++j) {
    for (int i = 0; i < SeriesCount(); ++i) {
      const double v = 0.25 * j + 100.0 * i;
      if (!db->InsertFast(refs[i], j * kSampleStepMs, v).ok()) return false;
    }
  }
  if (!db->Flush().ok()) return false;
  if (db->time_lsm()->NumRollupTables() == 0) {
    std::fprintf(stderr, "workload produced no rollup tables\n");
    return false;
  }
  std::printf(
      "{\"bench\":\"rollup_query\",\"phase\":\"build\",\"series\":%d,"
      "\"samples_per_series\":%d,\"l2_partitions\":%llu,"
      "\"rollup_tables\":%llu}\n",
      SeriesCount(), SamplesPerSeries(),
      static_cast<unsigned long long>(db->time_lsm()->NumL2Partitions()),
      static_cast<unsigned long long>(db->time_lsm()->NumRollupTables()));
  std::fflush(stdout);
  return true;
}

void PrintPass(const char* path, const char* cache, size_t points,
               double elapsed_us, uint64_t slow_gets,
               const query::QueryStats& stats) {
  std::printf(
      "{\"bench\":\"rollup_query\",\"path\":\"%s\",\"cache\":\"%s\","
      "\"series\":%d,\"span_ms\":%lld,\"step_ms\":%lld,\"points\":%zu,"
      "\"elapsed_us\":%.1f,\"slow_gets\":%llu,"
      "\"rollup_buckets_served\":%llu,\"raw_edge_samples\":%llu}\n",
      path, cache, SeriesCount(), static_cast<long long>(SpanMs()),
      static_cast<long long>(kWindowStepMs), points, elapsed_us,
      static_cast<unsigned long long>(slow_gets),
      static_cast<unsigned long long>(stats.rollup_buckets_served),
      static_cast<unsigned long long>(stats.raw_edge_samples));
  std::fflush(stdout);
}

/// Folds one raw series drain through the same two-stage kernel the
/// planner uses (samples -> serving-granularity buckets -> step windows).
std::vector<query::AggPoint> FoldRaw(
    const std::vector<compress::Sample>& samples, query::AggFn fn) {
  std::vector<int64_t> ts;
  std::vector<double> vs;
  ts.reserve(samples.size());
  vs.reserve(samples.size());
  for (const compress::Sample& s : samples) {
    ts.push_back(s.timestamp);
    vs.push_back(s.value);
  }
  std::vector<compress::RollupBucket> buckets;
  query::AccumulateIntoBuckets(ts.data(), vs.data(), ts.size(), kWindowStepMs,
                               &buckets);
  return query::FoldBuckets(buckets, kWindowStepMs, fn);
}

int Main() {
  PrintHeader("rollup_query",
              "Aggregate query via rollup partitions vs raw drain fold");
  const std::string workspace = FreshWorkspace("rollup_query");
  const core::DBOptions opts = BenchOptions(workspace);
  if (!BuildWorkload(opts)) return 1;

  const std::vector<index::TagMatcher> matchers = {
      index::TagMatcher::Equal("m", "cpu")};

  // Raw side: cold reopen, drain + client-side fold; repeat warm.
  uint64_t cold_raw_gets = 0;
  core::QueryResult raw;
  {
    std::unique_ptr<core::TimeUnionDB> db = OpenDb(opts);
    if (!db) return 1;
    const auto& slow = db->env().slow().counters();
    for (const char* cache : {"cold", "warm"}) {
      raw = core::QueryResult();
      const uint64_t gets_before = slow.get_ops.load();
      const uint64_t t_start = NowUs();
      if (!db->Query(matchers, QueryT0(), QueryT1(), &raw).ok() ||
          raw.size() != static_cast<size_t>(SeriesCount())) {
        std::fprintf(stderr, "raw query failed\n");
        return 1;
      }
      size_t points = 0;
      for (const auto& series : raw) {
        points += FoldRaw(series.samples, query::AggFn::kMax).size();
      }
      const double elapsed_us = static_cast<double>(NowUs() - t_start);
      const uint64_t gets = slow.get_ops.load() - gets_before;
      if (cache[0] == 'c') cold_raw_gets = gets;
      PrintPass("raw", cache, points, elapsed_us, gets, raw.stats);
    }
  }

  // Rollup side: cold reopen, planner-served AggregateQuery; repeat warm.
  uint64_t cold_agg_gets = 0;
  core::TimeUnionDB::AggregateResult agg;
  std::unique_ptr<core::TimeUnionDB> db = OpenDb(opts);
  if (!db) return 1;
  {
    const auto& slow = db->env().slow().counters();
    for (const char* cache : {"cold", "warm"}) {
      agg = core::TimeUnionDB::AggregateResult();
      const uint64_t gets_before = slow.get_ops.load();
      const uint64_t t_start = NowUs();
      if (!db->AggregateQuery(matchers, QueryT0(), QueryT1(), kWindowStepMs,
                              query::AggFn::kMax, &agg)
              .ok() ||
          agg.series.size() != static_cast<size_t>(SeriesCount())) {
        std::fprintf(stderr, "aggregate query failed\n");
        return 1;
      }
      size_t points = 0;
      for (const auto& series : agg.series) points += series.points.size();
      const double elapsed_us = static_cast<double>(NowUs() - t_start);
      const uint64_t gets = slow.get_ops.load() - gets_before;
      if (cache[0] == 'c') cold_agg_gets = gets;
      PrintPass("rollup", cache, points, elapsed_us, gets, agg.stats);
    }
  }

  // Equal-results check, every aggregate function: the planner's mixed
  // rollup/raw answer must be bitwise identical to the raw two-stage fold.
  bool equal = true;
  for (query::AggFn fn : {query::AggFn::kMin, query::AggFn::kMax,
                          query::AggFn::kSum, query::AggFn::kCount,
                          query::AggFn::kMean}) {
    core::TimeUnionDB::AggregateResult check;
    if (!db->AggregateQuery(matchers, QueryT0(), QueryT1(), kWindowStepMs, fn,
                            &check)
            .ok() ||
        check.series.size() != raw.size()) {
      equal = false;
      break;
    }
    for (size_t i = 0; i < check.series.size() && equal; ++i) {
      const std::vector<query::AggPoint> expect =
          FoldRaw(raw[i].samples, fn);
      const std::vector<query::AggPoint>& got = check.series[i].points;
      equal = got.size() == expect.size();
      for (size_t p = 0; p < expect.size() && equal; ++p) {
        equal = got[p].window_start == expect[p].window_start &&
                got[p].value == expect[p].value;
      }
    }
    if (!equal) {
      std::fprintf(stderr, "aggregate mismatch vs raw fold (fn=%d)\n",
                   static_cast<int>(fn));
    }
  }

  const double reduction =
      cold_agg_gets == 0
          ? 0.0
          : static_cast<double>(cold_raw_gets) /
                static_cast<double>(cold_agg_gets);
  std::printf(
      "{\"bench\":\"rollup_query\",\"summary\":true,\"cold_raw_gets\":%llu,"
      "\"cold_agg_gets\":%llu,\"gets_reduction\":%.1f,"
      "\"results_equal\":%s}\n",
      static_cast<unsigned long long>(cold_raw_gets),
      static_cast<unsigned long long>(cold_agg_gets), reduction,
      equal ? "true" : "false");
  std::fflush(stdout);

  // Final introspection artifact for CI (parse check).
  WriteSnapshotFile(MetricsSnapshotPath(), db->Metrics().ToJson());
  db.reset();
  RemoveDirRecursive(workspace);
  return equal ? 0 : 1;
}

}  // namespace
}  // namespace tu::bench

int main() { return tu::bench::Main(); }
