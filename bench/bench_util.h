// Shared helpers for the benchmark harness binaries.
#pragma once

#include <cstdint>
#include <string>

namespace tu::bench {

/// Creates a fresh scratch workspace under /tmp for one bench run and
/// returns its path; removed and recreated if it already exists.
std::string FreshWorkspace(const std::string& name);

/// Monotonic wall-clock in microseconds.
uint64_t NowUs();

/// Prints a row of a paper-style table: "label: value unit".
void PrintRow(const std::string& label, double value, const std::string& unit);

/// Prints a section header matching a paper figure/table id.
void PrintHeader(const std::string& experiment, const std::string& title);

}  // namespace tu::bench
