// Shared helpers for the benchmark harness binaries.
#pragma once

#include <cstdint>
#include <string>

namespace tu::bench {

/// Creates a fresh scratch workspace under /tmp for one bench run and
/// returns its path; removed and recreated if it already exists.
std::string FreshWorkspace(const std::string& name);

/// Monotonic wall-clock in microseconds.
uint64_t NowUs();

/// Prints a row of a paper-style table: "label: value unit".
void PrintRow(const std::string& label, double value, const std::string& unit);

/// Prints a section header matching a paper figure/table id.
void PrintHeader(const std::string& experiment, const std::string& title);

/// True when TU_BENCH_SMOKE is set (non-empty, not "0"): benches shrink
/// their workloads to CI-smoke size — same code paths, seconds not minutes.
bool SmokeMode();

/// Value of TU_BENCH_METRICS_SNAPSHOT (empty when unset): path where a
/// bench should write the final TimeUnionDB::Metrics().ToJson() snapshot.
std::string MetricsSnapshotPath();

/// Overwrites `path` with `json` + newline. No-op on empty path; prints a
/// warning to stderr when the file cannot be written.
void WriteSnapshotFile(const std::string& path, const std::string& json);

}  // namespace tu::bench
