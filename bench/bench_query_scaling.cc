// Query scaling: latency/throughput of the unified read pipeline at
// 1/2/4/8 reader threads, cold vs warm block cache, with the data either
// entirely on the fast tier or mostly L2-resident on the slow tier.
// Readers query disjoint series concurrently; the DB is rebuilt per
// configuration so the cold pass really starts with unopened readers and
// an empty block cache. The per-pass QueryStats totals (slow fetches,
// cache hits) are emitted so the cold/warm distinction is verifiable, not
// assumed.
//
// Emits one JSON line per (placement, threads, pass), e.g.
//   {"bench":"query_scaling","placement":"l2","threads":4,"cache":"cold",
//    "mode":"batch","queries":32,"elapsed_s":0.041,"avg_latency_us":5125.0,
//    "qps":780.5,"samples_per_s":1561000.0,"slow_fetches":96,"cache_hits":0,
//    "samples_per_query":2000}
//
// TU_BENCH_SCALAR_DRAIN=1 switches the drain to the per-sample cursor API
// (QueryIterators + Valid/value/Next) instead of the vectorized Query
// materialization — the escape hatch CI uses to keep the legacy drain
// path measured next to the batch one.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/timeunion_db.h"
#include "query/read_context.h"
#include "util/mmap_file.h"

namespace tu::bench {
namespace {

constexpr int64_t kStepMs = 250;

// CI smoke mode (TU_BENCH_SMOKE): same pipeline, tiny workload.
int SeriesCount() { return SmokeMode() ? 8 : 32; }
int SamplesPerSeries() { return SmokeMode() ? 400 : 2000; }
int64_t SpanMs() { return SamplesPerSeries() * kStepMs; }
int WarmRounds() { return SmokeMode() ? 2 : 5; }

bool ScalarDrainMode() {
  const char* v = std::getenv("TU_BENCH_SCALAR_DRAIN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

struct Placement {
  const char* name;
  bool l2_resident;
};

std::unique_ptr<core::TimeUnionDB> BuildDb(const Placement& placement,
                                           std::vector<uint64_t>* refs) {
  core::DBOptions opts;
  opts.workspace = FreshWorkspace("query_scaling");
  if (placement.l2_resident) {
    // Tiny partitions: the 500 s workload ages through L0/L1 into many
    // slow-tier L2 partitions.
    opts.samples_per_chunk = 4;
    opts.lsm.memtable_bytes = 8 << 10;
    opts.lsm.l0_partition_ms = 1000;
    opts.lsm.l2_partition_ms = 4000;
    opts.lsm.partition_lower_bound_ms = 1000;
    opts.lsm.partition_upper_bound_ms = 4000;
    opts.lsm.l0_partition_trigger = 1;
  }
  // With default (2 h) partitions the whole span stays on the fast tier.

  std::unique_ptr<core::TimeUnionDB> db;
  Status s = core::TimeUnionDB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return nullptr;
  }
  refs->resize(SeriesCount());
  for (int i = 0; i < SeriesCount(); ++i) {
    s = db->Insert({{"host", std::to_string(i)}, {"m", "cpu"}}, 0, 0.0,
                   &(*refs)[i]);
    if (!s.ok()) return nullptr;
    for (int j = 1; j < SamplesPerSeries(); ++j) {
      if (!db->InsertFast((*refs)[i], j * kStepMs, 1.0 * j).ok()) {
        return nullptr;
      }
    }
  }
  if (!db->Flush().ok()) return nullptr;
  return db;
}

/// One pass: `threads` readers split the series round-robin, each series
/// queried `rounds` times over the full range. Returns false on error.
bool RunPass(core::TimeUnionDB* db, const Placement& placement, int threads,
             const char* cache, int rounds) {
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> queries{0};
  std::mutex stats_mu;
  query::QueryStats totals;

  const uint64_t t_start = NowUs();
  std::vector<std::thread> readers;
  for (int t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      query::QueryStats local;
      const bool scalar = ScalarDrainMode();
      for (int r = 0; r < rounds; ++r) {
        for (int i = t; i < SeriesCount(); i += threads) {
          const auto matcher =
              index::TagMatcher::Equal("host", std::to_string(i));
          size_t samples = 0;
          bool ok;
          if (scalar) {
            // Legacy drain: per-sample cursor over the streaming API.
            query::QueryStats qs;
            std::vector<core::TimeUnionDB::SeriesIterResult> iters;
            ok = db->QueryIterators({matcher}, 0, SpanMs(), &iters, &qs).ok() &&
                 iters.size() == 1;
            if (ok) {
              std::vector<compress::Sample> out;
              for (auto* it = iters[0].iter.get(); it->Valid(); it->Next()) {
                out.push_back(it->value());
              }
              ok = iters[0].iter->status().ok();
              samples = out.size();
              local.Add(qs);
            }
          } else {
            core::QueryResult result;
            ok = db->Query({matcher}, 0, SpanMs(), &result).ok() &&
                 result.size() == 1;
            if (ok) {
              samples = result[0].samples.size();
              local.Add(result.stats);
            }
          }
          if (!ok || samples != static_cast<size_t>(SamplesPerSeries())) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          queries.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(stats_mu);
      totals.Add(local);
    });
  }
  for (auto& r : readers) r.join();
  const uint64_t t_end = NowUs();

  if (errors.load() != 0) {
    std::fprintf(stderr, "query errors: %llu\n",
                 static_cast<unsigned long long>(errors.load()));
    return false;
  }
  const uint64_t q = queries.load();
  const double elapsed_s = static_cast<double>(t_end - t_start) / 1e6;
  const double qps = static_cast<double>(q) / elapsed_s;
  std::printf(
      "{\"bench\":\"query_scaling\",\"placement\":\"%s\",\"threads\":%d,"
      "\"cache\":\"%s\",\"mode\":\"%s\",\"queries\":%llu,\"elapsed_s\":%.3f,"
      "\"avg_latency_us\":%.1f,\"qps\":%.1f,\"samples_per_s\":%.0f,"
      "\"slow_fetches\":%llu,\"cache_hits\":%llu,\"samples_per_query\":%d}\n",
      placement.name, threads, cache,
      ScalarDrainMode() ? "scalar" : "batch",
      static_cast<unsigned long long>(q), elapsed_s,
      static_cast<double>(t_end - t_start) / (q ? q : 1), qps,
      qps * SamplesPerSeries(),
      static_cast<unsigned long long>(totals.slow_tier_fetches),
      static_cast<unsigned long long>(totals.cache_hits), SamplesPerSeries());
  std::fflush(stdout);
  return true;
}

int Main() {
  PrintHeader("query_scaling",
              "Query latency vs reader threads, cache state and placement");
  for (const Placement& placement :
       {Placement{"fast", false}, Placement{"l2", true}}) {
    for (int threads : {1, 2, 4, 8}) {
      std::vector<uint64_t> refs;
      std::unique_ptr<core::TimeUnionDB> db = BuildDb(placement, &refs);
      if (!db) return 1;
      // First pass after the build is the cold-cache measurement (readers
      // unopened, block cache empty); repeat passes are warm.
      if (!RunPass(db.get(), placement, threads, "cold", 1)) return 1;
      if (!RunPass(db.get(), placement, threads, "warm", WarmRounds())) {
        return 1;
      }
      // Final-config introspection artifact for CI (parse check).
      WriteSnapshotFile(MetricsSnapshotPath(), db->Metrics().ToJson());
      const std::string workspace = db->env().workspace();
      db.reset();
      RemoveDirRecursive(workspace);
    }
  }
  return 0;
}

}  // namespace
}  // namespace tu::bench

int main() { return tu::bench::Main(); }
