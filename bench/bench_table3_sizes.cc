// Table 3: persisted index and data sizes, tsdb vs TU vs TU-Group
// (paper, at 2M series: index 3.27 / 2.70 / 2.20 GB; data 20.28 / 8.61 /
// 2.42 GB — tsdb's per-partition indexes duplicate data; SSTable blocks
// are further compressed; group chunks deduplicate timestamps).
#include <cstdio>

#include "bench_util.h"
#include "engine_harness.h"
#include "util/memory_tracker.h"

using namespace tu;
using namespace tu::bench;

int main() {
  tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = 10;
  gen_opts.interval_ms = 30'000;
  gen_opts.duration_ms = 24LL * 3600 * 1000;
  tsbs::DevOpsGenerator gen(gen_opts);

  PrintHeader("Table 3", "persisted index and data size (MB)");
  std::printf("  %-10s %12s %12s\n", "engine", "index(MB)", "data(MB)");

  const EngineKind engines[] = {EngineKind::kTsdb, EngineKind::kTU,
                                EngineKind::kTUGroup};
  double data_tsdb = 0, data_tu = 0, data_group = 0;
  for (EngineKind kind : engines) {
    MemoryTracker::Global().Reset();
    HarnessOptions opts;
    opts.workspace =
        FreshWorkspace(std::string("table3_") + EngineName(kind));
    EngineHarness harness(kind, opts);
    Status st = harness.Open();
    InsertReport report;
    if (st.ok()) st = harness.RunInsert(gen, &report);
    if (st.ok()) st = harness.Flush();
    if (!st.ok()) {
      std::printf("  %-10s FAILED: %s\n", EngineName(kind),
                  st.ToString().c_str());
      return 1;
    }
    const double index_mb = harness.PersistedIndexBytes() / 1048576.0;
    const double data_mb = harness.PersistedDataBytes() / 1048576.0;
    std::printf("  %-10s %12.2f %12.2f\n", EngineName(kind), index_mb,
                data_mb);
    if (kind == EngineKind::kTsdb) data_tsdb = data_mb;
    if (kind == EngineKind::kTU) data_tu = data_mb;
    if (kind == EngineKind::kTUGroup) data_group = data_mb;
  }
  PrintRow("data: tsdb / TU", data_tsdb / data_tu, "x");
  PrintRow("data: TU / TU-Group", data_tu / data_group, "x");
  std::printf(
      "\n  shape checks: tsdb > TU on both rows (duplicate per-partition\n"
      "  indexes; no SSTable block compression); TU-Group smallest (shared\n"
      "  timestamp columns).\n");
  return 0;
}
