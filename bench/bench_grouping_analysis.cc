// Grouping analysis (Table 1, Eqs. 1-6): evaluates the paper's analytic
// index-space and query-cost models, and cross-checks the index-space
// prediction against the measured inverted index of this implementation.
#include <cstdio>

#include "bench_util.h"
#include "cloud/cost_model.h"
#include "core/timeunion_db.h"
#include "tsbs/devops.h"

using namespace tu;
using namespace tu::bench;

int main() {
  // TSBS DevOps parameters from §3.1: Sg=101, Tu=118, Tg=1, Sp=8, St=15.
  cloud::GroupingParams p;
  p.n = 101'000;
  p.t = 12;
  p.s_p = 8;
  p.s_t = 15;
  p.s_g = 101;
  p.t_g = 1;
  p.t_u = 118;

  PrintHeader("Eq. 1/2", "index space model (TSBS DevOps parameters)");
  const double cost1 = cloud::IndexCostNoGrouping(p);
  const double cost2 = cloud::IndexCostGrouping(p);
  PrintRow("Cost_s1 (no grouping)", cost1 / 1048576.0, "MB");
  PrintRow("Cost_s2 (grouping)", cost2 / 1048576.0, "MB");
  PrintRow("space saving", 100.0 * (cost1 - cost2) / cost1, "%");
  PrintRow("grouping beneficial (Sg threshold)",
           cloud::GroupingSavesIndexSpace(p) ? 1 : 0, "bool");

  PrintHeader("Eq. 3-6", "query cost model (per-query us)");
  cloud::QueryCostParams q;
  q.p = 12;              // 12 partitions in a 24h query at 2h partitions
  q.s_data = 240 * 16;   // raw bytes/series/PARTITION (2h at 30s interval)
  q.l = 5;
  q.g = 1;
  q.s_g = 101;
  std::printf("  %-34s %12s %12s\n", "case", "L=5/G=1", "L=1/G=1");
  const double q1_ebs_5 = cloud::QueryCostNoGroupingEbs(q);
  const double q1_s3_5 = cloud::QueryCostNoGroupingS3(q);
  const double q2_ebs = cloud::QueryCostGroupingEbs(q);
  const double q2_s3 = cloud::QueryCostGroupingS3(q);
  q.l = 1;
  const double q1_ebs_1 = cloud::QueryCostNoGroupingEbs(q);
  const double q1_s3_1 = cloud::QueryCostNoGroupingS3(q);
  std::printf("  %-34s %12.1f %12.1f\n", "no grouping, EBS (Eq.3)", q1_ebs_5,
              q1_ebs_1);
  std::printf("  %-34s %12.1f %12.1f\n", "no grouping, S3  (Eq.4)", q1_s3_5,
              q1_s3_1);
  std::printf("  %-34s %12.1f %12.1f\n", "grouping, EBS    (Eq.5)", q2_ebs,
              q2_ebs);
  std::printf("  %-34s %12.1f %12.1f\n", "grouping, S3     (Eq.6)", q2_s3,
              q2_s3);
  std::printf(
      "\n  model checks: on S3, grouping wins when L > G (5-1-24 case);\n"
      "  on EBS, per-byte cost makes the individual model win when the\n"
      "  queried member count is small (Sg counteracts G < L).\n");

  // Measured: build both layouts over the same hosts and compare index
  // memory.
  PrintHeader("measured", "index memory, individual vs grouping");
  tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = 20;
  tsbs::DevOpsGenerator gen(gen_opts);
  uint64_t mem_individual = 0, mem_grouped = 0;
  {
    core::DBOptions opts;
    opts.workspace = FreshWorkspace("grouping_individual");
    std::unique_ptr<core::TimeUnionDB> db;
    if (!core::TimeUnionDB::Open(opts, &db).ok()) return 1;
    uint64_t ref;
    for (uint64_t h = 0; h < gen.num_hosts(); ++h) {
      for (int s = 0; s < 101; ++s) {
        db->RegisterSeries(gen.SeriesLabels(h, s), &ref);
      }
    }
    mem_individual = db->IndexMemoryUsage();
  }
  {
    core::DBOptions opts;
    opts.workspace = FreshWorkspace("grouping_grouped");
    std::unique_ptr<core::TimeUnionDB> db;
    if (!core::TimeUnionDB::Open(opts, &db).ok()) return 1;
    std::vector<index::Labels> member_tags(101);
    for (int s = 0; s < 101; ++s) member_tags[s] = gen.UniqueTags(s);
    std::vector<double> values(101, 1.0);
    for (uint64_t h = 0; h < gen.num_hosts(); ++h) {
      uint64_t gref;
      std::vector<uint32_t> slots;
      db->InsertGroup(gen.HostTags(h), member_tags, 0, values, &gref,
                      &slots);
    }
    mem_grouped = db->IndexMemoryUsage();
  }
  PrintRow("individual model", mem_individual / 1024.0, "KB");
  PrintRow("grouping model", mem_grouped / 1024.0, "KB");
  PrintRow("measured saving",
           100.0 * (1.0 - static_cast<double>(mem_grouped) /
                              static_cast<double>(mem_individual)),
           "%");
  return 0;
}
