// Micro-benchmarks of the core components (google-benchmark): Gorilla
// codecs, SnappyLite, double-array trie, postings ops, skiplist memtable,
// SSTable block build/read. Useful for spotting regressions in the pieces
// the system figures are built from.
#include <benchmark/benchmark.h>

#include "compress/chunk.h"
#include "compress/snappy_lite.h"
#include "index/double_array_trie.h"
#include "index/postings.h"
#include "lsm/block.h"
#include "lsm/key_format.h"
#include "lsm/memtable.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace {

using namespace tu;

void BM_GorillaEncodeSeries(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<compress::Sample> samples;
  Random rng(1);
  double v = 50;
  for (int i = 0; i < n; ++i) {
    v += static_cast<double>(rng.Uniform(5)) - 2;
    samples.push_back({1600000000000LL + i * 30000, v});
  }
  std::string payload;
  for (auto _ : state) {
    compress::EncodeSeriesChunk(1, samples, &payload);
    benchmark::DoNotOptimize(payload);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["bytes_per_sample"] =
      static_cast<double>(payload.size()) / n;
}
BENCHMARK(BM_GorillaEncodeSeries)->Arg(32)->Arg(120)->Arg(1024);

void BM_GorillaDecodeSeries(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<compress::Sample> samples;
  for (int i = 0; i < n; ++i) {
    samples.push_back({i * 30000LL, 50.0 + i % 9});
  }
  std::string payload;
  compress::EncodeSeriesChunk(1, samples, &payload);
  for (auto _ : state) {
    uint64_t seq;
    std::vector<compress::Sample> out;
    compress::DecodeSeriesChunk(payload, &seq, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GorillaDecodeSeries)->Arg(32)->Arg(1024);

void BM_SnappyLiteRoundTrip(benchmark::State& state) {
  // Block-compression workload: prefix-compressed key/value bytes.
  std::string input;
  Random rng(2);
  for (int i = 0; i < 256; ++i) {
    input += "series_chunk_payload_" + std::to_string(rng.Uniform(32));
  }
  std::string compressed, out;
  for (auto _ : state) {
    compress::SnappyLiteCompress(input, &compressed);
    compress::SnappyLiteUncompress(compressed, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
  state.counters["ratio"] =
      static_cast<double>(input.size()) / compressed.size();
}
BENCHMARK(BM_SnappyLiteRoundTrip);

void BM_TrieInsert(benchmark::State& state) {
  const std::string dir = "/tmp/timeunion_bench/micro_trie";
  for (auto _ : state) {
    state.PauseTiming();
    RemoveDirRecursive(dir);
    index::TrieOptions opts;
    opts.slots_per_file = 1 << 16;
    index::DoubleArrayTrie trie(dir, "t", opts);
    trie.Init();
    state.ResumeTiming();
    for (int i = 0; i < 5000; ++i) {
      trie.Insert("metric$value_" + std::to_string(i), i);
    }
    benchmark::DoNotOptimize(trie.num_keys());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
  RemoveDirRecursive(dir);
}
BENCHMARK(BM_TrieInsert);

void BM_TrieLookup(benchmark::State& state) {
  const std::string dir = "/tmp/timeunion_bench/micro_trie2";
  RemoveDirRecursive(dir);
  index::TrieOptions opts;
  opts.slots_per_file = 1 << 16;
  index::DoubleArrayTrie trie(dir, "t", opts);
  trie.Init();
  for (int i = 0; i < 10000; ++i) {
    trie.Insert("hostname$host_" + std::to_string(i), i);
  }
  uint64_t v = 0;
  int i = 0;
  for (auto _ : state) {
    trie.Lookup("hostname$host_" + std::to_string(i++ % 10000), &v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
  RemoveDirRecursive(dir);
}
BENCHMARK(BM_TrieLookup);

void BM_PostingsIntersect(benchmark::State& state) {
  index::Postings a, b;
  for (uint64_t i = 0; i < 100000; i += 2) a.push_back(i);
  for (uint64_t i = 0; i < 100000; i += 3) b.push_back(i);
  for (auto _ : state) {
    auto out = index::PostingsIntersect(a, b);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_PostingsIntersect);

void BM_MemTableAdd(benchmark::State& state) {
  Random rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    lsm::MemTable mem;
    state.ResumeTiming();
    for (uint64_t i = 0; i < 10000; ++i) {
      mem.Add(i, lsm::MakeChunkKey(rng.Uniform(100), rng.Next64() % 1000000),
              "0123456789abcdef0123456789abcdef");
    }
    benchmark::DoNotOptimize(mem.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_MemTableAdd);

void BM_BlockBuildAndScan(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (uint64_t i = 0; i < 200; ++i) {
    entries.emplace_back(
        lsm::MakeInternalKey(lsm::MakeChunkKey(7, i * 30000), i),
        std::string(40, 'v'));
  }
  for (auto _ : state) {
    lsm::BlockBuilder builder;
    for (const auto& [k, v] : entries) builder.Add(k, v);
    lsm::Block block(builder.Finish());
    auto it = block.NewIterator();
    int n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * entries.size());
}
BENCHMARK(BM_BlockBuildAndScan);

}  // namespace

BENCHMARK_MAIN();
