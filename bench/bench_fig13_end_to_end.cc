// Figure 13: end-to-end evaluation through the simulated remote-write /
// HTTP layer — Cortex vs TU (slow path) vs TU-fast vs TU-Group.
//  (a) insertion throughput (10,000-sample batches per request);
//  (b) query latency, pattern 5-1-24;
//  (c) query latency, pattern 5-8-1;
//  (d) memory usage.
// Reported time = CPU wall time + charged RPC time (see cortex_sim.h).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "baseline/cortex_sim.h"
#include "tsbs/devops.h"
#include "util/memory_tracker.h"

using namespace tu;
using namespace tu::bench;

namespace {

constexpr size_t kBatchSamples = 10'000;

struct SystemResult {
  const char* name;
  double insert_throughput = 0;
  double q_5_1_24_us = 0;
  double q_5_8_1_us = 0;
  double memory_mb = 0;
};

tsbs::DevOpsOptions GenOptions() {
  tsbs::DevOpsOptions o;
  o.num_hosts = 8;
  o.interval_ms = 60'000;
  o.duration_ms = 24LL * 3600 * 1000;
  return o;
}

/// Feeds the whole workload in kBatchSamples batches.
template <typename WriteBatch>
Status DriveInsert(const tsbs::DevOpsGenerator& gen, WriteBatch&& write,
                   double* charged_us_out, double* wall_s) {
  const uint64_t start = NowUs();
  std::vector<baseline::RemoteSample> batch;
  batch.reserve(kBatchSamples);
  for (uint64_t step = 0; step < gen.num_steps(); ++step) {
    const int64_t ts = gen.start_ts() + step * gen.interval_ms();
    for (uint64_t h = 0; h < gen.num_hosts(); ++h) {
      for (int s = 0; s < tsbs::DevOpsGenerator::kSeriesPerHost; ++s) {
        batch.push_back(
            {gen.SeriesLabels(h, s), ts, gen.Value(h, s, ts)});
        if (batch.size() >= kBatchSamples) {
          TU_RETURN_IF_ERROR(write(batch));
          batch.clear();
        }
      }
    }
  }
  if (!batch.empty()) TU_RETURN_IF_ERROR(write(batch));
  *wall_s = (NowUs() - start) / 1e6;
  (void)charged_us_out;
  return Status::OK();
}

Status QueryLatency(const tsbs::DevOpsGenerator& gen,
                    const tsbs::QueryPattern& pattern,
                    const std::function<Status(
                        const std::vector<index::TagMatcher>&, int64_t,
                        int64_t)>& run,
                    double extra_us_per_query, double* out_us) {
  double total = 0;
  const int repeats = 3;
  for (int r = 0; r < repeats; ++r) {
    const auto matchers = tsbs::PatternSelectors(pattern, gen, 500 + r);
    const int64_t t1 = gen.end_ts();
    const int64_t t0 = std::max<int64_t>(
        gen.start_ts(), t1 - pattern.hours * 3600LL * 1000);
    const uint64_t start = NowUs();
    TU_RETURN_IF_ERROR(run(matchers, t0, t1));
    total += (NowUs() - start) + extra_us_per_query;
  }
  *out_us = total / repeats;
  return Status::OK();
}

}  // namespace

int main() {
  const auto gen_opts = GenOptions();
  tsbs::DevOpsGenerator gen(gen_opts);
  const auto patterns = tsbs::StandardPatterns();
  const auto& p_5_1_24 = patterns[4];
  const auto& p_5_8_1 = patterns[5];
  baseline::RpcCosts costs;

  std::vector<SystemResult> results;

  // ---- Cortex ------------------------------------------------------------
  {
    MemoryTracker::Global().Reset();
    baseline::TsdbOptions opts;
    opts.workspace = FreshWorkspace("fig13_cortex");
    baseline::CortexSim cortex(opts, costs);
    Status st = cortex.Open();
    SystemResult r{"Cortex"};
    double wall_s = 0;
    if (st.ok()) {
      st = DriveInsert(gen,
                       [&](const std::vector<baseline::RemoteSample>& batch) {
                         return cortex.RemoteWrite(batch);
                       },
                       nullptr, &wall_s);
    }
    if (st.ok()) st = cortex.Flush();
    if (st.ok()) {
      const double total_s =
          wall_s + cortex.write_stats().charged_us / 1e6;
      r.insert_throughput = gen.num_series() * gen.num_steps() / total_s;
      const double rpc_us = costs.http_request_us + costs.grpc_hop_us;
      auto run = [&](const std::vector<index::TagMatcher>& m, int64_t t0,
                     int64_t t1) {
        std::vector<baseline::TsdbSeriesResult> result;
        return cortex.QueryRange(m, t0, t1, &result);
      };
      st = QueryLatency(gen, p_5_1_24, run, rpc_us, &r.q_5_1_24_us);
      if (st.ok()) st = QueryLatency(gen, p_5_8_1, run, rpc_us, &r.q_5_8_1_us);
      r.memory_mb = MemoryTracker::Global().Total() / 1048576.0;
    }
    if (!st.ok()) std::printf("Cortex FAILED: %s\n", st.ToString().c_str());
    results.push_back(r);
  }

  // ---- TU / TU-fast ------------------------------------------------------
  for (bool fast : {false, true}) {
    MemoryTracker::Global().Reset();
    core::DBOptions opts;
    opts.workspace = FreshWorkspace(fast ? "fig13_tufast" : "fig13_tu");
    opts.lsm.memtable_bytes = 256 << 10;
    baseline::TimeUnionRemote remote(
        opts, costs,
        fast ? baseline::TimeUnionRemote::Mode::kFastPath
             : baseline::TimeUnionRemote::Mode::kSlowPath);
    Status st = remote.Open();
    SystemResult r{fast ? "TU-fast" : "TU"};
    double wall_s = 0;
    if (st.ok() && fast) {
      // TU-fast: the client registers once, then streams ID payloads.
      std::vector<uint64_t> refs(gen.num_series());
      for (uint64_t h = 0; h < gen.num_hosts() && st.ok(); ++h) {
        for (int s = 0; s < 101; ++s) {
          st = remote.RegisterSeries(gen.SeriesLabels(h, s),
                                     &refs[h * 101 + s]);
          if (!st.ok()) break;
        }
      }
      const uint64_t start = NowUs();
      std::vector<baseline::TimeUnionRemote::RefSample> batch;
      batch.reserve(kBatchSamples);
      for (uint64_t step = 0; step < gen.num_steps() && st.ok(); ++step) {
        const int64_t ts = gen.start_ts() + step * gen.interval_ms();
        for (uint64_t h = 0; h < gen.num_hosts(); ++h) {
          for (int s = 0; s < 101; ++s) {
            batch.push_back({refs[h * 101 + s], ts, gen.Value(h, s, ts)});
            if (batch.size() >= kBatchSamples) {
              st = remote.RemoteWriteFast(batch);
              batch.clear();
              if (!st.ok()) break;
            }
          }
        }
      }
      if (st.ok() && !batch.empty()) st = remote.RemoteWriteFast(batch);
      wall_s = (NowUs() - start) / 1e6;
    } else if (st.ok()) {
      st = DriveInsert(gen,
                       [&](const std::vector<baseline::RemoteSample>& batch) {
                         return remote.RemoteWrite(batch);
                       },
                       nullptr, &wall_s);
    }
    if (st.ok()) st = remote.Flush();
    if (st.ok()) {
      const double total_s = wall_s + remote.write_stats().charged_us / 1e6;
      r.insert_throughput = gen.num_series() * gen.num_steps() / total_s;
      auto run = [&](const std::vector<index::TagMatcher>& m, int64_t t0,
                     int64_t t1) {
        core::QueryResult result;
        return remote.QueryRange(m, t0, t1, &result);
      };
      st = QueryLatency(gen, p_5_1_24, run, costs.http_request_us,
                        &r.q_5_1_24_us);
      if (st.ok()) {
        st = QueryLatency(gen, p_5_8_1, run, costs.http_request_us,
                          &r.q_5_8_1_us);
      }
      r.memory_mb = MemoryTracker::Global().Total() / 1048576.0;
    }
    if (!st.ok()) std::printf("%s FAILED: %s\n", r.name, st.ToString().c_str());
    results.push_back(r);
  }

  // ---- TU-Group ----------------------------------------------------------
  {
    MemoryTracker::Global().Reset();
    core::DBOptions opts;
    opts.workspace = FreshWorkspace("fig13_tugroup");
    opts.lsm.memtable_bytes = 256 << 10;
    baseline::TimeUnionRemote remote(opts, costs,
                                     baseline::TimeUnionRemote::Mode::kGroup);
    Status st = remote.Open();
    SystemResult r{"TU-Group"};
    double wall_s = 0;
    if (st.ok()) {
      const uint64_t start = NowUs();
      std::vector<index::Labels> member_tags(101);
      for (int s = 0; s < 101; ++s) member_tags[s] = gen.UniqueTags(s);
      std::vector<baseline::TimeUnionRemote::GroupRow> batch;
      const size_t rows_per_batch = kBatchSamples / 101;
      for (uint64_t step = 0; step < gen.num_steps() && st.ok(); ++step) {
        const int64_t ts = gen.start_ts() + step * gen.interval_ms();
        for (uint64_t h = 0; h < gen.num_hosts(); ++h) {
          baseline::TimeUnionRemote::GroupRow row;
          row.group_key = h;
          row.ts = ts;
          if (step == 0) {
            // First round registers the group and its members; later
            // rounds stream ID+slot payloads (fast group API).
            row.group_tags = gen.HostTags(h);
            row.member_tags = member_tags;
          }
          row.values.resize(101);
          for (int s = 0; s < 101; ++s) row.values[s] = gen.Value(h, s, ts);
          batch.push_back(std::move(row));
          if (batch.size() >= rows_per_batch) {
            st = remote.RemoteWriteGroups(batch);
            batch.clear();
            if (!st.ok()) break;
          }
        }
      }
      if (st.ok() && !batch.empty()) st = remote.RemoteWriteGroups(batch);
      wall_s = (NowUs() - start) / 1e6;
    }
    if (st.ok()) st = remote.Flush();
    if (st.ok()) {
      const double total_s = wall_s + remote.write_stats().charged_us / 1e6;
      r.insert_throughput = gen.num_series() * gen.num_steps() / total_s;
      auto run = [&](const std::vector<index::TagMatcher>& m, int64_t t0,
                     int64_t t1) {
        core::QueryResult result;
        return remote.QueryRange(m, t0, t1, &result);
      };
      st = QueryLatency(gen, p_5_1_24, run, costs.http_request_us,
                        &r.q_5_1_24_us);
      if (st.ok()) {
        st = QueryLatency(gen, p_5_8_1, run, costs.http_request_us,
                          &r.q_5_8_1_us);
      }
      r.memory_mb = MemoryTracker::Global().Total() / 1048576.0;
    }
    if (!st.ok()) std::printf("TU-Group FAILED: %s\n", st.ToString().c_str());
    results.push_back(r);
  }

  PrintHeader("Figure 13", "end-to-end evaluation (remote write / HTTP)");
  std::printf("  %-10s %16s %14s %14s %12s\n", "system", "insert(sm/s)",
              "5-1-24(us)", "5-8-1(us)", "memory(MB)");
  for (const auto& r : results) {
    std::printf("  %-10s %16.0f %14.0f %14.0f %12.2f\n", r.name,
                r.insert_throughput, r.q_5_1_24_us, r.q_5_8_1_us, r.memory_mb);
  }
  std::printf(
      "\n  shape checks: TU > Cortex on insertion (gRPC hop overhead);\n"
      "  TU-fast >> TU (no per-sample tag handling); TU-Group > TU-fast\n"
      "  (timestamp dedup); Cortex worst on 5-1-24 (index fetches).\n");
  return 0;
}
