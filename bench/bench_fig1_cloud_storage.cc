// Figure 1: cloud storage comparison.
//  (a) storage pricing per GB-month (EBS ~4x S3, RAM >= 100x EBS);
//  (b) write latency vs size, block tier vs object tier;
//  (c) read latency vs size, first read vs following reads.
// The latency rows report the tiers' charged (simulated) latency, which is
// what every engine in this repository actually pays.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cloud/block_store.h"
#include "cloud/cost_model.h"
#include "cloud/object_store.h"
#include "util/random.h"

using namespace tu;
using namespace tu::bench;

int main() {
  PrintHeader("Figure 1a", "storage pricing (USD per GB-month)");
  cloud::StoragePricing pricing;
  PrintRow("S3 (object)", pricing.s3_per_gb_month, "$/GB-month");
  PrintRow("EBS gp2 (block)", pricing.ebs_gp2_per_gb_month, "$/GB-month");
  PrintRow("RAM (estimated)", pricing.ram_per_gb_month, "$/GB-month");
  PrintRow("EBS / S3 price ratio",
           pricing.ebs_gp2_per_gb_month / pricing.s3_per_gb_month, "x");
  PrintRow("RAM / EBS price ratio",
           pricing.ram_per_gb_month / pricing.ebs_gp2_per_gb_month, "x");

  const std::string ws = FreshWorkspace("fig1");
  cloud::TierSimOptions ebs_sim = cloud::TierSimOptions::EbsDefaults();
  cloud::TierSimOptions s3_sim = cloud::TierSimOptions::S3Defaults();
  ebs_sim.real_sleep = false;  // charged-latency accounting only
  s3_sim.real_sleep = false;
  cloud::BlockStore ebs(ws + "/ebs", ebs_sim);
  cloud::ObjectStore s3(ws + "/s3", s3_sim);

  const std::vector<size_t> write_sizes = {2 << 10, 32 << 10, 512 << 10,
                                           2 << 20, 32 << 20};
  PrintHeader("Figure 1b", "write latency vs size (charged ms)");
  std::printf("  %-12s %14s %14s %10s\n", "size", "EBS(ms)", "S3(ms)",
              "EBS speedup");
  for (size_t size : write_sizes) {
    const std::string data(size, 'w');
    const std::string name = "w" + std::to_string(size);

    uint64_t before = ebs.counters().charged_us.load();
    std::unique_ptr<cloud::WritableFile> file;
    ebs.NewWritableFile(name, &file);
    file->Append(data);
    file->Close();
    const double ebs_ms =
        (ebs.counters().charged_us.load() - before) / 1000.0;

    before = s3.counters().charged_us.load();
    s3.PutObject(name, data);
    const double s3_ms = (s3.counters().charged_us.load() - before) / 1000.0;

    std::printf("  %-12zu %14.3f %14.3f %9.1fx\n", size, ebs_ms, s3_ms,
                s3_ms / ebs_ms);
  }

  const std::vector<size_t> read_sizes = {1 << 10, 4 << 10, 16 << 10,
                                          256 << 10, 4 << 20, 16 << 20};
  PrintHeader("Figure 1c", "read latency vs size: first vs following reads");
  std::printf("  %-12s %12s %12s %12s %12s\n", "size", "EBS 1st", "EBS next",
              "S3 1st", "S3 next");
  for (size_t size : read_sizes) {
    const std::string data(size, 'r');
    const std::string name = "r" + std::to_string(size);
    std::unique_ptr<cloud::WritableFile> wf;
    ebs.NewWritableFile(name, &wf);
    wf->Append(data);
    wf->Close();
    s3.PutObject(name, data);

    auto ebs_read = [&]() {
      const uint64_t before = ebs.counters().charged_us.load();
      std::unique_ptr<cloud::RandomAccessFile> rf;
      ebs.NewRandomAccessFile(name, &rf);
      Slice result;
      std::string scratch;
      rf->Read(0, size, &result, &scratch);
      return (ebs.counters().charged_us.load() - before) / 1000.0;
    };
    auto s3_read = [&]() {
      const uint64_t before = s3.counters().charged_us.load();
      std::string out;
      s3.GetObject(name, &out);
      return (s3.counters().charged_us.load() - before) / 1000.0;
    };
    const double ebs_first = ebs_read();
    const double ebs_next = ebs_read();
    const double s3_first = s3_read();
    const double s3_next = s3_read();
    std::printf("  %-12zu %12.3f %12.3f %12.3f %12.3f\n", size, ebs_first,
                ebs_next, s3_first, s3_next);
  }
  std::printf(
      "\n  shape checks: EBS orders of magnitude faster on small writes;\n"
      "  first reads slower than following reads on both tiers; latency\n"
      "  flat below 16KB (per-request term dominates).\n");
  return 0;
}
