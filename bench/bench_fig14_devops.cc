// Figure 14: storage-engine evaluation with TSBS DevOps timeseries
// (scaled: 30 s sample interval, 24 h span; series counts scaled from the
// paper's millions to laptop rounds — comparisons are ratios/shapes).
//  (a) insertion throughput vs number of timeseries, all five engines;
//  (b..) query latency per Table 2 pattern at the largest common round.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "engine_harness.h"
#include "util/memory_tracker.h"

using namespace tu;
using namespace tu::bench;

namespace {

constexpr EngineKind kEngines[] = {EngineKind::kTsdb, EngineKind::kTsdbLdb,
                                   EngineKind::kTU, EngineKind::kTUGroup,
                                   EngineKind::kTULdb};

}  // namespace

int main(int argc, char** argv) {
  // Scaled rounds (paper: 2M..12M series; here hosts x 101 series).
  std::vector<uint64_t> host_rounds = {2, 5, 10};
  if (argc > 1 && std::string(argv[1]) == "--large") {
    host_rounds = {5, 10, 20, 40};
  }

  PrintHeader("Figure 14a", "DevOps insertion throughput vs #series");
  std::printf("  %-10s %12s %16s %14s %12s\n", "engine", "#series",
              "throughput(sm/s)", "memory(MB)", "wall(s)");

  // Keep per-engine query state for the largest round.
  std::vector<std::unique_ptr<EngineHarness>> harnesses;
  tsbs::DevOpsOptions last_gen_opts;

  for (EngineKind kind : kEngines) {
    std::unique_ptr<EngineHarness> keep;
    for (uint64_t hosts : host_rounds) {
      MemoryTracker::Global().Reset();
      tsbs::DevOpsOptions gen_opts;
      gen_opts.num_hosts = hosts;
      gen_opts.interval_ms = 30'000;
      gen_opts.duration_ms = 24LL * 3600 * 1000;
      tsbs::DevOpsGenerator gen(gen_opts);

      HarnessOptions opts;
      opts.workspace = FreshWorkspace(std::string("fig14_") +
                                      EngineName(kind) + "_" +
                                      std::to_string(hosts));
      auto harness = std::make_unique<EngineHarness>(kind, opts);
      Status st = harness->Open();
      if (st.ok()) {
        InsertReport report;
        st = harness->RunInsert(gen, &report);
        if (st.ok()) {
          std::printf("  %-10s %12llu %16.0f %14.2f %12.2f\n",
                      EngineName(kind),
                      static_cast<unsigned long long>(gen.num_series()),
                      report.throughput, report.memory_total / 1048576.0,
                      report.wall_seconds);
        }
      }
      if (!st.ok()) {
        std::printf("  %-10s %12llu  FAILED: %s\n", EngineName(kind),
                    static_cast<unsigned long long>(hosts * 101),
                    st.ToString().c_str());
        continue;
      }
      if (hosts == host_rounds.back()) {
        harness->Flush();
        keep = std::move(harness);
        last_gen_opts = gen_opts;
      }
    }
    if (keep) harnesses.push_back(std::move(keep));
  }

  PrintHeader("Figure 14b-h", "query latency per TSBS pattern (us)");
  tsbs::DevOpsGenerator gen(last_gen_opts);
  std::printf("  %-10s", "pattern");
  for (auto& h : harnesses) std::printf(" %12s", EngineName(h->kind()));
  std::printf("\n");
  for (const auto& pattern : tsbs::StandardPatterns()) {
    std::printf("  %-10s", pattern.name.c_str());
    for (auto& h : harnesses) {
      QueryReport report;
      Status st = h->RunQuery(gen, pattern, 3, &report);
      if (st.ok()) {
        std::printf(" %12.0f", report.latency_us);
      } else {
        std::printf(" %12s", "ERR");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\n  shape checks: TU > tsdb on insertion; TU-Group ~2.4x TU;\n"
      "  TU-LDB worst (S3 compactions); long-range (1-1-24, 5-1-24)\n"
      "  orders of magnitude better for TU than tsdb.\n");
  return 0;
}
