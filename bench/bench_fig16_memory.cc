// Figure 16: memory usage monitoring.
//  (a) average memory vs #series, tsdb vs TU vs TU-Group;
//  (b) memory-over-time trace during one insertion run (tsdb skyrockets
//      toward its limit; TU stays flat thanks to mmap-backed structures).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "engine_harness.h"
#include "util/memory_tracker.h"

using namespace tu;
using namespace tu::bench;

namespace {

/// Runs an insertion while sampling total tracked memory every `stride`
/// steps.
Status TraceRun(EngineKind kind, uint64_t hosts,
                std::vector<double>* trace_mb, double* avg_mb) {
  MemoryTracker::Global().Reset();
  tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = hosts;
  gen_opts.interval_ms = 30'000;
  gen_opts.duration_ms = 24LL * 3600 * 1000;
  tsbs::DevOpsGenerator gen(gen_opts);

  HarnessOptions opts;
  opts.workspace = FreshWorkspace(std::string("fig16_") + EngineName(kind) +
                                  std::to_string(hosts));
  EngineHarness harness(kind, opts);
  TU_RETURN_IF_ERROR(harness.Open());

  // Manual insert loop with sampling (RunInsert doesn't sample).
  trace_mb->clear();
  double sum = 0;
  int count = 0;
  const uint64_t stride = std::max<uint64_t>(1, gen.num_steps() / 48);
  std::vector<uint64_t> refs(gen.num_series());
  std::vector<uint64_t> grefs(hosts);
  std::vector<std::vector<uint32_t>> gslots(hosts);
  std::vector<index::Labels> member_tags(101);
  for (int s = 0; s < 101; ++s) member_tags[s] = gen.UniqueTags(s);

  for (uint64_t step = 0; step < gen.num_steps(); ++step) {
    const int64_t ts = gen.start_ts() + step * gen.interval_ms();
    for (uint64_t h = 0; h < hosts; ++h) {
      if (kind == EngineKind::kTUGroup) {
        std::vector<double> values(101);
        for (int s = 0; s < 101; ++s) values[s] = gen.Value(h, s, ts);
        if (step == 0) {
          TU_RETURN_IF_ERROR(harness.tu()->InsertGroup(
              gen.HostTags(h), member_tags, ts, values, &grefs[h],
              &gslots[h]));
        } else {
          TU_RETURN_IF_ERROR(harness.tu()->InsertGroupFast(
              grefs[h], gslots[h], ts, values));
        }
        continue;
      }
      for (int s = 0; s < 101; ++s) {
        const size_t slot = h * 101 + s;
        const double v = gen.Value(h, s, ts);
        if (step == 0) {
          if (harness.tu()) {
            TU_RETURN_IF_ERROR(harness.tu()->Insert(gen.SeriesLabels(h, s),
                                                    ts, v, &refs[slot]));
          } else {
            TU_RETURN_IF_ERROR(harness.tsdb()->Insert(gen.SeriesLabels(h, s),
                                                      ts, v, &refs[slot]));
          }
        } else if (harness.tu()) {
          TU_RETURN_IF_ERROR(harness.tu()->InsertFast(refs[slot], ts, v));
        } else {
          TU_RETURN_IF_ERROR(harness.tsdb()->InsertFast(refs[slot], ts, v));
        }
      }
    }
    if (step % stride == 0) {
      const double mb = MemoryTracker::Global().Total() / 1048576.0;
      trace_mb->push_back(mb);
      sum += mb;
      ++count;
    }
  }
  *avg_mb = count ? sum / count : 0;
  return Status::OK();
}

}  // namespace

int main() {
  PrintHeader("Figure 16a", "average memory vs #series (MB)");
  std::printf("  %-10s %10s %10s %10s\n", "#series", "tsdb", "TU", "TU-Group");
  for (uint64_t hosts : {2, 5, 10}) {
    double avg_tsdb = 0, avg_tu = 0, avg_group = 0;
    std::vector<double> trace;
    if (!TraceRun(EngineKind::kTsdb, hosts, &trace, &avg_tsdb).ok() ||
        !TraceRun(EngineKind::kTU, hosts, &trace, &avg_tu).ok() ||
        !TraceRun(EngineKind::kTUGroup, hosts, &trace, &avg_group).ok()) {
      std::printf("  round failed\n");
      return 1;
    }
    std::printf("  %-10llu %10.2f %10.2f %10.2f\n",
                static_cast<unsigned long long>(hosts * 101), avg_tsdb,
                avg_tu, avg_group);
  }

  PrintHeader("Figure 16b", "memory over time, largest round (MB)");
  std::vector<double> tsdb_trace, tu_trace;
  double avg;
  if (!TraceRun(EngineKind::kTsdb, 10, &tsdb_trace, &avg).ok() ||
      !TraceRun(EngineKind::kTU, 10, &tu_trace, &avg).ok()) {
    return 1;
  }
  std::printf("  %-8s %10s %10s\n", "t(%)", "tsdb", "TU");
  for (size_t i = 0; i < tsdb_trace.size(); i += 4) {
    std::printf("  %-8zu %10.2f %10.2f\n", i * 100 / tsdb_trace.size(),
                tsdb_trace[i], i < tu_trace.size() ? tu_trace[i] : 0.0);
  }
  std::printf(
      "\n  shape checks: tsdb memory climbs with time (head + pinned block\n"
      "  metadata accumulate); TU stays flat and far below tsdb; TU-Group\n"
      "  lowest.\n");
  return 0;
}
