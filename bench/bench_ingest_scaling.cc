// Ingest scaling: InsertFast throughput at 1/2/4/8 writer threads on the
// time-partitioned backend, WAL off and on, disjoint series per thread.
// Demonstrates the sharded write path: with the global lock gone, disjoint
// writers scale with available cores (target: 4 writers ≥ 2× one). The
// `cpus` field records hardware concurrency — on a single-core host the
// honest ceiling is ~1× regardless of the locking scheme, so interpret
// the trajectory relative to it.
//
// Emits one JSON line per configuration, e.g.
//   {"bench":"ingest_scaling","threads":4,"wal":false,"disjoint":true,
//    "cpus":8,"samples":3200000,"elapsed_s":1.234,
//    "throughput_sps":2593192.9}
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/timeunion_db.h"
#include "util/mmap_file.h"

namespace tu::bench {
namespace {

constexpr int kSeriesPerThread = 16;
constexpr int64_t kStepMs = 10'000;

// CI smoke mode (TU_BENCH_SMOKE): same configurations, tiny workload.
int SamplesPerSeries() { return SmokeMode() ? 1'000 : 25'000; }

struct Config {
  int threads = 1;
  bool wal = false;
};

double RunOne(const Config& cfg) {
  core::DBOptions opts;
  opts.workspace = FreshWorkspace("ingest_scaling");
  opts.lsm.memtable_bytes = 4 << 20;
  // Writers must not flush memtables inline — that's the background
  // workers' job (§3.3); here we measure the front-door write path.
  opts.lsm.background_flush = true;
  opts.enable_wal = cfg.wal;
  // A/B knob for the metrics overhead budget: TU_BENCH_NO_METRICS=1
  // disables the registry so on-vs-off runs of this binary measure the
  // instrumentation cost directly (same code layout, only the cached
  // instrument pointers go null).
  if (std::getenv("TU_BENCH_NO_METRICS")) opts.metrics.enabled = false;

  std::unique_ptr<core::TimeUnionDB> db;
  Status s = core::TimeUnionDB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return -1;
  }

  const int num_series = cfg.threads * kSeriesPerThread;
  std::vector<uint64_t> refs(num_series);
  for (int i = 0; i < num_series; ++i) {
    s = db->RegisterSeries({{"host", std::to_string(i)}, {"m", "cpu"}},
                           &refs[i]);
    if (!s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return -1;
    }
  }

  const int samples_per_series = SamplesPerSeries();
  std::atomic<uint64_t> errors{0};
  const uint64_t t_start = NowUs();
  std::vector<std::thread> writers;
  for (int t = 0; t < cfg.threads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < samples_per_series; ++i) {
        const int64_t ts = static_cast<int64_t>(i) * kStepMs;
        for (int sr = 0; sr < kSeriesPerThread; ++sr) {
          if (!db->InsertFast(refs[t * kSeriesPerThread + sr], ts, i).ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  const uint64_t t_end = NowUs();

  if (errors.load() != 0) {
    std::fprintf(stderr, "insert errors: %llu\n",
                 static_cast<unsigned long long>(errors.load()));
    return -1;
  }
  const uint64_t total =
      static_cast<uint64_t>(num_series) * samples_per_series;
  const double elapsed_s = static_cast<double>(t_end - t_start) / 1e6;
  const double throughput = static_cast<double>(total) / elapsed_s;
  std::printf(
      "{\"bench\":\"ingest_scaling\",\"threads\":%d,\"wal\":%s,"
      "\"disjoint\":true,\"cpus\":%u,\"samples\":%llu,\"elapsed_s\":%.3f,"
      "\"throughput_sps\":%.1f}\n",
      cfg.threads, cfg.wal ? "true" : "false",
      std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(total), elapsed_s, throughput);
  std::fflush(stdout);

  // Final-config introspection artifact for CI (satisfies the parse check).
  WriteSnapshotFile(MetricsSnapshotPath(), db->Metrics().ToJson());

  db.reset();
  RemoveDirRecursive(opts.workspace);
  return throughput;
}

int Main() {
  PrintHeader("ingest_scaling", "InsertFast throughput vs writer threads");
  double single_nowal = 0, quad_nowal = 0;
  for (bool wal : {false, true}) {
    for (int threads : {1, 2, 4, 8}) {
      const double tput = RunOne(Config{threads, wal});
      if (tput < 0) return 1;
      if (!wal && threads == 1) single_nowal = tput;
      if (!wal && threads == 4) quad_nowal = tput;
    }
  }
  if (single_nowal > 0) {
    PrintRow("4-thread speedup (wal off)", quad_nowal / single_nowal, "x");
  }
  return 0;
}

}  // namespace
}  // namespace tu::bench

int main() { return tu::bench::Main(); }
