// Compaction cost analysis (Eqs. 7-10): the slow-tier write traffic of a
// traditional multi-level LSM versus TimeUnion's single slow level —
// analytic model plus a measured comparison of the two implementations.
#include <cstdio>

#include "bench_util.h"
#include "cloud/cost_model.h"
#include "cloud/tiered_env.h"
#include "compress/chunk.h"
#include "lsm/key_format.h"
#include "lsm/leveled_lsm.h"
#include "lsm/time_lsm.h"
#include "util/random.h"

using namespace tu;
using namespace tu::bench;

int main() {
  PrintHeader("Eqs. 7-10", "analytic slow-tier write traffic");
  // Paper example: Sb=64MB, M=10, fast=1GB, data=100GB => >=64GB saved.
  cloud::CompactionCostParams c;
  c.s_b = 64e6;
  c.m = 10;
  c.s_fast = 1e9;
  c.s_d = 100e9;
  PrintRow("levels L (Eq.7)", cloud::NumLevels(c.s_d, c.s_b, c.m), "levels");
  PrintRow("fast levels L_fast", cloud::NumLevels(c.s_fast, c.s_b, c.m),
           "levels");
  PrintRow("multi-level cost (Eq.8)",
           cloud::SlowWriteCostMultiLevel(c) / 1e9, "GB");
  PrintRow("one-level cost (Eq.9)", cloud::SlowWriteCostOneLevel(c) / 1e9,
           "GB");
  PrintRow("saving (Eq.10)", cloud::SlowWriteCostSaving(c) / 1e9, "GB");

  // Measured: identical chunk workload through both trees; compare bytes
  // written to (and read from) the slow tier.
  PrintHeader("measured", "slow-tier traffic, TimePartitioned vs Leveled");
  const int64_t kMin = 60 * 1000;
  const int64_t kHour = 60 * kMin;
  auto workload = [&](lsm::ChunkStore* store) -> Status {
    uint64_t seq = 0;
    Random rng(5);
    for (int64_t ts = 0; ts < 24 * kHour; ts += kMin) {
      for (uint64_t id = 0; id < 20; ++id) {
        std::string payload;
        compress::EncodeSeriesChunk(
            ++seq, {compress::Sample{ts, rng.NextDouble()}}, &payload);
        TU_RETURN_IF_ERROR(store->Put(
            lsm::MakeChunkKey(id, ts),
            lsm::MakeChunkValue(lsm::ChunkType::kSeries, payload)));
      }
    }
    return store->FlushAll();
  };

  uint64_t tp_written = 0, tp_read_ops = 0;
  {
    const std::string ws = FreshWorkspace("ccost_tp");
    cloud::TieredEnv env(ws, cloud::TieredEnvOptions::Instant());
    lsm::BlockCache cache(8 << 20);
    lsm::TimeLsmOptions opts;
    opts.memtable_bytes = 64 << 10;
    lsm::TimePartitionedLsm tree(&env, "db", opts, &cache);
    if (!tree.Open().ok() || !workload(&tree).ok()) return 1;
    tp_written = env.slow().counters().bytes_written.load();
    tp_read_ops = env.slow().counters().get_ops.load();
  }
  uint64_t lv_written = 0, lv_read_ops = 0;
  {
    const std::string ws = FreshWorkspace("ccost_lv");
    cloud::TieredEnv env(ws, cloud::TieredEnvOptions::Instant());
    lsm::BlockCache cache(8 << 20);
    lsm::LeveledLsmOptions opts;
    opts.memtable_bytes = 64 << 10;
    opts.base_level_bytes = 128 << 10;
    opts.max_output_table_bytes = 64 << 10;
    opts.level_multiplier = 4;
    opts.num_fast_levels = 2;
    lsm::LeveledLsm tree(&env, "db", opts, &cache);
    if (!tree.Open().ok() || !workload(&tree).ok()) return 1;
    lv_written = env.slow().counters().bytes_written.load();
    lv_read_ops = env.slow().counters().get_ops.load();
  }
  PrintRow("time-partitioned: S3 bytes written", tp_written / 1048576.0,
           "MB");
  PrintRow("time-partitioned: S3 Get requests", tp_read_ops, "ops");
  PrintRow("leveled: S3 bytes written", lv_written / 1048576.0, "MB");
  PrintRow("leveled: S3 Get requests", lv_read_ops, "ops");
  PrintRow("write traffic saving",
           lv_written > 0
               ? 100.0 * (1.0 - static_cast<double>(tp_written) / lv_written)
               : 0,
           "%");
  std::printf(
      "\n  shape checks: the one-slow-level design writes each byte to S3\n"
      "  once and performs zero S3 Gets on an in-order workload; the\n"
      "  leveled design rewrites deep levels repeatedly and reads\n"
      "  overlapping tables back from S3 during compactions.\n");
  return 0;
}
