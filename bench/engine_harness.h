// EngineHarness: drives the five §4.1 comparison systems over the TSBS
// DevOps workload with a uniform interface, so every figure bench reports
// the same rows the paper does.
//
//   tsdb      — TsdbEngine, blocks on S3
//   tsdb-LDB  — TsdbEngine with chunk payloads in a leveled LSM on S3
//   TU        — TimeUnionDB, per-series fast-path insertion
//   TU-Group  — TimeUnionDB, per-host group rows
//   TU-LDB    — TimeUnionDB over the classic leveled LSM backend
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baseline/tsdb_engine.h"
#include "core/timeunion_db.h"
#include "tsbs/devops.h"

namespace tu::bench {

enum class EngineKind { kTsdb, kTsdbLdb, kTU, kTUGroup, kTULdb };

const char* EngineName(EngineKind kind);

struct HarnessOptions {
  std::string workspace;
  cloud::TieredEnvOptions env;
  /// Fig. 17 mode: everything on the fast tier.
  bool ebs_only = false;
  /// TimeUnion EBS budget (0 = off; §4.1 fixes the level-2 partition
  /// length to 2 h when comparing against tsdb).
  uint64_t fast_limit_bytes = 0;
  /// Number of host tags per series (Fig. 3: 20; Fig. 4: 5; default 10).
  int num_host_tags = 10;
  /// Scaled-down component sizes so laptop rounds finish in seconds.
  size_t memtable_bytes = 2 << 20;
  size_t block_cache_bytes = 32 << 20;
};

struct InsertReport {
  uint64_t samples = 0;
  double wall_seconds = 0;
  double throughput = 0;  // samples/s
  int64_t memory_total = 0;
  int64_t memory_index = 0;
  int64_t memory_samples = 0;
  int64_t memory_block_meta = 0;
};

struct QueryReport {
  std::string pattern;
  double latency_us = 0;
  uint64_t series_returned = 0;
  uint64_t samples_returned = 0;
};

class EngineHarness {
 public:
  EngineHarness(EngineKind kind, HarnessOptions options);
  ~EngineHarness();

  Status Open();

  /// Runs the full DevOps insertion (time-ordered, fast path) and reports.
  Status RunInsert(const tsbs::DevOpsGenerator& gen, InsertReport* report);

  /// Flushes pending data (measurement boundary, like the paper waiting
  /// for compactions before queries).
  Status Flush();

  /// Runs one query pattern (average over `repeats` selector seeds).
  Status RunQuery(const tsbs::DevOpsGenerator& gen,
                  const tsbs::QueryPattern& pattern, int repeats,
                  QueryReport* report);

  /// On-disk/persisted sizes (Table 3).
  uint64_t PersistedIndexBytes() const;
  uint64_t PersistedDataBytes() const;

  cloud::TieredEnv* env();
  core::TimeUnionDB* tu() { return tu_.get(); }
  baseline::TsdbEngine* tsdb() { return tsdb_.get(); }
  EngineKind kind() const { return kind_; }

 private:
  EngineKind kind_;
  HarnessOptions options_;
  std::unique_ptr<core::TimeUnionDB> tu_;
  std::unique_ptr<baseline::TsdbEngine> tsdb_;

  // Fast-path handles.
  std::vector<uint64_t> series_refs_;          // tsdb / TU / TU-LDB
  std::vector<uint64_t> group_refs_;           // TU-Group, per host
  std::vector<std::vector<uint32_t>> group_slots_;
};

}  // namespace tu::bench
