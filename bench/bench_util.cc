#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/mmap_file.h"

namespace tu::bench {

std::string FreshWorkspace(const std::string& name) {
  const std::string path = "/tmp/timeunion_bench/" + name;
  RemoveDirRecursive(path);
  EnsureDir(path);
  return path;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void PrintRow(const std::string& label, double value, const std::string& unit) {
  std::printf("  %-42s %14.3f %s\n", label.c_str(), value, unit.c_str());
}

void PrintHeader(const std::string& experiment, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", experiment.c_str(), title.c_str());
}

bool SmokeMode() {
  const char* v = std::getenv("TU_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

std::string MetricsSnapshotPath() {
  const char* v = std::getenv("TU_BENCH_METRICS_SNAPSHOT");
  return v != nullptr ? std::string(v) : std::string();
}

void WriteSnapshotFile(const std::string& path, const std::string& json) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write metrics snapshot to %s\n",
                 path.c_str());
    return;
  }
  out << json << "\n";
}

}  // namespace tu::bench
