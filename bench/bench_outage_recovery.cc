// Outage recovery drill: ingest throughput before, during, and after a
// scripted total slow-tier outage, plus the time to drain the deferred
// upload backlog once the tier returns (EXPERIMENTS.md "Degraded
// operation" drill). The circuit breaker trips during the outage, L2
// compactions park their outputs on the fast tier, and ingest keeps
// going; afterwards the drainer uploads the backlog.
//
// Phase lengths default to 2s / 3s / 2s so the bench stays quick; set
// TU_OUTAGE_MS=30000 to run the full 30-second drill.
//
// Emits one JSON line per phase plus a drain summary, e.g.
//   {"bench":"outage_recovery","phase":"outage","elapsed_s":3.001,
//    "samples":412992,"throughput_sps":137618.5,"write_errors":0}
//   {"bench":"outage_recovery","metric":"drain","deferred_tables":7,
//    "drain_s":0.012,"breaker_opens":1,"breaker_rejections":42}
//
// A second drill then fills the FAST tier (injected ENOSPC on LSM table
// writes): ingest quiesces (fail-fast kResourceExhausted), space is
// released, and the maintenance tick's resume probe reopens the write
// path. Emits the time from release to healthy:
//   {"bench":"outage_recovery","metric":"enospc","quiesce_s":0.041,
//    "time_to_resume_s":0.031,"resume_attempts":2,"resumes_succeeded":1}
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cloud/fault_injector.h"
#include "core/timeunion_db.h"
#include "lsm/time_lsm.h"
#include "util/mmap_file.h"

namespace tu::bench {
namespace {

// Writers pace themselves (~1 ms sleep per batch) like a scrape-driven
// ingest pipeline: the interesting signal is the throughput RATIO across
// phases and the drain time, not the unconstrained peak rate. Pacing also
// keeps the virtual time span — and with it the partition count the final
// flush must compact — bounded regardless of host speed.
constexpr int kThreads = 4;
constexpr int kSeriesPerThread = 16;
constexpr int kBatchPerSeries = 4;
constexpr int64_t kStepMs = 50;

struct PhaseStat {
  const char* name;
  double elapsed_s = 0;
  uint64_t samples = 0;
  uint64_t errors = 0;
};

void PrintPhase(const PhaseStat& p) {
  std::printf(
      "{\"bench\":\"outage_recovery\",\"phase\":\"%s\",\"elapsed_s\":%.3f,"
      "\"samples\":%llu,\"throughput_sps\":%.1f,\"write_errors\":%llu}\n",
      p.name, p.elapsed_s, static_cast<unsigned long long>(p.samples),
      p.elapsed_s > 0 ? static_cast<double>(p.samples) / p.elapsed_s : 0.0,
      static_cast<unsigned long long>(p.errors));
  std::fflush(stdout);
}

int Main() {
  PrintHeader("outage_recovery",
              "Ingest throughput across a slow-tier outage + drain time");

  int64_t outage_ms = 3000;
  if (const char* env = std::getenv("TU_OUTAGE_MS")) {
    outage_ms = std::atoll(env);
    if (outage_ms <= 0) outage_ms = 3000;
  }
  const int64_t steady_ms = outage_ms >= 30'000 ? 10'000 : 2000;

  core::DBOptions opts;
  opts.workspace = FreshWorkspace("outage_recovery");
  opts.lsm.memtable_bytes = 64 << 10;
  opts.lsm.background_flush = true;
  // Short partitions so L2 uploads happen throughout every phase.
  opts.lsm.l0_partition_ms = 4000;
  opts.lsm.l2_partition_ms = 16'000;
  opts.lsm.partition_lower_bound_ms = 4000;
  opts.lsm.l0_partition_trigger = 1;

  auto fi = std::make_shared<cloud::FaultInjector>(7);
  opts.env_options.slow_sim.fault = fi;
  opts.env_options.slow_sim.retry.max_attempts = 3;
  opts.env_options.slow_sim.retry.real_sleep = false;
  opts.env_options.slow_sim.breaker.enabled = true;
  opts.env_options.slow_sim.breaker.consecutive_failures_to_open = 4;

  // Fast-tier injector + maintenance worker for the ENOSPC drill: the
  // resume probe runs from the tick, so the measured time-to-resume is
  // tick interval + probe backoff + retry cost.
  auto fi_fast = std::make_shared<cloud::FaultInjector>(17);
  opts.env_options.fast_sim.fault = fi_fast;
  opts.background_maintenance = true;
  opts.maintenance_interval_ms = 25;
  opts.error_handler.resume_backoff_initial_ms = 25;

  std::unique_ptr<core::TimeUnionDB> db;
  Status s = core::TimeUnionDB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::vector<uint64_t> refs(kThreads * kSeriesPerThread);
  for (size_t i = 0; i < refs.size(); ++i) {
    s = db->RegisterSeries({{"host", std::to_string(i)}, {"m", "cpu"}},
                           &refs[i]);
    if (!s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_samples{0};
  std::atomic<uint64_t> total_errors{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int b = 0; b < kBatchPerSeries; ++b) {
          const int64_t ts = (i + b) * kStepMs;
          for (int sr = 0; sr < kSeriesPerThread; ++sr) {
            if (db->InsertFast(refs[t * kSeriesPerThread + sr], ts,
                               static_cast<double>(i + b))
                    .ok()) {
              total_samples.fetch_add(1, std::memory_order_relaxed);
            } else {
              total_errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        i += kBatchPerSeries;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // Three phases on the same running writers: healthy, total slow-tier
  // outage (breaker trips, uploads defer), healthy again.
  PhaseStat phases[3] = {{"pre"}, {"outage"}, {"post"}};
  const int64_t durations_ms[3] = {steady_ms, outage_ms, steady_ms};
  for (int p = 0; p < 3; ++p) {
    if (p == 1) {
      cloud::FaultRule down;
      down.ops = cloud::kAllFaultOps;
      down.probability = 1.0;
      down.kind = cloud::FaultRule::Kind::kPermanent;
      fi->AddRule(down);
    } else if (p == 2) {
      fi->Clear();
    }
    const uint64_t s0 = total_samples.load();
    const uint64_t e0 = total_errors.load();
    const uint64_t t0 = NowUs();
    std::this_thread::sleep_for(std::chrono::milliseconds(durations_ms[p]));
    phases[p].elapsed_s = static_cast<double>(NowUs() - t0) / 1e6;
    phases[p].samples = total_samples.load() - s0;
    phases[p].errors = total_errors.load() - e0;
    PrintPhase(phases[p]);
  }
  stop.store(true);
  for (auto& w : writers) w.join();

  // Drain the deferred backlog and time it. A pass can come back with
  // tables still parked (breaker cooldown, maintenance tick holding the
  // drain lock), so poll until empty.
  s = db->Flush();
  if (!s.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const size_t deferred_peak = db->time_lsm()->NumDeferredTables();
  const uint64_t drain_t0 = NowUs();
  while (db->time_lsm()->NumDeferredTables() > 0) {
    s = db->time_lsm()->DrainDeferredUploads();
    if (!s.ok()) {
      std::fprintf(stderr, "drain failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (db->time_lsm()->NumDeferredTables() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const double drain_s = static_cast<double>(NowUs() - drain_t0) / 1e6;

  const core::HealthReport health = db->HealthReport();
  std::printf(
      "{\"bench\":\"outage_recovery\",\"metric\":\"drain\","
      "\"deferred_tables\":%llu,\"drained_total\":%llu,\"drain_s\":%.3f,"
      "\"breaker_opens\":%llu,\"breaker_rejections\":%llu}\n",
      static_cast<unsigned long long>(deferred_peak),
      static_cast<unsigned long long>(health.deferred_uploads_drained),
      drain_s, static_cast<unsigned long long>(health.breaker_opens),
      static_cast<unsigned long long>(health.breaker_rejections));
  std::fflush(stdout);

  PrintRow("outage/pre throughput ratio",
           phases[0].samples > 0 ? static_cast<double>(phases[1].samples) /
                                       phases[1].elapsed_s /
                                       (static_cast<double>(phases[0].samples) /
                                        phases[0].elapsed_s)
                                 : 0.0,
           "x");
  PrintRow("time to drain backlog", drain_s, "s");

  // -- Fast-tier ENOSPC drill: quiesce -> release -> auto-resume ------------
  fi_fast->AddRule(cloud::FaultRule::NoSpace(
      cloud::FaultOp::kAppend | cloud::FaultOp::kSync, "lsm/"));
  const uint64_t enospc_t0 = NowUs();
  constexpr uint64_t kEnospcCapUs = 20'000'000;
  bool quiesced = false;
  // Far past the writer phase so the drill only creates fresh partitions.
  int64_t ts = 100'000'000;
  while (NowUs() - enospc_t0 < kEnospcCapUs) {
    if (!db->InsertFast(refs[0], ts, 1.0).ok()) {
      quiesced = true;
      break;
    }
    ts += kStepMs;
  }
  const double quiesce_s = static_cast<double>(NowUs() - enospc_t0) / 1e6;

  double resume_s = -1.0;
  if (quiesced) {
    fi_fast->ReleaseNoSpace();
    const uint64_t rt0 = NowUs();
    while (db->Health() != core::DbHealth::kHealthy &&
           NowUs() - rt0 < kEnospcCapUs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (db->Health() == core::DbHealth::kHealthy) {
      resume_s = static_cast<double>(NowUs() - rt0) / 1e6;
    }
  }
  const core::HealthReport after = db->HealthReport();
  std::printf(
      "{\"bench\":\"outage_recovery\",\"metric\":\"enospc\","
      "\"quiesce_s\":%.3f,\"time_to_resume_s\":%.3f,"
      "\"resume_attempts\":%llu,\"resumes_succeeded\":%llu}\n",
      quiesce_s, resume_s,
      static_cast<unsigned long long>(after.resume_attempts),
      static_cast<unsigned long long>(after.resumes_succeeded));
  std::fflush(stdout);
  PrintRow("time to resume after ENOSPC", resume_s, "s");

  int rc = total_errors.load() == 0 ? 0 : 1;
  if (!quiesced || resume_s < 0) rc = 1;
  db.reset();
  RemoveDirRecursive(opts.workspace);
  return rc;
}

}  // namespace
}  // namespace tu::bench

int main() { return tu::bench::Main(); }
