// Ablations of DESIGN.md's design choices:
//  (a) samples-per-chunk sweep — §3.2's "adjusted by users for the
//      trade-off between compression ratio and memory usage";
//  (b) patch-threshold sweep — §3.3's adjustable patch merge trigger:
//      more patches = cheaper OOO absorption but more S3 Gets per query;
//  (c) SSTable block compression on/off — the Table 3 Snappy effect.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/timeunion_db.h"
#include "util/memory_tracker.h"
#include "util/random.h"

using namespace tu;
using namespace tu::bench;

namespace {

constexpr int64_t kMin = 60 * 1000;

Status RunChunkSize(uint32_t samples_per_chunk, double* persisted_mb,
                    int64_t* sample_mem_peak, double* throughput) {
  MemoryTracker::Global().Reset();
  core::DBOptions opts;
  opts.workspace =
      FreshWorkspace("ablation_chunk" + std::to_string(samples_per_chunk));
  opts.samples_per_chunk = samples_per_chunk;
  opts.series_chunk_bytes = 64 + samples_per_chunk * 20;  // slot sized to fit
  opts.lsm.memtable_bytes = 256 << 10;
  std::unique_ptr<core::TimeUnionDB> db;
  TU_RETURN_IF_ERROR(core::TimeUnionDB::Open(opts, &db));

  const int kSeries = 64;
  std::vector<uint64_t> refs(kSeries);
  Random rng(1);
  const uint64_t start = NowUs();
  int64_t peak = 0;
  uint64_t samples = 0;
  for (int64_t ts = 0; ts < 6LL * 3600 * 1000; ts += 30'000) {
    for (int s = 0; s < kSeries; ++s) {
      if (ts == 0) {
        TU_RETURN_IF_ERROR(db->Insert({{"s", std::to_string(s)}}, 0,
                                      rng.NextDouble(), &refs[s]));
      } else {
        TU_RETURN_IF_ERROR(db->InsertFast(refs[s], ts, rng.NextDouble()));
      }
      ++samples;
    }
    peak = std::max(peak,
                    MemoryTracker::Global().Get(MemCategory::kSamples));
  }
  *throughput = samples / ((NowUs() - start) / 1e6);
  TU_RETURN_IF_ERROR(db->Flush());
  *persisted_mb = (db->time_lsm()->FastBytesUsed() +
                   db->time_lsm()->SlowBytesUsed()) /
                  1048576.0;
  *sample_mem_peak = peak;
  return Status::OK();
}

Status RunPatchThreshold(int threshold, uint64_t* patch_merges,
                         uint64_t* s3_gets_during_query,
                         double* query_us) {
  core::DBOptions opts;
  opts.workspace =
      FreshWorkspace("ablation_patch" + std::to_string(threshold));
  opts.lsm.memtable_bytes = 64 << 10;
  opts.lsm.patch_threshold = threshold;
  std::unique_ptr<core::TimeUnionDB> db;
  TU_RETURN_IF_ERROR(core::TimeUnionDB::Open(opts, &db));

  uint64_t ref = 0;
  TU_RETURN_IF_ERROR(db->Insert({{"m", "x"}}, 0, 0.0, &ref));
  for (int64_t ts = kMin; ts < 12LL * 3600 * 1000; ts += kMin) {
    TU_RETURN_IF_ERROR(db->InsertFast(ref, ts, 1.0));
  }
  TU_RETURN_IF_ERROR(db->Flush());
  // Repeated stale rounds into hour 0.
  for (int round = 0; round < 6; ++round) {
    for (int64_t ts = 0; ts < 3600 * 1000; ts += 2 * kMin) {
      TU_RETURN_IF_ERROR(db->InsertFast(ref, ts, 10.0 + round));
    }
    TU_RETURN_IF_ERROR(db->Flush());
  }
  *patch_merges = db->time_lsm()->stats().patch_merges.load();

  const uint64_t gets_before = db->env().slow().counters().get_ops.load();
  const uint64_t start = NowUs();
  core::QueryResult result;
  TU_RETURN_IF_ERROR(db->Query({index::TagMatcher::Equal("m", "x")}, 0,
                               3600 * 1000, &result));
  *query_us = static_cast<double>(NowUs() - start);
  *s3_gets_during_query =
      db->env().slow().counters().get_ops.load() - gets_before;
  return Status::OK();
}

Status RunBlockCompression(bool compress, double* persisted_mb) {
  core::DBOptions opts;
  opts.workspace =
      FreshWorkspace(std::string("ablation_snappy") + (compress ? "1" : "0"));
  opts.lsm.memtable_bytes = 128 << 10;
  opts.lsm.table_options.compress_blocks = compress;
  std::unique_ptr<core::TimeUnionDB> db;
  TU_RETURN_IF_ERROR(core::TimeUnionDB::Open(opts, &db));
  std::vector<uint64_t> refs(32);
  Random rng(2);
  for (int64_t ts = 0; ts < 12LL * 3600 * 1000; ts += kMin) {
    for (int s = 0; s < 32; ++s) {
      if (ts == 0) {
        TU_RETURN_IF_ERROR(db->Insert({{"s", std::to_string(s)}}, 0,
                                      50 + rng.Uniform(10) * 1.0, &refs[s]));
      } else {
        TU_RETURN_IF_ERROR(
            db->InsertFast(refs[s], ts, 50 + rng.Uniform(10) * 1.0));
      }
    }
  }
  TU_RETURN_IF_ERROR(db->Flush());
  *persisted_mb = (db->time_lsm()->FastBytesUsed() +
                   db->time_lsm()->SlowBytesUsed()) /
                  1048576.0;
  return Status::OK();
}

}  // namespace

int main() {
  PrintHeader("Ablation (a)", "samples per chunk: compression vs memory");
  std::printf("  %-8s %14s %18s %16s\n", "chunk", "persisted(MB)",
              "peak samples(KB)", "insert(sm/s)");
  for (uint32_t n : {8, 16, 32, 64, 128}) {
    double mb, thr;
    int64_t peak;
    if (!RunChunkSize(n, &mb, &peak, &thr).ok()) return 1;
    std::printf("  %-8u %14.2f %18.1f %16.0f\n", n, mb, peak / 1024.0, thr);
  }
  std::printf("  (larger chunks: better compression, more open-chunk "
              "memory — §3.2)\n");

  PrintHeader("Ablation (b)", "patch threshold: merges vs query reads");
  std::printf("  %-10s %12s %16s %12s\n", "threshold", "merges",
              "S3 gets/query", "query(us)");
  for (int t : {1, 3, 8, 1000}) {
    uint64_t merges, gets;
    double us;
    if (!RunPatchThreshold(t, &merges, &gets, &us).ok()) return 1;
    std::printf("  %-10d %12llu %16llu %12.0f\n", t,
                static_cast<unsigned long long>(merges),
                static_cast<unsigned long long>(gets), us);
  }
  std::printf("  (low threshold: frequent merges, fewer tables per query; "
              "high: patches pile up — §3.3)\n");

  PrintHeader("Ablation (c)", "SSTable block compression (Table 3 effect)");
  double with_mb, without_mb;
  if (!RunBlockCompression(true, &with_mb).ok()) return 1;
  if (!RunBlockCompression(false, &without_mb).ok()) return 1;
  PrintRow("persisted with SnappyLite", with_mb, "MB");
  PrintRow("persisted without", without_mb, "MB");
  PrintRow("block compression saving",
           100.0 * (1.0 - with_mb / without_mb), "%");
  return 0;
}
