#!/usr/bin/env bash
# Builds the repo with ThreadSanitizer and runs the concurrency-labelled
# test suites (ctest -L concurrency). Any data race in the sharded DB core
# fails the run.
#
# Usage: scripts/tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DTU_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
  concurrency_test util_test maintenance_test

# halt_on_error: make the first race fail the test instead of just logging.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$BUILD_DIR" -L concurrency --output-on-failure
