#!/usr/bin/env bash
# Builds the repo with ThreadSanitizer and runs the concurrency-, fault-,
# query-, integrity- and rollup-labelled test suites
# (ctest -L "fault|concurrency|query|integrity|rollup"). Any data race in
# the sharded DB core, the degraded-operation machinery (circuit breaker,
# deferred-upload drainer, admission control), the query pipeline (shared
# readers, block cache counters), the scrub job (racing flushes and
# compactions for the manifest lock) or the continuous-aggregate planner
# (rollup tables racing compaction/maintenance) or the network front
# door (epoll loop vs worker pool vs graceful drain) fails the run.
#
# Usage: scripts/tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DTU_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
  concurrency_test util_test maintenance_test fault_injection_test \
  error_recovery_test query_pipeline_test batch_drain_test obs_test \
  integrity_test rollup_test server_test

# halt_on_error: make the first race fail the test instead of just logging.
# -L takes a regex, so "fault|concurrency|query|integrity|rollup|server"
# ORs the labels.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$BUILD_DIR" \
  -L "fault|concurrency|query|integrity|rollup|server" --output-on-failure
