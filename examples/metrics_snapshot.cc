// Observability tour: run a small write + query workload, then export the
// DB's introspection snapshot in both supported formats — JSON (stable,
// machine-readable schema) and Prometheus text exposition — and show the
// human-oriented HealthReport on top of the same data.
//
//   ./metrics_snapshot [workspace_dir]
#include <cstdio>
#include <memory>

#include "core/timeunion_db.h"
#include "obs/metrics.h"
#include "util/mmap_file.h"

using tu::Status;
using tu::core::DBOptions;
using tu::core::QueryResult;
using tu::core::TimeUnionDB;
using tu::index::TagMatcher;

int main(int argc, char** argv) {
  DBOptions options;
  options.workspace = argc > 1 ? argv[1] : "/tmp/timeunion_metrics_example";
  tu::RemoveDirRecursive(options.workspace);
  // Metrics are on by default; Validate() runs inside Open and rejects
  // incoherent configs (e.g. hard < soft admission watermarks).

  std::unique_ptr<TimeUnionDB> db;
  Status st = TimeUnionDB::Open(options, &db);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // A little traffic so the snapshot has something to say.
  for (int series = 0; series < 4; ++series) {
    uint64_t ref = 0;
    st = db->Insert({{"host", std::to_string(series)}, {"m", "cpu"}}, 0, 0.0,
                    &ref);
    if (!st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
    for (int i = 1; i < 500; ++i) {
      db->InsertFast(ref, i * 1000LL, 0.5 * i);
    }
  }
  db->Flush();
  QueryResult result;
  db->Query({TagMatcher::Equal("m", "cpu")}, 0, 500'000, &result);

  // One consistent snapshot: counters, gauges, latency histograms with
  // p50/p90/p99, and the recent-event ring buffer.
  tu::obs::MetricsSnapshot snap = db->Metrics();

  std::printf("--- JSON snapshot ---\n%s\n", snap.ToJson().c_str());
  std::printf("\n--- Prometheus exposition ---\n%s",
              snap.ToPrometheusText().c_str());

  // Scalar lookups against the same snapshot.
  std::printf("\nsamples ingested: %llu, queries run: %llu\n",
              static_cast<unsigned long long>(snap.CounterOr0("ingest.samples")),
              static_cast<unsigned long long>(snap.CounterOr0("query.runs")));
  if (const tu::obs::HistogramSnapshot* h =
          snap.FindHistogram("query.e2e_us")) {
    std::printf("query latency: p50=%.1fus p99=%.1fus max=%llu us\n",
                h->p50_us, h->p99_us,
                static_cast<unsigned long long>(h->max_us));
  }

  // HealthReport/CountersReport are views over the same registry.
  const tu::core::HealthReport health = db->HealthReport();
  std::printf("\n--- HealthReport ---\n"
              "breaker_enabled=%d deferred_tables=%zu fast_bytes=%llu "
              "cache_hits=%llu background_error=%s\n",
              health.breaker_enabled ? 1 : 0, health.deferred_tables,
              static_cast<unsigned long long>(health.fast_bytes),
              static_cast<unsigned long long>(health.block_cache_hits),
              health.last_background_error.ToString().c_str());
  return 0;
}
