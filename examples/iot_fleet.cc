// IoT fleet telemetry: late-arriving (out-of-order) uploads and data
// retention. Devices buffer readings offline and upload them hours later;
// TimeUnion absorbs the stale data through partition merges on the fast
// tier and patch SSTables on the object tier (§3.3), and a retention
// watermark drops old partitions wholesale.
//
//   ./iot_fleet [workspace_dir]
#include <cstdio>
#include <memory>
#include <vector>

#include "core/timeunion_db.h"
#include "util/mmap_file.h"
#include "util/random.h"

using tu::Status;
using tu::core::DBOptions;
using tu::core::QueryResult;
using tu::core::TimeUnionDB;
using tu::index::Labels;
using tu::index::TagMatcher;

namespace {
constexpr int64_t kMinute = 60 * 1000;
constexpr int64_t kHour = 60 * kMinute;
}  // namespace

int main(int argc, char** argv) {
  DBOptions options;
  options.workspace = argc > 1 ? argv[1] : "/tmp/timeunion_iot";
  tu::RemoveDirRecursive(options.workspace);
  options.lsm.memtable_bytes = 128 << 10;
  options.lsm.patch_threshold = 2;  // merge patches aggressively
  options.enable_wal = true;        // survive gateway crashes

  std::unique_ptr<TimeUnionDB> db;
  Status st = TimeUnionDB::Open(options, &db);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 20 sensors reporting temperature every minute for 36 hours.
  const int kSensors = 20;
  std::vector<uint64_t> refs(kSensors, 0);
  tu::Random rng(7);
  for (int d = 0; d < kSensors; ++d) {
    const Labels labels = {{"device", "sensor-" + std::to_string(d)},
                           {"metric", "temperature"},
                           {"site", d < 10 ? "plant-a" : "plant-b"}};
    st = db->Insert(labels, 0, 20.0, &refs[d]);
    if (!st.ok()) return 1;
  }
  for (int64_t ts = kMinute; ts < 36 * kHour; ts += kMinute) {
    for (int d = 0; d < kSensors; ++d) {
      // Devices 15..19 are flaky: they skip 30% of live uploads.
      if (d >= 15 && rng.OneIn(3)) continue;
      st = db->InsertFast(refs[d], ts, 20.0 + rng.NextGaussian(0, 2));
      if (!st.ok()) return 1;
    }
  }
  db->Flush();
  std::printf("live ingestion done; L2 partitions on object storage: %zu\n",
              db->time_lsm()->NumL2Partitions());

  // The flaky devices come back online and upload their buffered backlog —
  // hours-old timestamps landing in partitions already migrated to the
  // object tier.
  for (int d = 15; d < kSensors; ++d) {
    for (int64_t ts = kMinute; ts < 30 * kHour; ts += 3 * kMinute) {
      st = db->InsertFast(refs[d], ts, 19.0);  // backfilled reading
      if (!st.ok()) return 1;
    }
  }
  db->Flush();
  const auto& stats = db->time_lsm()->stats();
  std::printf("backlog absorbed: %llu patch SSTables appended, %llu patch "
              "merges\n",
              static_cast<unsigned long long>(stats.patches_created.load()),
              static_cast<unsigned long long>(stats.patch_merges.load()));

  // Verify a backfilled window reads back correctly.
  QueryResult result;
  st = db->Query({TagMatcher::Equal("device", "sensor-17")}, 2 * kHour,
                 3 * kHour, &result);
  if (!st.ok()) return 1;
  std::printf("sensor-17, hour 2-3: %zu samples after backfill\n",
              result.empty() ? 0 : result[0].samples.size());

  // Retention: keep only the last 12 hours.
  st = db->ApplyRetention(24 * kHour);
  if (!st.ok()) return 1;
  st = db->Query({TagMatcher::Equal("metric", "temperature")}, 0, 23 * kHour,
                 &result);
  if (!st.ok()) return 1;
  std::printf("after retention (watermark 24h): %zu series with data before "
              "hour 23 (expected 0)\n",
              result.size());
  st = db->Query({TagMatcher::Equal("metric", "temperature")}, 30 * kHour,
                 36 * kHour, &result);
  if (!st.ok()) return 1;
  std::printf("recent window still served: %zu series\n", result.size());
  return 0;
}
