// Cost planner: uses the paper's analytic models (Fig. 1a pricing,
// Eqs. 1-2 grouping index space, Eqs. 7-10 compaction traffic) to answer
// deployment questions before any data is ingested — how much a workload
// costs per month across tiers, whether grouping pays off for a schema,
// and what a fast-storage budget saves in slow-tier traffic.
//
//   ./cost_planner <num_series> <avg_tags> <group_size> <group_tags>
#include <cstdio>
#include <cstdlib>

#include "cloud/cost_model.h"

using namespace tu::cloud;

int main(int argc, char** argv) {
  const uint64_t num_series = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                       : 1'000'000;
  const double avg_tags = argc > 2 ? std::atof(argv[2]) : 12;
  const double group_size = argc > 3 ? std::atof(argv[3]) : 101;
  const double group_tags = argc > 4 ? std::atof(argv[4]) : 1;

  std::printf("== TimeUnion cost planner ==\n");
  std::printf("workload: %llu series, %.0f tags each, groups of %.0f\n\n",
              static_cast<unsigned long long>(num_series), avg_tags,
              group_size);

  // --- Index space: individual vs grouping (Eqs. 1-2).
  GroupingParams g;
  g.n = num_series;
  g.t = avg_tags;
  g.s_g = group_size;
  g.t_g = group_tags;
  g.t_u = avg_tags * 10;  // unique tag pairs per group, DevOps-like
  const double s1 = IndexCostNoGrouping(g);
  const double s2 = IndexCostGrouping(g);
  std::printf("index space, individual model: %8.1f MB\n", s1 / 1048576);
  std::printf("index space, grouping model:   %8.1f MB\n", s2 / 1048576);
  std::printf("grouping %s (Sg threshold test: %s)\n\n",
              s2 < s1 ? "saves index space" : "costs extra index space",
              GroupingSavesIndexSpace(g) ? "pass" : "fail");

  // --- Storage bill (Fig. 1a) for 90 days of data at 30s interval.
  const double samples_per_day = 2880;
  const double raw_gb =
      num_series * samples_per_day * 90 * 16 / 1e9;  // 16B/sample raw
  const double compressed_gb = raw_gb / 10;           // ~10x Gorilla
  StoragePricing pricing;
  const double hot_gb = compressed_gb / 45;  // ~2h of 90d on the fast tier
  std::printf("data: %.1f GB raw -> %.1f GB compressed\n", raw_gb,
              compressed_gb);
  std::printf("monthly bill, all-EBS:    $%9.2f\n",
              pricing.MonthlyCost(0, compressed_gb, 0));
  std::printf("monthly bill, hybrid:     $%9.2f  (%.1f GB EBS + %.1f GB "
              "S3)\n",
              pricing.MonthlyCost(0, hot_gb, compressed_gb - hot_gb), hot_gb,
              compressed_gb - hot_gb);
  std::printf("monthly bill, all-in-RAM: $%9.2f  (why nobody does this)\n\n",
              pricing.MonthlyCost(compressed_gb, 0, 0));

  // --- Compaction traffic saved by the single slow level (Eqs. 7-10).
  CompactionCostParams c;
  c.s_b = 64e6;
  c.m = 10;
  c.s_fast = 1e9;
  c.s_d = compressed_gb * 1e9;
  std::printf("slow-tier write traffic for %.0f GB of data:\n",
              compressed_gb);
  std::printf("  traditional multi-level LSM: %8.1f GB (Eq. 8)\n",
              SlowWriteCostMultiLevel(c) / 1e9);
  std::printf("  TimeUnion single slow level: %8.1f GB (Eq. 9)\n",
              SlowWriteCostOneLevel(c) / 1e9);
  std::printf("  traffic saved:               %8.1f GB (Eq. 10)\n",
              SlowWriteCostSaving(c) / 1e9);
  return 0;
}
