// Quickstart: open a TimeUnion database, insert a few timeseries through
// the slow and fast paths, and query them back with tag selectors.
//
//   ./quickstart [workspace_dir]
#include <cstdio>
#include <memory>

#include "core/timeunion_db.h"
#include "util/mmap_file.h"

using tu::Status;
using tu::core::DBOptions;
using tu::core::QueryResult;
using tu::core::TimeUnionDB;
using tu::index::Labels;
using tu::index::TagMatcher;

int main(int argc, char** argv) {
  DBOptions options;
  options.workspace = argc > 1 ? argv[1] : "/tmp/timeunion_quickstart";
  tu::RemoveDirRecursive(options.workspace);

  std::unique_ptr<TimeUnionDB> db;
  Status st = TimeUnionDB::Open(options, &db);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // ---- Put (Timeseries), slow path: the first insertion carries the full
  // tag set and returns a series reference.
  const Labels cpu_labels = {
      {"hostname", "web-01"}, {"metric", "cpu_usage"}, {"region", "tokyo"}};
  uint64_t cpu_ref = 0;
  st = db->Insert(cpu_labels, /*ts=*/0, /*value=*/12.5, &cpu_ref);
  if (!st.ok()) {
    std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("registered series ref=%llu\n",
              static_cast<unsigned long long>(cpu_ref));

  // ---- Fast path: subsequent samples go by reference (no tag handling).
  for (int i = 1; i <= 120; ++i) {
    st = db->InsertFast(cpu_ref, i * 30'000LL, 12.5 + i % 7);
    if (!st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // A second series to demonstrate selectors.
  uint64_t mem_ref = 0;
  db->Insert({{"hostname", "web-01"}, {"metric", "mem_usage"},
              {"region", "tokyo"}},
             0, 2048, &mem_ref);

  // ---- Get: time range + tag selectors (exact and regex).
  QueryResult result;
  st = db->Query({TagMatcher::Equal("hostname", "web-01"),
                  TagMatcher::Regex("metric", "cpu.*")},
                 0, 3'600'000, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  for (const auto& series : result) {
    std::printf("series:");
    for (const auto& label : series.labels) {
      std::printf(" %s=%s", label.name.c_str(), label.value.c_str());
    }
    std::printf("\n  %zu samples; first=(%lld, %.1f) last=(%lld, %.1f)\n",
                series.samples.size(),
                static_cast<long long>(series.samples.front().timestamp),
                series.samples.front().value,
                static_cast<long long>(series.samples.back().timestamp),
                series.samples.back().value);
  }

  std::printf("index memory: %llu bytes for %llu series\n",
              static_cast<unsigned long long>(db->IndexMemoryUsage()),
              static_cast<unsigned long long>(db->NumSeries()));
  return 0;
}
