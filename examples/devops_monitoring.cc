// DevOps monitoring with the unified GROUP data model (§3.1): each host's
// 101 metrics form one timeseries group sharing the hostname tag and the
// sample timestamps; members keep their own measurement/field tags.
// Demonstrates group registration, the fast group-row path, member
// queries through the two-level index, and hybrid-storage placement.
//
//   ./devops_monitoring [workspace_dir]
#include <cstdio>
#include <memory>
#include <vector>

#include "core/timeunion_db.h"
#include "tsbs/devops.h"
#include "util/mmap_file.h"

using tu::Status;
using tu::core::DBOptions;
using tu::core::QueryResult;
using tu::core::TimeUnionDB;
using tu::index::Labels;
using tu::index::TagMatcher;

int main(int argc, char** argv) {
  DBOptions options;
  options.workspace = argc > 1 ? argv[1] : "/tmp/timeunion_devops";
  tu::RemoveDirRecursive(options.workspace);
  options.lsm.memtable_bytes = 256 << 10;

  std::unique_ptr<TimeUnionDB> db;
  Status st = TimeUnionDB::Open(options, &db);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // The TSBS DevOps schema: 4 hosts x 101 metrics, 6 hours at 30s.
  tu::tsbs::DevOpsOptions gen_opts;
  gen_opts.num_hosts = 4;
  gen_opts.interval_ms = 30'000;
  gen_opts.duration_ms = 6LL * 3600 * 1000;
  tu::tsbs::DevOpsGenerator gen(gen_opts);

  std::vector<Labels> member_tags(tu::tsbs::DevOpsGenerator::kSeriesPerHost);
  for (int s = 0; s < tu::tsbs::DevOpsGenerator::kSeriesPerHost; ++s) {
    member_tags[s] = gen.UniqueTags(s);
  }

  std::vector<uint64_t> group_refs(gen.num_hosts());
  std::vector<std::vector<uint32_t>> slots(gen.num_hosts());
  std::vector<double> values(tu::tsbs::DevOpsGenerator::kSeriesPerHost);

  for (uint64_t step = 0; step < gen.num_steps(); ++step) {
    const int64_t ts = gen.start_ts() + step * gen.interval_ms();
    for (uint64_t h = 0; h < gen.num_hosts(); ++h) {
      for (int s = 0; s < 101; ++s) values[s] = gen.Value(h, s, ts);
      if (step == 0) {
        // First round: register the group (shared tags = host tags) and
        // its members; receives the group ref + member slot indexes.
        st = db->InsertGroup(gen.HostTags(h), member_tags, ts, values,
                             &group_refs[h], &slots[h]);
      } else {
        // Fast path: one row per host per scrape — timestamps are stored
        // once for the whole group.
        st = db->InsertGroupFast(group_refs[h], slots[h], ts, values);
      }
      if (!st.ok()) {
        std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  db->Flush();

  std::printf("ingested %llu samples into %llu groups\n",
              static_cast<unsigned long long>(gen.num_series() *
                                              gen.num_steps()),
              static_cast<unsigned long long>(db->NumGroups()));

  // Query one member by its unique tags: resolved group-first, then
  // through the second-level index inside the group.
  QueryResult result;
  st = db->Query({TagMatcher::Equal("hostname", gen.HostName(2)),
                  TagMatcher::Equal("fieldname", gen.FieldName(0))},
                 0, gen.end_ts(), &result);
  if (!st.ok()) return 1;
  std::printf("%s on %s: %zu series, %zu samples\n",
              gen.FieldName(0).c_str(), gen.HostName(2).c_str(),
              result.size(), result.empty() ? 0 : result[0].samples.size());

  // A cross-host aggregate: MAX cpu_usage_0 over all hosts, 5-min windows.
  st = db->Query({TagMatcher::Regex("hostname", "host_.*"),
                  TagMatcher::Equal("fieldname", gen.FieldName(0))},
                 0, gen.end_ts(), &result);
  if (!st.ok()) return 1;
  double max_v = 0;
  for (const auto& series : result) {
    const auto agg = tu::tsbs::AggregateMax(series.samples, 5 * 60 * 1000);
    for (const auto& point : agg) max_v = std::max(max_v, point.max_value);
  }
  std::printf("fleet-wide max %s over 6h: %.2f (%zu member series)\n",
              gen.FieldName(0).c_str(), max_v, result.size());

  // Storage placement after 6 hours: recent partitions on the fast tier,
  // older ones migrated to the object tier.
  std::printf("hybrid storage: fast=%.1f KB (L0+L1), slow=%.1f KB (L2, %zu "
              "partitions)\n",
              db->time_lsm()->FastBytesUsed() / 1024.0,
              db->time_lsm()->SlowBytesUsed() / 1024.0,
              db->time_lsm()->NumL2Partitions());
  return 0;
}
