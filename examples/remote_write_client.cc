// Remote-write client: the network front door end to end in one binary.
// Opens a TimeUnionDB, starts the TCP server on an ephemeral port, then —
// as a tenant — registers series with a labeled batch, streams by-ref
// batches, and reads the data back with a raw and an aggregate query over
// the same connection.
//
//   ./remote_write_client [tenant]
#include <cstdio>
#include <memory>
#include <string>

#include "core/timeunion_db.h"
#include "query/read_request.h"
#include "server/client.h"
#include "server/server.h"
#include "util/mmap_file.h"

using namespace tu;

int main(int argc, char** argv) {
  const std::string tenant = argc > 1 ? argv[1] : "acme";
  const std::string ws = "/tmp/timeunion_example_remote";
  RemoveDirRecursive(ws);

  // --- Server side: an embedded DB fronted by the TCP server.
  core::DBOptions opts;
  opts.workspace = ws;
  opts.enable_wal = true;  // acked writes survive a crash
  std::unique_ptr<core::TimeUnionDB> db;
  Status s = core::TimeUnionDB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  server::ServerOptions sopts;  // port 0 = ephemeral
  sopts.tenant_limits.samples_per_sec = 1'000'000;
  server::Server srv(db.get(), sopts);
  s = srv.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("server listening on 127.0.0.1:%u\n", srv.port());

  // --- Client side: connect as a tenant.
  std::unique_ptr<server::Client> client;
  s = server::Client::Connect("127.0.0.1", srv.port(), tenant, &client);
  if (!s.ok()) {
    std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
    return 1;
  }

  // A labeled batch registers the series; the ack returns remote refs.
  core::WriteBatch reg;
  for (int i = 0; i < 4; ++i) {
    reg.AddSample(index::Labels{{"host", "web-" + std::to_string(i)},
                                {"metric", "cpu"}},
                  0, 0.0);
  }
  server::WriteAck ack;
  s = client->Write(reg, &ack);
  if (!s.ok() || !ack.remote_status.ok()) {
    std::fprintf(stderr, "register: %s\n",
                 (s.ok() ? ack.remote_status : s).ToString().c_str());
    return 1;
  }
  std::printf("registered %zu series, remote refs:", ack.resolved_refs.size());
  for (uint64_t ref : ack.resolved_refs) {
    std::printf(" %llu", static_cast<unsigned long long>(ref));
  }
  std::printf("\n");

  // Stream by remote ref — the fast path (no label resolution per row).
  core::WriteBatch batch;
  for (int64_t ts = 1; ts <= 600; ++ts) {
    for (size_t i = 0; i < ack.resolved_refs.size(); ++i) {
      batch.AddSample(ack.resolved_refs[i], ts * 1000,
                      50.0 + 10.0 * static_cast<double>(i) +
                          static_cast<double>(ts % 10));
    }
  }
  server::WriteAck stream_ack;
  s = client->Write(batch, &stream_ack);
  if (!s.ok() || !stream_ack.remote_status.ok()) {
    std::fprintf(stderr, "stream: %s\n",
                 (s.ok() ? stream_ack.remote_status : s).ToString().c_str());
    return 1;
  }
  std::printf("streamed %llu samples in one frame (%llu wire bytes)\n",
              static_cast<unsigned long long>(stream_ack.appended),
              static_cast<unsigned long long>(client->bytes_sent()));

  // Raw range query; the server scopes it to this tenant automatically.
  server::QueryReply reply;
  s = client->Query(query::ReadRequest::Range(
                        {index::TagMatcher::Equal("metric", "cpu")}, 0,
                        700'000),
                    &reply);
  if (!s.ok() || !reply.remote_status.ok()) {
    std::fprintf(stderr, "query: %s\n",
                 (s.ok() ? reply.remote_status : s).ToString().c_str());
    return 1;
  }
  for (const auto& series : reply.series) {
    std::string name;
    for (const auto& l : series.labels) {
      name += l.name + "=" + l.value + " ";
    }
    std::printf("  %s-> %zu samples, last=%.1f\n", name.c_str(),
                series.timestamps.size(), series.values.back());
  }

  // Aggregate query: 1-minute means, folded server-side.
  s = client->Query(query::ReadRequest::Aggregate(
                        {index::TagMatcher::Equal("host", "web-0")}, 0,
                        700'000, 60'000, query::AggFn::kMean),
                    &reply);
  if (!s.ok() || !reply.remote_status.ok()) {
    std::fprintf(stderr, "aggregate: %s\n",
                 (s.ok() ? reply.remote_status : s).ToString().c_str());
    return 1;
  }
  std::printf("web-0 1-minute means:");
  for (size_t i = 0; i < reply.series[0].values.size(); ++i) {
    std::printf(" %.2f", reply.series[0].values[i]);
  }
  std::printf("\n");

  // Graceful drain: acked writes are WAL-durable before Shutdown returns.
  client->Close();
  srv.Shutdown();
  db.reset();
  RemoveDirRecursive(ws);
  std::printf("done\n");
  return 0;
}
