#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace tu::obs {

namespace {

/// Quantile by rank over the bucket counts, linearly interpolated within
/// the winning bucket. `total` must be > 0.
double QuantileFromBuckets(const uint64_t* counts, size_t n, uint64_t total,
                           double q) {
  // 1-based rank of the requested quantile.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t cum = 0;
  for (size_t i = 0; i < n; ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] >= rank) {
      const double lower = static_cast<double>(Histogram::BucketLower(i));
      const double upper = static_cast<double>(Histogram::BucketUpper(i));
      const double frac = (static_cast<double>(rank - cum) - 0.5) /
                          static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::max(0.0, frac);
    }
    cum += counts[i];
  }
  return static_cast<double>(Histogram::BucketUpper(n - 1));
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  *out += buf;
}

std::string PrometheusName(std::string_view name) {
  std::string out = "tu_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void Histogram::Observe(uint64_t us) {
  buckets_[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(us, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (us > prev &&
         !max_.compare_exchange_weak(prev, us, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot(std::string name) const {
  HistogramSnapshot s;
  s.name = std::move(name);
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  s.count = total;
  s.sum_us = sum_.load(std::memory_order_relaxed);
  s.max_us = max_.load(std::memory_order_relaxed);
  if (total > 0) {
    s.p50_us = QuantileFromBuckets(counts, kBuckets, total, 0.50);
    s.p90_us = QuantileFromBuckets(counts, kBuckets, total, 0.90);
    s.p99_us = QuantileFromBuckets(counts, kBuckets, total, 0.99);
    // The interpolated tail estimate can overshoot the observed max within
    // the last occupied bucket; clamp so p99 <= max always holds.
    const double max_d = static_cast<double>(s.max_us);
    s.p50_us = std::min(s.p50_us, max_d);
    s.p90_us = std::min(s.p90_us, max_d);
    s.p99_us = std::min(s.p99_us, max_d);
  }
  return s;
}

int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void EventTrace::Record(std::string_view kind, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent e;
  e.seq = seq_++;
  e.wall_ms = WallMs();
  e.kind.assign(kind.data(), kind.size());
  e.detail = std::move(detail);
  ring_.push_back(std::move(e));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<TraceEvent> EventTrace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEvent>(ring_.begin(), ring_.end());
}

uint64_t EventTrace::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

const uint64_t* MetricsSnapshot::FindCounter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const int64_t* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const std::string* MetricsSnapshot::FindString(std::string_view name) const {
  for (const auto& [n, v] : strings) {
    if (n == name) return &v;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterOr0(std::string_view name) const {
  const uint64_t* v = FindCounter(name);
  return v != nullptr ? *v : 0;
}

int64_t MetricsSnapshot::GaugeOr0(std::string_view name) const {
  const int64_t* v = FindGauge(name);
  return v != nullptr ? *v : 0;
}

void MetricsSnapshot::Canonicalize() {
  auto by_first = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(counters.begin(), counters.end(), by_first);
  std::sort(gauges.begin(), gauges.end(), by_first);
  std::sort(strings.begin(), strings.end(), by_first);
  std::sort(histograms.begin(), histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  char buf[96];
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, name);
    std::snprintf(buf, sizeof(buf), "\":%" PRIu64, v);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, name);
    std::snprintf(buf, sizeof(buf), "\":%" PRId64, v);
    out += buf;
  }
  out += "},\"strings\":{";
  first = true;
  for (const auto& [name, v] : strings) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, name);
    out += "\":\"";
    AppendEscaped(&out, v);
    out += '"';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, h.name);
    std::snprintf(buf, sizeof(buf),
                  "\":{\"count\":%" PRIu64 ",\"sum_us\":%" PRIu64
                  ",\"max_us\":%" PRIu64,
                  h.count, h.sum_us, h.max_us);
    out += buf;
    out += ",\"p50_us\":";
    AppendDouble(&out, h.p50_us);
    out += ",\"p90_us\":";
    AppendDouble(&out, h.p90_us);
    out += ",\"p99_us\":";
    AppendDouble(&out, h.p99_us);
    out += '}';
  }
  out += "},\"events\":[";
  first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"seq\":%" PRIu64 ",\"wall_ms\":%" PRId64,
                  e.seq, e.wall_ms);
    out += buf;
    out += ",\"kind\":\"";
    AppendEscaped(&out, e.kind);
    out += "\",\"detail\":\"";
    AppendEscaped(&out, e.detail);
    out += "\"}";
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  char buf[128];
  for (const auto& [name, v] : counters) {
    const std::string pn = PrometheusName(name);
    out += "# TYPE " + pn + " counter\n";
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
    out += pn + buf;
  }
  for (const auto& [name, v] : gauges) {
    const std::string pn = PrometheusName(name);
    out += "# TYPE " + pn + " gauge\n";
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", v);
    out += pn + buf;
  }
  for (const auto& [name, v] : strings) {
    // Prometheus has no string type; the convention is an info-style gauge
    // carrying the value as a label.
    const std::string pn = PrometheusName(name) + "_info";
    out += "# TYPE " + pn + " gauge\n";
    out += pn + "{value=\"";
    for (char c : v) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += "\"} 1\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string pn = PrometheusName(h.name);
    out += "# TYPE " + pn + " summary\n";
    std::snprintf(buf, sizeof(buf), "{quantile=\"0.5\"} %.1f\n", h.p50_us);
    out += pn + buf;
    std::snprintf(buf, sizeof(buf), "{quantile=\"0.9\"} %.1f\n", h.p90_us);
    out += pn + buf;
    std::snprintf(buf, sizeof(buf), "{quantile=\"0.99\"} %.1f\n", h.p99_us);
    out += pn + buf;
    std::snprintf(buf, sizeof(buf), "_sum %" PRIu64 "\n", h.sum_us);
    out += pn + buf;
    std::snprintf(buf, sizeof(buf), "_count %" PRIu64 "\n", h.count);
    out += pn + buf;
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      snap.counters.emplace_back(name, c->value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
      snap.gauges.emplace_back(name, g->value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      snap.histograms.push_back(h->Snapshot(name));
    }
  }
  snap.events = trace_.Snapshot();
  return snap;
}

}  // namespace tu::obs
