// Observability primitives: lock-free counters, gauges, log-scale latency
// histograms, a bounded event trace for background jobs, and a typed
// MetricsSnapshot with JSON / Prometheus exposition.
//
// Layering: obs/ depends only on the standard library, so every other
// subsystem (cloud/, lsm/, query/, core/) may include it without cycles.
//
// Hot-path contract: Counter::Add and Histogram::Observe are a handful of
// relaxed atomic RMWs — no locks, no allocation — so they are safe to call
// from ingest/query threads and stay clean under TSan. Registration
// (MetricsRegistry::counter/gauge/histogram) takes a mutex and is meant for
// the cold path: look the instrument up once, cache the pointer. Returned
// pointers are stable for the registry's lifetime.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tu::obs {

/// Monotonically increasing event count. Relaxed atomics only.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous signed level (bytes in use, breaker state, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time view of one Histogram. Percentiles are estimated by linear
/// interpolation inside the power-of-two bucket containing the rank, so an
/// estimate is within 2x of the true quantile by construction.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t max_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
};

/// Fixed-bucket log-scale latency histogram over microseconds. Bucket i
/// counts observations in [2^(i-1), 2^i) (bucket 0 holds {0}), covering
/// sub-microsecond through ~2^62 us with kBuckets counters. Observe() is
/// three relaxed RMWs plus a relaxed CAS loop for the max — no locks.
class Histogram {
 public:
  static constexpr size_t kBuckets = 48;

  /// Out of line on purpose: call sites are sampled (1-in-64) or cold, so
  /// the call overhead is noise, while keeping the bucket/sum/max update
  /// sequence out of hot functions keeps their inlined bodies small.
  void Observe(uint64_t us);

  /// Consistent-enough view for reporting: buckets are read individually
  /// with relaxed loads; concurrent observers may straddle the read, which
  /// is fine for monitoring.
  HistogramSnapshot Snapshot(std::string name) const;

  static size_t BucketFor(uint64_t us) {
    if (us == 0) return 0;
    const size_t b = 64 - static_cast<size_t>(__builtin_clzll(us));
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Inclusive value range covered by bucket `i`: [lower, upper).
  static uint64_t BucketLower(size_t i) {
    return i == 0 ? 0 : (uint64_t{1} << (i - 1));
  }
  static uint64_t BucketUpper(size_t i) { return uint64_t{1} << i; }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// One background-job event. `seq` is a global per-trace sequence number so
/// droppped history is detectable (first retained seq > 0).
struct TraceEvent {
  uint64_t seq = 0;
  int64_t wall_ms = 0;       // milliseconds since Unix epoch
  std::string kind;          // e.g. "flush", "compact.l1l2", "breaker"
  std::string detail;        // free-form, small
};

/// Bounded ring buffer of background-job events (flush, merges, uploads,
/// retention, breaker transitions). Mutex-guarded: events are rare (at most
/// a few per background job), so a lock is fine here — only the sample
/// hot paths must stay lock-free.
class EventTrace {
 public:
  explicit EventTrace(size_t capacity = 256) : capacity_(capacity) {}

  void Record(std::string_view kind, std::string detail);
  std::vector<TraceEvent> Snapshot() const;
  /// Total events ever recorded (including dropped ones).
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  uint64_t seq_ = 0;
  std::deque<TraceEvent> ring_;
};

/// Typed point-in-time view of every registered instrument, plus any
/// externally-derived values folded in by the caller (tier counters, LSM
/// stats, cache stats). Name vectors are sorted so ToJson() is stable.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  /// String-valued state (health names, last-error text). Folded in by the
  /// caller like external counters — the registry owns no string
  /// instruments, so nothing here touches a hot path.
  std::vector<std::pair<std::string, std::string>> strings;
  std::vector<HistogramSnapshot> histograms;
  std::vector<TraceEvent> events;

  /// Lookup helpers; return nullptr when the name is absent.
  const uint64_t* FindCounter(std::string_view name) const;
  const int64_t* FindGauge(std::string_view name) const;
  const std::string* FindString(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
  /// Convenience: counter value or 0 / gauge value or 0.
  uint64_t CounterOr0(std::string_view name) const;
  int64_t GaugeOr0(std::string_view name) const;

  /// Sort counters/gauges/strings/histograms by name (events stay in seq
  /// order).
  void Canonicalize();

  /// Stable schema:
  ///   {"counters":{name:uint,...},
  ///    "gauges":{name:int,...},
  ///    "strings":{name:"value",...},
  ///    "histograms":{name:{"count":..,"sum_us":..,"max_us":..,
  ///                        "p50_us":..,"p90_us":..,"p99_us":..},...},
  ///    "events":[{"seq":..,"wall_ms":..,"kind":"..","detail":".."},...]}
  std::string ToJson() const;
  /// Prometheus text exposition: counters/gauges as-is, strings as info
  /// gauges (`tu_<name>_info{value="..."} 1`), histograms as summaries
  /// with quantile labels. Names are sanitized ('.' -> '_') and prefixed
  /// with "tu_".
  std::string ToPrometheusText() const;
};

/// Owns every instrument. Lookup-or-create is mutex-guarded (cold path);
/// the returned pointers are stable and lock-free to use.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(size_t event_capacity = 256)
      : trace_(event_capacity) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);
  EventTrace& trace() { return trace_; }
  const EventTrace& trace() const { return trace_; }

  /// Snapshot of registry-owned instruments (callers may append external
  /// values before Canonicalize()). Includes the event trace.
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  EventTrace trace_;
};

/// Steady-clock microseconds; monotonic, for durations.
inline uint64_t MonotonicUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock milliseconds since epoch, for event timestamps.
int64_t WallMs();

/// Measures the elapsed time of a scope into a histogram. A null histogram
/// makes the timer a no-op (metrics disabled).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h), start_(h ? MonotonicUs() : 0) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->Observe(MonotonicUs() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  uint64_t start_;
};

/// 1-in-2^kShift per-thread sampling decision for very hot paths where even
/// two clock reads per op would be measurable (single-sample ingest runs at
/// millions of ops/s). The counters feeding throughput numbers are still
/// bumped on every op; only the latency *distribution* is sampled.
template <unsigned kShift>
inline bool SampleOneIn() {
  thread_local uint32_t tick = 0;
  return ((++tick) & ((1u << kShift) - 1)) == 0;
}

}  // namespace tu::obs
