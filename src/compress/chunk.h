// Chunk formats (§3.1 physical view): the serialized byte arrays that
// become values of key-value pairs in the time-partitioned LSM-tree.
//
//   SeriesChunk — one individual timeseries: Gorilla timestamps + XOR values.
//   GroupChunk  — one timeseries group: a single shared timestamp column plus
//                 one NULL-extended XOR value column per member.
//
// Serialized layout (SeriesChunk):
//   varint64 seq_id | varint32 count | varint32 ts_len | ts bits
//                   | varint32 val_len | value bits
// Serialized layout (GroupChunk):
//   varint64 seq_id | varint32 count | varint32 num_members
//                   | varint32 ts_len | ts bits
//                   | per member: varint32 len | nullable value bits
//
// seq_id is the logging sequence number embedded at the front of the chunk
// (§3.3 Logging) so recovery can tell which WAL entries are superseded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compress/gorilla.h"
#include "query/sample_batch.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::compress {

/// One decoded data point of an individual series.
struct Sample {
  int64_t timestamp = 0;
  double value = 0;

  bool operator==(const Sample&) const = default;
};

/// Streaming builder of a SeriesChunk into a caller-provided buffer
/// (typically an mmap slot). State is small and heap-free.
class SeriesChunkBuilder {
 public:
  /// `ts_buf`/`val_buf` receive the compressed bit streams.
  SeriesChunkBuilder(char* ts_buf, size_t ts_cap, char* val_buf, size_t val_cap)
      : ts_writer_(ts_buf, ts_cap), val_writer_(val_buf, val_cap) {}

  /// True if another sample is guaranteed to fit.
  bool HasSpace() const {
    return ts_writer_.RemainingBits() >= kMaxBitsPerTimestamp &&
           val_writer_.RemainingBits() >= kMaxBitsPerValue;
  }

  void Append(int64_t ts, double value) {
    ts_enc_.Append(&ts_writer_, ts);
    val_enc_.Append(&val_writer_, value);
    ++count_;
  }

  uint32_t count() const { return count_; }
  int64_t first_ts() const { return first_ts_set_ ? first_ts_ : 0; }
  int64_t last_ts() const { return ts_enc_.last_ts(); }
  size_t ts_bytes() const { return ts_writer_.BytesUsed(); }
  size_t val_bytes() const { return val_writer_.BytesUsed(); }

  /// Marks the first timestamp (callers invoke before the first Append).
  void NoteFirstTimestamp(int64_t ts) {
    if (!first_ts_set_) {
      first_ts_ = ts;
      first_ts_set_ = true;
    }
  }

 private:
  BitWriter ts_writer_;
  BitWriter val_writer_;
  TimestampEncoder ts_enc_;
  ValueEncoder val_enc_;
  uint32_t count_ = 0;
  int64_t first_ts_ = 0;
  bool first_ts_set_ = false;
};

/// Serializes a finished series chunk (§3.1: concatenate and serialize the
/// timestamp chunk and value chunk into one byte array).
void SerializeSeriesChunk(uint64_t seq_id, uint32_t count, const char* ts_bits,
                          size_t ts_len, const char* val_bits, size_t val_len,
                          std::string* out);

/// Convenience: builds + serializes from decoded samples (compaction path).
void EncodeSeriesChunk(uint64_t seq_id, const std::vector<Sample>& samples,
                       std::string* out);

/// Decodes a serialized series chunk.
Status DecodeSeriesChunk(const Slice& data, uint64_t* seq_id,
                         std::vector<Sample>* samples);

/// Vectorized decode of a serialized series chunk straight into column
/// batches via the bulk Gorilla paths — no per-sample call crosses this
/// boundary and the bit streams are decoded in place (no copies).
/// `batch->seq` is left untouched (the LSM layer sets the dedup seq from
/// the internal key); `batch->validity` comes back empty (dense).
Status DecodeSeriesChunkBatch(const Slice& data, query::SampleBatch* batch);

/// Vectorized DecodeGroupMember: bulk-decodes the shared timestamp column
/// and the selected member column, then compacts the member's present
/// rows into dense batch columns (NULL rows are dropped, like
/// DecodeGroupMember). A member index past the chunk's column count
/// yields an empty batch, OK.
Status DecodeGroupMemberBatch(const Slice& data, uint32_t member_index,
                              query::SampleBatch* batch);

/// Iterator over a serialized series chunk (avoids materializing vectors on
/// the query path).
class SeriesChunkIterator {
 public:
  explicit SeriesChunkIterator(const Slice& data);

  bool Valid() const { return ok_ && pos_ < count_; }
  Status status() const {
    return ok_ ? Status::OK() : Status::Corruption("bad series chunk");
  }
  uint64_t seq_id() const { return seq_id_; }
  uint32_t count() const { return count_; }

  /// Advances and returns the next sample. Requires Valid().
  Sample Next();

 private:
  bool ok_ = false;
  uint64_t seq_id_ = 0;
  uint32_t count_ = 0;
  uint32_t pos_ = 0;
  std::string ts_bits_;
  std::string val_bits_;
  BitReader ts_reader_{nullptr, 0};
  BitReader val_reader_{nullptr, 0};
  TimestampDecoder ts_dec_;
  ValueDecoder val_dec_;
};

// ---------------------------------------------------------------------------
// Group chunks
// ---------------------------------------------------------------------------

/// One decoded row of a group chunk: shared timestamp + per-member values
/// (nullopt = member missing that round).
struct GroupRow {
  int64_t timestamp = 0;
  std::vector<std::optional<double>> values;
};

/// Serializes a group chunk from columnar bit streams.
void SerializeGroupChunk(uint64_t seq_id, uint32_t count, const char* ts_bits,
                         size_t ts_len,
                         const std::vector<std::pair<const char*, size_t>>& cols,
                         std::string* out);

/// Convenience: encodes decoded rows (compaction path). All rows must have
/// values.size() == num_members.
void EncodeGroupChunk(uint64_t seq_id, uint32_t num_members,
                      const std::vector<GroupRow>& rows, std::string* out);

/// Decodes a serialized group chunk into rows.
Status DecodeGroupChunk(const Slice& data, uint64_t* seq_id,
                        uint32_t* num_members, std::vector<GroupRow>* rows);

/// Extracts just the (timestamp, value) samples of member `member_index`
/// from a serialized group chunk (query path: skips other columns' decode
/// of non-target members only to the extent the format allows — columns are
/// length-prefixed so non-target columns are skipped without bit decoding).
Status DecodeGroupMember(const Slice& data, uint32_t member_index,
                         std::vector<Sample>* samples);

}  // namespace tu::compress
