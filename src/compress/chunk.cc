#include "compress/chunk.h"

#include <memory>
#include <vector>

#include "util/coding.h"

namespace tu::compress {

void SerializeSeriesChunk(uint64_t seq_id, uint32_t count, const char* ts_bits,
                          size_t ts_len, const char* val_bits, size_t val_len,
                          std::string* out) {
  out->clear();
  PutVarint64(out, seq_id);
  PutVarint32(out, count);
  PutVarint32(out, static_cast<uint32_t>(ts_len));
  out->append(ts_bits, ts_len);
  PutVarint32(out, static_cast<uint32_t>(val_len));
  out->append(val_bits, val_len);
}

void EncodeSeriesChunk(uint64_t seq_id, const std::vector<Sample>& samples,
                       std::string* out) {
  // Worst case: ~9 bytes/timestamp, ~10 bytes/value.
  const size_t cap = samples.size() * 10 + 16;
  std::vector<char> ts_buf(cap), val_buf(cap);
  SeriesChunkBuilder builder(ts_buf.data(), cap, val_buf.data(), cap);
  for (const Sample& s : samples) {
    builder.NoteFirstTimestamp(s.timestamp);
    builder.Append(s.timestamp, s.value);
  }
  SerializeSeriesChunk(seq_id, builder.count(), ts_buf.data(),
                       builder.ts_bytes(), val_buf.data(), builder.val_bytes(),
                       out);
}

Status DecodeSeriesChunk(const Slice& data, uint64_t* seq_id,
                         std::vector<Sample>* samples) {
  samples->clear();
  SeriesChunkIterator it(data);
  if (!it.status().ok()) return it.status();
  *seq_id = it.seq_id();
  samples->reserve(it.count());
  while (it.Valid()) samples->push_back(it.Next());
  return Status::OK();
}

Status DecodeSeriesChunkBatch(const Slice& data, query::SampleBatch* batch) {
  batch->timestamps.clear();
  batch->values.clear();
  batch->validity.clear();
  Slice in = data;
  uint64_t seq_id = 0;
  uint32_t count = 0, ts_len = 0, val_len = 0;
  if (!GetVarint64(&in, &seq_id) || !GetVarint32(&in, &count) ||
      !GetVarint32(&in, &ts_len) || in.size() < ts_len) {
    return Status::Corruption("bad series chunk");
  }
  const char* ts_bits = in.data();
  in.remove_prefix(ts_len);
  if (!GetVarint32(&in, &val_len) || in.size() < val_len) {
    return Status::Corruption("bad series chunk");
  }
  if (count == 0) return Status::OK();

  batch->timestamps.resize(count);
  batch->values.resize(count);
  BitReader ts_reader(ts_bits, ts_len);
  TimestampDecoder ts_dec;
  ts_dec.DecodeAll(&ts_reader, count, batch->timestamps.data());
  BitReader val_reader(in.data(), val_len);
  ValueDecoder val_dec;
  val_dec.DecodeAll(&val_reader, count, batch->values.data());
  return Status::OK();
}

SeriesChunkIterator::SeriesChunkIterator(const Slice& data) {
  Slice in = data;
  uint32_t ts_len = 0, val_len = 0;
  if (!GetVarint64(&in, &seq_id_) || !GetVarint32(&in, &count_) ||
      !GetVarint32(&in, &ts_len) || in.size() < ts_len) {
    return;
  }
  ts_bits_.assign(in.data(), ts_len);
  in.remove_prefix(ts_len);
  if (!GetVarint32(&in, &val_len) || in.size() < val_len) return;
  val_bits_.assign(in.data(), val_len);
  ts_reader_ = BitReader(ts_bits_.data(), ts_bits_.size());
  val_reader_ = BitReader(val_bits_.data(), val_bits_.size());
  ok_ = true;
}

Sample SeriesChunkIterator::Next() {
  Sample s;
  s.timestamp = ts_dec_.Next(&ts_reader_);
  s.value = val_dec_.Next(&val_reader_);
  ++pos_;
  return s;
}

void SerializeGroupChunk(uint64_t seq_id, uint32_t count, const char* ts_bits,
                         size_t ts_len,
                         const std::vector<std::pair<const char*, size_t>>& cols,
                         std::string* out) {
  out->clear();
  PutVarint64(out, seq_id);
  PutVarint32(out, count);
  PutVarint32(out, static_cast<uint32_t>(cols.size()));
  PutVarint32(out, static_cast<uint32_t>(ts_len));
  out->append(ts_bits, ts_len);
  for (const auto& [bits, len] : cols) {
    PutVarint32(out, static_cast<uint32_t>(len));
    out->append(bits, len);
  }
}

void EncodeGroupChunk(uint64_t seq_id, uint32_t num_members,
                      const std::vector<GroupRow>& rows, std::string* out) {
  const size_t cap = rows.size() * 10 + 16;
  std::vector<char> ts_buf(cap);
  BitWriter ts_writer(ts_buf.data(), cap);
  TimestampEncoder ts_enc;

  std::vector<std::vector<char>> col_bufs(num_members);
  std::vector<std::unique_ptr<BitWriter>> col_writers;
  std::vector<NullableValueEncoder> col_encs(num_members);
  col_writers.reserve(num_members);
  for (uint32_t m = 0; m < num_members; ++m) {
    col_bufs[m].resize(cap);
    col_writers.emplace_back(
        std::make_unique<BitWriter>(col_bufs[m].data(), cap));
  }

  for (const GroupRow& row : rows) {
    ts_enc.Append(&ts_writer, row.timestamp);
    for (uint32_t m = 0; m < num_members; ++m) {
      if (m < row.values.size() && row.values[m].has_value()) {
        col_encs[m].AppendValue(col_writers[m].get(), *row.values[m]);
      } else {
        col_encs[m].AppendNull(col_writers[m].get());
      }
    }
  }

  std::vector<std::pair<const char*, size_t>> cols;
  cols.reserve(num_members);
  for (uint32_t m = 0; m < num_members; ++m) {
    cols.emplace_back(col_bufs[m].data(), col_writers[m]->BytesUsed());
  }
  SerializeGroupChunk(seq_id, static_cast<uint32_t>(rows.size()),
                      ts_buf.data(), ts_writer.BytesUsed(), cols, out);
}

namespace {

/// Parses the group-chunk header and returns slices of the column payloads.
Status ParseGroupChunk(const Slice& data, uint64_t* seq_id, uint32_t* count,
                       uint32_t* num_members, Slice* ts_bits,
                       std::vector<Slice>* cols) {
  Slice in = data;
  uint32_t ts_len = 0;
  if (!GetVarint64(&in, seq_id) || !GetVarint32(&in, count) ||
      !GetVarint32(&in, num_members) || !GetVarint32(&in, &ts_len) ||
      in.size() < ts_len) {
    return Status::Corruption("bad group chunk header");
  }
  *ts_bits = Slice(in.data(), ts_len);
  in.remove_prefix(ts_len);
  cols->clear();
  cols->reserve(*num_members);
  for (uint32_t m = 0; m < *num_members; ++m) {
    uint32_t len = 0;
    if (!GetVarint32(&in, &len) || in.size() < len) {
      return Status::Corruption("bad group chunk column");
    }
    cols->emplace_back(in.data(), len);
    in.remove_prefix(len);
  }
  return Status::OK();
}

}  // namespace

Status DecodeGroupChunk(const Slice& data, uint64_t* seq_id,
                        uint32_t* num_members, std::vector<GroupRow>* rows) {
  rows->clear();
  uint32_t count = 0;
  Slice ts_bits;
  std::vector<Slice> cols;
  TU_RETURN_IF_ERROR(
      ParseGroupChunk(data, seq_id, &count, num_members, &ts_bits, &cols));

  BitReader ts_reader(ts_bits.data(), ts_bits.size());
  TimestampDecoder ts_dec;
  std::vector<BitReader> col_readers;
  col_readers.reserve(cols.size());
  for (const Slice& c : cols) col_readers.emplace_back(c.data(), c.size());
  std::vector<NullableValueDecoder> col_decs(cols.size());

  rows->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    GroupRow& row = (*rows)[i];
    row.timestamp = ts_dec.Next(&ts_reader);
    row.values.resize(*num_members);
    for (uint32_t m = 0; m < *num_members; ++m) {
      double v;
      if (col_decs[m].Next(&col_readers[m], &v)) {
        row.values[m] = v;
      } else {
        row.values[m] = std::nullopt;
      }
    }
  }
  return Status::OK();
}

Status DecodeGroupMember(const Slice& data, uint32_t member_index,
                         std::vector<Sample>* samples) {
  samples->clear();
  uint64_t seq_id = 0;
  uint32_t count = 0, num_members = 0;
  Slice ts_bits;
  std::vector<Slice> cols;
  TU_RETURN_IF_ERROR(
      ParseGroupChunk(data, &seq_id, &count, &num_members, &ts_bits, &cols));
  if (member_index >= num_members) {
    // The member joined the group after this chunk was flushed: no samples.
    return Status::OK();
  }

  BitReader ts_reader(ts_bits.data(), ts_bits.size());
  TimestampDecoder ts_dec;
  BitReader col_reader(cols[member_index].data(), cols[member_index].size());
  NullableValueDecoder col_dec;

  samples->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const int64_t ts = ts_dec.Next(&ts_reader);
    double v;
    if (col_dec.Next(&col_reader, &v)) {
      samples->push_back(Sample{ts, v});
    }
  }
  return Status::OK();
}

Status DecodeGroupMemberBatch(const Slice& data, uint32_t member_index,
                              query::SampleBatch* batch) {
  batch->timestamps.clear();
  batch->values.clear();
  batch->validity.clear();
  uint64_t seq_id = 0;
  uint32_t count = 0, num_members = 0;
  Slice ts_bits;
  std::vector<Slice> cols;
  TU_RETURN_IF_ERROR(
      ParseGroupChunk(data, &seq_id, &count, &num_members, &ts_bits, &cols));
  if (member_index >= num_members || count == 0) {
    // The member joined the group after this chunk was flushed: no samples.
    return Status::OK();
  }

  batch->timestamps.resize(count);
  batch->values.resize(count);
  batch->validity.assign((count + 63) / 64, 0);

  BitReader ts_reader(ts_bits.data(), ts_bits.size());
  TimestampDecoder ts_dec;
  ts_dec.DecodeAll(&ts_reader, count, batch->timestamps.data());

  BitReader col_reader(cols[member_index].data(), cols[member_index].size());
  NullableValueDecoder col_dec;
  col_dec.DecodeAll(&col_reader, count, batch->values.data(),
                    batch->validity.data());

  // Compact the present rows into dense columns; consumers past the
  // decode layer never see NULL slots.
  size_t out = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if ((batch->validity[i >> 6] >> (i & 63)) & 1) {
      batch->timestamps[out] = batch->timestamps[i];
      batch->values[out] = batch->values[i];
      ++out;
    }
  }
  batch->timestamps.resize(out);
  batch->values.resize(out);
  batch->validity.clear();
  return Status::OK();
}

}  // namespace tu::compress
