// SnappyLite: a from-scratch byte-oriented LZ77 compressor with the Snappy
// format philosophy (literal runs + back-references found via a small hash
// table, no entropy coding). Used to compress SSTable data blocks — the
// paper credits Snappy block compression for tsdb's 1.35x larger data size
// versus TimeUnion (Table 3).
//
// Format: varint32 uncompressed length, then a sequence of elements:
//   tag byte low 2 bits:
//     00 literal  — length = (tag >> 2) + 1 (1..60); 61..63 reserved unused
//     01 copy     — 4-bit length-4 in tag bits 2-5, 12-bit offset:
//                   high 4 bits in tag bits 6-7? (simplified: see .cc)
// We use a simplified two-element scheme:
//   0x00..0xEF: literal run of (tag + 1) bytes (1..240)
//   0xF0..0xFF: copy; low 4 bits are extra length bits, followed by
//               varint32 offset and varint32 length.
#pragma once

#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace tu::compress {

/// Compresses `input` into `*out` (appended to cleared string).
void SnappyLiteCompress(const Slice& input, std::string* out);

/// Decompresses a SnappyLiteCompress output. Fails on malformed input.
Status SnappyLiteUncompress(const Slice& input, std::string* out);

/// Upper bound on the compressed size of `n` input bytes.
size_t SnappyLiteMaxCompressedSize(size_t n);

}  // namespace tu::compress
