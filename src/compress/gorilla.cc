#include "compress/gorilla.h"

#include <bit>
#include <cstring>

namespace tu::compress {

namespace {

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Register-resident MSB-first bit cursor for the bulk decode loops: a
/// 64-bit accumulator refilled a byte at a time, so the per-field cost is
/// a shift and a subtract instead of BitReader's per-byte loop. Constructed
/// from a BitReader's raw state and synced back with SyncTo(), so bulk and
/// per-sample decoding interleave losslessly.
class BulkBitCursor {
 public:
  BulkBitCursor(const uint8_t* buf, size_t size_bits, size_t bit_pos)
      : base_(buf), next_(buf + (bit_pos >> 3)), end_(buf + ((size_bits + 7) >> 3)) {
    const unsigned frac = bit_pos & 7;
    if (frac != 0 && next_ < end_) {
      // Start mid-byte: preload the partial byte with the consumed high
      // bits shifted out.
      acc_ = static_cast<uint64_t>(*next_++) << (56 + frac);
      n_ = 8 - frac;
    }
  }

  bool ReadBit() {
    if (n_ == 0) {
      Fill();
      if (n_ == 0) return false;  // corrupt stream: read past the end
    }
    const bool bit = (acc_ >> 63) & 1;
    acc_ <<= 1;
    --n_;
    return bit;
  }

  /// Reads 0..57 bits. (Fill() tops the accumulator up to >= 57 bits
  /// whenever bytes remain, so a 57-bit read never splits; reads past the
  /// end of a corrupt stream yield zero bits instead of overrunning.)
  uint64_t ReadSmall(unsigned nbits) {
    if (nbits == 0) return 0;
    if (n_ < nbits) Fill();
    const uint64_t v = acc_ >> (64 - nbits);
    acc_ <<= nbits;
    n_ = n_ >= nbits ? n_ - nbits : 0;
    return v;
  }

  /// Reads up to 64 bits (raw timestamp/value fields).
  uint64_t ReadWide(unsigned nbits) {
    if (nbits <= 57) return ReadSmall(nbits);
    const uint64_t hi = ReadSmall(32);
    return (hi << (nbits - 32)) | ReadSmall(nbits - 32);
  }

  /// Writes the cursor position back into the BitReader.
  void SyncTo(BitReader* r) const {
    r->set_bit_pos(static_cast<size_t>(next_ - base_) * 8 - n_);
  }

 private:
  void Fill() {
    while (n_ <= 56 && next_ < end_) {
      acc_ |= static_cast<uint64_t>(*next_++) << (56 - n_);
      n_ += 8;
    }
  }

  const uint8_t* base_;
  const uint8_t* next_;
  const uint8_t* end_;
  uint64_t acc_ = 0;  // left-aligned pending bits
  unsigned n_ = 0;    // valid bits in acc_
};

/// Streaming XOR-decode state shared by the plain and nullable bulk value
/// paths; mirrors ValueDecoder's members exactly.
struct XorState {
  uint32_t count;
  uint64_t prev_bits;
  unsigned leading;
  unsigned trailing;
};

/// One XOR-decoded value off the cursor (the steady-state body of
/// ValueDecoder::Next over BulkBitCursor).
inline double XorDecodeOne(BulkBitCursor& c, XorState& s) {
  if (s.count == 0) {
    s.prev_bits = c.ReadWide(64);
    s.leading = 64;  // no window yet (mirrors encoder)
    s.trailing = 0;
    ++s.count;
    return BitsToDouble(s.prev_bits);
  }
  ++s.count;
  if (!c.ReadBit()) return BitsToDouble(s.prev_bits);  // identical value
  if (!c.ReadBit()) {
    const unsigned sigbits = 64 - s.leading - s.trailing;
    s.prev_bits ^= c.ReadWide(sigbits) << s.trailing;
  } else {
    const unsigned leading = static_cast<unsigned>(c.ReadSmall(5));
    unsigned sigbits = static_cast<unsigned>(c.ReadSmall(6));
    if (sigbits == 0) sigbits = 64;  // 6-bit field wraps for full width
    const unsigned trailing = 64 - leading - sigbits;
    s.prev_bits ^= c.ReadWide(sigbits) << trailing;
    s.leading = leading;
    s.trailing = trailing;
  }
  return BitsToDouble(s.prev_bits);
}

}  // namespace

void TimestampEncoder::Append(BitWriter* w, int64_t ts) {
  if (count_ == 0) {
    w->WriteBits(static_cast<uint64_t>(ts), 64);
    prev_ts_ = ts;
  } else if (count_ == 1) {
    const int64_t delta = ts - prev_ts_;
    w->WriteBits(static_cast<uint64_t>(delta), 64);
    prev_delta_ = delta;
    prev_ts_ = ts;
  } else {
    const int64_t delta = ts - prev_ts_;
    const int64_t dod = delta - prev_delta_;
    if (dod == 0) {
      w->WriteBit(false);
    } else if (dod >= -63 && dod <= 64) {
      w->WriteBits(0b10, 2);
      w->WriteBits(static_cast<uint64_t>(dod + 63), 7);
    } else if (dod >= -255 && dod <= 256) {
      w->WriteBits(0b110, 3);
      w->WriteBits(static_cast<uint64_t>(dod + 255), 9);
    } else if (dod >= -2047 && dod <= 2048) {
      w->WriteBits(0b1110, 4);
      w->WriteBits(static_cast<uint64_t>(dod + 2047), 12);
    } else {
      w->WriteBits(0b1111, 4);
      w->WriteBits(static_cast<uint64_t>(dod), 64);
    }
    prev_delta_ = delta;
    prev_ts_ = ts;
  }
  ++count_;
}

void TimestampDecoder::DecodeAll(BitReader* r, size_t n, int64_t* out) {
  if (n == 0) return;
  BulkBitCursor c(r->bytes(), r->size_bits(), r->bit_pos());
  uint32_t count = count_;
  int64_t ts = prev_ts_;
  int64_t delta = prev_delta_;
  size_t i = 0;
  // Header samples: raw first timestamp, then a raw 64-bit delta.
  if (i < n && count == 0) {
    ts = static_cast<int64_t>(c.ReadWide(64));
    out[i++] = ts;
    ++count;
  }
  if (i < n && count == 1) {
    delta = static_cast<int64_t>(c.ReadWide(64));
    ts += delta;
    out[i++] = ts;
    ++count;
  }
  // Steady state: delta-of-delta buckets, cursor and deltas in registers.
  for (; i < n; ++i) {
    int64_t dod;
    if (!c.ReadBit()) {
      dod = 0;
    } else if (!c.ReadBit()) {
      dod = static_cast<int64_t>(c.ReadSmall(7)) - 63;
    } else if (!c.ReadBit()) {
      dod = static_cast<int64_t>(c.ReadSmall(9)) - 255;
    } else if (!c.ReadBit()) {
      dod = static_cast<int64_t>(c.ReadSmall(12)) - 2047;
    } else {
      dod = static_cast<int64_t>(c.ReadWide(64));
    }
    delta += dod;
    ts += delta;
    out[i] = ts;
  }
  count_ += static_cast<uint32_t>(n);
  prev_ts_ = ts;
  prev_delta_ = delta;
  c.SyncTo(r);
}

int64_t TimestampDecoder::Next(BitReader* r) {
  if (count_ == 0) {
    prev_ts_ = static_cast<int64_t>(r->ReadBits(64));
  } else if (count_ == 1) {
    prev_delta_ = static_cast<int64_t>(r->ReadBits(64));
    prev_ts_ += prev_delta_;
  } else {
    int64_t dod;
    if (!r->ReadBit()) {
      dod = 0;
    } else if (!r->ReadBit()) {
      dod = static_cast<int64_t>(r->ReadBits(7)) - 63;
    } else if (!r->ReadBit()) {
      dod = static_cast<int64_t>(r->ReadBits(9)) - 255;
    } else if (!r->ReadBit()) {
      dod = static_cast<int64_t>(r->ReadBits(12)) - 2047;
    } else {
      dod = static_cast<int64_t>(r->ReadBits(64));
    }
    prev_delta_ += dod;
    prev_ts_ += prev_delta_;
  }
  ++count_;
  return prev_ts_;
}

void ValueEncoder::Append(BitWriter* w, double value) {
  const uint64_t bits = DoubleToBits(value);
  if (count_ == 0) {
    w->WriteBits(bits, 64);
    prev_bits_ = bits;
    ++count_;
    return;
  }
  const uint64_t x = bits ^ prev_bits_;
  prev_bits_ = bits;
  ++count_;
  if (x == 0) {
    w->WriteBit(false);
    return;
  }
  unsigned leading = static_cast<unsigned>(std::countl_zero(x));
  unsigned trailing = static_cast<unsigned>(std::countr_zero(x));
  // Gorilla caps leading zeros at 31 so they fit in 5 bits.
  if (leading > 31) leading = 31;

  if (prev_leading_ != 64 && leading >= prev_leading_ &&
      trailing >= prev_trailing_) {
    // Fits inside the previous meaningful-bit window: '10' + bits.
    w->WriteBits(0b10, 2);
    const unsigned sigbits = 64 - prev_leading_ - prev_trailing_;
    w->WriteBits(x >> prev_trailing_, sigbits);
  } else {
    // New window: '11' + 5-bit leading + 6-bit length + bits.
    w->WriteBits(0b11, 2);
    w->WriteBits(leading, 5);
    const unsigned sigbits = 64 - leading - trailing;
    w->WriteBits(sigbits, 6);
    w->WriteBits(x >> trailing, sigbits);
    prev_leading_ = leading;
    prev_trailing_ = trailing;
  }
}

void ValueDecoder::DecodeAll(BitReader* r, size_t n, double* out) {
  if (n == 0) return;
  BulkBitCursor c(r->bytes(), r->size_bits(), r->bit_pos());
  XorState s{count_, prev_bits_, prev_leading_, prev_trailing_};
  for (size_t i = 0; i < n; ++i) out[i] = XorDecodeOne(c, s);
  count_ = s.count;
  prev_bits_ = s.prev_bits;
  prev_leading_ = s.leading;
  prev_trailing_ = s.trailing;
  c.SyncTo(r);
}

double ValueDecoder::Next(BitReader* r) {
  if (count_ == 0) {
    prev_bits_ = r->ReadBits(64);
    prev_leading_ = 64;  // no window yet (mirrors encoder)
    prev_trailing_ = 0;
    ++count_;
    return BitsToDouble(prev_bits_);
  }
  ++count_;
  if (!r->ReadBit()) {
    return BitsToDouble(prev_bits_);  // identical value
  }
  if (!r->ReadBit()) {
    // Previous window.
    const unsigned sigbits = 64 - prev_leading_ - prev_trailing_;
    const uint64_t meaningful = r->ReadBits(sigbits);
    prev_bits_ ^= meaningful << prev_trailing_;
  } else {
    const unsigned leading = static_cast<unsigned>(r->ReadBits(5));
    unsigned sigbits = static_cast<unsigned>(r->ReadBits(6));
    if (sigbits == 0) sigbits = 64;  // 6-bit field wraps for full width
    const unsigned trailing = 64 - leading - sigbits;
    const uint64_t meaningful = r->ReadBits(sigbits);
    prev_bits_ ^= meaningful << trailing;
    prev_leading_ = leading;
    prev_trailing_ = trailing;
  }
  return BitsToDouble(prev_bits_);
}

void NullableValueDecoder::DecodeAll(BitReader* r, size_t n, double* values,
                                     uint64_t* validity) {
  if (n == 0) return;
  BulkBitCursor c(r->bytes(), r->size_bits(), r->bit_pos());
  XorState s{inner_.count_, inner_.prev_bits_, inner_.prev_leading_,
             inner_.prev_trailing_};
  for (size_t i = 0; i < n; ++i) {
    if (c.ReadBit()) continue;  // NULL slot: no value bits follow
    values[i] = XorDecodeOne(c, s);
    validity[i >> 6] |= 1ull << (i & 63);
  }
  inner_.count_ = s.count;
  inner_.prev_bits_ = s.prev_bits;
  inner_.prev_leading_ = s.leading;
  inner_.prev_trailing_ = s.trailing;
  c.SyncTo(r);
}

}  // namespace tu::compress
