#include "compress/gorilla.h"

#include <bit>
#include <cstring>

namespace tu::compress {

namespace {

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

void TimestampEncoder::Append(BitWriter* w, int64_t ts) {
  if (count_ == 0) {
    w->WriteBits(static_cast<uint64_t>(ts), 64);
    prev_ts_ = ts;
  } else if (count_ == 1) {
    const int64_t delta = ts - prev_ts_;
    w->WriteBits(static_cast<uint64_t>(delta), 64);
    prev_delta_ = delta;
    prev_ts_ = ts;
  } else {
    const int64_t delta = ts - prev_ts_;
    const int64_t dod = delta - prev_delta_;
    if (dod == 0) {
      w->WriteBit(false);
    } else if (dod >= -63 && dod <= 64) {
      w->WriteBits(0b10, 2);
      w->WriteBits(static_cast<uint64_t>(dod + 63), 7);
    } else if (dod >= -255 && dod <= 256) {
      w->WriteBits(0b110, 3);
      w->WriteBits(static_cast<uint64_t>(dod + 255), 9);
    } else if (dod >= -2047 && dod <= 2048) {
      w->WriteBits(0b1110, 4);
      w->WriteBits(static_cast<uint64_t>(dod + 2047), 12);
    } else {
      w->WriteBits(0b1111, 4);
      w->WriteBits(static_cast<uint64_t>(dod), 64);
    }
    prev_delta_ = delta;
    prev_ts_ = ts;
  }
  ++count_;
}

int64_t TimestampDecoder::Next(BitReader* r) {
  if (count_ == 0) {
    prev_ts_ = static_cast<int64_t>(r->ReadBits(64));
  } else if (count_ == 1) {
    prev_delta_ = static_cast<int64_t>(r->ReadBits(64));
    prev_ts_ += prev_delta_;
  } else {
    int64_t dod;
    if (!r->ReadBit()) {
      dod = 0;
    } else if (!r->ReadBit()) {
      dod = static_cast<int64_t>(r->ReadBits(7)) - 63;
    } else if (!r->ReadBit()) {
      dod = static_cast<int64_t>(r->ReadBits(9)) - 255;
    } else if (!r->ReadBit()) {
      dod = static_cast<int64_t>(r->ReadBits(12)) - 2047;
    } else {
      dod = static_cast<int64_t>(r->ReadBits(64));
    }
    prev_delta_ += dod;
    prev_ts_ += prev_delta_;
  }
  ++count_;
  return prev_ts_;
}

void ValueEncoder::Append(BitWriter* w, double value) {
  const uint64_t bits = DoubleToBits(value);
  if (count_ == 0) {
    w->WriteBits(bits, 64);
    prev_bits_ = bits;
    ++count_;
    return;
  }
  const uint64_t x = bits ^ prev_bits_;
  prev_bits_ = bits;
  ++count_;
  if (x == 0) {
    w->WriteBit(false);
    return;
  }
  unsigned leading = static_cast<unsigned>(std::countl_zero(x));
  unsigned trailing = static_cast<unsigned>(std::countr_zero(x));
  // Gorilla caps leading zeros at 31 so they fit in 5 bits.
  if (leading > 31) leading = 31;

  if (prev_leading_ != 64 && leading >= prev_leading_ &&
      trailing >= prev_trailing_) {
    // Fits inside the previous meaningful-bit window: '10' + bits.
    w->WriteBits(0b10, 2);
    const unsigned sigbits = 64 - prev_leading_ - prev_trailing_;
    w->WriteBits(x >> prev_trailing_, sigbits);
  } else {
    // New window: '11' + 5-bit leading + 6-bit length + bits.
    w->WriteBits(0b11, 2);
    w->WriteBits(leading, 5);
    const unsigned sigbits = 64 - leading - trailing;
    w->WriteBits(sigbits, 6);
    w->WriteBits(x >> trailing, sigbits);
    prev_leading_ = leading;
    prev_trailing_ = trailing;
  }
}

double ValueDecoder::Next(BitReader* r) {
  if (count_ == 0) {
    prev_bits_ = r->ReadBits(64);
    prev_leading_ = 64;  // no window yet (mirrors encoder)
    prev_trailing_ = 0;
    ++count_;
    return BitsToDouble(prev_bits_);
  }
  ++count_;
  if (!r->ReadBit()) {
    return BitsToDouble(prev_bits_);  // identical value
  }
  if (!r->ReadBit()) {
    // Previous window.
    const unsigned sigbits = 64 - prev_leading_ - prev_trailing_;
    const uint64_t meaningful = r->ReadBits(sigbits);
    prev_bits_ ^= meaningful << prev_trailing_;
  } else {
    const unsigned leading = static_cast<unsigned>(r->ReadBits(5));
    unsigned sigbits = static_cast<unsigned>(r->ReadBits(6));
    if (sigbits == 0) sigbits = 64;  // 6-bit field wraps for full width
    const unsigned trailing = 64 - leading - sigbits;
    const uint64_t meaningful = r->ReadBits(sigbits);
    prev_bits_ ^= meaningful << trailing;
    prev_leading_ = leading;
    prev_trailing_ = trailing;
  }
  return BitsToDouble(prev_bits_);
}

}  // namespace tu::compress
