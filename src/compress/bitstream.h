// Bit-granular reader/writer over byte buffers: the substrate of the
// Gorilla codecs. The writer targets a caller-provided fixed-capacity
// buffer so compressed open chunks can live directly inside mmap slots
// (Fig. 9); callers must check Remaining() before multi-bit appends.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>

namespace tu::compress {

/// Appends bits MSB-first into a fixed-capacity byte buffer.
class BitWriter {
 public:
  BitWriter(char* buf, size_t capacity_bytes)
      : buf_(reinterpret_cast<uint8_t*>(buf)),
        capacity_bits_(capacity_bytes * 8) {}

  /// Bits still available.
  size_t RemainingBits() const { return capacity_bits_ - bit_pos_; }
  size_t BitsWritten() const { return bit_pos_; }
  size_t BytesUsed() const { return (bit_pos_ + 7) / 8; }

  /// Restores a previously saved position (for resuming an open chunk).
  void SetBitPos(size_t bit_pos) {
    assert(bit_pos <= capacity_bits_);
    bit_pos_ = bit_pos;
  }

  void WriteBit(bool bit) {
    assert(bit_pos_ < capacity_bits_);
    const size_t byte = bit_pos_ >> 3;
    const unsigned shift = 7 - (bit_pos_ & 7);
    if ((bit_pos_ & 7) == 0) buf_[byte] = 0;  // fresh byte: clear stale bits
    if (bit) buf_[byte] |= static_cast<uint8_t>(1u << shift);
    ++bit_pos_;
  }

  /// Writes the low `nbits` bits of `value`, MSB-first. Byte-granular:
  /// up to 8 bits land per store (this is the per-sample hot path).
  void WriteBits(uint64_t value, unsigned nbits) {
    assert(nbits <= 64);
    assert(bit_pos_ + nbits <= capacity_bits_);
    while (nbits > 0) {
      const size_t byte = bit_pos_ >> 3;
      const unsigned bit_in_byte = bit_pos_ & 7;
      if (bit_in_byte == 0) buf_[byte] = 0;
      const unsigned space = 8 - bit_in_byte;
      const unsigned n = space < nbits ? space : nbits;
      const uint64_t chunk =
          (value >> (nbits - n)) & ((1ull << n) - 1);
      buf_[byte] |= static_cast<uint8_t>(chunk << (space - n));
      bit_pos_ += n;
      nbits -= n;
    }
  }

 private:
  uint8_t* buf_;
  size_t capacity_bits_;
  size_t bit_pos_ = 0;
};

/// Reads bits MSB-first from a byte buffer.
class BitReader {
 public:
  BitReader(const char* buf, size_t size_bytes)
      : buf_(reinterpret_cast<const uint8_t*>(buf)), size_bits_(size_bytes * 8) {}

  size_t RemainingBits() const { return size_bits_ - bit_pos_; }

  /// Raw access for the bulk decode paths (compress/gorilla.cc): they run
  /// a register-resident cursor over the underlying bytes and sync the
  /// position back, so bulk and per-sample reads interleave losslessly.
  const uint8_t* bytes() const { return buf_; }
  size_t size_bits() const { return size_bits_; }
  size_t bit_pos() const { return bit_pos_; }
  void set_bit_pos(size_t bit_pos) {
    assert(bit_pos <= size_bits_);
    bit_pos_ = bit_pos;
  }

  bool ReadBit() {
    assert(bit_pos_ < size_bits_);
    const size_t byte = bit_pos_ >> 3;
    const unsigned shift = 7 - (bit_pos_ & 7);
    ++bit_pos_;
    return (buf_[byte] >> shift) & 1;
  }

  uint64_t ReadBits(unsigned nbits) {
    assert(nbits <= 64);
    uint64_t v = 0;
    while (nbits > 0) {
      const size_t byte = bit_pos_ >> 3;
      const unsigned bit_in_byte = bit_pos_ & 7;
      const unsigned space = 8 - bit_in_byte;
      const unsigned n = space < nbits ? space : nbits;
      const uint64_t chunk =
          (buf_[byte] >> (space - n)) & ((1ull << n) - 1);
      v = (v << n) | chunk;
      bit_pos_ += n;
      nbits -= n;
    }
    return v;
  }

 private:
  const uint8_t* buf_;
  size_t size_bits_;
  size_t bit_pos_ = 0;
};

}  // namespace tu::compress
