#include "compress/snappy_lite.h"

#include <cstring>
#include <vector>

#include "util/coding.h"

namespace tu::compress {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxLiteralRun = 240;  // tags 0x00..0xEF
constexpr uint8_t kCopyTag = 0xF0;
constexpr size_t kHashBits = 14;
constexpr size_t kHashSize = 1u << kHashBits;

uint32_t Hash4(const char* p) {
  uint32_t v;
  memcpy(&v, p, sizeof(v));
  return (v * 0x1e35a7bdu) >> (32 - kHashBits);
}

void EmitLiterals(const char* base, size_t start, size_t end,
                  std::string* out) {
  while (start < end) {
    const size_t run = std::min(end - start, kMaxLiteralRun);
    out->push_back(static_cast<char>(run - 1));
    out->append(base + start, run);
    start += run;
  }
}

void EmitCopy(size_t offset, size_t length, std::string* out) {
  out->push_back(static_cast<char>(kCopyTag));
  PutVarint32(out, static_cast<uint32_t>(offset));
  PutVarint32(out, static_cast<uint32_t>(length));
}

}  // namespace

size_t SnappyLiteMaxCompressedSize(size_t n) {
  // Worst case: all literals — one tag byte per 240 input bytes + header.
  return n + n / kMaxLiteralRun + 16;
}

void SnappyLiteCompress(const Slice& input, std::string* out) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(input.size()));
  const char* data = input.data();
  const size_t n = input.size();
  if (n < kMinMatch + 4) {
    EmitLiterals(data, 0, n, out);
    return;
  }

  std::vector<uint32_t> table(kHashSize, 0xffffffffu);
  size_t literal_start = 0;
  size_t pos = 0;
  const size_t limit = n - kMinMatch;  // last position where Hash4 is safe

  while (pos <= limit) {
    const uint32_t h = Hash4(data + pos);
    const uint32_t candidate = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (candidate != 0xffffffffu &&
        memcmp(data + candidate, data + pos, kMinMatch) == 0) {
      // Extend the match forward.
      size_t match_len = kMinMatch;
      while (pos + match_len < n &&
             data[candidate + match_len] == data[pos + match_len]) {
        ++match_len;
      }
      EmitLiterals(data, literal_start, pos, out);
      EmitCopy(pos - candidate, match_len, out);
      pos += match_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  EmitLiterals(data, literal_start, n, out);
}

Status SnappyLiteUncompress(const Slice& input, std::string* out) {
  out->clear();
  Slice in = input;
  uint32_t expected = 0;
  if (!GetVarint32(&in, &expected)) {
    return Status::Corruption("snappy-lite: bad length header");
  }
  out->reserve(expected);
  while (!in.empty()) {
    const uint8_t tag = static_cast<uint8_t>(in[0]);
    in.remove_prefix(1);
    if (tag < kCopyTag) {
      const size_t run = static_cast<size_t>(tag) + 1;
      if (in.size() < run) return Status::Corruption("snappy-lite: short literal");
      out->append(in.data(), run);
      in.remove_prefix(run);
    } else {
      uint32_t offset = 0, length = 0;
      if (!GetVarint32(&in, &offset) || !GetVarint32(&in, &length)) {
        return Status::Corruption("snappy-lite: bad copy");
      }
      if (offset == 0 || offset > out->size() || length == 0) {
        return Status::Corruption("snappy-lite: invalid copy");
      }
      // Byte-by-byte copy: supports overlapping copies (RLE-style).
      size_t src = out->size() - offset;
      for (uint32_t i = 0; i < length; ++i) {
        out->push_back((*out)[src + i]);
      }
    }
  }
  if (out->size() != expected) {
    return Status::Corruption("snappy-lite: length mismatch");
  }
  return Status::OK();
}

}  // namespace tu::compress
