// Gorilla timeseries codecs (Pelkonen et al., VLDB 2015), as used by
// Prometheus/InfluxDB and extended by TimeUnion:
//  - TimestampEncoder: delta-of-delta with variable-width buckets.
//  - ValueEncoder: XOR'd doubles with leading/trailing-zero windows.
//  - NullableValueEncoder: TimeUnion's §3.1 extension — one control bit per
//    slot so a group member can record NULL for rounds it missed.
//
// Encoders are streaming: small POD state plus an external BitWriter, so
// the compressed bytes can live in an mmap slot while the state lives in
// the series/group head object. Callers must ensure Remaining() >=
// kMaxBits* before each append (there is no partial-write rollback).
#pragma once

#include <cstdint>

#include "compress/bitstream.h"

namespace tu::compress {

/// Worst-case bits for one timestamp append ('1111' + 64 raw bits).
constexpr size_t kMaxBitsPerTimestamp = 4 + 64;
/// Worst-case bits for one value append (control '11' + 5 + 6 + 64).
constexpr size_t kMaxBitsPerValue = 2 + 5 + 6 + 64;
/// Worst-case bits for one nullable value append (null bit + value).
constexpr size_t kMaxBitsPerNullableValue = 1 + kMaxBitsPerValue;

/// Delta-of-delta timestamp compression. First timestamp is stored raw
/// (64 bits), second as a 64-bit delta, then each delta-of-delta in
/// Gorilla's bucket scheme: 0 | 10+7b | 110+9b | 1110+12b | 1111+64b.
class TimestampEncoder {
 public:
  void Append(BitWriter* w, int64_t ts);

  uint32_t count() const { return count_; }
  int64_t last_ts() const { return prev_ts_; }

 private:
  uint32_t count_ = 0;
  int64_t prev_ts_ = 0;
  int64_t prev_delta_ = 0;
};

class TimestampDecoder {
 public:
  /// Decodes the next timestamp. Caller must not read past the encoded
  /// count.
  int64_t Next(BitReader* r);

  /// Bulk path: decodes the next `n` timestamps into `out[0..n)`. Exactly
  /// equivalent to `n` calls to Next() — decoder state and reader position
  /// advance identically, so bulk and per-sample reads can interleave —
  /// but the bit cursor and delta state stay in registers for the whole
  /// run.
  void DecodeAll(BitReader* r, size_t n, int64_t* out);

 private:
  uint32_t count_ = 0;
  int64_t prev_ts_ = 0;
  int64_t prev_delta_ = 0;
};

/// XOR'd double compression. First value raw; then '0' if identical,
/// '10' + meaningful bits if the XOR fits the previous leading/trailing
/// window, '11' + 5-bit leading + 6-bit length + bits otherwise.
class ValueEncoder {
 public:
  void Append(BitWriter* w, double value);

 private:
  uint32_t count_ = 0;
  uint64_t prev_bits_ = 0;
  unsigned prev_leading_ = 64;  // 64 = "no window yet"
  unsigned prev_trailing_ = 0;
};

class ValueDecoder {
 public:
  double Next(BitReader* r);

  /// Bulk path: decodes the next `n` values into `out[0..n)`; equivalent
  /// to `n` Next() calls (see TimestampDecoder::DecodeAll).
  void DecodeAll(BitReader* r, size_t n, double* out);

 private:
  friend class NullableValueDecoder;  // bulk path shares the XOR state

  uint32_t count_ = 0;
  uint64_t prev_bits_ = 0;
  unsigned prev_leading_ = 0;
  unsigned prev_trailing_ = 0;
};

/// TimeUnion's NULL-extended XOR codec for group value columns: each slot
/// starts with a control bit — 1 = NULL (member missing this round),
/// 0 = present, followed by the standard XOR encoding relative to the
/// previous *present* value.
class NullableValueEncoder {
 public:
  void AppendValue(BitWriter* w, double value) {
    w->WriteBit(false);
    inner_.Append(w, value);
  }

  void AppendNull(BitWriter* w) { w->WriteBit(true); }

 private:
  ValueEncoder inner_;
};

class NullableValueDecoder {
 public:
  /// Returns false if the slot is NULL; otherwise stores the value.
  bool Next(BitReader* r, double* value) {
    if (r->ReadBit()) return false;
    *value = inner_.Next(r);
    return true;
  }

  /// Bulk path: decodes the next `n` slots. For each present slot i,
  /// sets bit i of `validity` (a caller-zeroed bitmap of at least
  /// ceil(n/64) words, indexed from the start of this call) and stores
  /// the value in `values[i]`; NULL slots leave `values[i]` untouched.
  /// Equivalent to `n` Next() calls.
  void DecodeAll(BitReader* r, size_t n, double* values, uint64_t* validity);

 private:
  ValueDecoder inner_;
};

}  // namespace tu::compress
