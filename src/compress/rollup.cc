#include "compress/rollup.h"

#include "compress/gorilla.h"
#include "util/coding.h"

namespace tu::compress {

void EncodeRollupChunk(uint64_t max_seq, int64_t granularity_ms,
                       const std::vector<RollupBucket>& buckets,
                       std::string* out) {
  out->clear();
  // Worst case ~9 bytes per timestamp-coded field, ~10 per value.
  const size_t cap = buckets.size() * 10 + 16;
  std::vector<char> ts_buf(cap), min_buf(cap), max_buf(cap), sum_buf(cap),
      cnt_buf(cap);
  BitWriter ts_w(ts_buf.data(), cap), min_w(min_buf.data(), cap),
      max_w(max_buf.data(), cap), sum_w(sum_buf.data(), cap),
      cnt_w(cnt_buf.data(), cap);
  TimestampEncoder ts_enc, cnt_enc;
  ValueEncoder min_enc, max_enc, sum_enc;
  for (const RollupBucket& b : buckets) {
    ts_enc.Append(&ts_w, b.start);
    min_enc.Append(&min_w, b.min);
    max_enc.Append(&max_w, b.max);
    sum_enc.Append(&sum_w, b.sum);
    cnt_enc.Append(&cnt_w, static_cast<int64_t>(b.count));
  }

  PutVarint64(out, max_seq);
  PutVarint64(out, static_cast<uint64_t>(granularity_ms));
  PutVarint32(out, static_cast<uint32_t>(buckets.size()));
  const auto put_stream = [out](const std::vector<char>& buf,
                                const BitWriter& w) {
    PutVarint32(out, static_cast<uint32_t>(w.BytesUsed()));
    out->append(buf.data(), w.BytesUsed());
  };
  put_stream(ts_buf, ts_w);
  put_stream(min_buf, min_w);
  put_stream(max_buf, max_w);
  put_stream(sum_buf, sum_w);
  put_stream(cnt_buf, cnt_w);
}

Status DecodeRollupChunk(const Slice& data, uint64_t* max_seq,
                         int64_t* granularity_ms,
                         std::vector<RollupBucket>* buckets) {
  buckets->clear();
  Slice in = data;
  uint64_t gran = 0;
  uint32_t count = 0;
  if (!GetVarint64(&in, max_seq) || !GetVarint64(&in, &gran) ||
      !GetVarint32(&in, &count)) {
    return Status::Corruption("bad rollup chunk header");
  }
  *granularity_ms = static_cast<int64_t>(gran);

  Slice streams[5];
  for (Slice& s : streams) {
    uint32_t len = 0;
    if (!GetVarint32(&in, &len) || in.size() < len) {
      return Status::Corruption("bad rollup chunk stream");
    }
    s = Slice(in.data(), len);
    in.remove_prefix(len);
  }
  if (count == 0) return Status::OK();

  std::vector<int64_t> starts(count), counts(count);
  std::vector<double> mins(count), maxs(count), sums(count);
  {
    BitReader r(streams[0].data(), streams[0].size());
    TimestampDecoder dec;
    dec.DecodeAll(&r, count, starts.data());
  }
  {
    BitReader r(streams[1].data(), streams[1].size());
    ValueDecoder dec;
    dec.DecodeAll(&r, count, mins.data());
  }
  {
    BitReader r(streams[2].data(), streams[2].size());
    ValueDecoder dec;
    dec.DecodeAll(&r, count, maxs.data());
  }
  {
    BitReader r(streams[3].data(), streams[3].size());
    ValueDecoder dec;
    dec.DecodeAll(&r, count, sums.data());
  }
  {
    BitReader r(streams[4].data(), streams[4].size());
    TimestampDecoder dec;
    dec.DecodeAll(&r, count, counts.data());
  }

  buckets->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    RollupBucket& b = (*buckets)[i];
    b.start = starts[i];
    b.min = mins[i];
    b.max = maxs[i];
    b.sum = sums[i];
    if (counts[i] < 0) return Status::Corruption("bad rollup bucket count");
    b.count = static_cast<uint64_t>(counts[i]);
  }
  return Status::OK();
}

}  // namespace tu::compress
