// Rollup chunks (continuous aggregates): per-bucket min/max/sum/count
// summaries of one individual series at a fixed granularity, materialized
// by compaction and served by the aggregate-query planner.
//
// Serialized layout (RollupChunk):
//   varint64 max_seq | varint64 granularity_ms | varint32 count
//     | varint32 ts_len   | bucket-start bits   (TimestampEncoder)
//     | varint32 min_len  | min bits            (ValueEncoder)
//     | varint32 max_len  | max bits            (ValueEncoder)
//     | varint32 sum_len  | sum bits            (ValueEncoder)
//     | varint32 cnt_len  | count bits          (TimestampEncoder)
//
// Bucket starts are aligned multiples of the granularity, so
// delta-of-delta collapses a dense run to ~1 bit/bucket; counts reuse the
// timestamp codec for the same reason (regular series have constant
// per-bucket counts). Only buckets that contain at least one sample are
// present — an absent bucket means the source window genuinely had no
// samples there, never "fall back to raw".
//
// max_seq is the maximum winning input seq over every sample folded into
// the chunk (PR 8 restamping discipline): a later rewrite into the window
// carries a higher seq, which is what lets the planner invalidate stale
// buckets via the dirty-span bookkeeping in the LSM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace tu::compress {

/// One aggregate bucket: [start, start + granularity_ms) in source time.
struct RollupBucket {
  int64_t start = 0;
  double min = 0;
  double max = 0;
  double sum = 0;
  uint64_t count = 0;

  bool operator==(const RollupBucket&) const = default;
};

/// Serializes rollup buckets (must be ascending by start, non-empty counts).
void EncodeRollupChunk(uint64_t max_seq, int64_t granularity_ms,
                       const std::vector<RollupBucket>& buckets,
                       std::string* out);

/// Decodes a serialized rollup chunk.
Status DecodeRollupChunk(const Slice& data, uint64_t* max_seq,
                         int64_t* granularity_ms,
                         std::vector<RollupBucket>* buckets);

}  // namespace tu::compress
