// Circuit breaker for the slow (object) tier: closed -> open -> half-open.
//
// During an outage every ObjectStore call otherwise pays its full
// RunWithRetry backoff budget before failing; with hundreds of block
// fetches per query that turns a dead tier into a latency storm. The
// breaker watches a sliding window of recent outcomes, trips open when the
// failure rate (or a consecutive-failure run) crosses the threshold, and
// then rejects calls instantly with Status::Unavailable — which no retry
// policy treats as retryable, so callers fall back (deferred uploads,
// partial reads) immediately. After a cooldown it admits a small number of
// probe requests; enough probe successes close it again.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace tu::cloud {

struct TierCounters;

enum class BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateName(BreakerState s);

struct CircuitBreakerOptions {
  /// Disabled by default: unit-test tiers (Instant()) see every injected
  /// fault verbatim. The realistic S3 sim and the degraded-operation tests
  /// opt in.
  bool enabled = false;
  /// Sliding window of most recent call outcomes considered for the
  /// failure-rate trip condition.
  uint32_t window = 32;
  /// Minimum outcomes in the window before the rate condition can trip.
  uint32_t min_samples = 8;
  double failure_rate_to_open = 0.5;
  /// Fast-trip condition: this many failures in a row opens the breaker
  /// regardless of the window rate (a hard outage should not need 16
  /// samples to be recognized).
  uint32_t consecutive_failures_to_open = 8;
  /// How long an open breaker rejects before letting probes through.
  uint64_t open_cooldown_us = 250'000;
  /// Concurrent probe requests admitted while half-open.
  uint32_t half_open_max_probes = 2;
  /// Probe successes required to close; a single probe failure re-opens.
  uint32_t half_open_successes_to_close = 2;
  /// Injectable clock for tests; defaults to steady_clock.
  std::function<uint64_t()> now_us;
  /// Observability hook: invoked on every state transition (trip open,
  /// half-open probe window, close), under the breaker's mutex — the
  /// callback must be cheap and must not call back into the breaker.
  std::function<void(BreakerState from, BreakerState to)> on_transition;

  static CircuitBreakerOptions Enabled() {
    CircuitBreakerOptions o;
    o.enabled = true;
    return o;
  }
};

/// Thread-safe; one instance per ObjectStore. When constructed with a
/// TierCounters pointer, rejections and opens are mirrored into the tier's
/// counter report alongside faults/retries.
class CircuitBreaker {
 public:
  CircuitBreaker(CircuitBreakerOptions options, TierCounters* counters);

  /// OK to proceed, or Status::Unavailable when the breaker is open (or
  /// half-open with all probe slots taken). Every admitted call must be
  /// paired with exactly one OnResult().
  Status Admit();

  /// Record the outcome of an admitted call. IOError/Busy count as
  /// failures; everything else (incl. NotFound) proves the tier is alive.
  void OnResult(const Status& s);

  static bool IsFailure(const Status& s) {
    return s.IsIOError() || s.IsBusy();
  }

  bool enabled() const { return options_.enabled; }
  /// Effective state: reports kHalfOpen once an open breaker's cooldown
  /// has elapsed, even before the first probe arrives.
  BreakerState state() const;
  uint64_t rejections() const;
  uint64_t opens() const;

 private:
  void TripOpenLocked(uint64_t now);
  void CloseLocked();
  void RecordOutcomeLocked(bool failure);
  void NotifyTransitionLocked(BreakerState from, BreakerState to);

  const CircuitBreakerOptions options_;
  TierCounters* const counters_;  // may be null

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  std::vector<char> outcome_ring_;  // 1 = failure
  uint32_t ring_next_ = 0;
  uint32_t ring_count_ = 0;
  uint32_t ring_failures_ = 0;
  uint32_t consecutive_failures_ = 0;
  uint64_t opened_at_us_ = 0;
  uint32_t probes_inflight_ = 0;
  uint32_t probe_successes_ = 0;
  uint64_t rejections_ = 0;
  uint64_t opens_ = 0;
};

}  // namespace tu::cloud
