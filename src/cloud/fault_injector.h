// FaultInjector: scriptable failure model for the simulated cloud tiers.
// Real hybrid-cloud deployments see transient 5xx/throttling errors, torn
// (partial) uploads and process crashes as routine events; the stores
// consult an injector before each operation so tests and benches can make
// any tier misbehave on demand.
//
// Two mechanisms:
//   - FaultRule: matched per operation (op-kind bitmask + key prefix),
//     triggered probabilistically or deterministically on the Nth matching
//     op. A rule injects a transient error (Status::Busy — the retryable
//     class), a permanent error (Status::IOError), a torn write that
//     persists only a prefix of the payload, or a process crash.
//   - Crash points: labeled sites in the write/compaction/WAL paths
//     (e.g. "l2.upload.pre_commit"). Arming a label makes the process
//     _Exit at that site, simulating a kill -9 for recovery tests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace tu::cloud {

/// Operation kinds a fault rule can match (bitmask).
enum class FaultOp : uint32_t {
  kPut = 1u << 0,     // whole-object Put / WriteStringToFile
  kGet = 1u << 1,     // ranged Get / positional read
  kDelete = 1u << 2,  // object/file delete
  kStat = 1u << 3,    // exists / size probes
  kList = 1u << 4,    // directory/prefix listing
  kAppend = 1u << 5,  // WritableFile::Append
  kSync = 1u << 6,    // WritableFile::Sync
  kRename = 1u << 7,  // rename/commit
  kOpen = 1u << 8,    // file/handle open
};

constexpr uint32_t kAllFaultOps = 0xffffffffu;

inline uint32_t FaultOpMask(FaultOp op) { return static_cast<uint32_t>(op); }
inline uint32_t operator|(FaultOp a, FaultOp b) {
  return FaultOpMask(a) | FaultOpMask(b);
}

/// One scripted failure. A rule fires either probabilistically
/// (`probability`) or deterministically on the `fail_nth`-th matching
/// operation (1-based); `max_fires` bounds how often it can fire.
struct FaultRule {
  enum class Kind {
    kTransient,  // retryable: the injected Status::Busy models S3 5xx/throttle
    kPermanent,  // non-retryable: Status::IOError
    kTornWrite,  // persist only torn_keep_fraction of the payload, then fail
    kCrash,      // _Exit the process at the matched operation
  };

  uint32_t ops = kAllFaultOps;  // bitmask of FaultOp
  std::string key_prefix;       // empty matches every key
  double probability = 0.0;     // chance to fire per matching op
  uint64_t fail_nth = 0;        // fire exactly on the Nth match; 0 = off
  int max_fires = -1;           // -1 = unlimited
  Kind kind = Kind::kTransient;
  double torn_keep_fraction = 0.5;  // kTornWrite: payload prefix persisted

  // -- Convenience constructors -------------------------------------------
  static FaultRule Transient(uint32_t op_mask, double probability,
                             std::string key_prefix = "");
  static FaultRule Permanent(uint32_t op_mask, uint64_t fail_nth,
                             std::string key_prefix = "");
  static FaultRule TornWrite(uint32_t op_mask, uint64_t fail_nth,
                             double keep_fraction, std::string key_prefix = "");

  // -- Internal trigger bookkeeping (mutated by the injector) -------------
  uint64_t matches = 0;
  uint64_t fires = 0;
};

/// The whole scripted failure scenario: an ordered rule list (first firing
/// rule wins per operation).
struct FaultPolicy {
  std::vector<FaultRule> rules;
};

/// Exit code used by injected crashes, so crash-recovery tests can tell a
/// fired crash point apart from any other child-process failure.
constexpr int kFaultCrashExitCode = 43;

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 42) : rng_(seed) {}

  void AddRule(FaultRule rule);
  void SetPolicy(FaultPolicy policy);
  /// Arms the labeled crash site: the process _Exits on the
  /// (skip_hits+1)-th time execution reaches it.
  void ArmCrashPoint(const std::string& site, uint64_t skip_hits = 0);
  void Clear();

  /// Consulted by the stores before a non-payload operation. OK = proceed.
  Status Intercept(FaultOp op, const std::string& key);

  /// Consulted before a write of `size` payload bytes. On a torn-write
  /// fault, *keep_bytes is set to the prefix length the caller must still
  /// persist before reporting the returned (non-OK) status; otherwise
  /// *keep_bytes is 0 on failure.
  Status InterceptWrite(FaultOp op, const std::string& key, size_t size,
                        size_t* keep_bytes);

  /// Labeled crash site (no-op unless armed via ArmCrashPoint).
  void MaybeCrash(const std::string& site);

  uint64_t faults_injected() const;
  /// Times the labeled site was reached (armed or not yet fired).
  uint64_t CrashPointHits(const std::string& site) const;

 private:
  struct CrashPoint {
    uint64_t skip_hits = 0;
    uint64_t hits = 0;
  };

  mutable std::mutex mu_;
  std::vector<FaultRule> rules_;
  std::map<std::string, CrashPoint> crash_points_;
  Random rng_;
  uint64_t faults_injected_ = 0;
};

/// Null-safe helper for labeled crash sites in engine code.
inline void CrashPoint(FaultInjector* injector, const char* site) {
  if (injector != nullptr) injector->MaybeCrash(site);
}

}  // namespace tu::cloud
