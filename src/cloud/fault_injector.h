// FaultInjector: scriptable failure model for the simulated cloud tiers.
// Real hybrid-cloud deployments see transient 5xx/throttling errors, torn
// (partial) uploads and process crashes as routine events; the stores
// consult an injector before each operation so tests and benches can make
// any tier misbehave on demand.
//
// Two mechanisms:
//   - FaultRule: matched per operation (op-kind bitmask + key prefix),
//     triggered probabilistically or deterministically on the Nth matching
//     op. A rule injects a transient error (Status::Busy — the retryable
//     class), a permanent error (Status::IOError), a torn write that
//     persists only a prefix of the payload, or a process crash.
//   - Crash points: labeled sites in the write/compaction/WAL paths
//     (e.g. "l2.upload.pre_commit"). Arming a label makes the process
//     _Exit at that site, simulating a kill -9 for recovery tests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace tu::cloud {

/// Operation kinds a fault rule can match (bitmask).
enum class FaultOp : uint32_t {
  kPut = 1u << 0,     // whole-object Put / WriteStringToFile
  kGet = 1u << 1,     // ranged Get / positional read
  kDelete = 1u << 2,  // object/file delete
  kStat = 1u << 3,    // exists / size probes
  kList = 1u << 4,    // directory/prefix listing
  kAppend = 1u << 5,  // WritableFile::Append
  kSync = 1u << 6,    // WritableFile::Sync
  kRename = 1u << 7,  // rename/commit
  kOpen = 1u << 8,    // file/handle open
};

constexpr uint32_t kAllFaultOps = 0xffffffffu;

inline uint32_t FaultOpMask(FaultOp op) { return static_cast<uint32_t>(op); }
inline uint32_t operator|(FaultOp a, FaultOp b) {
  return FaultOpMask(a) | FaultOpMask(b);
}

/// One scripted failure. A rule fires either probabilistically
/// (`probability`) or deterministically on the `fail_nth`-th matching
/// operation (1-based); `max_fires` bounds how often it can fire.
struct FaultRule {
  enum class Kind {
    kTransient,  // retryable: the injected Status::Busy models S3 5xx/throttle
    kPermanent,  // non-retryable: Status::IOError
    kTornWrite,  // persist only torn_keep_fraction of the payload, then fail
    kCrash,      // _Exit the process at the matched operation
    // Silent corruption: the operation *succeeds* but the payload is wrong.
    // Read-side kinds mutate the bytes returned to the caller (the at-rest
    // copy stays intact: a poisoned cache / flaky NIC model); write-side
    // kinds mutate the bytes before they are persisted (at-rest bit rot).
    kBitFlipRead,    // XOR corrupt_mask into the byte at corrupt_offset
    kTruncateRead,   // drop the payload tail past corrupt_offset
    kBitFlipWrite,   // persist with one byte XORed by corrupt_mask
    kTruncateWrite,  // persist only the first corrupt_offset bytes
    kNoSpace,        // disk full: Status::OutOfSpace until released
  };

  uint32_t ops = kAllFaultOps;  // bitmask of FaultOp
  std::string key_prefix;       // empty matches every key
  double probability = 0.0;     // chance to fire per matching op
  uint64_t fail_nth = 0;        // fire exactly on the Nth match; 0 = off
  int max_fires = -1;           // -1 = unlimited
  Kind kind = Kind::kTransient;
  double torn_keep_fraction = 0.5;  // kTornWrite: payload prefix persisted
  // Corruption kinds: byte position within the payload (clamped to its
  // length; kUseRandomOffset picks a seeded-random position per firing) and
  // the XOR mask applied there for the bit-flip variants.
  static constexpr uint64_t kUseRandomOffset = ~0ull;
  uint64_t corrupt_offset = kUseRandomOffset;
  uint8_t corrupt_mask = 0x01;

  // -- Convenience constructors -------------------------------------------
  static FaultRule Transient(uint32_t op_mask, double probability,
                             std::string key_prefix = "");
  static FaultRule Permanent(uint32_t op_mask, uint64_t fail_nth,
                             std::string key_prefix = "");
  static FaultRule TornWrite(uint32_t op_mask, uint64_t fail_nth,
                             double keep_fraction, std::string key_prefix = "");
  static FaultRule BitFlipRead(double probability, std::string key_prefix = "",
                               uint64_t offset = kUseRandomOffset,
                               uint8_t mask = 0x01);
  static FaultRule BitFlipWrite(uint64_t fail_nth, std::string key_prefix = "",
                                uint64_t offset = kUseRandomOffset,
                                uint8_t mask = 0x01);
  static FaultRule TruncateRead(uint64_t fail_nth, uint64_t keep_bytes,
                                std::string key_prefix = "");
  static FaultRule TruncateWrite(uint64_t fail_nth, uint64_t keep_bytes,
                                 std::string key_prefix = "");
  /// Disk-full condition: every matching op fails with Status::OutOfSpace
  /// until the rule is released. `release_after_fires` >= 0 models "space
  /// freed after N failed ops" (the rule deactivates itself after firing N
  /// times); -1 keeps the disk full until ReleaseNoSpace()/Clear().
  static FaultRule NoSpace(uint32_t op_mask, std::string key_prefix = "",
                           int release_after_fires = -1);

  // -- Internal trigger bookkeeping (mutated by the injector) -------------
  uint64_t matches = 0;
  uint64_t fires = 0;
};

/// The whole scripted failure scenario: an ordered rule list (first firing
/// rule wins per operation).
struct FaultPolicy {
  std::vector<FaultRule> rules;
};

/// Exit code used by injected crashes, so crash-recovery tests can tell a
/// fired crash point apart from any other child-process failure.
constexpr int kFaultCrashExitCode = 43;

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 42) : rng_(seed) {}

  void AddRule(FaultRule rule);
  void SetPolicy(FaultPolicy policy);
  /// Arms the labeled crash site: the process _Exits on the
  /// (skip_hits+1)-th time execution reaches it.
  void ArmCrashPoint(const std::string& site, uint64_t skip_hits = 0);
  void Clear();

  /// Consulted by the stores before a non-payload operation. OK = proceed.
  Status Intercept(FaultOp op, const std::string& key);

  /// Consulted before a write of `size` payload bytes. On a torn-write
  /// fault, *keep_bytes is set to the prefix length the caller must still
  /// persist before reporting the returned (non-OK) status; otherwise
  /// *keep_bytes is 0 on failure.
  Status InterceptWrite(FaultOp op, const std::string& key, size_t size,
                        size_t* keep_bytes);

  /// Consulted after a successful read, before the payload is handed to the
  /// caller. A matching corruption rule (kBitFlipRead / kTruncateRead)
  /// silently mutates `*data` in place — the operation still reports OK,
  /// which is the whole point: only checksums can catch it.
  void InterceptReadPayload(FaultOp op, const std::string& key,
                            std::string* data);

  /// Consulted with a copy of the payload before it is persisted. Returns
  /// true (and mutates `*data`) when a write-side corruption rule
  /// (kBitFlipWrite / kTruncateWrite) fires, so the caller persists the
  /// corrupted bytes while reporting success. Returns false when no such
  /// rule fires; non-corruption kinds never fire here.
  bool InterceptWritePayload(FaultOp op, const std::string& key,
                             std::string* data);

  /// Labeled crash site (no-op unless armed via ArmCrashPoint).
  void MaybeCrash(const std::string& site);

  /// Deterministically ends the disk-full condition: removes every
  /// kNoSpace rule. Returns how many rules were released.
  size_t ReleaseNoSpace();

  uint64_t faults_injected() const;
  /// Times the labeled site was reached (armed or not yet fired).
  uint64_t CrashPointHits(const std::string& site) const;

 private:
  bool MutatePayload(FaultOp op, const std::string& key, bool write_side,
                     std::string* data);

  struct CrashPoint {
    uint64_t skip_hits = 0;
    uint64_t hits = 0;
  };

  mutable std::mutex mu_;
  std::vector<FaultRule> rules_;
  std::map<std::string, CrashPoint> crash_points_;
  Random rng_;
  uint64_t faults_injected_ = 0;
};

/// Null-safe helper for labeled crash sites in engine code.
inline void CrashPoint(FaultInjector* injector, const char* site) {
  if (injector != nullptr) injector->MaybeCrash(site);
}

}  // namespace tu::cloud
