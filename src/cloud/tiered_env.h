// TieredEnv: bundles the fast tier (BlockStore / EBS) and slow tier
// (ObjectStore / S3) under one workspace directory, the hybrid cloud
// storage environment every engine in this repository runs against.
#pragma once

#include <memory>
#include <string>

#include "cloud/block_store.h"
#include "cloud/object_store.h"

namespace tu::cloud {

struct TieredEnvOptions {
  TierSimOptions fast_sim = TierSimOptions::EbsDefaults();
  TierSimOptions slow_sim = TierSimOptions::S3Defaults();

  /// Zero-latency tiers for unit tests.
  static TieredEnvOptions Instant() {
    TieredEnvOptions o;
    o.fast_sim = TierSimOptions::Instant();
    o.slow_sim = TierSimOptions::Instant();
    return o;
  }
};

class TieredEnv {
 public:
  /// Creates `<workspace>/fast` (block tier), `<workspace>/slow` (object
  /// tier) and `<workspace>/mmap` (memory-mapped working files).
  TieredEnv(const std::string& workspace, TieredEnvOptions options);

  BlockStore& fast() { return *fast_; }
  ObjectStore& slow() { return *slow_; }
  const BlockStore& fast() const { return *fast_; }
  const ObjectStore& slow() const { return *slow_; }

  /// Directory for mmap'ed in-memory structures (index, open chunks).
  const std::string& mmap_dir() const { return mmap_dir_; }
  const std::string& workspace() const { return workspace_; }

  std::string CountersReport() const;

 private:
  std::string workspace_;
  std::string mmap_dir_;
  std::unique_ptr<BlockStore> fast_;
  std::unique_ptr<ObjectStore> slow_;
};

}  // namespace tu::cloud
