#include "cloud/object_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "cloud/fault_injector.h"
#include "util/mmap_file.h"

namespace tu::cloud {

namespace {

// Object keys may contain '/'; encode them to flat filenames so a key is
// one file (no implicit directories, matching object-store semantics).
std::string EncodeKey(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    if (c == '/') {
      out += "%2F";
    } else if (c == '%') {
      out += "%25";
    } else {
      out += c;
    }
  }
  return out;
}

std::string DecodeKey(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    if (name[i] == '%' && i + 2 < name.size()) {
      if (name.compare(i, 3, "%2F") == 0) {
        out += '/';
        i += 2;
        continue;
      }
      if (name.compare(i, 3, "%25") == 0) {
        out += '%';
        i += 2;
        continue;
      }
    }
    out += name[i];
  }
  return out;
}

}  // namespace

ObjectStore::ObjectStore(std::string root_dir, TierSimOptions sim)
    : root_(std::move(root_dir)),
      sim_(sim),
      breaker_(sim_.breaker, &counters_) {
  EnsureDir(root_);
}

std::string ObjectStore::KeyPath(const std::string& key) const {
  return root_ + "/" + EncodeKey(key);
}

Status ObjectStore::Guarded(const std::function<Status()>& op) const {
  Status admit = breaker_.Admit();
  if (!admit.ok()) return admit;
  Status s = op();
  breaker_.OnResult(s);
  return s;
}

Status ObjectStore::PutObject(const std::string& key, const Slice& data) {
  return Guarded([&] { return PutObjectImpl(key, data); });
}

Status ObjectStore::DeleteObject(const std::string& key) {
  return Guarded([&] { return DeleteObjectImpl(key); });
}

Status ObjectStore::ObjectExists(const std::string& key) const {
  return Guarded([&] { return ObjectExistsImpl(key); });
}

Status ObjectStore::ObjectSize(const std::string& key, uint64_t* size) const {
  return Guarded([&] { return ObjectSizeImpl(key, size); });
}

Status ObjectStore::RenameObject(const std::string& src,
                                 const std::string& dst) {
  return Guarded([&] { return RenameObjectImpl(src, dst); });
}

Status ObjectStore::ListObjects(const std::string& prefix,
                                std::vector<std::string>* keys) const {
  return Guarded([&] { return ListObjectsImpl(prefix, keys); });
}

Status ObjectStore::GetRange(const std::string& key, uint64_t offset, size_t n,
                             std::string* out) {
  return Guarded([&] { return GetRangeImpl(key, offset, n, out); });
}

Status ObjectStore::PutObjectImpl(const std::string& key, const Slice& data) {
  size_t write_bytes = data.size();
  Status injected;
  if (sim_.fault != nullptr) {
    size_t keep = 0;
    injected = sim_.fault->InterceptWrite(FaultOp::kPut, key, data.size(), &keep);
    if (!injected.ok()) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      if (keep == 0) return injected;
      // Torn write: the truncated payload still lands at the key, so a
      // later size/CRC verification can catch it.
      write_bytes = keep;
    }
  }
  // Silent at-rest corruption: a write-side corruption rule replaces the
  // payload while the Put still reports success.
  std::string corrupted;
  const char* payload = data.data();
  if (sim_.fault != nullptr) {
    corrupted.assign(data.data(), write_bytes);
    if (sim_.fault->InterceptWritePayload(FaultOp::kPut, key, &corrupted)) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      payload = corrupted.data();
      write_bytes = corrupted.size();
    }
  }
  const std::string path = KeyPath(key);
  const std::string tmp = path + ".upload";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open " + tmp + ": " + strerror(errno));
  }
  const char* p = payload;
  size_t left = write_bytes;
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("write " + tmp + ": " + strerror(errno));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp + ": " + strerror(errno));
  }
  counters_.put_ops.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_written.fetch_add(write_bytes, std::memory_order_relaxed);
  const double put_us = sim_.ChargeUs(write_bytes, false);
  ChargeLatency(sim_, &counters_, put_us);
  if (put_us_hist_ != nullptr) {
    put_us_hist_->Observe(static_cast<uint64_t>(put_us));
  }
  return injected;
}

// Composite of ObjectSize + GetRange; both legs are individually guarded,
// so no breaker wrapper here (it would double-count probe slots).
Status ObjectStore::GetObject(const std::string& key, std::string* out) {
  uint64_t size = 0;
  TU_RETURN_IF_ERROR(ObjectSize(key, &size));
  return GetRange(key, 0, size, out);
}

Status ObjectStore::GetRangeImpl(const std::string& key, uint64_t offset,
                                 size_t n, std::string* out) {
  if (sim_.fault != nullptr) {
    Status injected = sim_.fault->Intercept(FaultOp::kGet, key);
    if (!injected.ok()) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      return injected;
    }
  }
  const std::string path = KeyPath(key);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(key);
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  out->resize(n);
  ssize_t got = ::pread(fd, out->data(), n, static_cast<off_t>(offset));
  ::close(fd);
  if (got < 0) {
    return Status::IOError("pread " + path + ": " + strerror(errno));
  }
  out->resize(static_cast<size_t>(got));
  if (sim_.fault != nullptr) {
    // Silent on-read corruption: the read succeeds but the bytes handed to
    // the caller are wrong (poisoned cache / flaky NIC model).
    sim_.fault->InterceptReadPayload(FaultOp::kGet, key, out);
  }
  if (n > 0 && got == 0) {
    // Reads that start within the object return a (possibly short) prefix;
    // an offset at or past the end is a caller error, as in S3's 416.
    return Status::InvalidArgument("offset " + std::to_string(offset) +
                                   " at or beyond size of " + key);
  }
  counters_.get_ops.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_read.fetch_add(static_cast<uint64_t>(got),
                                 std::memory_order_relaxed);
  const bool first = MarkRead(key);
  const double get_us = sim_.ChargeUs(static_cast<uint64_t>(got), first);
  ChargeLatency(sim_, &counters_, get_us);
  if (get_us_hist_ != nullptr) {
    get_us_hist_->Observe(static_cast<uint64_t>(get_us));
  }
  return Status::OK();
}

Status ObjectStore::DeleteObjectImpl(const std::string& key) {
  if (sim_.fault != nullptr) {
    Status injected = sim_.fault->Intercept(FaultOp::kDelete, key);
    if (!injected.ok()) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      return injected;
    }
  }
  counters_.delete_ops.fetch_add(1, std::memory_order_relaxed);
  if (::unlink(KeyPath(key).c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound(key);
    return Status::IOError("delete " + key + ": " + strerror(errno));
  }
  return Status::OK();
}

Status ObjectStore::ObjectExistsImpl(const std::string& key) const {
  if (sim_.fault != nullptr) {
    Status injected = sim_.fault->Intercept(FaultOp::kStat, key);
    if (!injected.ok()) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      return injected;
    }
  }
  struct stat st;
  if (::stat(KeyPath(key).c_str(), &st) != 0) return Status::NotFound(key);
  return Status::OK();
}

Status ObjectStore::ObjectSizeImpl(const std::string& key,
                                   uint64_t* size) const {
  if (sim_.fault != nullptr) {
    Status injected = sim_.fault->Intercept(FaultOp::kStat, key);
    if (!injected.ok()) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      return injected;
    }
  }
  struct stat st;
  if (::stat(KeyPath(key).c_str(), &st) != 0) return Status::NotFound(key);
  *size = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Status ObjectStore::RenameObjectImpl(const std::string& src,
                                     const std::string& dst) {
  if (sim_.fault != nullptr) {
    Status injected = sim_.fault->Intercept(FaultOp::kRename, src);
    if (!injected.ok()) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      return injected;
    }
  }
  const std::string src_path = KeyPath(src);
  const std::string dst_path = KeyPath(dst);
  if (::rename(src_path.c_str(), dst_path.c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound(src);
    return Status::IOError("rename " + src + ": " + strerror(errno));
  }
  // One metadata request: per-op latency, no payload bytes.
  ChargeLatency(sim_, &counters_, sim_.ChargeUs(0, false));
  return Status::OK();
}

Status ObjectStore::ListObjectsImpl(const std::string& prefix,
                                    std::vector<std::string>* keys) const {
  if (sim_.fault != nullptr) {
    Status injected = sim_.fault->Intercept(FaultOp::kList, prefix);
    if (!injected.ok()) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      return injected;
    }
  }
  keys->clear();
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    const std::string key = DecodeKey(entry.path().filename().string());
    if (key.starts_with(prefix)) keys->push_back(key);
  }
  if (ec) return Status::IOError("list: " + ec.message());
  std::sort(keys->begin(), keys->end());
  return Status::OK();
}

Status ObjectStore::CorruptObjectAtRest(const std::string& key,
                                        uint64_t offset, uint8_t xor_mask) {
  const std::string path = KeyPath(key);
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(key);
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size == 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot corrupt empty object " + key);
  }
  off_t pos = static_cast<off_t>(
      std::min<uint64_t>(offset, static_cast<uint64_t>(st.st_size) - 1));
  char b = 0;
  if (::pread(fd, &b, 1, pos) != 1) {
    ::close(fd);
    return Status::IOError("pread " + path + ": " + strerror(errno));
  }
  b = static_cast<char>(static_cast<uint8_t>(b) ^
                        (xor_mask != 0 ? xor_mask : 0x01));
  ssize_t wrote = ::pwrite(fd, &b, 1, pos);
  ::close(fd);
  if (wrote != 1) {
    return Status::IOError("pwrite " + path + ": " + strerror(errno));
  }
  return Status::OK();
}

uint64_t ObjectStore::TotalBytesUsed() const {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (entry.is_regular_file(ec)) total += entry.file_size(ec);
  }
  return total;
}

bool ObjectStore::MarkRead(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  return read_before_.insert(key).second;
}

}  // namespace tu::cloud
