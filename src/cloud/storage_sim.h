// Cloud storage simulation: local-disk-backed block and object tiers with
// configurable latency/bandwidth models and request/byte counters.
//
// Substitutes AWS EBS / AWS S3 (see DESIGN.md). The paper's cost analysis
// models EBS as a bandwidth cost (Eq. 3/5: bytes / bandwidth) and S3 as a
// per-Get-request cost (Eq. 4/6: one Get per SSTable data block), so the
// simulation charges exactly those terms and additionally reproduces the
// first-read penalty observed in Fig. 1c.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cloud/circuit_breaker.h"
#include "cloud/retry_policy.h"

namespace tu::cloud {

class FaultInjector;

/// Latency model of one storage tier. Latencies are charged per operation:
///   latency_us = per_op_latency_us + bytes / bandwidth_bytes_per_us
/// optionally multiplied by first_read_penalty on the first read of an
/// object. With `real_sleep`, the calling thread actually sleeps for the
/// charged latency (scaled by `sleep_scale`), so foreground/background
/// interference is physically reproduced; simulated time is accounted
/// either way.
struct TierSimOptions {
  double per_op_latency_us = 0.0;
  double bandwidth_mb_per_s = 1e9;  // effectively unlimited by default
  double first_read_penalty = 1.0;  // multiplier on the first read of an object
  bool real_sleep = false;
  double sleep_scale = 1.0;  // fraction of charged latency actually slept

  /// Optional scripted failure model consulted before each operation
  /// (see fault_injector.h). Null = every op succeeds.
  std::shared_ptr<FaultInjector> fault;

  /// Backoff policy the engine's call sites apply to this tier's
  /// retryable (transient) errors.
  RetryPolicy retry;

  /// Circuit breaker guarding every operation against this tier (only the
  /// object store consults it; the fast tier is assumed local and
  /// reliable). Disabled by default for unit-test tiers; S3Defaults()
  /// enables it.
  CircuitBreakerOptions breaker;

  /// AWS EBS gp2-like defaults, calibrated against Fig. 1: ~0.1 ms/op,
  /// ~250 MB/s, first read 1.8x slower.
  static TierSimOptions EbsDefaults();

  /// AWS S3-like defaults: ~2 ms per request (scaled-down from ~20 ms wall
  /// clock to keep benches fast; ratios to EBS preserved), ~50 MB/s,
  /// first read 1.71x slower.
  static TierSimOptions S3Defaults();

  /// No latency, no sleep: for unit tests.
  static TierSimOptions Instant() { return TierSimOptions{}; }

  double ChargeUs(uint64_t bytes, bool first_read) const;
};

/// Per-tier operation counters: the measurements behind Fig. 4b, the
/// compaction cost analysis (Eqs. 7-10), and the traffic reports.
struct TierCounters {
  std::atomic<uint64_t> get_ops{0};
  std::atomic<uint64_t> put_ops{0};
  std::atomic<uint64_t> delete_ops{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  /// Total charged latency in microseconds (simulated time).
  std::atomic<uint64_t> charged_us{0};
  /// Failures the fault injector produced against this tier.
  std::atomic<uint64_t> faults_injected{0};
  /// Operations re-issued by RunWithRetry after a transient error.
  std::atomic<uint64_t> retries{0};
  /// Retry loops that exhausted their attempt/time budget.
  std::atomic<uint64_t> retry_give_ups{0};
  /// Calls rejected up front because the circuit breaker was open.
  std::atomic<uint64_t> breaker_rejections{0};
  /// Closed/half-open -> open transitions of the circuit breaker.
  std::atomic<uint64_t> breaker_opens{0};

  void Reset();
  std::string Report(const std::string& tier_name) const;
};

/// Charges `us` of latency against `counters`, sleeping if the model says so.
void ChargeLatency(const TierSimOptions& opts, TierCounters* counters,
                   double us);

}  // namespace tu::cloud
