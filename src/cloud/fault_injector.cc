#include "cloud/fault_injector.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace tu::cloud {

FaultRule FaultRule::Transient(uint32_t op_mask, double probability,
                               std::string key_prefix) {
  FaultRule rule;
  rule.ops = op_mask;
  rule.probability = probability;
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kTransient;
  return rule;
}

FaultRule FaultRule::Permanent(uint32_t op_mask, uint64_t fail_nth,
                               std::string key_prefix) {
  FaultRule rule;
  rule.ops = op_mask;
  rule.fail_nth = fail_nth;
  rule.max_fires = 1;
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kPermanent;
  return rule;
}

FaultRule FaultRule::TornWrite(uint32_t op_mask, uint64_t fail_nth,
                               double keep_fraction, std::string key_prefix) {
  FaultRule rule;
  rule.ops = op_mask;
  rule.fail_nth = fail_nth;
  rule.max_fires = 1;
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kTornWrite;
  rule.torn_keep_fraction = keep_fraction;
  return rule;
}

FaultRule FaultRule::BitFlipRead(double probability, std::string key_prefix,
                                 uint64_t offset, uint8_t mask) {
  FaultRule rule;
  rule.ops = FaultOpMask(FaultOp::kGet);
  rule.probability = probability;
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kBitFlipRead;
  rule.corrupt_offset = offset;
  rule.corrupt_mask = mask;
  return rule;
}

FaultRule FaultRule::BitFlipWrite(uint64_t fail_nth, std::string key_prefix,
                                  uint64_t offset, uint8_t mask) {
  FaultRule rule;
  rule.ops = FaultOp::kPut | FaultOp::kAppend;
  rule.fail_nth = fail_nth;
  rule.max_fires = 1;
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kBitFlipWrite;
  rule.corrupt_offset = offset;
  rule.corrupt_mask = mask;
  return rule;
}

FaultRule FaultRule::TruncateRead(uint64_t fail_nth, uint64_t keep_bytes,
                                  std::string key_prefix) {
  FaultRule rule;
  rule.ops = FaultOpMask(FaultOp::kGet);
  rule.fail_nth = fail_nth;
  rule.max_fires = 1;
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kTruncateRead;
  rule.corrupt_offset = keep_bytes;
  return rule;
}

FaultRule FaultRule::TruncateWrite(uint64_t fail_nth, uint64_t keep_bytes,
                                   std::string key_prefix) {
  FaultRule rule;
  rule.ops = FaultOp::kPut | FaultOp::kAppend;
  rule.fail_nth = fail_nth;
  rule.max_fires = 1;
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kTruncateWrite;
  rule.corrupt_offset = keep_bytes;
  return rule;
}

FaultRule FaultRule::NoSpace(uint32_t op_mask, std::string key_prefix,
                             int release_after_fires) {
  FaultRule rule;
  rule.ops = op_mask;
  rule.probability = 1.0;  // a full disk stays full: fire on every match
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kNoSpace;
  rule.max_fires = release_after_fires;
  return rule;
}

namespace {

bool IsReadCorruption(FaultRule::Kind kind) {
  return kind == FaultRule::Kind::kBitFlipRead ||
         kind == FaultRule::Kind::kTruncateRead;
}

bool IsWriteCorruption(FaultRule::Kind kind) {
  return kind == FaultRule::Kind::kBitFlipWrite ||
         kind == FaultRule::Kind::kTruncateWrite;
}

bool IsCorruption(FaultRule::Kind kind) {
  return IsReadCorruption(kind) || IsWriteCorruption(kind);
}

}  // namespace

void FaultInjector::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

void FaultInjector::SetPolicy(FaultPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_ = std::move(policy.rules);
}

void FaultInjector::ArmCrashPoint(const std::string& site,
                                  uint64_t skip_hits) {
  std::lock_guard<std::mutex> lock(mu_);
  CrashPoint& point = crash_points_[site];
  point.skip_hits = skip_hits;
  point.hits = 0;
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  crash_points_.clear();
  faults_injected_ = 0;
}

Status FaultInjector::Intercept(FaultOp op, const std::string& key) {
  size_t ignored = 0;
  return InterceptWrite(op, key, 0, &ignored);
}

Status FaultInjector::InterceptWrite(FaultOp op, const std::string& key,
                                     size_t size, size_t* keep_bytes) {
  *keep_bytes = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (FaultRule& rule : rules_) {
    // Corruption kinds fire from the payload interceptors, not here — the
    // operation itself must succeed for the corruption to be silent.
    if (IsCorruption(rule.kind)) continue;
    if ((rule.ops & FaultOpMask(op)) == 0) continue;
    if (!rule.key_prefix.empty() &&
        key.compare(0, rule.key_prefix.size(), rule.key_prefix) != 0) {
      continue;
    }
    rule.matches++;
    if (rule.max_fires >= 0 &&
        rule.fires >= static_cast<uint64_t>(rule.max_fires)) {
      continue;
    }
    bool fire = false;
    if (rule.fail_nth > 0) {
      fire = (rule.matches == rule.fail_nth);
    } else if (rule.probability > 0.0) {
      fire = (rng_.NextDouble() < rule.probability);
    }
    if (!fire) continue;
    rule.fires++;
    faults_injected_++;
    switch (rule.kind) {
      case FaultRule::Kind::kTransient:
        return Status::Busy("injected transient fault on " + key);
      case FaultRule::Kind::kPermanent:
        return Status::IOError("injected permanent fault on " + key);
      case FaultRule::Kind::kNoSpace:
        return Status::OutOfSpace("injected disk full on " + key);
      case FaultRule::Kind::kTornWrite:
        *keep_bytes = static_cast<size_t>(static_cast<double>(size) *
                                          rule.torn_keep_fraction);
        if (*keep_bytes >= size && size > 0) *keep_bytes = size - 1;
        return Status::IOError("injected torn write on " + key);
      case FaultRule::Kind::kCrash:
        std::fprintf(stderr, "[fault_injector] crash rule fired on %s\n",
                     key.c_str());
        std::fflush(stderr);
        std::_Exit(kFaultCrashExitCode);
      default:  // corruption kinds were skipped above
        break;
    }
  }
  return Status::OK();
}

bool FaultInjector::MutatePayload(FaultOp op, const std::string& key,
                                  bool write_side, std::string* data) {
  std::lock_guard<std::mutex> lock(mu_);
  bool mutated = false;
  for (FaultRule& rule : rules_) {
    if (write_side ? !IsWriteCorruption(rule.kind)
                   : !IsReadCorruption(rule.kind)) {
      continue;
    }
    if ((rule.ops & FaultOpMask(op)) == 0) continue;
    if (!rule.key_prefix.empty() &&
        key.compare(0, rule.key_prefix.size(), rule.key_prefix) != 0) {
      continue;
    }
    rule.matches++;
    if (rule.max_fires >= 0 &&
        rule.fires >= static_cast<uint64_t>(rule.max_fires)) {
      continue;
    }
    bool fire = false;
    if (rule.fail_nth > 0) {
      fire = (rule.matches == rule.fail_nth);
    } else if (rule.probability > 0.0) {
      fire = (rng_.NextDouble() < rule.probability);
    }
    if (!fire) continue;
    rule.fires++;
    faults_injected_++;
    switch (rule.kind) {
      case FaultRule::Kind::kBitFlipRead:
      case FaultRule::Kind::kBitFlipWrite: {
        if (data->empty()) break;
        size_t pos;
        if (rule.corrupt_offset == FaultRule::kUseRandomOffset) {
          pos = static_cast<size_t>(rng_.Next64() % data->size());
        } else {
          pos = static_cast<size_t>(
              std::min<uint64_t>(rule.corrupt_offset, data->size() - 1));
        }
        uint8_t mask = rule.corrupt_mask != 0 ? rule.corrupt_mask : 0x01;
        (*data)[pos] = static_cast<char>(
            static_cast<uint8_t>((*data)[pos]) ^ mask);
        mutated = true;
        break;
      }
      case FaultRule::Kind::kTruncateRead:
      case FaultRule::Kind::kTruncateWrite: {
        size_t keep = static_cast<size_t>(
            std::min<uint64_t>(rule.corrupt_offset, data->size()));
        if (keep >= data->size() && !data->empty()) keep = data->size() - 1;
        data->resize(keep);
        mutated = true;
        break;
      }
      default:
        break;
    }
    if (mutated) return true;  // one firing rule corrupts per payload
  }
  return false;
}

void FaultInjector::InterceptReadPayload(FaultOp op, const std::string& key,
                                         std::string* data) {
  MutatePayload(op, key, /*write_side=*/false, data);
}

bool FaultInjector::InterceptWritePayload(FaultOp op, const std::string& key,
                                          std::string* data) {
  return MutatePayload(op, key, /*write_side=*/true, data);
}

void FaultInjector::MaybeCrash(const std::string& site) {
  bool crash = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = crash_points_.find(site);
    if (it == crash_points_.end()) return;
    it->second.hits++;
    crash = (it->second.hits > it->second.skip_hits);
    if (crash) faults_injected_++;
  }
  if (crash) {
    std::fprintf(stderr, "[fault_injector] crash point \"%s\" fired\n",
                 site.c_str());
    std::fflush(stderr);
    std::_Exit(kFaultCrashExitCode);
  }
}

size_t FaultInjector::ReleaseNoSpace() {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t before = rules_.size();
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [](const FaultRule& r) {
                                return r.kind == FaultRule::Kind::kNoSpace;
                              }),
               rules_.end());
  return before - rules_.size();
}

uint64_t FaultInjector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

uint64_t FaultInjector::CrashPointHits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = crash_points_.find(site);
  return it == crash_points_.end() ? 0 : it->second.hits;
}

}  // namespace tu::cloud
