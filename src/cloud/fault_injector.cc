#include "cloud/fault_injector.h"

#include <cstdio>
#include <cstdlib>

namespace tu::cloud {

FaultRule FaultRule::Transient(uint32_t op_mask, double probability,
                               std::string key_prefix) {
  FaultRule rule;
  rule.ops = op_mask;
  rule.probability = probability;
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kTransient;
  return rule;
}

FaultRule FaultRule::Permanent(uint32_t op_mask, uint64_t fail_nth,
                               std::string key_prefix) {
  FaultRule rule;
  rule.ops = op_mask;
  rule.fail_nth = fail_nth;
  rule.max_fires = 1;
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kPermanent;
  return rule;
}

FaultRule FaultRule::TornWrite(uint32_t op_mask, uint64_t fail_nth,
                               double keep_fraction, std::string key_prefix) {
  FaultRule rule;
  rule.ops = op_mask;
  rule.fail_nth = fail_nth;
  rule.max_fires = 1;
  rule.key_prefix = std::move(key_prefix);
  rule.kind = Kind::kTornWrite;
  rule.torn_keep_fraction = keep_fraction;
  return rule;
}

void FaultInjector::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

void FaultInjector::SetPolicy(FaultPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_ = std::move(policy.rules);
}

void FaultInjector::ArmCrashPoint(const std::string& site,
                                  uint64_t skip_hits) {
  std::lock_guard<std::mutex> lock(mu_);
  CrashPoint& point = crash_points_[site];
  point.skip_hits = skip_hits;
  point.hits = 0;
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  crash_points_.clear();
  faults_injected_ = 0;
}

Status FaultInjector::Intercept(FaultOp op, const std::string& key) {
  size_t ignored = 0;
  return InterceptWrite(op, key, 0, &ignored);
}

Status FaultInjector::InterceptWrite(FaultOp op, const std::string& key,
                                     size_t size, size_t* keep_bytes) {
  *keep_bytes = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (FaultRule& rule : rules_) {
    if ((rule.ops & FaultOpMask(op)) == 0) continue;
    if (!rule.key_prefix.empty() &&
        key.compare(0, rule.key_prefix.size(), rule.key_prefix) != 0) {
      continue;
    }
    rule.matches++;
    if (rule.max_fires >= 0 &&
        rule.fires >= static_cast<uint64_t>(rule.max_fires)) {
      continue;
    }
    bool fire = false;
    if (rule.fail_nth > 0) {
      fire = (rule.matches == rule.fail_nth);
    } else if (rule.probability > 0.0) {
      fire = (rng_.NextDouble() < rule.probability);
    }
    if (!fire) continue;
    rule.fires++;
    faults_injected_++;
    switch (rule.kind) {
      case FaultRule::Kind::kTransient:
        return Status::Busy("injected transient fault on " + key);
      case FaultRule::Kind::kPermanent:
        return Status::IOError("injected permanent fault on " + key);
      case FaultRule::Kind::kTornWrite:
        *keep_bytes = static_cast<size_t>(static_cast<double>(size) *
                                          rule.torn_keep_fraction);
        if (*keep_bytes >= size && size > 0) *keep_bytes = size - 1;
        return Status::IOError("injected torn write on " + key);
      case FaultRule::Kind::kCrash:
        std::fprintf(stderr, "[fault_injector] crash rule fired on %s\n",
                     key.c_str());
        std::fflush(stderr);
        std::_Exit(kFaultCrashExitCode);
    }
  }
  return Status::OK();
}

void FaultInjector::MaybeCrash(const std::string& site) {
  bool crash = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = crash_points_.find(site);
    if (it == crash_points_.end()) return;
    it->second.hits++;
    crash = (it->second.hits > it->second.skip_hits);
    if (crash) faults_injected_++;
  }
  if (crash) {
    std::fprintf(stderr, "[fault_injector] crash point \"%s\" fired\n",
                 site.c_str());
    std::fflush(stderr);
    std::_Exit(kFaultCrashExitCode);
  }
}

uint64_t FaultInjector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

uint64_t FaultInjector::CrashPointHits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = crash_points_.find(site);
  return it == crash_points_.end() ? 0 : it->second.hits;
}

}  // namespace tu::cloud
