#include "cloud/storage_sim.h"

#include <chrono>
#include <sstream>
#include <thread>

namespace tu::cloud {

TierSimOptions TierSimOptions::EbsDefaults() {
  TierSimOptions o;
  o.per_op_latency_us = 100.0;
  o.bandwidth_mb_per_s = 250.0;
  o.first_read_penalty = 1.8;
  o.real_sleep = true;
  o.sleep_scale = 0.1;  // keep benches fast; ratios preserved via charged_us
  return o;
}

TierSimOptions TierSimOptions::S3Defaults() {
  TierSimOptions o;
  o.per_op_latency_us = 2000.0;
  o.bandwidth_mb_per_s = 50.0;
  o.first_read_penalty = 1.71;
  o.real_sleep = true;
  o.sleep_scale = 0.1;
  // The realistic S3 sim gets the breaker by default: without faults it
  // never trips, and under an outage it is the behavior we want to model.
  o.breaker.enabled = true;
  return o;
}

double TierSimOptions::ChargeUs(uint64_t bytes, bool first_read) const {
  const double bandwidth_bytes_per_us = bandwidth_mb_per_s;  // MB/s == B/us
  double us = per_op_latency_us +
              static_cast<double>(bytes) / bandwidth_bytes_per_us;
  if (first_read) us *= first_read_penalty;
  return us;
}

void TierCounters::Reset() {
  get_ops = 0;
  put_ops = 0;
  delete_ops = 0;
  bytes_read = 0;
  bytes_written = 0;
  charged_us = 0;
  faults_injected = 0;
  retries = 0;
  retry_give_ups = 0;
  breaker_rejections = 0;
  breaker_opens = 0;
}

std::string TierCounters::Report(const std::string& tier_name) const {
  std::ostringstream os;
  os << tier_name << ": gets=" << get_ops.load() << " puts=" << put_ops.load()
     << " deletes=" << delete_ops.load() << " read_bytes=" << bytes_read.load()
     << " written_bytes=" << bytes_written.load()
     << " charged_ms=" << charged_us.load() / 1000
     << " faults=" << faults_injected.load() << " retries=" << retries.load()
     << " give_ups=" << retry_give_ups.load()
     << " breaker_rejections=" << breaker_rejections.load()
     << " breaker_opens=" << breaker_opens.load();
  return os.str();
}

void ChargeLatency(const TierSimOptions& opts, TierCounters* counters,
                   double us) {
  counters->charged_us.fetch_add(static_cast<uint64_t>(us),
                                 std::memory_order_relaxed);
  if (opts.real_sleep && us * opts.sleep_scale >= 1.0) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<int64_t>(us * opts.sleep_scale)));
  }
}

}  // namespace tu::cloud
