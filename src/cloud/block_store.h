// BlockStore: the fast cloud tier (AWS EBS substitute). Behaves like a
// locally attached disk — file-granular API with appends and positional
// reads — with the EBS latency/bandwidth model charged per operation.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "cloud/storage_sim.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::cloud {

class BlockStore;

/// Append-only file handle on the block tier (SSTable/log writing).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  virtual uint64_t Size() const = 0;
};

/// Positional-read file handle on the block tier (SSTable reading).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to n bytes at `offset`; *result points into *scratch.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      std::string* scratch) const = 0;
  virtual uint64_t Size() const = 0;
};

/// The fast tier. All paths are relative to the store root directory.
class BlockStore {
 public:
  BlockStore(std::string root_dir, TierSimOptions sim);

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* out);
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* out);

  /// Reads a whole file into *out (metadata/manifest loading).
  Status ReadFileToString(const std::string& fname, std::string* out);
  /// Writes `data` as the complete contents of `fname` (atomic via rename).
  Status WriteStringToFile(const std::string& fname, const Slice& data);

  Status DeleteFile(const std::string& fname);
  Status RenameFile(const std::string& src, const std::string& dst);
  Status FileExists(const std::string& fname) const;
  Status GetFileSize(const std::string& fname, uint64_t* size) const;
  Status ListDir(const std::string& dir, std::vector<std::string>* names) const;
  Status CreateDir(const std::string& dir);

  /// Total bytes stored under the root (the "EBS usage" of Figs. 18/19).
  uint64_t TotalBytesUsed() const;

  /// Test hook: silently XOR `xor_mask` into the stored byte at `offset`
  /// (clamped to the file), planting at-rest corruption without going
  /// through the write path. Bypasses counters and the injector.
  Status CorruptFileAtRest(const std::string& fname, uint64_t offset,
                           uint8_t xor_mask = 0x01);

  const TierCounters& counters() const { return counters_; }
  TierCounters& counters() { return counters_; }
  const TierSimOptions& sim() const { return sim_; }
  const std::string& root() const { return root_; }
  /// The scripted failure model for this tier, or null.
  FaultInjector* fault() const { return sim_.fault.get(); }
  /// Records one injected fault against this tier (used by file handles).
  void CountFault() const {
    counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
  }

  std::string FullPath(const std::string& fname) const {
    return root_ + "/" + fname;
  }

  /// Charges a read of `bytes` against the tier model. `fname` identifies
  /// the object for first-read tracking.
  void ChargeRead(const std::string& fname, uint64_t bytes);
  void ChargeWrite(uint64_t bytes);

 private:
  bool MarkRead(const std::string& fname);

  std::string root_;
  TierSimOptions sim_;
  // Mutable: const probes (Exists/Size/List) still count injected faults.
  mutable TierCounters counters_;

  mutable std::mutex mu_;
  std::unordered_set<std::string> read_before_;
};

}  // namespace tu::cloud
