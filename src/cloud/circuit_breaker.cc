#include "cloud/circuit_breaker.h"

#include <chrono>

#include "cloud/storage_sim.h"

namespace tu::cloud {

namespace {
uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options,
                               TierCounters* counters)
    : options_(std::move(options)), counters_(counters) {
  outcome_ring_.assign(options_.window > 0 ? options_.window : 1, 0);
}

Status CircuitBreaker::Admit() {
  if (!options_.enabled) return Status::OK();
  const uint64_t now = options_.now_us ? options_.now_us() : SteadyNowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kOpen &&
      now - opened_at_us_ >= options_.open_cooldown_us) {
    state_ = BreakerState::kHalfOpen;
    probes_inflight_ = 0;
    probe_successes_ = 0;
    NotifyTransitionLocked(BreakerState::kOpen, BreakerState::kHalfOpen);
  }
  switch (state_) {
    case BreakerState::kClosed:
      return Status::OK();
    case BreakerState::kHalfOpen:
      if (probes_inflight_ < options_.half_open_max_probes) {
        ++probes_inflight_;
        return Status::OK();
      }
      break;
    case BreakerState::kOpen:
      break;
  }
  ++rejections_;
  if (counters_ != nullptr) {
    counters_->breaker_rejections.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Unavailable("slow tier circuit breaker open");
}

void CircuitBreaker::OnResult(const Status& s) {
  if (!options_.enabled) return;
  const bool failure = IsFailure(s);
  const uint64_t now = options_.now_us ? options_.now_us() : SteadyNowUs();
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      RecordOutcomeLocked(failure);
      if (consecutive_failures_ >= options_.consecutive_failures_to_open ||
          (ring_count_ >= options_.min_samples &&
           static_cast<double>(ring_failures_) >=
               options_.failure_rate_to_open *
                   static_cast<double>(ring_count_))) {
        TripOpenLocked(now);
      }
      break;
    case BreakerState::kHalfOpen:
      if (probes_inflight_ > 0) --probes_inflight_;
      if (failure) {
        TripOpenLocked(now);
      } else if (++probe_successes_ >= options_.half_open_successes_to_close) {
        CloseLocked();
      }
      break;
    case BreakerState::kOpen:
      // A call admitted before the trip finished after it; its outcome no
      // longer matters.
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  if (!options_.enabled) return BreakerState::kClosed;
  const uint64_t now = options_.now_us ? options_.now_us() : SteadyNowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kOpen &&
      now - opened_at_us_ >= options_.open_cooldown_us) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

uint64_t CircuitBreaker::rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejections_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

void CircuitBreaker::TripOpenLocked(uint64_t now) {
  const BreakerState from = state_;
  state_ = BreakerState::kOpen;
  opened_at_us_ = now;
  ++opens_;
  if (counters_ != nullptr) {
    counters_->breaker_opens.fetch_add(1, std::memory_order_relaxed);
  }
  NotifyTransitionLocked(from, BreakerState::kOpen);
}

void CircuitBreaker::CloseLocked() {
  const BreakerState from = state_;
  NotifyTransitionLocked(from, BreakerState::kClosed);
  state_ = BreakerState::kClosed;
  outcome_ring_.assign(outcome_ring_.size(), 0);
  ring_next_ = 0;
  ring_count_ = 0;
  ring_failures_ = 0;
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordOutcomeLocked(bool failure) {
  if (ring_count_ == outcome_ring_.size()) {
    ring_failures_ -= outcome_ring_[ring_next_];
  } else {
    ++ring_count_;
  }
  outcome_ring_[ring_next_] = failure ? 1 : 0;
  ring_failures_ += failure ? 1 : 0;
  ring_next_ = (ring_next_ + 1) % static_cast<uint32_t>(outcome_ring_.size());
  consecutive_failures_ = failure ? consecutive_failures_ + 1 : 0;
}

void CircuitBreaker::NotifyTransitionLocked(BreakerState from,
                                            BreakerState to) {
  if (from != to && options_.on_transition) options_.on_transition(from, to);
}

}  // namespace tu::cloud
