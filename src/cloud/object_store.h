// ObjectStore: the slow cloud tier (AWS S3 substitute). Object-granular API
// — whole-object Put, ranged Get (each call is one billable Get request),
// Delete, List — backed by a local directory, with the S3 latency model.
// API shape is MinIO/S3-compatible so a real client could be dropped in.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "cloud/circuit_breaker.h"
#include "cloud/storage_sim.h"
#include "obs/metrics.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::cloud {

class ObjectStore {
 public:
  ObjectStore(std::string root_dir, TierSimOptions sim);

  /// Uploads a complete object (objects are immutable; re-Put overwrites).
  Status PutObject(const std::string& key, const Slice& data);

  /// Downloads a whole object. One Get request.
  Status GetObject(const std::string& key, std::string* out);

  /// Ranged read [offset, offset+n). One Get request regardless of n —
  /// this is the per-request cost structure behind Eqs. 4/6.
  Status GetRange(const std::string& key, uint64_t offset, size_t n,
                  std::string* out);

  Status DeleteObject(const std::string& key);
  Status ObjectExists(const std::string& key) const;
  Status ObjectSize(const std::string& key, uint64_t* size) const;

  /// Atomically renames `src` to `dst` (models an S3 server-side
  /// copy+delete used as the commit step of an atomic upload protocol).
  Status RenameObject(const std::string& src, const std::string& dst);

  /// Lists keys with the given prefix (lexicographic order).
  Status ListObjects(const std::string& prefix,
                     std::vector<std::string>* keys) const;

  /// Total bytes stored (the S3 usage reports).
  uint64_t TotalBytesUsed() const;

  /// Test hook: silently XOR `xor_mask` into the stored byte at `offset`
  /// (clamped to the object), planting at-rest corruption without going
  /// through the write path. Bypasses the breaker, counters and injector.
  Status CorruptObjectAtRest(const std::string& key, uint64_t offset,
                             uint8_t xor_mask = 0x01);

  const TierCounters& counters() const { return counters_; }
  TierCounters& counters() { return counters_; }
  const TierSimOptions& sim() const { return sim_; }
  /// The scripted failure model for this tier, or null.
  FaultInjector* fault() const { return sim_.fault.get(); }
  /// Circuit breaker guarding this tier (no-op unless sim.breaker.enabled).
  CircuitBreaker& breaker() const { return breaker_; }

  /// Observability: per-op latency histograms recording the cost model's
  /// charged (simulated) microseconds for each successful Put / ranged Get.
  /// Null pointers disable recording. Not thread-safe against in-flight
  /// ops — install once right after construction.
  void set_op_latency_histograms(obs::Histogram* put_us,
                                 obs::Histogram* get_us) {
    put_us_hist_ = put_us;
    get_us_hist_ = get_us;
  }

 private:
  std::string KeyPath(const std::string& key) const;
  bool MarkRead(const std::string& key);
  /// Runs `op` behind the breaker: rejected with Unavailable while open,
  /// otherwise executed with its outcome fed back to the state machine.
  Status Guarded(const std::function<Status()>& op) const;

  Status PutObjectImpl(const std::string& key, const Slice& data);
  Status GetRangeImpl(const std::string& key, uint64_t offset, size_t n,
                      std::string* out);
  Status DeleteObjectImpl(const std::string& key);
  Status ObjectExistsImpl(const std::string& key) const;
  Status ObjectSizeImpl(const std::string& key, uint64_t* size) const;
  Status RenameObjectImpl(const std::string& src, const std::string& dst);
  Status ListObjectsImpl(const std::string& prefix,
                         std::vector<std::string>* keys) const;

  std::string root_;
  TierSimOptions sim_;
  // Mutable: const probes (Exists/Size/List) still count injected faults.
  mutable TierCounters counters_;
  mutable CircuitBreaker breaker_;

  obs::Histogram* put_us_hist_ = nullptr;
  obs::Histogram* get_us_hist_ = nullptr;

  mutable std::mutex mu_;
  std::unordered_set<std::string> read_before_;
};

}  // namespace tu::cloud
