#include "cloud/tiered_env.h"

#include "util/mmap_file.h"

namespace tu::cloud {

TieredEnv::TieredEnv(const std::string& workspace, TieredEnvOptions options)
    : workspace_(workspace), mmap_dir_(workspace + "/mmap") {
  EnsureDir(workspace_);
  EnsureDir(mmap_dir_);
  fast_ = std::make_unique<BlockStore>(workspace + "/fast", options.fast_sim);
  slow_ = std::make_unique<ObjectStore>(workspace + "/slow", options.slow_sim);
}

std::string TieredEnv::CountersReport() const {
  std::string out = fast_->counters().Report("fast(EBS)") + "\n" +
                    slow_->counters().Report("slow(S3)");
  if (slow_->breaker().enabled()) {
    out += " breaker=";
    out += BreakerStateName(slow_->breaker().state());
  }
  return out;
}

}  // namespace tu::cloud
