#include "cloud/cost_model.h"

#include <cmath>

namespace tu::cloud {

double IndexCostNoGrouping(const GroupingParams& p) {
  return static_cast<double>(p.n) * p.t * (p.s_p + p.s_t);
}

double IndexCostGrouping(const GroupingParams& p) {
  const double n = static_cast<double>(p.n);
  const double groups = n / p.s_g;
  const double postings = groups * p.t_u * p.s_p + (p.t - p.t_g) * n * p.s_p;
  const double tags = groups * p.t_g * p.s_t + (p.t - p.t_g) * n * p.s_t;
  return postings + tags;
}

bool GroupingSavesIndexSpace(const GroupingParams& p) {
  return p.s_g > (p.t_u / p.t_g * p.s_p + p.s_t) / (p.s_p + p.s_t);
}

double QueryCostNoGroupingEbs(const QueryCostParams& q) {
  return static_cast<double>(q.l) * static_cast<double>(q.p) *
         (q.s_data / q.r1) * q.cost_ebs_us_per_byte;
}

double QueryCostNoGroupingS3(const QueryCostParams& q) {
  return static_cast<double>(q.l) * static_cast<double>(q.p) *
         std::ceil(q.s_data / (q.s_block * q.r1)) * q.cost_s3_us_per_get;
}

double QueryCostGroupingEbs(const QueryCostParams& q) {
  return static_cast<double>(q.g) * static_cast<double>(q.p) *
         (q.s_data * q.s_g / q.r2) * q.cost_ebs_us_per_byte;
}

double QueryCostGroupingS3(const QueryCostParams& q) {
  return static_cast<double>(q.g) * static_cast<double>(q.p) *
         std::ceil(q.s_data * q.s_g / (q.s_block * q.r2)) *
         q.cost_s3_us_per_get;
}

double NumLevels(double size, double s_b, double m) {
  // Eq. 7: L = log(size*(M-1)/Sb + 1) / log(M).
  return std::log(size * (m - 1.0) / s_b + 1.0) / std::log(m);
}

double SlowWriteCostMultiLevel(const CompactionCostParams& c) {
  const int l = static_cast<int>(std::floor(NumLevels(c.s_d, c.s_b, c.m)));
  const int l_fast =
      static_cast<int>(std::floor(NumLevels(c.s_fast, c.s_b, c.m)));
  double cost = 0;
  for (int i = 1; i <= l - l_fast; ++i) {
    cost += c.s_b * std::pow(c.m, l_fast + i - 1) * i;
  }
  return cost;
}

double SlowWriteCostOneLevel(const CompactionCostParams& c) {
  const int l = static_cast<int>(std::floor(NumLevels(c.s_d, c.s_b, c.m)));
  const int l_fast =
      static_cast<int>(std::floor(NumLevels(c.s_fast, c.s_b, c.m)));
  double cost = 0;
  for (int i = 1; i <= l - l_fast; ++i) {
    cost += c.s_b * std::pow(c.m, l_fast + i - 1);
  }
  return cost;
}

double SlowWriteCostSaving(const CompactionCostParams& c) {
  return SlowWriteCostMultiLevel(c) - SlowWriteCostOneLevel(c);
}

}  // namespace tu::cloud
