// RetryPolicy: exponential backoff with jitter for slow-tier operations.
// Object stores throttle and fail transiently as a matter of course; the
// engine wraps its slow-tier call sites (L2 uploads, patch writes, block
// fetches) in RunWithRetry so transient errors are absorbed instead of
// surfacing to compaction or queries.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tu::cloud {

struct TierCounters;

struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 5;
  uint64_t initial_backoff_us = 200;
  uint64_t max_backoff_us = 50'000;
  double backoff_multiplier = 2.0;
  /// Fraction of the backoff randomized: sleep ∈ [b*(1-jitter), b].
  double jitter = 0.5;
  /// Give up once cumulative backoff exceeds this budget (0 = unlimited).
  uint64_t total_budget_us = 5'000'000;
  /// Transient (Busy) errors always retry; IOError only if this is set.
  bool retry_io_errors = false;
  /// Retry Corruption too. Off by default — corrupt data rarely heals on
  /// re-read — but the upload read-back verify opts in, because re-putting
  /// the source bytes does heal corruption that happened in flight.
  bool retry_corruption = false;
  /// Actually sleep between attempts. Tests disable for speed.
  bool real_sleep = true;

  bool ShouldRetry(const Status& s) const {
    return s.IsBusy() || (retry_io_errors && s.IsIOError()) ||
           (retry_corruption && s.IsCorruption());
  }

  static RetryPolicy Default() { return RetryPolicy{}; }
  /// No retries at all: each error surfaces immediately.
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// Runs `op` until it succeeds, fails non-retryably, or the policy's
/// attempt/time budget is exhausted. Each retry bumps counters->retries;
/// exhausting the budget on a retryable error bumps counters->retry_give_ups.
/// `what` labels the operation in give-up messages. `counters` may be null.
///
/// When `cancel` is non-null, backoff sleeps are sliced and the loop bails
/// out (without further attempts and without counting a give-up) as soon
/// as the flag becomes true — so a DB tearing down under active fault
/// rules never sits in a multi-second backoff.
Status RunWithRetry(const RetryPolicy& policy, TierCounters* counters,
                    std::string_view what, const std::function<Status()>& op,
                    const std::atomic<bool>* cancel = nullptr);

}  // namespace tu::cloud
