// CostModel: the paper's analytic models —
//   Fig. 1a  storage pricing (EBS ≈ 4x S3; RAM two orders of magnitude more),
//   Eqs. 1-2 grouping index-space cost,
//   Eqs. 3-6 query latency cost on EBS vs S3 with/without grouping,
//   Eqs. 7-10 compaction traffic cost of multi-level vs one-level-on-slow.
// Pure functions: the analysis benches compare these predictions against
// measured counters.
#pragma once

#include <cstdint>

namespace tu::cloud {

/// Fig. 1a: monthly storage price per GB (USD, region ap-northeast-1 as
/// reported in the paper).
struct StoragePricing {
  double s3_per_gb_month = 0.025;
  double ebs_gp2_per_gb_month = 0.096;  // ~4x S3
  double ram_per_gb_month = 10.0;       // >= two orders of magnitude over EBS

  /// Monthly cost of a placement holding `fast_gb` on EBS, `slow_gb` on S3
  /// and `ram_gb` resident.
  double MonthlyCost(double ram_gb, double fast_gb, double slow_gb) const {
    return ram_gb * ram_per_gb_month + fast_gb * ebs_gp2_per_gb_month +
           slow_gb * s3_per_gb_month;
  }
};

/// Table 1 notation for the grouping analysis.
struct GroupingParams {
  uint64_t n = 0;         // N: number of timeseries
  double t = 0;           // T: avg tags per timeseries
  double s_p = 8;         // Sp: bytes per posting-list entry
  double s_t = 15;        // St: bytes per tag
  double s_g = 1;         // Sg: avg timeseries per group
  double t_g = 0;         // Tg: avg group tags per group
  double t_u = 0;         // Tu: avg unique tags per group
};

/// Eq. 1: index space without grouping: N * T * (Sp + St).
double IndexCostNoGrouping(const GroupingParams& p);

/// Eq. 2: index space with grouping.
double IndexCostGrouping(const GroupingParams& p);

/// Grouping saves index space iff Sg > (Tu/Tg*Sp + St) / (Sp + St).
bool GroupingSavesIndexSpace(const GroupingParams& p);

/// Parameters of the query-cost model (Eqs. 3-6).
struct QueryCostParams {
  double cost_ebs_us_per_byte = 1.0 / 250.0;  // 1/bandwidth (us per byte)
  double cost_s3_us_per_get = 2000.0;         // per Get request
  uint64_t p = 1;        // P: time partitions covered
  double s_data = 0;     // raw bytes per series per partition
  double s_block = 4096; // SSTable data block size
  uint64_t l = 1;        // L: located timeseries
  uint64_t g = 1;        // G: located groups
  double s_g = 1;        // group size
  double r1 = 10;        // compression ratio, individual model
  double r2 = 35;        // compression ratio, grouping model
};

/// Eq. 3: individual model, data on EBS.
double QueryCostNoGroupingEbs(const QueryCostParams& q);
/// Eq. 4: individual model, data on S3.
double QueryCostNoGroupingS3(const QueryCostParams& q);
/// Eq. 5: grouping model, data on EBS.
double QueryCostGroupingEbs(const QueryCostParams& q);
/// Eq. 6: grouping model, data on S3.
double QueryCostGroupingS3(const QueryCostParams& q);

/// Parameters of the compaction cost analysis (Eqs. 7-10).
struct CompactionCostParams {
  double s_d = 0;      // total data size (bytes)
  double s_b = 64e6;   // topmost level size
  double m = 10;       // level size multiplier
  double s_fast = 0;   // fast storage size
};

/// Eq. 7: number of levels needed to hold `size` bytes.
double NumLevels(double size, double s_b, double m);

/// Eq. 8: slow-tier write traffic of a traditional multi-level LSM.
double SlowWriteCostMultiLevel(const CompactionCostParams& c);

/// Eq. 9: slow-tier write traffic with a single slow level (TimeUnion).
double SlowWriteCostOneLevel(const CompactionCostParams& c);

/// Eq. 10: traffic saved by the one-level design.
double SlowWriteCostSaving(const CompactionCostParams& c);

}  // namespace tu::cloud
