#include "cloud/block_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "cloud/fault_injector.h"
#include "util/mmap_file.h"

namespace tu::cloud {

namespace {

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(BlockStore* store, std::string fname, int fd)
      : store_(store), fname_(std::move(fname)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    // fsync-failure discipline: after a failed Sync the kernel may have
    // dropped the dirty pages while marking them clean, so neither another
    // Append nor a retried fsync can make this fd durable again. The
    // handle is poisoned; the caller must rebuild the file.
    if (!sync_poison_.ok()) return sync_poison_;
    size_t write_bytes = data.size();
    Status injected;
    if (store_->fault() != nullptr) {
      size_t keep = 0;
      injected = store_->fault()->InterceptWrite(FaultOp::kAppend, fname_,
                                                 data.size(), &keep);
      if (!injected.ok()) {
        store_->CountFault();
        if (keep == 0) return injected;
        // Torn write: the prefix still reaches the file before the error.
        write_bytes = keep;
      }
    }
    // Silent at-rest corruption: a write-side corruption rule replaces the
    // payload while the Append still reports success.
    std::string corrupted;
    const char* p = data.data();
    if (store_->fault() != nullptr) {
      corrupted.assign(data.data(), write_bytes);
      if (store_->fault()->InterceptWritePayload(FaultOp::kAppend, fname_,
                                                 &corrupted)) {
        store_->CountFault();
        p = corrupted.data();
        write_bytes = corrupted.size();
      }
    }
    size_t left = write_bytes;
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("write " + fname_ + ": " + strerror(errno));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    size_ += write_bytes;
    store_->ChargeWrite(write_bytes);
    return injected;
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    // Never re-fsync a poisoned fd: a second fdatasync after a failure can
    // return OK without the lost pages ever reaching disk (fsyncgate).
    if (!sync_poison_.ok()) return sync_poison_;
    if (store_->fault() != nullptr) {
      Status injected = store_->fault()->Intercept(FaultOp::kSync, fname_);
      if (!injected.ok()) {
        store_->CountFault();
        sync_poison_ = injected;
        return injected;
      }
    }
    if (::fdatasync(fd_) != 0) {
      sync_poison_ =
          Status::IOError("fdatasync " + fname_ + ": " + strerror(errno));
      return sync_poison_;
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return Status::IOError("close " + fname_ + ": " + strerror(errno));
    }
    fd_ = -1;
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  BlockStore* store_;
  std::string fname_;
  int fd_;
  uint64_t size_ = 0;
  Status sync_poison_;  // first Sync failure; latched, never retried
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(BlockStore* store, std::string fname, int fd,
                        uint64_t size)
      : store_(store), fname_(std::move(fname)), fd_(fd), size_(size) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              std::string* scratch) const override {
    if (store_->fault() != nullptr) {
      Status injected = store_->fault()->Intercept(FaultOp::kGet, fname_);
      if (!injected.ok()) {
        store_->CountFault();
        return injected;
      }
    }
    scratch->resize(n);
    ssize_t got = ::pread(fd_, scratch->data(), n, static_cast<off_t>(offset));
    if (got < 0) {
      return Status::IOError("pread " + fname_ + ": " + strerror(errno));
    }
    scratch->resize(static_cast<size_t>(got));
    if (store_->fault() != nullptr) {
      // Silent on-read corruption: bytes mutate between the disk and the
      // caller; only a checksum can tell.
      store_->fault()->InterceptReadPayload(FaultOp::kGet, fname_, scratch);
    }
    *result = Slice(scratch->data(), scratch->size());
    store_->ChargeRead(fname_, static_cast<uint64_t>(got));
    if (n > 0 && got == 0) {
      // Same boundary rule as ObjectStore::GetRange: short reads within the
      // file are fine, but a start offset at or past EOF is a caller error.
      return Status::InvalidArgument("offset " + std::to_string(offset) +
                                     " at or beyond size of " + fname_);
    }
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  BlockStore* store_;
  std::string fname_;
  int fd_;
  uint64_t size_;
};

}  // namespace

BlockStore::BlockStore(std::string root_dir, TierSimOptions sim)
    : root_(std::move(root_dir)), sim_(sim) {
  EnsureDir(root_);
}

Status BlockStore::NewWritableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* out) {
  if (fault() != nullptr) {
    Status injected = fault()->Intercept(FaultOp::kOpen, fname);
    if (!injected.ok()) {
      CountFault();
      return injected;
    }
  }
  const std::string path = FullPath(fname);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  out->reset(new PosixWritableFile(this, fname, fd));
  return Status::OK();
}

Status BlockStore::NewRandomAccessFile(const std::string& fname,
                                       std::unique_ptr<RandomAccessFile>* out) {
  if (fault() != nullptr) {
    Status injected = fault()->Intercept(FaultOp::kOpen, fname);
    if (!injected.ok()) {
      CountFault();
      return injected;
    }
  }
  const std::string path = FullPath(fname);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(fname);
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + strerror(errno));
  }
  out->reset(new PosixRandomAccessFile(this, fname, fd,
                                       static_cast<uint64_t>(st.st_size)));
  return Status::OK();
}

Status BlockStore::ReadFileToString(const std::string& fname,
                                    std::string* out) {
  std::unique_ptr<RandomAccessFile> file;
  TU_RETURN_IF_ERROR(NewRandomAccessFile(fname, &file));
  Slice result;
  TU_RETURN_IF_ERROR(file->Read(0, file->Size(), &result, out));
  out->resize(result.size());
  return Status::OK();
}

Status BlockStore::WriteStringToFile(const std::string& fname,
                                     const Slice& data) {
  const std::string tmp = fname + ".tmp";
  std::unique_ptr<WritableFile> file;
  TU_RETURN_IF_ERROR(NewWritableFile(tmp, &file));
  TU_RETURN_IF_ERROR(file->Append(data));
  TU_RETURN_IF_ERROR(file->Sync());
  TU_RETURN_IF_ERROR(file->Close());
  return RenameFile(tmp, fname);
}

Status BlockStore::DeleteFile(const std::string& fname) {
  if (fault() != nullptr) {
    Status injected = fault()->Intercept(FaultOp::kDelete, fname);
    if (!injected.ok()) {
      CountFault();
      return injected;
    }
  }
  counters_.delete_ops.fetch_add(1, std::memory_order_relaxed);
  if (::unlink(FullPath(fname).c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound(fname);
    return Status::IOError("unlink " + fname + ": " + strerror(errno));
  }
  return Status::OK();
}

Status BlockStore::RenameFile(const std::string& src, const std::string& dst) {
  if (fault() != nullptr) {
    Status injected = fault()->Intercept(FaultOp::kRename, src);
    if (!injected.ok()) {
      CountFault();
      return injected;
    }
  }
  if (::rename(FullPath(src).c_str(), FullPath(dst).c_str()) != 0) {
    return Status::IOError("rename " + src + " -> " + dst + ": " +
                           strerror(errno));
  }
  return Status::OK();
}

Status BlockStore::FileExists(const std::string& fname) const {
  if (fault() != nullptr) {
    Status injected = fault()->Intercept(FaultOp::kStat, fname);
    if (!injected.ok()) {
      CountFault();
      return injected;
    }
  }
  struct stat st;
  if (::stat(FullPath(fname).c_str(), &st) != 0) {
    return Status::NotFound(fname);
  }
  return Status::OK();
}

Status BlockStore::GetFileSize(const std::string& fname,
                               uint64_t* size) const {
  if (fault() != nullptr) {
    Status injected = fault()->Intercept(FaultOp::kStat, fname);
    if (!injected.ok()) {
      CountFault();
      return injected;
    }
  }
  struct stat st;
  if (::stat(FullPath(fname).c_str(), &st) != 0) {
    return Status::NotFound(fname);
  }
  *size = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Status BlockStore::ListDir(const std::string& dir,
                           std::vector<std::string>* names) const {
  if (fault() != nullptr) {
    Status injected = fault()->Intercept(FaultOp::kList, dir);
    if (!injected.ok()) {
      CountFault();
      return injected;
    }
  }
  names->clear();
  std::error_code ec;
  const std::string path = dir.empty() ? root_ : FullPath(dir);
  for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
    names->push_back(entry.path().filename().string());
  }
  if (ec) return Status::IOError("listdir " + dir + ": " + ec.message());
  return Status::OK();
}

Status BlockStore::CreateDir(const std::string& dir) {
  return EnsureDir(FullPath(dir));
}

Status BlockStore::CorruptFileAtRest(const std::string& fname, uint64_t offset,
                                     uint8_t xor_mask) {
  const std::string path = FullPath(fname);
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(fname);
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size == 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot corrupt empty file " + fname);
  }
  off_t pos = static_cast<off_t>(
      std::min<uint64_t>(offset, static_cast<uint64_t>(st.st_size) - 1));
  char b = 0;
  if (::pread(fd, &b, 1, pos) != 1) {
    ::close(fd);
    return Status::IOError("pread " + path + ": " + strerror(errno));
  }
  b = static_cast<char>(static_cast<uint8_t>(b) ^
                        (xor_mask != 0 ? xor_mask : 0x01));
  ssize_t wrote = ::pwrite(fd, &b, 1, pos);
  ::close(fd);
  if (wrote != 1) {
    return Status::IOError("pwrite " + path + ": " + strerror(errno));
  }
  return Status::OK();
}

uint64_t BlockStore::TotalBytesUsed() const {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root_, ec)) {
    if (entry.is_regular_file(ec)) {
      total += entry.file_size(ec);
    }
  }
  return total;
}

void BlockStore::ChargeRead(const std::string& fname, uint64_t bytes) {
  counters_.get_ops.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  const bool first = MarkRead(fname);
  ChargeLatency(sim_, &counters_, sim_.ChargeUs(bytes, first));
}

void BlockStore::ChargeWrite(uint64_t bytes) {
  counters_.put_ops.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  ChargeLatency(sim_, &counters_, sim_.ChargeUs(bytes, false));
}

bool BlockStore::MarkRead(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  return read_before_.insert(fname).second;
}

}  // namespace tu::cloud
