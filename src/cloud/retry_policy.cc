#include "cloud/retry_policy.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "cloud/storage_sim.h"
#include "util/random.h"

namespace tu::cloud {

namespace {

// Sleep in ~1 ms slices so a teardown-time cancel flag interrupts the
// backoff promptly instead of after the full (possibly multi-second) wait.
// Returns false if cancelled mid-sleep.
bool InterruptibleSleep(uint64_t sleep_us, const std::atomic<bool>* cancel) {
  constexpr uint64_t kSliceUs = 1000;
  while (sleep_us > 0) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      return false;
    }
    const uint64_t chunk = cancel != nullptr ? std::min(sleep_us, kSliceUs)
                                             : sleep_us;
    std::this_thread::sleep_for(std::chrono::microseconds(chunk));
    sleep_us -= chunk;
  }
  return cancel == nullptr || !cancel->load(std::memory_order_acquire);
}

}  // namespace

Status RunWithRetry(const RetryPolicy& policy, TierCounters* counters,
                    std::string_view what, const std::function<Status()>& op,
                    const std::atomic<bool>* cancel) {
  // Seed per call site from the address of `what` + a process-wide counter,
  // so concurrent retry loops don't sleep in lockstep.
  static std::atomic<uint64_t> call_seq{0};
  Random rng(0x9e3779b9u ^ call_seq.fetch_add(1, std::memory_order_relaxed));

  uint64_t backoff_us = policy.initial_backoff_us;
  uint64_t slept_us = 0;
  Status s;
  for (int attempt = 1;; ++attempt) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      return Status::IOError("retry of " + std::string(what) +
                             " cancelled by shutdown");
    }
    s = op();
    if (s.ok() || !policy.ShouldRetry(s)) return s;
    const bool budget_spent =
        policy.total_budget_us > 0 && slept_us >= policy.total_budget_us;
    if (attempt >= policy.max_attempts || budget_spent) {
      if (counters != nullptr) {
        counters->retry_give_ups.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::IOError("gave up after " + std::to_string(attempt) +
                             " attempt(s) on " + std::string(what) + ": " +
                             s.ToString());
    }
    uint64_t sleep_us = backoff_us;
    if (policy.jitter > 0.0 && sleep_us > 0) {
      const double low = 1.0 - policy.jitter;
      sleep_us = static_cast<uint64_t>(
          static_cast<double>(sleep_us) * (low + policy.jitter * rng.NextDouble()));
    }
    if (policy.total_budget_us > 0) {
      sleep_us = std::min(sleep_us, policy.total_budget_us - slept_us);
    }
    if (policy.real_sleep && sleep_us > 0) {
      if (!InterruptibleSleep(sleep_us, cancel)) {
        return Status::IOError("retry of " + std::string(what) +
                               " cancelled by shutdown");
      }
    }
    slept_us += sleep_us;
    backoff_us = std::min(
        policy.max_backoff_us,
        static_cast<uint64_t>(static_cast<double>(backoff_us) *
                              policy.backoff_multiplier));
    if (counters != nullptr) {
      counters->retries.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace tu::cloud
