// ReadRequest: the one read-side request shape of the public API. The
// three historical query entry points (Query, QueryIterators,
// AggregateQuery) took diverging parameter lists; ReadRequest consolidates
// them — matchers, inclusive time range, strictness override, and an
// optional aggregate shape (step + fn) — so the wire protocol's query
// handlers map onto the DB 1:1 and new read-side knobs have exactly one
// place to land. The legacy signatures survive as delegating shims.
#pragma once

#include <cstdint>
#include <vector>

#include "index/inverted_index.h"
#include "query/aggregate.h"

namespace tu::query {

struct ReadRequest {
  /// Conjunctive tag selectors; at least one required.
  std::vector<index::TagMatcher> matchers;
  /// Inclusive time range.
  int64_t t0 = INT64_MIN;
  int64_t t1 = INT64_MAX;

  /// Degraded-read behaviour for this request. kDefault follows
  /// DBOptions::strict_reads; the explicit values override it per request
  /// (a dashboard tolerates partial data, a billing export does not).
  enum class Strictness {
    kDefault,
    kStrict,        ///< first unreachable table fails the read
    kAllowPartial,  ///< skip unreachable tables, report missing_ranges
  };
  Strictness strictness = Strictness::kDefault;

  /// Aggregate shape: step_ms > 0 selects the aggregate path (AggregateQuery
  /// semantics — fn folded into step-aligned windows, rollup-served where
  /// possible); step_ms == 0 is a plain sample query.
  int64_t step_ms = 0;
  AggFn fn = AggFn::kMean;

  bool IsAggregate() const { return step_ms > 0; }

  static ReadRequest Range(std::vector<index::TagMatcher> matchers, int64_t t0,
                           int64_t t1) {
    ReadRequest r;
    r.matchers = std::move(matchers);
    r.t0 = t0;
    r.t1 = t1;
    return r;
  }
  static ReadRequest Aggregate(std::vector<index::TagMatcher> matchers,
                               int64_t t0, int64_t t1, int64_t step_ms,
                               AggFn fn) {
    ReadRequest r = Range(std::move(matchers), t0, t1);
    r.step_ms = step_ms;
    r.fn = fn;
    return r;
  }
};

}  // namespace tu::query
