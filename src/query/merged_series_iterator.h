// Streaming query results (§3.4): "users can obtain its iterator to
// iteratively get its data samples with a merge iterator which connects
// the individual iterators of all related MemTables and SSTables".
//
// MergedSeriesIterator is the one place the open-chunk-vs-LSM seq-dedup
// merge lives — and since the vectorized-read-path refactor it operates on
// whole column batches, not samples: each LSM chunk is bulk-decoded via
// lsm::Iterator::NextBatch into a query::SampleBatch, clipped to the query
// range by binary-searching the batch edges, and merged into a bounded
// staging run with newest-chunk-wins seq dedup. A staged timestamp is
// final once the next chunk's starting timestamp sorts past it (chunks
// arrive in ascending start order and only cover timestamps at or after
// their start), so finalized prefixes are emitted as whole batches — the
// memory bound per drain is O(open chunk + in-flight chunk overlap), not
// the query span.
//
// Consumers choose their granularity: NextBatch() hands out finalized
// column runs for bulk materialization (TimeUnionDB::Query), while the
// historical Valid()/value()/Next() API survives as a cursor over the
// current batch, so QueryIterators users are untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "compress/chunk.h"
#include "lsm/iterator.h"
#include "query/read_context.h"
#include "query/sample_batch.h"
#include "util/status.h"

namespace tu::query {

class MergedSeriesIterator {
 public:
  /// `lsm_iter` positioned anywhere; the iterator seeks it to `id` itself.
  /// `head_samples` are the open-chunk samples (always newest).
  /// `member_slot` >= 0 selects a group member column; -1 = individual
  /// series chunks. `seek_slack_ms` widens the initial seek left of
  /// ctx.t0 by the maximum chunk overhang. ctx.stats (if set) must outlive
  /// the iterator — decode counters accrue lazily during iteration.
  MergedSeriesIterator(uint64_t id, const ReadContext& ctx,
                       std::unique_ptr<lsm::Iterator> lsm_iter,
                       std::vector<compress::Sample> head_samples,
                       int member_slot, int64_t seek_slack_ms);

  // -- Cursor API (per-sample view over the current batch) -----------------

  bool Valid() const { return valid_; }
  const compress::Sample& value() const { return current_; }
  void Next();
  Status status() const { return status_; }

  // -- Batch API ------------------------------------------------------------

  /// Moves the next run of finalized samples into `*out` (ascending,
  /// deduped, clipped to [t0, t1]) and returns true; false when the stream
  /// is exhausted or errored (check status()). Composes with the cursor:
  /// the first call hands over the undrained remainder of the current
  /// batch, so mixing granularities never skips or repeats a sample.
  bool NextBatch(SampleBatch* out);

 private:
  /// Refills cur_ with the next finalized run; false when exhausted.
  bool FetchBatch();
  /// Peeks the next same-id chunk within the time bound. False = LSM side
  /// exhausted (key range left, bound passed, or iterator done/errored).
  bool PeekChunk(int64_t* start_ts);
  /// Bulk-decodes the peeked chunk, clips it, merges it into the staging
  /// run with newest-wins dedup, and advances the LSM iterator.
  void MergeNextChunk();
  /// Moves staged samples [begin_, begin_ + n) into `out`.
  void EmitStaged(size_t n, SampleBatch* out);

  size_t StagedSize() const { return staged_ts_.size() - staged_begin_; }

  uint64_t id_;
  int64_t t0_;
  int64_t t1_;
  int member_slot_;
  QueryStats* stats_ = nullptr;
  std::unique_ptr<lsm::Iterator> lsm_iter_;
  bool lsm_done_ = false;

  // Staging run: pending samples in ascending timestamp order with their
  // dedup seq, consumed from staged_begin_. Bounded by the open chunk plus
  // the overlap of in-flight chunks, not by the query span.
  std::vector<int64_t> staged_ts_;
  std::vector<double> staged_val_;
  std::vector<uint64_t> staged_seq_;
  size_t staged_begin_ = 0;
  // Merge scratch (kept across chunks to reuse capacity).
  SampleBatch scratch_;
  std::vector<int64_t> merge_ts_;
  std::vector<double> merge_val_;
  std::vector<uint64_t> merge_seq_;

  // Current finalized batch + cursor position.
  SampleBatch cur_;
  size_t pos_ = 0;
  compress::Sample current_;
  bool valid_ = false;
  Status status_;
};

}  // namespace tu::query
