// Streaming query results (§3.4): "users can obtain its iterator to
// iteratively get its data samples with a merge iterator which connects
// the individual iterators of all related MemTables and SSTables".
//
// MergedSeriesIterator is the one place the open-chunk-vs-LSM seq-dedup
// merge lives: it yields one series' samples in ascending timestamp order
// with newest-chunk-wins deduplication, decoding chunks lazily as the
// underlying LSM merge iterator advances — no materialized vectors, so a
// long-range scan holds O(chunk) memory. TimeUnionDB::Query is a thin
// materializer over these iterators.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "compress/chunk.h"
#include "lsm/iterator.h"
#include "query/read_context.h"
#include "util/status.h"

namespace tu::query {

class MergedSeriesIterator {
 public:
  /// `lsm_iter` positioned anywhere; the iterator seeks it to `id` itself.
  /// `head_samples` are the open-chunk samples (always newest).
  /// `member_slot` >= 0 selects a group member column; -1 = individual
  /// series chunks. `seek_slack_ms` widens the initial seek left of
  /// ctx.t0 by the maximum chunk overhang. ctx.stats (if set) must outlive
  /// the iterator — decode counters accrue lazily during iteration.
  MergedSeriesIterator(uint64_t id, const ReadContext& ctx,
                       std::unique_ptr<lsm::Iterator> lsm_iter,
                       std::vector<compress::Sample> head_samples,
                       int member_slot, int64_t seek_slack_ms);

  /// Pre-ReadContext convenience constructor (kept for direct users).
  MergedSeriesIterator(uint64_t id, int64_t t0, int64_t t1,
                       std::unique_ptr<lsm::Iterator> lsm_iter,
                       std::vector<compress::Sample> head_samples,
                       int member_slot, int64_t seek_slack_ms);

  bool Valid() const { return valid_; }
  const compress::Sample& value() const { return current_; }
  void Next();
  Status status() const { return status_; }

 private:
  /// Loads the next chunk's samples into the staging buffer.
  void FillBuffer();
  /// Pops the smallest pending timestamp into current_.
  void Advance();

  uint64_t id_;
  int64_t t0_;
  int64_t t1_;
  int member_slot_;
  QueryStats* stats_ = nullptr;
  std::unique_ptr<lsm::Iterator> lsm_iter_;
  bool lsm_done_ = false;

  // Pending samples keyed by timestamp; value carries (seq, sample value)
  // so overlapping chunks resolve newest-wins. Bounded by the overlap of
  // in-flight chunks, not by the query span.
  std::map<int64_t, std::pair<uint64_t, double>> pending_;
  // Head samples behave as an infinitely-new chunk.
  std::vector<compress::Sample> head_samples_;
  int64_t max_buffered_ts_ = INT64_MIN;

  compress::Sample current_;
  bool valid_ = false;
  Status status_;
};

}  // namespace tu::query
