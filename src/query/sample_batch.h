// SampleBatch: the column batch the vectorized read path moves around —
// one decoded chunk's worth of samples as parallel timestamp/value arrays
// instead of per-sample objects. Batches flow from the bulk Gorilla
// decoders (compress/), through lsm::Iterator::NextBatch, into the
// query-layer batch merge (MergedSeriesIterator) and finally into
// TimeUnionDB::Query's bulk materialization, so no layer in between pays a
// per-sample virtual call or node allocation.
//
// Layering: like read_context.h this header depends on nothing above
// util/, so both compress/ and lsm/ can include it without a cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tu::query {

/// One run of decoded samples in ascending timestamp order, stored as
/// columns. `timestamps` and `values` are parallel and dense: every slot
/// holds a real sample.
///
/// `validity` is the decode-stage scratch bitmap of the NULL-extended
/// group codec (bit i set = row i of the source chunk carried a value for
/// the selected member). The group decoder compacts present rows into the
/// dense columns before a batch leaves compress/, so consumers past the
/// decode layer see `validity` empty — empty means "all slots valid".
struct SampleBatch {
  /// Dedup precedence of the source chunk (LSM internal-key sequence;
  /// UINT64_MAX for open-chunk head data). Meaningful only on batches
  /// produced by NextBatch — merged output batches reset it to 0.
  uint64_t seq = 0;
  std::vector<int64_t> timestamps;
  std::vector<double> values;
  std::vector<uint64_t> validity;  ///< decode-stage bitmap; empty = dense

  size_t size() const { return timestamps.size(); }
  bool empty() const { return timestamps.empty(); }

  /// Back to an empty batch; keeps vector capacity for reuse.
  void clear() {
    seq = 0;
    timestamps.clear();
    values.clear();
    validity.clear();
  }
};

}  // namespace tu::query
