#include "query/read_context.h"

#include <cstdio>

namespace tu::query {

std::string QueryStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "tables considered=%llu pruned(id=%llu time=%llu bloom=%llu) "
      "skipped_unreachable=%llu partitions_pruned=%llu | blocks read=%llu "
      "pruned=%llu cache(hit=%llu miss=%llu) slow_fetches=%llu "
      "block_bytes=%llu | chunks=%llu decoded_bytes=%llu",
      static_cast<unsigned long long>(tables_considered),
      static_cast<unsigned long long>(tables_pruned_id),
      static_cast<unsigned long long>(tables_pruned_time),
      static_cast<unsigned long long>(tables_pruned_bloom),
      static_cast<unsigned long long>(tables_skipped_unreachable),
      static_cast<unsigned long long>(partitions_pruned),
      static_cast<unsigned long long>(blocks_read),
      static_cast<unsigned long long>(blocks_pruned),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(slow_tier_fetches),
      static_cast<unsigned long long>(block_bytes_read),
      static_cast<unsigned long long>(chunks_decoded),
      static_cast<unsigned long long>(bytes_decoded));
  return buf;
}

}  // namespace tu::query
