#include "query/read_context.h"

#include <algorithm>
#include <cstdio>

#include "util/interval_set.h"

namespace tu::query {

void Completeness::AddMissing(
    const std::vector<std::pair<int64_t, int64_t>>& spans, int64_t t0,
    int64_t t1) {
  for (const auto& [lo, hi] : spans) {
    const int64_t a = std::max(lo, t0);
    const int64_t b = std::min(hi, t1);
    if (a > b) continue;
    missing_ranges.emplace_back(a, b);
  }
  util::MergeIntervals(&missing_ranges);
  if (!missing_ranges.empty()) complete = false;
}

void Completeness::MergeCompleteness(const Completeness& o) {
  if (o.complete) return;
  complete = false;
  missing_ranges.insert(missing_ranges.end(), o.missing_ranges.begin(),
                        o.missing_ranges.end());
  util::MergeIntervals(&missing_ranges);
}

std::string QueryStats::ToString() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "tables considered=%llu pruned(id=%llu time=%llu bloom=%llu) "
      "skipped_unreachable=%llu partitions_pruned=%llu | blocks read=%llu "
      "pruned=%llu cache(hit=%llu miss=%llu) slow_fetches=%llu "
      "block_bytes=%llu | chunks=%llu decoded_bytes=%llu batches=%llu "
      "samples_per_batch=%.1f | rollup_buckets=%llu raw_edge_samples=%llu | "
      "setup_us=%llu drain_us=%llu",
      static_cast<unsigned long long>(tables_considered),
      static_cast<unsigned long long>(tables_pruned_id),
      static_cast<unsigned long long>(tables_pruned_time),
      static_cast<unsigned long long>(tables_pruned_bloom),
      static_cast<unsigned long long>(tables_skipped_unreachable),
      static_cast<unsigned long long>(partitions_pruned),
      static_cast<unsigned long long>(blocks_read),
      static_cast<unsigned long long>(blocks_pruned),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(slow_tier_fetches),
      static_cast<unsigned long long>(block_bytes_read),
      static_cast<unsigned long long>(chunks_decoded),
      static_cast<unsigned long long>(bytes_decoded),
      static_cast<unsigned long long>(batches_decoded),
      batches_decoded == 0 ? 0.0
                           : static_cast<double>(samples_decoded) /
                                 static_cast<double>(batches_decoded),
      static_cast<unsigned long long>(rollup_buckets_served),
      static_cast<unsigned long long>(raw_edge_samples),
      static_cast<unsigned long long>(setup_us),
      static_cast<unsigned long long>(drain_us));
  return buf;
}

}  // namespace tu::query
