#include "query/merged_series_iterator.h"

#include "lsm/key_format.h"
#include "lsm/memtable.h"

namespace tu::query {

MergedSeriesIterator::MergedSeriesIterator(
    uint64_t id, const ReadContext& ctx,
    std::unique_ptr<lsm::Iterator> lsm_iter,
    std::vector<compress::Sample> head_samples, int member_slot,
    int64_t seek_slack_ms)
    : id_(id),
      t0_(ctx.t0),
      t1_(ctx.t1),
      member_slot_(member_slot),
      stats_(ctx.stats),
      lsm_iter_(std::move(lsm_iter)),
      head_samples_(std::move(head_samples)) {
  // The open chunk is the newest data: stage it with maximal precedence.
  for (const compress::Sample& s : head_samples_) {
    if (s.timestamp >= t0_ && s.timestamp <= t1_) {
      pending_[s.timestamp] = {UINT64_MAX, s.value};
    }
  }
  const int64_t seek_ts =
      (t0_ < INT64_MIN + seek_slack_ms) ? INT64_MIN : t0_ - seek_slack_ms;
  lsm_iter_->Seek(lsm::MakeChunkKey(id_, seek_ts));
  Advance();
}

MergedSeriesIterator::MergedSeriesIterator(
    uint64_t id, int64_t t0, int64_t t1,
    std::unique_ptr<lsm::Iterator> lsm_iter,
    std::vector<compress::Sample> head_samples, int member_slot,
    int64_t seek_slack_ms)
    : MergedSeriesIterator(
          id,
          [&] {
            ReadContext ctx;
            ctx.t0 = t0;
            ctx.t1 = t1;
            return ctx;
          }(),
          std::move(lsm_iter), std::move(head_samples), member_slot,
          seek_slack_ms) {}

void MergedSeriesIterator::FillBuffer() {
  if (!lsm_iter_->Valid()) {
    status_ = lsm_iter_->status();
    lsm_done_ = true;
    return;
  }
  const Slice user_key = lsm::InternalKeyUserKey(lsm_iter_->key());
  if (lsm::ChunkKeyId(user_key) != id_ ||
      lsm::ChunkKeyTimestamp(user_key) > t1_) {
    lsm_done_ = true;
    return;
  }
  const uint64_t seq = lsm::InternalKeySeq(lsm_iter_->key());
  const Slice payload = lsm::ChunkValuePayload(lsm_iter_->value());
  if (stats_ != nullptr) {
    ++stats_->chunks_decoded;
    stats_->bytes_decoded += payload.size();
  }

  std::vector<compress::Sample> samples;
  Status s;
  if (member_slot_ >= 0) {
    s = compress::DecodeGroupMember(
        payload, static_cast<uint32_t>(member_slot_), &samples);
  } else {
    uint64_t chunk_seq = 0;
    s = compress::DecodeSeriesChunk(payload, &chunk_seq, &samples);
  }
  if (!s.ok()) {
    status_ = s;
    lsm_done_ = true;
    return;
  }
  for (const compress::Sample& sample : samples) {
    if (sample.timestamp < t0_ || sample.timestamp > t1_) continue;
    auto it = pending_.find(sample.timestamp);
    if (it == pending_.end() || seq >= it->second.first) {
      pending_[sample.timestamp] = {seq, sample.value};
    }
    max_buffered_ts_ = std::max(max_buffered_ts_, sample.timestamp);
  }
  lsm_iter_->Next();
}

void MergedSeriesIterator::Advance() {
  while (true) {
    // A pending timestamp T is final once no future chunk can contain it:
    // chunks arrive in ascending start_ts and any chunk containing T
    // starts at or before T.
    if (!pending_.empty() && !lsm_done_) {
      if (lsm_iter_->Valid()) {
        const Slice user_key = lsm::InternalKeyUserKey(lsm_iter_->key());
        if (lsm::ChunkKeyId(user_key) == id_ &&
            lsm::ChunkKeyTimestamp(user_key) <= pending_.begin()->first &&
            lsm::ChunkKeyTimestamp(user_key) <= t1_) {
          FillBuffer();
          continue;
        }
      } else {
        lsm_done_ = true;
        status_ = lsm_iter_->status();
      }
      break;
    }
    if (pending_.empty()) {
      if (lsm_done_) {
        valid_ = false;
        return;
      }
      FillBuffer();
      continue;
    }
    break;  // pending non-empty, lsm done
  }
  auto it = pending_.begin();
  current_ = compress::Sample{it->first, it->second.second};
  pending_.erase(it);
  valid_ = status_.ok();
}

void MergedSeriesIterator::Next() { Advance(); }

}  // namespace tu::query
