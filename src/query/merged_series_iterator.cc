#include "query/merged_series_iterator.h"

#include <algorithm>

#include "lsm/key_format.h"
#include "lsm/memtable.h"

namespace tu::query {

MergedSeriesIterator::MergedSeriesIterator(
    uint64_t id, const ReadContext& ctx,
    std::unique_ptr<lsm::Iterator> lsm_iter,
    std::vector<compress::Sample> head_samples, int member_slot,
    int64_t seek_slack_ms)
    : id_(id),
      t0_(ctx.t0),
      t1_(ctx.t1),
      member_slot_(member_slot),
      stats_(ctx.stats),
      lsm_iter_(std::move(lsm_iter)) {
  // The open chunk is the newest data: stage it with maximal precedence.
  for (const compress::Sample& s : head_samples) {
    if (s.timestamp < t0_ || s.timestamp > t1_) continue;
    staged_ts_.push_back(s.timestamp);
    staged_val_.push_back(s.value);
    staged_seq_.push_back(UINT64_MAX);
  }
  if (stats_ != nullptr && !staged_ts_.empty()) {
    ++stats_->batches_decoded;
    stats_->samples_decoded += staged_ts_.size();
  }
  const int64_t seek_ts =
      (t0_ < INT64_MIN + seek_slack_ms) ? INT64_MIN : t0_ - seek_slack_ms;
  lsm_iter_->Seek(lsm::MakeChunkKey(id_, seek_ts));
  valid_ = FetchBatch();
  if (valid_) current_ = compress::Sample{cur_.timestamps[0], cur_.values[0]};
}

bool MergedSeriesIterator::PeekChunk(int64_t* start_ts) {
  if (lsm_done_) return false;
  if (!lsm_iter_->Valid()) {
    status_ = lsm_iter_->status();
    lsm_done_ = true;
    return false;
  }
  const Slice user_key = lsm::InternalKeyUserKey(lsm_iter_->key());
  if (lsm::ChunkKeyId(user_key) != id_ ||
      lsm::ChunkKeyTimestamp(user_key) > t1_) {
    lsm_done_ = true;
    return false;
  }
  *start_ts = lsm::ChunkKeyTimestamp(user_key);
  return true;
}

void MergedSeriesIterator::MergeNextChunk() {
  if (stats_ != nullptr) {
    ++stats_->chunks_decoded;
    stats_->bytes_decoded += lsm::ChunkValuePayload(lsm_iter_->value()).size();
  }
  scratch_.clear();
  Status s = lsm_iter_->NextBatch(member_slot_, &scratch_);
  if (!s.ok()) {
    status_ = s;
    lsm_done_ = true;
    return;
  }
  if (stats_ != nullptr) {
    ++stats_->batches_decoded;
    stats_->samples_decoded += scratch_.size();
  }

  // Clip to [t0, t1] by binary-searching the batch edges.
  const auto ts_begin = scratch_.timestamps.begin();
  const auto ts_end = scratch_.timestamps.end();
  const size_t lo = std::lower_bound(ts_begin, ts_end, t0_) - ts_begin;
  const size_t hi = std::upper_bound(ts_begin, ts_end, t1_) - ts_begin;
  if (lo >= hi) return;  // chunk entirely outside the query range
  const uint64_t seq = scratch_.seq;

  if (StagedSize() == 0) {
    if (lo == 0 && hi == scratch_.timestamps.size()) {
      // Whole chunk survives the clip: adopt its columns without copying.
      staged_ts_ = std::move(scratch_.timestamps);
      staged_val_ = std::move(scratch_.values);
      scratch_.timestamps.clear();
      scratch_.values.clear();
    } else {
      staged_ts_.assign(ts_begin + lo, ts_begin + hi);
      staged_val_.assign(scratch_.values.begin() + lo,
                         scratch_.values.begin() + hi);
    }
    staged_begin_ = 0;
    staged_seq_.assign(staged_ts_.size(), seq);
    return;
  }

  // Overlap: two-pointer merge of the staging run and the clipped chunk,
  // newest-wins on timestamp collisions. The staging run stays bounded by
  // the in-flight overlap because finalized prefixes are emitted before
  // the next chunk is merged.
  merge_ts_.clear();
  merge_val_.clear();
  merge_seq_.clear();
  const size_t total = StagedSize() + (hi - lo);
  merge_ts_.reserve(total);
  merge_val_.reserve(total);
  merge_seq_.reserve(total);
  size_t a = staged_begin_;
  size_t b = lo;
  while (a < staged_ts_.size() && b < hi) {
    const int64_t ta = staged_ts_[a];
    const int64_t tb = scratch_.timestamps[b];
    if (ta < tb) {
      merge_ts_.push_back(ta);
      merge_val_.push_back(staged_val_[a]);
      merge_seq_.push_back(staged_seq_[a]);
      ++a;
    } else if (tb < ta) {
      merge_ts_.push_back(tb);
      merge_val_.push_back(scratch_.values[b]);
      merge_seq_.push_back(seq);
      ++b;
    } else {
      // Collision: the chunk decoded later wins ties, newest seq wins
      // otherwise (same rule the per-sample path applied).
      if (seq >= staged_seq_[a]) {
        merge_ts_.push_back(tb);
        merge_val_.push_back(scratch_.values[b]);
        merge_seq_.push_back(seq);
      } else {
        merge_ts_.push_back(ta);
        merge_val_.push_back(staged_val_[a]);
        merge_seq_.push_back(staged_seq_[a]);
      }
      ++a;
      ++b;
    }
  }
  for (; a < staged_ts_.size(); ++a) {
    merge_ts_.push_back(staged_ts_[a]);
    merge_val_.push_back(staged_val_[a]);
    merge_seq_.push_back(staged_seq_[a]);
  }
  for (; b < hi; ++b) {
    merge_ts_.push_back(scratch_.timestamps[b]);
    merge_val_.push_back(scratch_.values[b]);
    merge_seq_.push_back(seq);
  }
  staged_ts_.swap(merge_ts_);
  staged_val_.swap(merge_val_);
  staged_seq_.swap(merge_seq_);
  staged_begin_ = 0;
}

void MergedSeriesIterator::EmitStaged(size_t n, SampleBatch* out) {
  out->seq = 0;
  if (staged_begin_ == 0 && n == staged_ts_.size()) {
    out->timestamps = std::move(staged_ts_);
    out->values = std::move(staged_val_);
    staged_ts_.clear();
    staged_val_.clear();
    staged_seq_.clear();
    return;
  }
  out->timestamps.assign(staged_ts_.begin() + staged_begin_,
                         staged_ts_.begin() + staged_begin_ + n);
  out->values.assign(staged_val_.begin() + staged_begin_,
                     staged_val_.begin() + staged_begin_ + n);
  staged_begin_ += n;
  if (staged_begin_ == staged_ts_.size()) {
    staged_ts_.clear();
    staged_val_.clear();
    staged_seq_.clear();
    staged_begin_ = 0;
  }
}

bool MergedSeriesIterator::FetchBatch() {
  cur_.clear();
  pos_ = 0;
  while (status_.ok()) {
    int64_t start = 0;
    if (!PeekChunk(&start)) {
      // LSM side exhausted (or errored): whatever is staged is final.
      if (!status_.ok() || StagedSize() == 0) return false;
      EmitStaged(StagedSize(), &cur_);
      return true;
    }
    if (StagedSize() != 0 && staged_ts_[staged_begin_] < start) {
      // Chunks arrive in ascending start order and a chunk containing T
      // starts at or before T, so every staged timestamp below the next
      // chunk's start is final: emit that prefix as one batch.
      const auto first = staged_ts_.begin() + staged_begin_;
      const size_t cut = std::lower_bound(first, staged_ts_.end(), start) - first;
      EmitStaged(cut, &cur_);
      return true;
    }
    MergeNextChunk();
  }
  return false;
}

void MergedSeriesIterator::Next() {
  if (!valid_) return;
  ++pos_;
  if (pos_ >= cur_.size()) valid_ = FetchBatch();
  if (valid_) {
    current_ = compress::Sample{cur_.timestamps[pos_], cur_.values[pos_]};
  }
}

bool MergedSeriesIterator::NextBatch(SampleBatch* out) {
  out->clear();
  if (!valid_) return false;
  if (pos_ == 0) {
    *out = std::move(cur_);
    cur_.clear();
  } else {
    out->timestamps.assign(cur_.timestamps.begin() + pos_,
                           cur_.timestamps.end());
    out->values.assign(cur_.values.begin() + pos_, cur_.values.end());
  }
  valid_ = FetchBatch();
  if (valid_) {
    current_ = compress::Sample{cur_.timestamps[0], cur_.values[0]};
  }
  return true;
}

}  // namespace tu::query
