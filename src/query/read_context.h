// The per-query contract of the unified read pipeline (§3.4): one
// ReadContext flows from TimeUnionDB::Query / QueryIterators through the
// ChunkStore backends down to TableReader, replacing the ad-hoc
// (id, t0, t1, scope) parameter threading. It bundles the time range, the
// tag matchers that selected the series, the degraded-read scope, the
// cache-fill policy and a QueryStats accumulator, so every read-side
// policy knob lives behind one seam.
//
// Layering: this header depends on nothing above util/, so lsm/ can
// include it without a cycle (core -> lsm -> query).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tu::index {
struct TagMatcher;
}  // namespace tu::index

namespace tu::query {

/// Per-query read-path counters. Filled at every pruning level — partition,
/// table (min/max meta + bloom) and block — plus the cache and decode
/// stages; `Add` aggregates per-series stats into the per-query total and
/// per-query totals into the DB-lifetime total behind CountersReport().
///
/// Lifetime: the pipeline holds a raw pointer to the accumulator, and lazy
/// iterators keep counting while they are drained — the QueryStats object
/// must outlive every iterator created against it.
struct QueryStats {
  // Table selection (both LSM backends).
  uint64_t partitions_pruned = 0;    ///< whole time partitions outside [t0,t1]
  uint64_t tables_considered = 0;    ///< handles examined after partition pruning
  uint64_t tables_pruned_id = 0;     ///< series-id range disjoint from the query
  uint64_t tables_pruned_time = 0;   ///< min/max chunk timestamp outside [t0,t1]
  uint64_t tables_pruned_bloom = 0;  ///< bloom filter negative on the series id
  uint64_t tables_skipped_unreachable = 0;  ///< partial read: slow tier down

  // Block pipeline (TableReader).
  uint64_t blocks_read = 0;    ///< data blocks materialized for iteration
  uint64_t blocks_pruned = 0;  ///< index entries skipped by the t1 upper bound
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t slow_tier_fetches = 0;   ///< block fetches served by the slow tier
  uint64_t block_bytes_read = 0;    ///< uncompressed block bytes fetched

  // Decode stage (MergedSeriesIterator).
  uint64_t chunks_decoded = 0;
  uint64_t bytes_decoded = 0;  ///< chunk payload bytes decoded into samples
  /// Column batches entering the vectorized merge: one per bulk-decoded
  /// chunk plus one per non-empty open-chunk snapshot. samples_decoded /
  /// batches_decoded is the average decode granularity (samples per batch).
  uint64_t batches_decoded = 0;
  uint64_t samples_decoded = 0;  ///< samples produced by those batches

  // Continuous aggregates (AggregateQuery planner).
  /// Pre-aggregated buckets served from rollup partitions instead of raw
  /// chunk decodes.
  uint64_t rollup_buckets_served = 0;
  /// Raw samples drained for the spans rollups could not serve (unaligned
  /// edges, dirty buckets, fast-tier data).
  uint64_t raw_edge_samples = 0;

  // Pipeline timing (monotonic microseconds).
  uint64_t setup_us = 0;  ///< iterator construction: pruning + reader opens
  uint64_t drain_us = 0;  ///< iterator drain: block fetch + chunk decode

  void Add(const QueryStats& o) {
    partitions_pruned += o.partitions_pruned;
    tables_considered += o.tables_considered;
    tables_pruned_id += o.tables_pruned_id;
    tables_pruned_time += o.tables_pruned_time;
    tables_pruned_bloom += o.tables_pruned_bloom;
    tables_skipped_unreachable += o.tables_skipped_unreachable;
    blocks_read += o.blocks_read;
    blocks_pruned += o.blocks_pruned;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    slow_tier_fetches += o.slow_tier_fetches;
    block_bytes_read += o.block_bytes_read;
    chunks_decoded += o.chunks_decoded;
    bytes_decoded += o.bytes_decoded;
    batches_decoded += o.batches_decoded;
    samples_decoded += o.samples_decoded;
    rollup_buckets_served += o.rollup_buckets_served;
    raw_edge_samples += o.raw_edge_samples;
    setup_us += o.setup_us;
    drain_us += o.drain_us;
  }

  uint64_t tables_pruned() const {
    return tables_pruned_id + tables_pruned_time + tables_pruned_bloom;
  }

  std::string ToString() const;
};

/// The completeness contract of a degraded read, shared by every result
/// type that can come back partial (QueryResult, SeriesIterResult). The
/// missing-span bookkeeping — clamp to the query range, merge overlaps,
/// flip `complete` — lives here so call sites cannot diverge.
struct Completeness {
  /// False when any part of [t0, t1] was unreachable (slow tier down and
  /// the read allowed partial results).
  bool complete = true;
  /// Closed [start, end] timestamp spans that could not be served, merged
  /// and sorted. Empty iff `complete`.
  std::vector<std::pair<int64_t, int64_t>> missing_ranges;

  /// Clamp `spans` to the closed query range [t0, t1], merge them into
  /// `missing_ranges` (coalescing overlaps and adjacency), and update
  /// `complete`. Unclamped or unsorted input spans are fine.
  void AddMissing(const std::vector<std::pair<int64_t, int64_t>>& spans,
                  int64_t t0, int64_t t1);
  /// Fold another result's completeness into this one.
  void MergeCompleteness(const Completeness& o);
  /// Back to the pristine complete state.
  void ResetCompleteness() {
    complete = true;
    missing_ranges.clear();
  }
};

/// How a read should behave when part of the store is unreachable (slow
/// tier down, circuit breaker open). With `allow_partial`, stores skip
/// slow-tier tables they cannot open and record the closed timestamp span
/// each skipped table may have covered in `*missing` (unclamped entries
/// are fine — callers merge and clamp); without it, the first unreachable
/// table fails the read.
struct ReadScope {
  bool allow_partial = false;
  std::vector<std::pair<int64_t, int64_t>>* missing = nullptr;
};

/// One query's read parameters, threaded intact through every layer.
struct ReadContext {
  /// Inclusive time range of the query.
  int64_t t0 = INT64_MIN;
  int64_t t1 = INT64_MAX;
  /// The matchers that selected the series (informational below core/;
  /// the LSM layers select by id, not by tags).
  const std::vector<index::TagMatcher>* matchers = nullptr;
  /// Degraded-read behaviour (see ReadScope).
  ReadScope scope;
  /// Whether block reads should populate the shared block cache. One-shot
  /// scans can opt out to avoid evicting the working set (RocksDB idiom).
  bool fill_cache = true;
  /// Optional per-query counters; see the QueryStats lifetime note.
  QueryStats* stats = nullptr;
};

}  // namespace tu::query
