#include "query/aggregate.h"

namespace tu::query {

void AccumulateIntoBuckets(const int64_t* timestamps, const double* values,
                           size_t n, int64_t granularity_ms,
                           std::vector<compress::RollupBucket>* buckets) {
  for (size_t i = 0; i < n; ++i) {
    const int64_t start = AlignDown(timestamps[i], granularity_ms);
    const double v = values[i];
    if (!buckets->empty() && buckets->back().start == start) {
      compress::RollupBucket& b = buckets->back();
      if (v < b.min) b.min = v;
      if (v > b.max) b.max = v;
      b.sum += v;
      ++b.count;
    } else {
      buckets->push_back(compress::RollupBucket{start, v, v, v, 1});
    }
  }
}

std::vector<AggPoint> FoldBuckets(
    const std::vector<compress::RollupBucket>& buckets, int64_t step_ms,
    AggFn fn) {
  std::vector<AggPoint> out;
  double min = 0, max = 0, sum = 0;
  uint64_t count = 0;
  int64_t window = 0;
  bool open = false;

  const auto flush = [&]() {
    AggPoint p;
    p.window_start = window;
    switch (fn) {
      case AggFn::kMin:
        p.value = min;
        break;
      case AggFn::kMax:
        p.value = max;
        break;
      case AggFn::kSum:
        p.value = sum;
        break;
      case AggFn::kCount:
        p.value = static_cast<double>(count);
        break;
      case AggFn::kMean:
        p.value = sum / static_cast<double>(count);
        break;
    }
    out.push_back(p);
  };

  for (const compress::RollupBucket& b : buckets) {
    if (b.count == 0) continue;
    const int64_t w = AlignDown(b.start, step_ms);
    if (!open || w != window) {
      if (open) flush();
      window = w;
      min = b.min;
      max = b.max;
      sum = b.sum;
      count = b.count;
      open = true;
    } else {
      if (b.min < min) min = b.min;
      if (b.max > max) max = b.max;
      sum += b.sum;
      count += b.count;
    }
  }
  if (open) flush();
  return out;
}

}  // namespace tu::query
