// Shared aggregate kernels for continuous aggregates.
//
// Two-stage shape, used identically by the rollup and the raw fallback
// paths so their answers are bitwise identical:
//
//   1. AccumulateIntoBuckets — fold ascending raw samples into
//      granularity-aligned RollupBucket partials (same bucket math the
//      compaction-side rollup builder uses).
//   2. FoldBuckets — fold ascending buckets into step-aligned output
//      windows for one aggregate function.
//
// Floating-point addition is not associative, so bitwise identity holds
// only because both paths feed samples/buckets through the fold in the
// same ascending-time order.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/rollup.h"

namespace tu::query {

/// Aggregate functions served by AggregateQuery.
enum class AggFn {
  kMin,
  kMax,
  kSum,
  kCount,
  kMean,
};

/// One aggregate output point: [window_start, window_start + step).
struct AggPoint {
  int64_t window_start = 0;
  double value = 0;

  bool operator==(const AggPoint&) const = default;
};

/// Floor-aligns `ts` to a multiple of `unit` (toward -inf, exact for
/// negative timestamps too — matches the LSM partition alignment).
inline int64_t AlignDown(int64_t ts, int64_t unit) {
  int64_t r = ts / unit;
  if ((ts % unit) != 0 && ts < 0) --r;
  return r * unit;
}

/// Ceil-aligns `ts` to a multiple of `unit` (toward +inf).
inline int64_t AlignUp(int64_t ts, int64_t unit) {
  const int64_t down = AlignDown(ts, unit);
  return down == ts ? ts : down + unit;
}

/// Folds ascending `(timestamps, values)` runs into granularity-aligned
/// buckets, appending to / merging with `*buckets` (which must also be
/// ascending; a run continuing the last open bucket merges into it).
void AccumulateIntoBuckets(const int64_t* timestamps, const double* values,
                           size_t n, int64_t granularity_ms,
                           std::vector<compress::RollupBucket>* buckets);

/// Folds ascending, granularity-aligned buckets into `step_ms` output
/// windows for `fn`. Only windows containing at least one bucket are
/// emitted. Bucket starts must be ascending and unique.
std::vector<AggPoint> FoldBuckets(
    const std::vector<compress::RollupBucket>& buckets, int64_t step_ms,
    AggFn fn);

}  // namespace tu::query
