#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "query/read_request.h"
#include "util/slice.h"

namespace tu::server {

namespace {

bool UsesReservedTag(const index::Labels& labels) {
  for (const index::Label& l : labels) {
    if (l.name == kTenantTag) return true;
  }
  return false;
}

void StripTenantTag(index::Labels* labels) {
  for (auto it = labels->begin(); it != labels->end(); ++it) {
    if (it->name == kTenantTag) {
      labels->erase(it);
      return;
    }
  }
}

void FillWireStats(const query::QueryStats& s, WireQueryStats* out) {
  out->batches_decoded = s.batches_decoded;
  out->samples_decoded = s.samples_decoded;
  out->rollup_buckets_served = s.rollup_buckets_served;
  out->raw_edge_samples = s.raw_edge_samples;
  out->cache_hits = s.cache_hits;
  out->cache_misses = s.cache_misses;
  out->setup_us = s.setup_us;
  out->drain_us = s.drain_us;
}

}  // namespace

Server::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

Server::Server(core::TimeUnionDB* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      tenants_(&db->metrics_registry(), options_.tenant_limits,
               db->metrics_registry().counter("server.tenant_rejects")),
      g_open_conns_(db->metrics_registry().gauge("server.open_connections")),
      g_inflight_(db->metrics_registry().gauge("server.inflight_requests")),
      c_frames_(db->metrics_registry().counter("server.frames")),
      c_protocol_errors_(
          db->metrics_registry().counter("server.protocol_errors")),
      c_tenant_rejects_(tenants_.total_rejects()) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError("bind: " + std::string(strerror(errno)));
  }
  if (::listen(listen_fd_, options_.accept_backlog) != 0) {
    return Status::IOError("listen: " + std::string(strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::IOError("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(std::max(1, options_.num_workers)));
  loop_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

void Server::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    if (!started_.load()) return;
    stopping_.store(true, std::memory_order_release);
    Wake();
    if (loop_.joinable()) loop_.join();
    pool_->Shutdown();
    // Every response already queued was only sent after its db write
    // returned (WAL appended); the final sync makes those appends durable,
    // so an acked write survives a crash right after Shutdown.
    db_->SyncWal();
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
  });
}

void Server::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::LoopThread() {
  std::vector<epoll_event> events(64);
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline;
  for (;;) {
    const bool stop = stopping_.load(std::memory_order_acquire);
    const int timeout_ms = stop ? 20 : 200;
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        if (!stop) AcceptNew();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        conn->peer_closed = true;
      } else {
        if (events[i].events & EPOLLIN) HandleReadable(conn);
        if (events[i].events & EPOLLOUT) FlushConn(conn.get());
      }
    }

    // Flush connections whose workers queued fresh output.
    std::vector<std::shared_ptr<Conn>> pending;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending.swap(pending_);
    }
    for (const std::shared_ptr<Conn>& conn : pending) {
      auto it = conns_.find(conn->fd);
      if (it != conns_.end() && it->second == conn) FlushConn(conn.get());
    }

    // Close-check pass: a connection is released once nothing can still
    // produce output for it and its buffered output has drained (or the
    // peer is gone and delivery is moot).
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn* c = it->second.get();
      const int inflight = c->inflight.load(std::memory_order_acquire);
      bool out_empty;
      {
        std::lock_guard<std::mutex> lock(c->out_mu);
        out_empty = c->out.empty();
      }
      const bool close_now =
          (c->peer_closed && inflight == 0) ||
          (c->close_after_flush.load(std::memory_order_acquire) &&
           inflight == 0 && out_empty) ||
          (stop && inflight == 0 && out_empty);
      if (close_now) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
        it = conns_.erase(it);
        g_open_conns_->Add(-1);
      } else {
        ++it;
      }
    }

    if (stop) {
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      if (!draining) {
        draining = true;
        drain_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(options_.drain_deadline_ms);
      }
      if (conns_.empty()) break;
      if (std::chrono::steady_clock::now() >= drain_deadline) {
        for (auto& [fd, conn] : conns_) {
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
          g_open_conns_->Add(-1);
        }
        conns_.clear();
        break;
      }
    }
  }
}

void Server::AcceptNew() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error — epoll retriggers
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // conn destructor closes fd
    }
    conns_.emplace(fd, std::move(conn));
    g_open_conns_->Add(1);
  }
}

void Server::ProtocolError(const std::shared_ptr<Conn>& conn,
                           const Status& s) {
  c_protocol_errors_->Add();
  ErrorResp err;
  err.code = s.code();
  err.message = s.message();
  std::string body;
  EncodeErrorResp(err, &body);
  std::string frame;
  EncodeFrame(MsgType::kError, body, &frame);
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->out.append(frame);
  }
  conn->poisoned = true;
  conn->in.clear();
  conn->close_after_flush.store(true, std::memory_order_release);
  FlushConn(conn.get());
}

void Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t r = ::read(conn->fd, buf, sizeof(buf));
    if (r > 0) {
      if (!conn->poisoned) conn->in.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->peer_closed = true;
    break;
  }
  if (conn->poisoned) return;
  for (;;) {
    MsgType type;
    std::string body;
    bool have = false;
    const Status s =
        ExtractFrame(&conn->in, options_.max_frame_bytes, &type, &body, &have);
    if (!s.ok()) {
      ProtocolError(conn, s);
      return;
    }
    if (!have) break;
    c_frames_->Add();
    conn->inflight.fetch_add(1, std::memory_order_acq_rel);
    g_inflight_->Add(1);
    pool_->Schedule([this, conn, type, body = std::move(body)] {
      HandleFrame(conn, type, body);
      g_inflight_->Add(-1);
      conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
      Wake();
    });
  }
}

bool Server::FlushConn(Conn* conn) {
  if (conn->peer_closed) return false;
  std::string chunk;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    chunk.swap(conn->out);
  }
  size_t off = 0;
  bool dead = false;
  while (off < chunk.size()) {
    const ssize_t w = ::send(conn->fd, chunk.data() + off, chunk.size() - off,
                             MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    dead = true;
    break;
  }
  if (dead) {
    conn->peer_closed = true;
    return false;
  }
  const bool partial = off < chunk.size();
  if (partial) {
    // Prepend the unsent remainder: workers may have appended more output
    // while the buffer was swapped out, and byte order must hold.
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->out.insert(0, chunk, off, chunk.size() - off);
  }
  if (partial != conn->epollout_armed) {
    epoll_event ev{};
    ev.events = partial ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->epollout_armed = partial;
  }
  return true;
}

void Server::QueueOutput(Conn* conn, const std::string& frame) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->out.append(frame);
  }
  // The pending list re-finds the shared_ptr by fd on the loop side, so a
  // raw pointer is never dereferenced after close.
}

void Server::HandleFrame(const std::shared_ptr<Conn>& conn, MsgType type,
                         const std::string& body) {
  std::string out_frame;
  Status proto = Status::OK();
  switch (type) {
    case MsgType::kPing: {
      uint64_t id = 0;
      proto = DecodePingBody(Slice(body), &id);
      if (proto.ok()) {
        std::string b;
        EncodePingBody(id, &b);
        EncodeFrame(MsgType::kPong, b, &out_frame);
      }
      break;
    }
    case MsgType::kWriteReq:
      proto = HandleWriteReqBody(
          body, body.size() + 1 + kFrameHeaderBytes, &out_frame);
      break;
    case MsgType::kQueryReq:
      proto = HandleQueryReqBody(body, &out_frame);
      break;
    default:
      proto = Status::InvalidArgument("unexpected message type");
      break;
  }
  if (!proto.ok()) {
    c_protocol_errors_->Add();
    ErrorResp err;
    err.code = proto.code();
    err.message = proto.message();
    std::string b;
    EncodeErrorResp(err, &b);
    out_frame.clear();
    EncodeFrame(MsgType::kError, b, &out_frame);
    conn->close_after_flush.store(true, std::memory_order_release);
  }
  if (!out_frame.empty()) {
    QueueOutput(conn.get(), out_frame);
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.push_back(conn);
    }
    // Wake happens in the scheduler wrapper after inflight drops; an extra
    // one here bounds response latency when the request ran long.
    Wake();
  }
}

Status Server::HandleWriteReqBody(const std::string& body, size_t wire_bytes,
                                  std::string* out_frame) {
  WriteReq req;
  TU_RETURN_IF_ERROR(DecodeWriteReq(Slice(body), &req));
  WriteResp resp;
  resp.request_id = req.request_id;
  const uint64_t rows = req.batch.NumRows();
  auto finish = [&]() {
    std::string b;
    EncodeWriteResp(resp, &b);
    EncodeFrame(MsgType::kWriteResp, b, out_frame);
    return Status::OK();
  };
  auto reject_all = [&](const Status& why, Tenant* tenant) {
    resp.code = why.code();
    resp.message = why.message();
    resp.rejected = rows;
    if (tenant != nullptr) tenant->rejects->Add();
    c_tenant_rejects_->Add();
  };

  if (req.tenant.empty()) {
    reject_all(Status::InvalidArgument("tenant must not be empty"), nullptr);
    return finish();
  }
  Tenant* tenant = tenants_.GetOrCreate(req.tenant);
  tenant->requests->Add();

  bool reserved = false;
  for (const auto& row : req.batch.labeled_samples) {
    reserved = reserved || UsesReservedTag(row.labels);
  }
  for (const auto& row : req.batch.labeled_group_rows) {
    reserved = reserved || UsesReservedTag(row.group_tags);
    for (const auto& member : row.member_tags) {
      reserved = reserved || UsesReservedTag(member);
    }
  }
  if (reserved) {
    reject_all(
        Status::InvalidArgument("label name __tenant__ is reserved"), tenant);
    return finish();
  }

  const Status admitted =
      tenant->Admit(req.batch.NumSamples(), wire_bytes, obs::MonotonicUs());
  if (!admitted.ok()) {
    reject_all(admitted, tenant);
    return finish();
  }

  // Translate remote refs to storage refs and inject the tenant tag into
  // labeled rows. Rows addressing unknown remote refs are rejected here
  // (they are this tenant's own namespace — nothing to look up).
  core::WriteBatch real;
  Status pre_error;
  uint64_t pre_rejects = 0;
  real.sample_refs.reserve(req.batch.sample_refs.size());
  real.sample_ts.reserve(req.batch.sample_refs.size());
  real.sample_values.reserve(req.batch.sample_refs.size());
  for (size_t i = 0; i < req.batch.sample_refs.size(); ++i) {
    const uint64_t real_ref = tenant->ResolveSeries(req.batch.sample_refs[i]);
    if (real_ref == 0) {
      ++pre_rejects;
      if (pre_error.ok()) {
        pre_error = Status::NotFound("unknown remote series ref");
      }
      continue;
    }
    real.AddSample(real_ref, req.batch.sample_ts[i],
                   req.batch.sample_values[i]);
  }
  real.labeled_samples.reserve(req.batch.labeled_samples.size());
  for (auto& row : req.batch.labeled_samples) {
    row.labels.push_back(index::Label{kTenantTag, req.tenant});
    real.labeled_samples.push_back(std::move(row));
  }
  real.group_rows.reserve(req.batch.group_rows.size());
  for (auto& row : req.batch.group_rows) {
    const uint64_t real_ref = tenant->ResolveGroup(row.group_ref);
    if (real_ref == 0) {
      ++pre_rejects;
      if (pre_error.ok()) {
        pre_error = Status::NotFound("unknown remote group ref");
      }
      continue;
    }
    row.group_ref = real_ref;
    real.group_rows.push_back(std::move(row));
  }
  real.labeled_group_rows.reserve(req.batch.labeled_group_rows.size());
  for (auto& row : req.batch.labeled_group_rows) {
    row.group_tags.push_back(index::Label{kTenantTag, req.tenant});
    real.labeled_group_rows.push_back(std::move(row));
  }

  core::WriteResult result;
  db_->Write(real, &result);
  resp.appended = result.appended;
  resp.rejected = pre_rejects + result.rejected;
  const Status first = pre_error.ok() ? result.first_error : pre_error;
  if (!first.ok()) {
    resp.code = first.code();
    resp.message = first.message();
  }
  resp.resolved_refs.reserve(result.resolved_refs.size());
  for (const uint64_t real_ref : result.resolved_refs) {
    resp.resolved_refs.push_back(
        real_ref == 0 ? 0 : tenant->InternSeries(real_ref));
  }
  resp.resolved_groups.reserve(result.resolved_groups.size());
  for (const core::WriteResult::ResolvedGroup& g : result.resolved_groups) {
    WriteResp::ResolvedGroup out;
    out.group_ref = g.group_ref == 0 ? 0 : tenant->InternGroup(g.group_ref);
    out.slots = g.slots;
    resp.resolved_groups.push_back(std::move(out));
  }
  tenant->samples_written->Add(result.appended);
  return finish();
}

Status Server::HandleQueryReqBody(const std::string& body,
                                  std::string* out_frame) {
  QueryReq req;
  TU_RETURN_IF_ERROR(DecodeQueryReq(Slice(body), &req));
  QueryResp resp;
  resp.request_id = req.request_id;
  auto finish = [&]() {
    std::string b;
    EncodeQueryResp(resp, &b);
    EncodeFrame(MsgType::kQueryResp, b, out_frame);
    return Status::OK();
  };
  auto reject = [&](const Status& why, Tenant* tenant) {
    resp.code = why.code();
    resp.message = why.message();
    if (tenant != nullptr) tenant->rejects->Add();
    c_tenant_rejects_->Add();
  };

  if (req.tenant.empty()) {
    reject(Status::InvalidArgument("tenant must not be empty"), nullptr);
    return finish();
  }
  Tenant* tenant = tenants_.GetOrCreate(req.tenant);
  tenant->requests->Add();
  // Mirror the embedded API's contract before the tenant matcher is
  // appended: a client query must name at least one matcher of its own.
  if (req.matchers.empty()) {
    reject(Status::InvalidArgument("query requires at least one tag matcher"),
           tenant);
    return finish();
  }
  for (const index::TagMatcher& m : req.matchers) {
    if (m.name == kTenantTag) {
      reject(Status::InvalidArgument("label name __tenant__ is reserved"),
             tenant);
      return finish();
    }
  }
  if (req.strictness > 2) {
    reject(Status::InvalidArgument("bad strictness"), tenant);
    return finish();
  }
  if (req.step_ms > 0 &&
      req.fn > static_cast<uint8_t>(query::AggFn::kMean)) {
    reject(Status::InvalidArgument("bad aggregate function"), tenant);
    return finish();
  }

  query::ReadRequest r;
  r.matchers = std::move(req.matchers);
  r.matchers.push_back(index::TagMatcher::Equal(kTenantTag, req.tenant));
  r.t0 = req.t0;
  r.t1 = req.t1;
  r.strictness = static_cast<query::ReadRequest::Strictness>(req.strictness);

  Status s;
  if (req.step_ms > 0) {
    r.step_ms = req.step_ms;
    r.fn = static_cast<query::AggFn>(req.fn);
    core::TimeUnionDB::AggregateResult result;
    s = db_->AggregateQuery(r, &result);
    if (s.ok()) {
      resp.series.reserve(result.series.size());
      for (core::TimeUnionDB::AggregateSeries& as : result.series) {
        QueryResp::Series out;
        StripTenantTag(&as.labels);
        out.labels = std::move(as.labels);
        out.timestamps.reserve(as.points.size());
        out.values.reserve(as.points.size());
        for (const query::AggPoint& p : as.points) {
          out.timestamps.push_back(p.window_start);
          out.values.push_back(p.value);
        }
        resp.series.push_back(std::move(out));
      }
      resp.missing_ranges = std::move(result.missing_ranges);
      FillWireStats(result.stats, &resp.stats);
    }
  } else {
    core::QueryResult result;
    s = db_->Query(r, &result);
    if (s.ok()) {
      resp.series.reserve(result.series.size());
      for (core::SeriesResult& sr : result.series) {
        QueryResp::Series out;
        StripTenantTag(&sr.labels);
        out.labels = std::move(sr.labels);
        out.timestamps.reserve(sr.samples.size());
        out.values.reserve(sr.samples.size());
        for (const compress::Sample& sample : sr.samples) {
          out.timestamps.push_back(sample.timestamp);
          out.values.push_back(sample.value);
        }
        resp.series.push_back(std::move(out));
      }
      resp.missing_ranges = std::move(result.missing_ranges);
      FillWireStats(result.stats, &resp.stats);
    }
  }
  if (!s.ok()) {
    resp.code = s.code();
    resp.message = s.message();
  }
  return finish();
}

}  // namespace tu::server
