// Blocking client for the network front door — the reference
// implementation of the wire protocol used by tests, the remote-write
// bench and examples/remote_write_client.cc.
//
// One request in flight at a time: Write/Query/Ping send a frame and
// block until the matching response arrives. References in the batch and
// in acks are *remote refs* scoped to this client's tenant (see
// tenant.h). Not thread-safe; use one Client per thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/write_batch.h"
#include "query/read_request.h"
#include "server/protocol.h"
#include "util/status.h"

namespace tu::server {

/// Per-batch remote write outcome. `remote_status` mirrors
/// WriteResult::first_error (OK when every row applied); `appended` rows
/// are WAL-acked by the server.
struct WriteAck {
  Status remote_status;
  uint64_t appended = 0;
  uint64_t rejected = 0;
  std::vector<uint64_t> resolved_refs;
  std::vector<WriteResp::ResolvedGroup> resolved_groups;
};

struct QueryReply {
  Status remote_status;
  std::vector<QueryResp::Series> series;
  std::vector<std::pair<int64_t, int64_t>> missing_ranges;
  WireQueryStats stats;
};

class Client {
 public:
  static Status Connect(const std::string& host, uint16_t port,
                        std::string tenant, std::unique_ptr<Client>* out);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Remote write. Returns non-OK only on transport/protocol failure;
  /// application-level row failures land in ack->remote_status.
  Status Write(const core::WriteBatch& batch, WriteAck* ack);
  /// Remote query; request.step_ms > 0 runs the aggregate path.
  Status Query(const query::ReadRequest& request, QueryReply* reply);
  Status Ping();
  void Close();

  /// Wire bytes sent since Connect (frames included) — the bench's
  /// bytes-per-sample source.
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  Client(int fd, std::string tenant) : fd_(fd), tenant_(std::move(tenant)) {}
  Status Call(MsgType req_type, const std::string& body, MsgType expect,
              std::string* resp_body);
  Status SendAll(const std::string& data);
  Status ReadFrame(MsgType* type, std::string* body);

  int fd_;
  const std::string tenant_;
  uint64_t next_id_ = 1;
  uint64_t bytes_sent_ = 0;
  std::string in_;
};

}  // namespace tu::server
