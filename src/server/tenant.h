// Multi-tenant admission and ref translation for the network front door.
//
// Tenant model: every remote request names a tenant; the server maps the
// tenant onto a reserved `__tenant__` tag injected into each registered
// series/group, so isolation rides on the existing label index — a
// tenant's queries get Equal(__tenant__, t) appended and can never match
// another tenant's series. Clients may not use the reserved tag
// themselves.
//
// Remote refs: storage refs never cross the wire. Each tenant owns a
// dense remote→real table; a labeled write that resolves a series returns
// its remote ref, and by-ref writes translate remote→real on decode. A
// guessed integer either misses the table (row rejected) or lands on one
// of the tenant's *own* series — cross-tenant addressing is structurally
// impossible.
//
// Quotas: per-tenant token buckets (samples/sec, wire bytes/sec) sit in
// front of the DB-wide DBOptions::admission watermarks. A bucket miss is
// a structured kResourceExhausted response, counted per tenant in the
// metrics registry (server.tenant.<name>.rejects).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace tu::server {

/// The reserved tenant tag name (rejected in client labels/matchers).
inline constexpr char kTenantTag[] = "__tenant__";

/// Monotonic-clock token bucket; capacity equals one second of rate
/// (burst == rate). rate == 0 means unlimited. Internally locked — the
/// handlers charging it run on any worker thread.
class TokenBucket {
 public:
  explicit TokenBucket(uint64_t rate_per_sec) : rate_(rate_per_sec) {}

  /// Takes `n` tokens if available; false = over quota. Oversized single
  /// requests (n > capacity) are allowed through when the bucket is full,
  /// driving it negative — the debt throttles what follows instead of
  /// making one large batch forever unadmittable.
  bool TryTake(uint64_t n, uint64_t now_us);

 private:
  const uint64_t rate_;
  std::mutex mu_;
  double tokens_ = 0;
  uint64_t last_us_ = 0;
  bool primed_ = false;
};

class TenantRegistry;

/// Per-tenant state. Created on first use, lives for the registry's
/// lifetime. The ref tables are locked per tenant; instrument pointers
/// are stable and lock-free to record.
class Tenant {
 public:
  const std::string& name() const { return name_; }

  /// remote → real (0 = unknown remote ref).
  uint64_t ResolveSeries(uint64_t remote_ref);
  uint64_t ResolveGroup(uint64_t remote_ref);
  /// real → remote, issuing a new remote ref on first sight.
  uint64_t InternSeries(uint64_t real_ref);
  uint64_t InternGroup(uint64_t real_ref);

  /// Charges both buckets; kResourceExhausted (counted) on either miss.
  Status Admit(uint64_t samples, uint64_t wire_bytes, uint64_t now_us);

  obs::Counter* samples_written;  // rows acked
  obs::Counter* requests;         // write + query requests handled
  obs::Counter* rejects;          // quota + validation rejects

 private:
  friend class TenantRegistry;
  Tenant(std::string name, uint64_t samples_per_sec, uint64_t bytes_per_sec);

  const std::string name_;
  TokenBucket samples_bucket_;
  TokenBucket bytes_bucket_;

  std::mutex mu_;
  std::vector<uint64_t> series_refs_;  // index = remote ref - 1
  std::unordered_map<uint64_t, uint64_t> series_remote_;  // real -> remote
  std::vector<uint64_t> group_refs_;
  std::unordered_map<uint64_t, uint64_t> group_remote_;
};

class TenantRegistry {
 public:
  struct Limits {
    uint64_t samples_per_sec = 0;  // 0 = unlimited
    uint64_t bytes_per_sec = 0;
  };

  TenantRegistry(obs::MetricsRegistry* metrics, Limits limits,
                 obs::Counter* total_rejects)
      : metrics_(metrics), limits_(limits), total_rejects_(total_rejects) {}

  /// Never fails; tenants are implicit (first use creates).
  Tenant* GetOrCreate(const std::string& name);

  obs::Counter* total_rejects() const { return total_rejects_; }

 private:
  obs::MetricsRegistry* metrics_;
  const Limits limits_;
  obs::Counter* total_rejects_;
  std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace tu::server
