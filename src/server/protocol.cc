#include "server/protocol.h"

#include <bit>
#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/slice.h"

namespace tu::server {

namespace {

void PutLp(std::string* dst, const std::string& s) {
  PutLengthPrefixedSlice(dst, Slice(s));
}

bool GetLp(Slice* in, std::string* out) {
  Slice s;
  if (!GetLengthPrefixedSlice(in, &s)) return false;
  out->assign(s.data(), s.size());
  return true;
}

void PutDouble(std::string* dst, double v) {
  PutFixed64(dst, std::bit_cast<uint64_t>(v));
}

bool GetFixed64(Slice* in, uint64_t* v) {
  if (in->size() < 8) return false;
  *v = DecodeFixed64(in->data());
  in->remove_prefix(8);
  return true;
}

bool GetDouble(Slice* in, double* v) {
  uint64_t bits = 0;
  if (!GetFixed64(in, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

bool GetInt64(Slice* in, int64_t* v) {
  uint64_t bits = 0;
  if (!GetFixed64(in, &bits)) return false;
  *v = static_cast<int64_t>(bits);
  return true;
}

void PutLabels(std::string* dst, const index::Labels& labels) {
  PutVarint32(dst, static_cast<uint32_t>(labels.size()));
  for (const index::Label& l : labels) {
    PutLp(dst, l.name);
    PutLp(dst, l.value);
  }
}

bool GetLabels(Slice* in, index::Labels* labels) {
  uint32_t n = 0;
  if (!GetVarint32(in, &n)) return false;
  // Cap pathological counts before the reserve: a label set on the wire
  // needs at least 2 bytes per label.
  if (n > in->size() / 2 + 1) return false;
  labels->clear();
  labels->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    index::Label l;
    if (!GetLp(in, &l.name) || !GetLp(in, &l.value)) return false;
    labels->push_back(std::move(l));
  }
  return true;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed frame: ") + what);
}

}  // namespace

Status MakeStatus(Status::Code code, const std::string& message) {
  switch (code) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(message);
    case Status::Code::kCorruption:
      return Status::Corruption(message);
    case Status::Code::kNotSupported:
      return Status::NotSupported(message);
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(message);
    case Status::Code::kIOError:
      return Status::IOError(message);
    case Status::Code::kBusy:
      return Status::Busy(message);
    case Status::Code::kOutOfSpace:
      return Status::OutOfSpace(message);
    case Status::Code::kUnavailable:
      return Status::Unavailable(message);
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(message);
  }
  return Status::InvalidArgument("unknown status code: " + message);
}

void EncodeFrame(MsgType type, const std::string& body, std::string* out) {
  std::string full;
  full.reserve(1 + body.size());
  full.push_back(static_cast<char>(type));
  full.append(body);
  PutFixed32(out, static_cast<uint32_t>(full.size()));
  PutFixed32(out, crc32c::Mask(crc32c::Value(full.data(), full.size())));
  out->append(full);
}

// -- WriteReq ---------------------------------------------------------------

void EncodeWriteReq(uint64_t request_id, const std::string& tenant,
                    const core::WriteBatch& b, std::string* body) {
  PutVarint64(body, request_id);
  PutLp(body, tenant);
  PutVarint32(body, static_cast<uint32_t>(b.sample_refs.size()));
  for (size_t i = 0; i < b.sample_refs.size(); ++i) {
    PutVarint64(body, b.sample_refs[i]);
    PutFixed64(body, static_cast<uint64_t>(b.sample_ts[i]));
    PutDouble(body, b.sample_values[i]);
  }
  PutVarint32(body, static_cast<uint32_t>(b.labeled_samples.size()));
  for (const core::WriteBatch::LabeledSample& row : b.labeled_samples) {
    PutLabels(body, row.labels);
    PutFixed64(body, static_cast<uint64_t>(row.ts));
    PutDouble(body, row.value);
  }
  PutVarint32(body, static_cast<uint32_t>(b.group_rows.size()));
  for (const core::WriteBatch::GroupRow& row : b.group_rows) {
    PutVarint64(body, row.group_ref);
    PutFixed64(body, static_cast<uint64_t>(row.ts));
    PutVarint32(body, static_cast<uint32_t>(row.slots.size()));
    for (size_t i = 0; i < row.slots.size(); ++i) {
      PutVarint32(body, row.slots[i]);
      PutDouble(body, row.values[i]);
    }
  }
  PutVarint32(body, static_cast<uint32_t>(b.labeled_group_rows.size()));
  for (const core::WriteBatch::LabeledGroupRow& row : b.labeled_group_rows) {
    PutLabels(body, row.group_tags);
    PutFixed64(body, static_cast<uint64_t>(row.ts));
    PutVarint32(body, static_cast<uint32_t>(row.member_tags.size()));
    for (size_t i = 0; i < row.member_tags.size(); ++i) {
      PutLabels(body, row.member_tags[i]);
      PutDouble(body, row.values[i]);
    }
  }
}

Status DecodeWriteReq(const Slice& payload, WriteReq* req) {
  Slice in = payload;
  req->batch.Clear();
  if (!GetVarint64(&in, &req->request_id)) return Malformed("request id");
  if (!GetLp(&in, &req->tenant)) return Malformed("tenant");

  uint32_t n = 0;
  if (!GetVarint32(&in, &n)) return Malformed("ref sample count");
  if (n > in.size() / 17 + 1) return Malformed("ref sample count");
  core::WriteBatch* b = &req->batch;
  b->sample_refs.reserve(n);
  b->sample_ts.reserve(n);
  b->sample_values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t ref = 0;
    int64_t ts = 0;
    double value = 0;
    if (!GetVarint64(&in, &ref) || !GetInt64(&in, &ts) ||
        !GetDouble(&in, &value)) {
      return Malformed("ref sample");
    }
    b->AddSample(ref, ts, value);
  }

  if (!GetVarint32(&in, &n)) return Malformed("labeled sample count");
  if (n > in.size() / 17 + 1) return Malformed("labeled sample count");
  b->labeled_samples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    core::WriteBatch::LabeledSample row;
    if (!GetLabels(&in, &row.labels) || !GetInt64(&in, &row.ts) ||
        !GetDouble(&in, &row.value)) {
      return Malformed("labeled sample");
    }
    b->labeled_samples.push_back(std::move(row));
  }

  if (!GetVarint32(&in, &n)) return Malformed("group row count");
  if (n > in.size() / 10 + 1) return Malformed("group row count");
  b->group_rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    core::WriteBatch::GroupRow row;
    uint32_t slots = 0;
    if (!GetVarint64(&in, &row.group_ref) || !GetInt64(&in, &row.ts) ||
        !GetVarint32(&in, &slots)) {
      return Malformed("group row");
    }
    if (slots > in.size() / 9 + 1) return Malformed("group row slot count");
    row.slots.reserve(slots);
    row.values.reserve(slots);
    for (uint32_t s = 0; s < slots; ++s) {
      uint32_t slot = 0;
      double value = 0;
      if (!GetVarint32(&in, &slot) || !GetDouble(&in, &value)) {
        return Malformed("group row slot");
      }
      row.slots.push_back(slot);
      row.values.push_back(value);
    }
    b->group_rows.push_back(std::move(row));
  }

  if (!GetVarint32(&in, &n)) return Malformed("labeled group count");
  if (n > in.size() / 10 + 1) return Malformed("labeled group count");
  b->labeled_group_rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    core::WriteBatch::LabeledGroupRow row;
    uint32_t members = 0;
    if (!GetLabels(&in, &row.group_tags) || !GetInt64(&in, &row.ts) ||
        !GetVarint32(&in, &members)) {
      return Malformed("labeled group row");
    }
    if (members > in.size() / 9 + 1) return Malformed("member count");
    row.member_tags.reserve(members);
    row.values.reserve(members);
    for (uint32_t m = 0; m < members; ++m) {
      index::Labels tags;
      double value = 0;
      if (!GetLabels(&in, &tags) || !GetDouble(&in, &value)) {
        return Malformed("member row");
      }
      row.member_tags.push_back(std::move(tags));
      row.values.push_back(value);
    }
    b->labeled_group_rows.push_back(std::move(row));
  }
  if (!in.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// -- WriteResp --------------------------------------------------------------

void EncodeWriteResp(const WriteResp& resp, std::string* body) {
  PutVarint64(body, resp.request_id);
  body->push_back(static_cast<char>(resp.code));
  PutLp(body, resp.message);
  PutVarint64(body, resp.appended);
  PutVarint64(body, resp.rejected);
  PutVarint32(body, static_cast<uint32_t>(resp.resolved_refs.size()));
  for (uint64_t ref : resp.resolved_refs) PutVarint64(body, ref);
  PutVarint32(body, static_cast<uint32_t>(resp.resolved_groups.size()));
  for (const WriteResp::ResolvedGroup& g : resp.resolved_groups) {
    PutVarint64(body, g.group_ref);
    PutVarint32(body, static_cast<uint32_t>(g.slots.size()));
    for (uint32_t slot : g.slots) PutVarint32(body, slot);
  }
}

Status DecodeWriteResp(const Slice& payload, WriteResp* resp) {
  Slice in = payload;
  if (!GetVarint64(&in, &resp->request_id)) return Malformed("request id");
  if (in.empty()) return Malformed("status code");
  resp->code = static_cast<Status::Code>(in.data()[0]);
  in.remove_prefix(1);
  if (!GetLp(&in, &resp->message)) return Malformed("status message");
  if (!GetVarint64(&in, &resp->appended) ||
      !GetVarint64(&in, &resp->rejected)) {
    return Malformed("row counts");
  }
  uint32_t n = 0;
  if (!GetVarint32(&in, &n)) return Malformed("resolved ref count");
  if (n > in.size() + 1) return Malformed("resolved ref count");
  resp->resolved_refs.clear();
  resp->resolved_refs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t ref = 0;
    if (!GetVarint64(&in, &ref)) return Malformed("resolved ref");
    resp->resolved_refs.push_back(ref);
  }
  if (!GetVarint32(&in, &n)) return Malformed("resolved group count");
  if (n > in.size() + 1) return Malformed("resolved group count");
  resp->resolved_groups.clear();
  resp->resolved_groups.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WriteResp::ResolvedGroup g;
    uint32_t slots = 0;
    if (!GetVarint64(&in, &g.group_ref) || !GetVarint32(&in, &slots)) {
      return Malformed("resolved group");
    }
    if (slots > in.size() + 1) return Malformed("resolved group slots");
    g.slots.reserve(slots);
    for (uint32_t s = 0; s < slots; ++s) {
      uint32_t slot = 0;
      if (!GetVarint32(&in, &slot)) return Malformed("resolved slot");
      g.slots.push_back(slot);
    }
    resp->resolved_groups.push_back(std::move(g));
  }
  if (!in.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// -- QueryReq ---------------------------------------------------------------

void EncodeQueryReq(const QueryReq& req, std::string* body) {
  PutVarint64(body, req.request_id);
  PutLp(body, req.tenant);
  PutVarint32(body, static_cast<uint32_t>(req.matchers.size()));
  for (const index::TagMatcher& m : req.matchers) {
    body->push_back(m.type == index::TagMatcher::Type::kRegex ? 1 : 0);
    PutLp(body, m.name);
    PutLp(body, m.value);
  }
  PutFixed64(body, static_cast<uint64_t>(req.t0));
  PutFixed64(body, static_cast<uint64_t>(req.t1));
  body->push_back(static_cast<char>(req.strictness));
  PutVarint64(body, static_cast<uint64_t>(req.step_ms));
  body->push_back(static_cast<char>(req.fn));
}

Status DecodeQueryReq(const Slice& payload, QueryReq* req) {
  Slice in = payload;
  if (!GetVarint64(&in, &req->request_id)) return Malformed("request id");
  if (!GetLp(&in, &req->tenant)) return Malformed("tenant");
  uint32_t n = 0;
  if (!GetVarint32(&in, &n)) return Malformed("matcher count");
  if (n > in.size() / 3 + 1) return Malformed("matcher count");
  req->matchers.clear();
  req->matchers.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (in.empty()) return Malformed("matcher type");
    const uint8_t type = static_cast<uint8_t>(in.data()[0]);
    in.remove_prefix(1);
    if (type > 1) return Malformed("matcher type");
    index::TagMatcher m;
    m.type = type == 1 ? index::TagMatcher::Type::kRegex
                       : index::TagMatcher::Type::kEqual;
    if (!GetLp(&in, &m.name) || !GetLp(&in, &m.value)) {
      return Malformed("matcher");
    }
    req->matchers.push_back(std::move(m));
  }
  if (!GetInt64(&in, &req->t0) || !GetInt64(&in, &req->t1)) {
    return Malformed("time range");
  }
  if (in.empty()) return Malformed("strictness");
  req->strictness = static_cast<uint8_t>(in.data()[0]);
  in.remove_prefix(1);
  uint64_t step = 0;
  if (!GetVarint64(&in, &step)) return Malformed("step");
  req->step_ms = static_cast<int64_t>(step);
  if (in.empty()) return Malformed("agg fn");
  req->fn = static_cast<uint8_t>(in.data()[0]);
  in.remove_prefix(1);
  if (!in.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// -- QueryResp --------------------------------------------------------------

void EncodeQueryResp(const QueryResp& resp, std::string* body) {
  PutVarint64(body, resp.request_id);
  body->push_back(static_cast<char>(resp.code));
  PutLp(body, resp.message);
  PutVarint32(body, static_cast<uint32_t>(resp.series.size()));
  for (const QueryResp::Series& s : resp.series) {
    PutLabels(body, s.labels);
    PutVarint32(body, static_cast<uint32_t>(s.timestamps.size()));
    for (size_t i = 0; i < s.timestamps.size(); ++i) {
      PutFixed64(body, static_cast<uint64_t>(s.timestamps[i]));
      PutDouble(body, s.values[i]);
    }
  }
  PutVarint32(body, static_cast<uint32_t>(resp.missing_ranges.size()));
  for (const auto& [lo, hi] : resp.missing_ranges) {
    PutFixed64(body, static_cast<uint64_t>(lo));
    PutFixed64(body, static_cast<uint64_t>(hi));
  }
  PutVarint64(body, resp.stats.batches_decoded);
  PutVarint64(body, resp.stats.samples_decoded);
  PutVarint64(body, resp.stats.rollup_buckets_served);
  PutVarint64(body, resp.stats.raw_edge_samples);
  PutVarint64(body, resp.stats.cache_hits);
  PutVarint64(body, resp.stats.cache_misses);
  PutVarint64(body, resp.stats.setup_us);
  PutVarint64(body, resp.stats.drain_us);
}

Status DecodeQueryResp(const Slice& payload, QueryResp* resp) {
  Slice in = payload;
  if (!GetVarint64(&in, &resp->request_id)) return Malformed("request id");
  if (in.empty()) return Malformed("status code");
  resp->code = static_cast<Status::Code>(in.data()[0]);
  in.remove_prefix(1);
  if (!GetLp(&in, &resp->message)) return Malformed("status message");
  uint32_t n = 0;
  if (!GetVarint32(&in, &n)) return Malformed("series count");
  if (n > in.size() / 2 + 1) return Malformed("series count");
  resp->series.clear();
  resp->series.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    QueryResp::Series s;
    uint32_t samples = 0;
    if (!GetLabels(&in, &s.labels) || !GetVarint32(&in, &samples)) {
      return Malformed("series");
    }
    if (samples > in.size() / 16 + 1) return Malformed("sample count");
    s.timestamps.reserve(samples);
    s.values.reserve(samples);
    for (uint32_t k = 0; k < samples; ++k) {
      int64_t ts = 0;
      double value = 0;
      if (!GetInt64(&in, &ts) || !GetDouble(&in, &value)) {
        return Malformed("sample");
      }
      s.timestamps.push_back(ts);
      s.values.push_back(value);
    }
    resp->series.push_back(std::move(s));
  }
  if (!GetVarint32(&in, &n)) return Malformed("missing range count");
  if (n > in.size() / 16 + 1) return Malformed("missing range count");
  resp->missing_ranges.clear();
  resp->missing_ranges.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t lo = 0;
    int64_t hi = 0;
    if (!GetInt64(&in, &lo) || !GetInt64(&in, &hi)) {
      return Malformed("missing range");
    }
    resp->missing_ranges.emplace_back(lo, hi);
  }
  if (!GetVarint64(&in, &resp->stats.batches_decoded) ||
      !GetVarint64(&in, &resp->stats.samples_decoded) ||
      !GetVarint64(&in, &resp->stats.rollup_buckets_served) ||
      !GetVarint64(&in, &resp->stats.raw_edge_samples) ||
      !GetVarint64(&in, &resp->stats.cache_hits) ||
      !GetVarint64(&in, &resp->stats.cache_misses) ||
      !GetVarint64(&in, &resp->stats.setup_us) ||
      !GetVarint64(&in, &resp->stats.drain_us)) {
    return Malformed("stats");
  }
  if (!in.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

// -- ErrorResp / Ping -------------------------------------------------------

void EncodeErrorResp(const ErrorResp& resp, std::string* body) {
  PutVarint64(body, resp.request_id);
  body->push_back(static_cast<char>(resp.code));
  PutLp(body, resp.message);
}

Status DecodeErrorResp(const Slice& payload, ErrorResp* resp) {
  Slice in = payload;
  if (!GetVarint64(&in, &resp->request_id)) return Malformed("request id");
  if (in.empty()) return Malformed("status code");
  resp->code = static_cast<Status::Code>(in.data()[0]);
  in.remove_prefix(1);
  if (!GetLp(&in, &resp->message)) return Malformed("status message");
  return Status::OK();
}

void EncodePingBody(uint64_t request_id, std::string* body) {
  PutVarint64(body, request_id);
}

Status DecodePingBody(const Slice& payload, uint64_t* request_id) {
  Slice in = payload;
  if (!GetVarint64(&in, request_id)) return Malformed("request id");
  return Status::OK();
}

// -- Frame extraction -------------------------------------------------------

Status ExtractFrame(std::string* in, uint32_t max_frame_bytes, MsgType* type,
                    std::string* body, bool* have_frame) {
  *have_frame = false;
  if (in->size() < kFrameHeaderBytes) return Status::OK();
  const uint32_t len = DecodeFixed32(in->data());
  if (len == 0 || len > max_frame_bytes) {
    return Status::InvalidArgument("frame length out of bounds");
  }
  if (in->size() < kFrameHeaderBytes + len) return Status::OK();
  const uint32_t expect = crc32c::Unmask(DecodeFixed32(in->data() + 4));
  const char* full = in->data() + kFrameHeaderBytes;
  if (crc32c::Value(full, len) != expect) {
    return Status::Corruption("frame checksum mismatch");
  }
  const uint8_t raw_type = static_cast<uint8_t>(full[0]);
  if (raw_type < static_cast<uint8_t>(MsgType::kWriteReq) ||
      raw_type > static_cast<uint8_t>(MsgType::kError)) {
    return Status::InvalidArgument("unknown message type");
  }
  *type = static_cast<MsgType>(raw_type);
  body->assign(full + 1, len - 1);
  in->erase(0, kFrameHeaderBytes + len);
  *have_frame = true;
  return Status::OK();
}

}  // namespace tu::server
