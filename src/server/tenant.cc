#include "server/tenant.h"

namespace tu::server {

bool TokenBucket::TryTake(uint64_t n, uint64_t now_us) {
  if (rate_ == 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (!primed_) {
    tokens_ = static_cast<double>(rate_);
    last_us_ = now_us;
    primed_ = true;
  }
  if (now_us > last_us_) {
    tokens_ += static_cast<double>(now_us - last_us_) * 1e-6 *
               static_cast<double>(rate_);
    if (tokens_ > static_cast<double>(rate_)) {
      tokens_ = static_cast<double>(rate_);
    }
    last_us_ = now_us;
  }
  const double need = static_cast<double>(n);
  // A full bucket admits even an oversized request (debt model, see
  // header); otherwise the request must be fully covered.
  if (tokens_ >= need ||
      (tokens_ >= static_cast<double>(rate_) && need > tokens_)) {
    tokens_ -= need;
    return true;
  }
  return false;
}

Tenant::Tenant(std::string name, uint64_t samples_per_sec,
               uint64_t bytes_per_sec)
    : samples_written(nullptr),
      requests(nullptr),
      rejects(nullptr),
      name_(std::move(name)),
      samples_bucket_(samples_per_sec),
      bytes_bucket_(bytes_per_sec) {}

uint64_t Tenant::ResolveSeries(uint64_t remote_ref) {
  std::lock_guard<std::mutex> lock(mu_);
  if (remote_ref == 0 || remote_ref > series_refs_.size()) return 0;
  return series_refs_[remote_ref - 1];
}

uint64_t Tenant::ResolveGroup(uint64_t remote_ref) {
  std::lock_guard<std::mutex> lock(mu_);
  if (remote_ref == 0 || remote_ref > group_refs_.size()) return 0;
  return group_refs_[remote_ref - 1];
}

uint64_t Tenant::InternSeries(uint64_t real_ref) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = series_remote_.try_emplace(real_ref, 0);
  if (inserted) {
    series_refs_.push_back(real_ref);
    it->second = series_refs_.size();
  }
  return it->second;
}

uint64_t Tenant::InternGroup(uint64_t real_ref) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = group_remote_.try_emplace(real_ref, 0);
  if (inserted) {
    group_refs_.push_back(real_ref);
    it->second = group_refs_.size();
  }
  return it->second;
}

Status Tenant::Admit(uint64_t samples, uint64_t wire_bytes, uint64_t now_us) {
  if (!samples_bucket_.TryTake(samples, now_us)) {
    return Status::ResourceExhausted("tenant sample quota exceeded");
  }
  if (!bytes_bucket_.TryTake(wire_bytes, now_us)) {
    return Status::ResourceExhausted("tenant byte quota exceeded");
  }
  return Status::OK();
}

Tenant* TenantRegistry::GetOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    auto tenant = std::unique_ptr<Tenant>(
        new Tenant(name, limits_.samples_per_sec, limits_.bytes_per_sec));
    tenant->samples_written =
        metrics_->counter("server.tenant." + name + ".samples");
    tenant->requests = metrics_->counter("server.tenant." + name + ".requests");
    tenant->rejects = metrics_->counter("server.tenant." + name + ".rejects");
    it = tenants_.emplace(name, std::move(tenant)).first;
  }
  return it->second.get();
}

}  // namespace tu::server
