// Wire protocol of the network front door (DESIGN.md "Network front
// door"). Length-prefixed binary frames over TCP:
//
//   [fixed32 body_len][fixed32 masked crc32c(body)][body]
//   body = [u8 MsgType][message payload]
//
// The crc covers the whole body (type byte included) with the same masked
// crc32c the storage formats use, so a flipped bit on the wire is caught
// before any payload decode runs. body_len is bounded by
// ServerOptions::max_frame_bytes (default 16 MiB); an oversized length
// prefix is a protocol error and closes the connection — it is never
// allocated.
//
// Two request families map 1:1 onto the DB's batched API:
//   WriteReq  -> core::WriteBatch -> TimeUnionDB::Write
//   QueryReq  -> query::ReadRequest -> Query / AggregateQuery
//
// Every request carries a client-chosen request_id echoed in the response,
// so clients may pipeline. Series/group references on the wire are
// *remote refs*: dense per-tenant handles issued by the server (see
// tenant.h) — real storage refs never cross the wire, so one tenant
// cannot address another tenant's series by guessing integers.
//
// Integer coding reuses util/coding.h: varint for counts/ids, fixed64 for
// timestamps and double bits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/write_batch.h"
#include "index/inverted_index.h"
#include "query/read_context.h"
#include "util/status.h"

namespace tu::server {

enum class MsgType : uint8_t {
  kWriteReq = 1,
  kWriteResp = 2,
  kQueryReq = 3,
  kQueryResp = 4,
  kPing = 5,
  kPong = 6,
  kError = 7,
};

/// Frame byte overhead in front of every body.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Default cap on body_len; ServerOptions may lower it.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// Remote write request. `batch` carries remote refs in sample_refs /
/// group_rows[].group_ref; labeled rows carry raw label sets (the server
/// injects the tenant tag).
struct WriteReq {
  uint64_t request_id = 0;
  std::string tenant;
  core::WriteBatch batch;
};

/// Per-batch outcome. `code`/`message` mirror WriteResult::first_error;
/// resolved refs are remote refs, parallel to the request's labeled rows.
struct WriteResp {
  uint64_t request_id = 0;
  Status::Code code = Status::Code::kOk;
  std::string message;
  uint64_t appended = 0;
  uint64_t rejected = 0;
  std::vector<uint64_t> resolved_refs;  // remote, 0 = row failed
  struct ResolvedGroup {
    uint64_t group_ref = 0;  // remote, 0 = row failed
    std::vector<uint32_t> slots;
  };
  std::vector<ResolvedGroup> resolved_groups;
};

/// Query / aggregate-query request; step_ms > 0 selects the aggregate
/// path (then `fn` applies). strictness encodes
/// query::ReadRequest::Strictness.
struct QueryReq {
  uint64_t request_id = 0;
  std::string tenant;
  std::vector<index::TagMatcher> matchers;
  int64_t t0 = 0;
  int64_t t1 = 0;
  uint8_t strictness = 0;
  int64_t step_ms = 0;
  uint8_t fn = 0;
};

/// The QueryStats subset that crosses the wire.
struct WireQueryStats {
  uint64_t batches_decoded = 0;
  uint64_t samples_decoded = 0;
  uint64_t rollup_buckets_served = 0;
  uint64_t raw_edge_samples = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t setup_us = 0;
  uint64_t drain_us = 0;
};

/// Sample (or aggregate point: ts = window_start) series payload. The
/// server strips the injected tenant tag before encoding labels.
struct QueryResp {
  uint64_t request_id = 0;
  Status::Code code = Status::Code::kOk;
  std::string message;
  struct Series {
    index::Labels labels;
    std::vector<int64_t> timestamps;
    std::vector<double> values;
  };
  std::vector<Series> series;
  std::vector<std::pair<int64_t, int64_t>> missing_ranges;
  WireQueryStats stats;
};

/// Terminal protocol-level failure (unparseable frame, unknown type).
/// After sending it the server closes the connection.
struct ErrorResp {
  uint64_t request_id = 0;
  Status::Code code = Status::Code::kInvalidArgument;
  std::string message;
};

/// Rebuilds a Status from a wire (code, message) pair — the Status(Code,
/// msg) constructor is private, so the factories are switched on here.
Status MakeStatus(Status::Code code, const std::string& message);

// -- Encoding ---------------------------------------------------------------

/// Appends one complete frame ([len][crc][type|body]) to `out`.
void EncodeFrame(MsgType type, const std::string& body, std::string* out);

/// Component form so callers need not copy a batch into a WriteReq.
void EncodeWriteReq(uint64_t request_id, const std::string& tenant,
                    const core::WriteBatch& batch, std::string* body);
void EncodeWriteResp(const WriteResp& resp, std::string* body);
void EncodeQueryReq(const QueryReq& req, std::string* body);
void EncodeQueryResp(const QueryResp& resp, std::string* body);
void EncodeErrorResp(const ErrorResp& resp, std::string* body);
/// Ping/Pong bodies are just the echoed request id.
void EncodePingBody(uint64_t request_id, std::string* body);

// -- Decoding ---------------------------------------------------------------

Status DecodeWriteReq(const Slice& payload, WriteReq* req);
Status DecodeWriteResp(const Slice& payload, WriteResp* resp);
Status DecodeQueryReq(const Slice& payload, QueryReq* req);
Status DecodeQueryResp(const Slice& payload, QueryResp* resp);
Status DecodeErrorResp(const Slice& payload, ErrorResp* resp);
Status DecodePingBody(const Slice& payload, uint64_t* request_id);

/// Incremental frame extraction from a receive buffer. Returns:
///  - OK with *have_frame = true: one frame removed from the front of
///    `in`; *type and *body are filled (body excludes the type byte).
///  - OK with *have_frame = false: `in` holds a frame prefix; read more.
///  - non-OK: protocol error (oversized length, crc mismatch, unknown
///    type) — the connection is poisoned and must be closed after the
///    error response drains. `in` is left untouched.
Status ExtractFrame(std::string* in, uint32_t max_frame_bytes, MsgType* type,
                    std::string* body, bool* have_frame);

}  // namespace tu::server
