#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/slice.h"

namespace tu::server {

Status Client::Connect(const std::string& host, uint16_t port,
                       std::string tenant, std::unique_ptr<Client>* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        Status::IOError("connect: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  out->reset(new Client(fd, std::move(tenant)));
  return Status::OK();
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendAll(const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t w =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Status::IOError("send: " + std::string(strerror(errno)));
  }
  bytes_sent_ += data.size();
  return Status::OK();
}

Status Client::ReadFrame(MsgType* type, std::string* body) {
  char buf[64 * 1024];
  for (;;) {
    bool have = false;
    TU_RETURN_IF_ERROR(
        ExtractFrame(&in_, kDefaultMaxFrameBytes, type, body, &have));
    if (have) return Status::OK();
    const ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r > 0) {
      in_.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) return Status::IOError("connection closed by server");
    return Status::IOError("read: " + std::string(strerror(errno)));
  }
}

Status Client::Call(MsgType req_type, const std::string& body, MsgType expect,
                    std::string* resp_body) {
  if (fd_ < 0) return Status::InvalidArgument("client closed");
  std::string frame;
  EncodeFrame(req_type, body, &frame);
  TU_RETURN_IF_ERROR(SendAll(frame));
  MsgType resp_type;
  TU_RETURN_IF_ERROR(ReadFrame(&resp_type, resp_body));
  if (resp_type == MsgType::kError) {
    ErrorResp err;
    TU_RETURN_IF_ERROR(DecodeErrorResp(Slice(*resp_body), &err));
    return MakeStatus(err.code, "server: " + err.message);
  }
  if (resp_type != expect) {
    return Status::Corruption("unexpected response type");
  }
  return Status::OK();
}

Status Client::Write(const core::WriteBatch& batch, WriteAck* ack) {
  const uint64_t id = next_id_++;
  std::string body;
  EncodeWriteReq(id, tenant_, batch, &body);
  std::string resp_body;
  TU_RETURN_IF_ERROR(
      Call(MsgType::kWriteReq, body, MsgType::kWriteResp, &resp_body));
  WriteResp resp;
  TU_RETURN_IF_ERROR(DecodeWriteResp(Slice(resp_body), &resp));
  if (resp.request_id != id) return Status::Corruption("response id mismatch");
  ack->remote_status = MakeStatus(resp.code, resp.message);
  ack->appended = resp.appended;
  ack->rejected = resp.rejected;
  ack->resolved_refs = std::move(resp.resolved_refs);
  ack->resolved_groups = std::move(resp.resolved_groups);
  return Status::OK();
}

Status Client::Query(const query::ReadRequest& request, QueryReply* reply) {
  const uint64_t id = next_id_++;
  QueryReq req;
  req.request_id = id;
  req.tenant = tenant_;
  req.matchers = request.matchers;
  req.t0 = request.t0;
  req.t1 = request.t1;
  req.strictness = static_cast<uint8_t>(request.strictness);
  req.step_ms = request.step_ms;
  req.fn = static_cast<uint8_t>(request.fn);
  std::string body;
  EncodeQueryReq(req, &body);
  std::string resp_body;
  TU_RETURN_IF_ERROR(
      Call(MsgType::kQueryReq, body, MsgType::kQueryResp, &resp_body));
  QueryResp resp;
  TU_RETURN_IF_ERROR(DecodeQueryResp(Slice(resp_body), &resp));
  if (resp.request_id != id) return Status::Corruption("response id mismatch");
  reply->remote_status = MakeStatus(resp.code, resp.message);
  reply->series = std::move(resp.series);
  reply->missing_ranges = std::move(resp.missing_ranges);
  reply->stats = resp.stats;
  return Status::OK();
}

Status Client::Ping() {
  const uint64_t id = next_id_++;
  std::string body;
  EncodePingBody(id, &body);
  std::string resp_body;
  TU_RETURN_IF_ERROR(Call(MsgType::kPing, body, MsgType::kPong, &resp_body));
  uint64_t echoed = 0;
  TU_RETURN_IF_ERROR(DecodePingBody(Slice(resp_body), &echoed));
  if (echoed != id) return Status::Corruption("ping id mismatch");
  return Status::OK();
}

}  // namespace tu::server
