// Network front door: a TCP remote-write/query server over the batched DB
// API (DESIGN.md "Network front door").
//
// Threading model (mosquitto-style single accept loop + worker pool):
//   - One loop thread owns the listening socket, the epoll instance and
//     every connection's input buffer. It accepts, reads, frames, and is
//     the only thread that calls epoll_ctl or closes fds — so fd-reuse
//     races are structurally impossible.
//   - Decoded frames are handed to a ThreadPool. Workers decode the
//     request, run it against TimeUnionDB (whose write/read paths are
//     internally synchronized), encode the response into the connection's
//     mutex-guarded output buffer, and wake the loop via an eventfd.
//   - The loop flushes output buffers with nonblocking writes, arming
//     EPOLLOUT only while a partial write is outstanding.
//
// Connection lifetime: connections are shared_ptr-owned; workers hold a
// reference while a request is in flight, so a peer hangup never frees a
// connection under a worker — the loop stops watching the fd and the
// last reference closes it.
//
// Graceful drain (Shutdown): stop accepting, let in-flight requests
// finish and their responses flush, close connections as they go idle,
// then SyncWal — every acked write is durable before Shutdown returns.
// Acked means the WAL append happened (TimeUnionDB::Write returned)
// before the response frame was queued.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/timeunion_db.h"
#include "server/protocol.h"
#include "server/tenant.h"
#include "util/thread_pool.h"

namespace tu::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; Server::port() reports the bound port after Start().
  uint16_t port = 0;
  int num_workers = 4;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-tenant quotas applied before DBOptions::admission (0 = off).
  TenantRegistry::Limits tenant_limits;
  int accept_backlog = 128;
  /// Shutdown stops waiting for unflushed output after this long.
  int drain_deadline_ms = 5000;
};

class Server {
 public:
  /// Registers server.* instruments in the DB's metrics registry; the DB
  /// must outlive the server.
  Server(core::TimeUnionDB* db, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the loop thread + worker pool.
  Status Start();
  /// Graceful drain; idempotent. Safe to call concurrently with ~Server.
  void Shutdown();

  uint16_t port() const { return port_; }

 private:
  struct Conn {
    explicit Conn(int fd) : fd(fd) {}
    ~Conn();
    const int fd;
    /// Loop thread only.
    std::string in;
    bool peer_closed = false;
    bool epollout_armed = false;
    /// True once a protocol error is queued: input is ignored and the
    /// connection closes after the error response drains.
    bool poisoned = false;

    std::mutex out_mu;
    std::string out;  // guarded by out_mu

    std::atomic<int> inflight{0};
    std::atomic<bool> close_after_flush{false};
  };

  void LoopThread();
  void AcceptNew();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  /// Loop thread; returns false when the connection should be dropped
  /// immediately (write error).
  bool FlushConn(Conn* conn);
  void CloseConn(int fd);
  /// Queue a protocol-level error and poison the connection (loop
  /// thread).
  void ProtocolError(const std::shared_ptr<Conn>& conn, const Status& s);

  /// Worker-side request execution. The body handlers return non-OK only
  /// for protocol-level decode failures (the caller then answers with an
  /// ErrorResp and closes); application failures travel inside the
  /// response frame.
  void HandleFrame(const std::shared_ptr<Conn>& conn, MsgType type,
                   const std::string& body);
  Status HandleWriteReqBody(const std::string& body, size_t wire_bytes,
                            std::string* out_frame);
  Status HandleQueryReqBody(const std::string& body, std::string* out_frame);
  void QueueOutput(Conn* conn, const std::string& frame);
  void Wake();

  core::TimeUnionDB* db_;
  const ServerOptions options_;
  TenantRegistry tenants_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;

  /// Loop thread only.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  /// Connections with freshly queued output (workers -> loop).
  std::mutex pending_mu_;
  std::vector<std::shared_ptr<Conn>> pending_;

  obs::Gauge* g_open_conns_;
  obs::Gauge* g_inflight_;
  obs::Counter* c_frames_;
  obs::Counter* c_protocol_errors_;
  obs::Counter* c_tenant_rejects_;
};

}  // namespace tu::server
