#include "core/wal.h"

#include <map>
#include <sstream>

#include "cloud/fault_injector.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace tu::core {

namespace {

void PutLabels(std::string* out, const index::Labels& labels) {
  PutVarint32(out, static_cast<uint32_t>(labels.size()));
  for (const auto& l : labels) {
    PutLengthPrefixedSlice(out, l.name);
    PutLengthPrefixedSlice(out, l.value);
  }
}

bool GetLabels(Slice* in, index::Labels* labels) {
  uint32_t n = 0;
  if (!GetVarint32(in, &n)) return false;
  labels->clear();
  labels->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice name, value;
    if (!GetLengthPrefixedSlice(in, &name) ||
        !GetLengthPrefixedSlice(in, &value)) {
      return false;
    }
    labels->push_back(index::Label{name.ToString(), value.ToString()});
  }
  return true;
}

uint64_t DoubleBits(double v) {
  uint64_t bits;
  memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void EncodeWalRecord(const WalRecord& record, std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(record.type));
  switch (record.type) {
    case WalRecordType::kRegisterSeries:
    case WalRecordType::kRegisterGroup:
      PutVarint64(out, record.id);
      PutLabels(out, record.labels);
      break;
    case WalRecordType::kRegisterMember:
      PutVarint64(out, record.id);
      PutVarint32(out, record.slot);
      PutLabels(out, record.labels);
      break;
    case WalRecordType::kSample:
      PutVarint64(out, record.id);
      PutVarint64(out, record.seq);
      PutFixed64(out, static_cast<uint64_t>(record.ts));
      PutFixed64(out, DoubleBits(record.value));
      break;
    case WalRecordType::kGroupSample:
      PutVarint64(out, record.id);
      PutVarint64(out, record.seq);
      PutFixed64(out, static_cast<uint64_t>(record.ts));
      PutVarint32(out, static_cast<uint32_t>(record.slots.size()));
      for (size_t i = 0; i < record.slots.size(); ++i) {
        PutVarint32(out, record.slots[i]);
        PutFixed64(out, DoubleBits(record.values[i]));
      }
      break;
    case WalRecordType::kFlushMark:
      PutVarint64(out, record.id);
      PutVarint64(out, record.seq);
      break;
  }
}

Status DecodeWalRecord(const Slice& payload, WalRecord* record) {
  if (payload.empty()) return Status::Corruption("empty wal record");
  Slice in = payload;
  record->type = static_cast<WalRecordType>(in[0]);
  in.remove_prefix(1);
  auto fail = [] { return Status::Corruption("bad wal record"); };
  switch (record->type) {
    case WalRecordType::kRegisterSeries:
    case WalRecordType::kRegisterGroup:
      if (!GetVarint64(&in, &record->id) || !GetLabels(&in, &record->labels)) {
        return fail();
      }
      return Status::OK();
    case WalRecordType::kRegisterMember:
      if (!GetVarint64(&in, &record->id) || !GetVarint32(&in, &record->slot) ||
          !GetLabels(&in, &record->labels)) {
        return fail();
      }
      return Status::OK();
    case WalRecordType::kSample: {
      if (!GetVarint64(&in, &record->id) || !GetVarint64(&in, &record->seq) ||
          in.size() < 16) {
        return fail();
      }
      record->ts = static_cast<int64_t>(DecodeFixed64(in.data()));
      record->value = BitsDouble(DecodeFixed64(in.data() + 8));
      return Status::OK();
    }
    case WalRecordType::kGroupSample: {
      if (!GetVarint64(&in, &record->id) || !GetVarint64(&in, &record->seq) ||
          in.size() < 8) {
        return fail();
      }
      record->ts = static_cast<int64_t>(DecodeFixed64(in.data()));
      in.remove_prefix(8);
      uint32_t n = 0;
      if (!GetVarint32(&in, &n)) return fail();
      record->slots.clear();
      record->values.clear();
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t slot = 0;
        if (!GetVarint32(&in, &slot) || in.size() < 8) return fail();
        record->slots.push_back(slot);
        record->values.push_back(BitsDouble(DecodeFixed64(in.data())));
        in.remove_prefix(8);
      }
      return Status::OK();
    }
    case WalRecordType::kFlushMark:
      if (!GetVarint64(&in, &record->id) || !GetVarint64(&in, &record->seq)) {
        return fail();
      }
      return Status::OK();
  }
  return fail();
}

WalWriter::WalWriter(cloud::BlockStore* store, std::string fname)
    : store_(store), fname_(std::move(fname)) {}

Status WalWriter::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  return OpenLocked();
}

Status WalWriter::OpenLocked() {
  poison_ = Status::OK();
  pending_tail_.clear();
  // Append semantics: preserve existing contents across reopen. Whatever
  // is on disk now is the durable baseline for rotation.
  std::string existing;
  Status s = store_->ReadFileToString(fname_, &existing);
  if (s.ok() && !existing.empty()) {
    std::unique_ptr<cloud::WritableFile> file;
    TU_RETURN_IF_ERROR(store_->NewWritableFile(fname_, &file));
    TU_RETURN_IF_ERROR(file->Append(existing));
    file_ = std::move(file);
    bytes_written_ = existing.size();
    synced_bytes_ = existing.size();
    return Status::OK();
  }
  TU_RETURN_IF_ERROR(store_->NewWritableFile(fname_, &file_));
  bytes_written_ = 0;
  synced_bytes_ = 0;
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;
  // Crash here = the process died before the record reached the log: the
  // sample was never acknowledged, so replay correctly omits it.
  cloud::CrashPoint(store_->fault(), "wal.append");
  std::string payload;
  EncodeWalRecord(record, &payload);
  std::string framed;
  PutFixed32(&framed,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  framed += payload;
  Status s = file_->Append(framed);
  if (!s.ok()) {
    // A failed append (ENOSPC, I/O error) may have landed a partial frame.
    // Appending MORE frames after it would turn a benign torn tail into
    // mid-log damage that replay cannot cross — poison until Rotate()
    // rebuilds a clean log.
    poison_ = s;
    return s;
  }
  // Only bytes that actually reached the file count (callers use this for
  // the purge threshold), and only they join the rotation tail.
  bytes_written_ += framed.size();
  pending_tail_ += framed;
  return s;
}

Status WalWriter::AppendBatch(const WalRecord* records, size_t n) {
  if (n == 0) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;
  cloud::CrashPoint(store_->fault(), "wal.append");
  // One framed buffer for the whole batch: per-record framing is byte-for-
  // byte what n Append() calls would have produced, but the mutex, the
  // crash point and the file write are paid once.
  std::string framed;
  std::string payload;
  for (size_t i = 0; i < n; ++i) {
    payload.clear();
    EncodeWalRecord(records[i], &payload);
    PutFixed32(&framed,
               crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
    PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
    framed += payload;
  }
  Status s = file_->Append(framed);
  if (!s.ok()) {
    // Same discipline as Append(): a partial multi-frame write is a torn
    // tail only if nothing follows it — poison until Rotate().
    poison_ = s;
    return s;
  }
  bytes_written_ += framed.size();
  pending_tail_ += framed;
  return s;
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;
  Status s = file_->Sync();
  if (!s.ok()) {
    poison_ = s;
    return s;
  }
  synced_bytes_ = bytes_written_.load(std::memory_order_relaxed);
  pending_tail_.clear();
  return s;
}

Status WalWriter::poison() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poison_;
}

Status WalWriter::Rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  // Rebuild from the synced prefix on disk + the in-memory tail. The
  // unsynced on-disk region is deliberately ignored: after a failed fsync
  // those pages' durability is unknowable, and the in-memory copy is
  // authoritative for every record appended since the last good Sync.
  std::string disk;
  Status rs = store_->ReadFileToString(fname_, &disk);
  if (!rs.ok() && !rs.IsNotFound()) return rs;
  const size_t prefix = std::min<size_t>(synced_bytes_, disk.size());
  std::string content = disk.substr(0, prefix);
  content += pending_tail_;

  const std::string tmp = fname_ + ".rot";
  store_->DeleteFile(tmp);  // stale leftover from a crashed rotation
  std::unique_ptr<cloud::WritableFile> fresh;
  TU_RETURN_IF_ERROR(store_->NewWritableFile(tmp, &fresh));
  if (!content.empty()) TU_RETURN_IF_ERROR(fresh->Append(content));
  TU_RETURN_IF_ERROR(fresh->Sync());
  TU_RETURN_IF_ERROR(fresh->Close());
  file_.reset();  // the poisoned fd is abandoned, never fsynced again
  TU_RETURN_IF_ERROR(store_->RenameFile(tmp, fname_));
  TU_RETURN_IF_ERROR(OpenLocked());
  // OpenLocked re-appended `content` to a truncated file without syncing;
  // close that window — the bytes were durable in .rot and must stay so.
  Status s = file_->Sync();
  if (!s.ok()) {
    poison_ = s;
    return s;
  }
  synced_bytes_ = bytes_written_.load(std::memory_order_relaxed);
  return Status::OK();
}

Status WalWriter::Purge() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;  // rotate first: disk state untrusted
  TU_RETURN_IF_ERROR(file_->Flush());
  // Pass 1: find the newest flush mark per id.
  std::map<uint64_t, uint64_t> flushed_seq;
  TU_RETURN_IF_ERROR(
      ReplayWal(store_, fname_, [&](const WalRecord& r) -> Status {
        if (r.type == WalRecordType::kFlushMark) {
          flushed_seq[r.id] = std::max(flushed_seq[r.id], r.seq);
        }
        return Status::OK();
      }));

  // Pass 2: rewrite, dropping obsolete sample records.
  const std::string tmp = fname_ + ".purge";
  store_->DeleteFile(tmp);  // stale leftover from a crashed purge, if any
  WalWriter fresh(store_, tmp);
  TU_RETURN_IF_ERROR(fresh.Open());
  TU_RETURN_IF_ERROR(
      ReplayWal(store_, fname_, [&](const WalRecord& r) -> Status {
        switch (r.type) {
          case WalRecordType::kSample:
          case WalRecordType::kGroupSample: {
            auto it = flushed_seq.find(r.id);
            if (it != flushed_seq.end() && r.seq <= it->second) {
              return Status::OK();  // superseded by a flushed chunk
            }
            return fresh.Append(r);
          }
          case WalRecordType::kFlushMark:
            return Status::OK();  // consumed
          default:
            return fresh.Append(r);
        }
      }));
  TU_RETURN_IF_ERROR(fresh.Sync());
  fresh.file_.reset();
  file_.reset();
  TU_RETURN_IF_ERROR(store_->RenameFile(tmp, fname_));
  return OpenLocked();
}

std::string WalReplayStats::ToString() const {
  std::ostringstream os;
  os << "applied=" << records_applied;
  if (Clean()) {
    os << (torn_tail ? " torn_tail" : " clean_eof");
  } else {
    os << " corruption_at=" << corruption_offset
       << " dropped_records=" << records_dropped
       << " dropped_bytes=" << bytes_dropped;
  }
  return os.str();
}

Status ReplayWal(cloud::BlockStore* store, const std::string& fname,
                 const std::function<Status(const WalRecord&)>& fn,
                 WalReplayStats* stats) {
  WalReplayStats local;
  if (stats == nullptr) stats = &local;
  *stats = WalReplayStats{};

  std::string contents;
  Status s = store->ReadFileToString(fname, &contents);
  if (s.IsNotFound()) {
    stats->clean_eof = true;
    return Status::OK();
  }
  TU_RETURN_IF_ERROR(s);

  Slice in(contents);
  uint64_t offset = 0;
  while (true) {
    if (in.empty()) {
      stats->clean_eof = true;
      return Status::OK();
    }
    if (in.size() < 8) {
      // A partial header: the process died mid-append. Expected; the
      // records before it are all intact.
      stats->torn_tail = true;
      return Status::OK();
    }
    const uint32_t crc = crc32c::Unmask(DecodeFixed32(in.data()));
    const uint32_t len = DecodeFixed32(in.data() + 4);
    if (in.size() < 8 + static_cast<size_t>(len)) {
      stats->torn_tail = true;
      return Status::OK();
    }
    const Slice payload(in.data() + 8, len);
    WalRecord record;
    if (crc32c::Value(payload.data(), payload.size()) != crc ||
        !DecodeWalRecord(payload, &record).ok()) {
      break;  // mid-log damage: everything from here on is untrusted
    }
    TU_RETURN_IF_ERROR(fn(record));
    stats->records_applied++;
    in.remove_prefix(8 + len);
    offset += 8 + len;
  }

  // Mid-log corruption. Replay must stop (records past a gap cannot be
  // applied in order), but count what follows so the caller can report
  // how much was lost rather than silently truncating.
  stats->corruption_offset = offset;
  stats->bytes_dropped = in.size();
  in.remove_prefix(8 + std::min<size_t>(in.size() - 8,
                                        DecodeFixed32(in.data() + 4)));
  while (in.size() >= 8) {
    const uint32_t crc = crc32c::Unmask(DecodeFixed32(in.data()));
    const uint32_t len = DecodeFixed32(in.data() + 4);
    if (in.size() < 8 + static_cast<size_t>(len)) break;
    const Slice payload(in.data() + 8, len);
    if (crc32c::Value(payload.data(), payload.size()) != crc) break;
    stats->records_dropped++;
    in.remove_prefix(8 + len);
  }
  return Status::OK();
}

}  // namespace tu::core
