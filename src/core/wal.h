// Write-ahead log with the paper's §3.3 logging scheme: LevelDB's own log
// is disabled; instead every inserted sample is logged with its series/
// group sequence ID, and when a chunk reaches level 0 a special flush-mark
// record (id, seq) declares all earlier records of that id obsolete. A
// background-style Purge() compacts the log by dropping obsolete records.
//
// Record framing: [fixed32 masked-crc][fixed32 len][payload]. Payload:
//   type byte, then per type:
//     kRegisterSeries:  varint id | labels
//     kRegisterGroup:   varint id | group labels
//     kRegisterMember:  varint gid | varint slot | labels
//     kSample:          varint id | varint seq | fixed64 ts | fixed64 value
//     kGroupSample:     varint gid | varint seq | fixed64 ts |
//                       varint n | n*(varint slot, fixed64 value)
//     kFlushMark:       varint id | varint seq
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/block_store.h"
#include "index/labels.h"
#include "util/status.h"

namespace tu::core {

enum class WalRecordType : char {
  kRegisterSeries = 1,
  kRegisterGroup = 2,
  kRegisterMember = 3,
  kSample = 4,
  kGroupSample = 5,
  kFlushMark = 6,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kSample;
  uint64_t id = 0;
  uint64_t seq = 0;
  int64_t ts = 0;
  double value = 0;
  uint32_t slot = 0;                     // kRegisterMember
  index::Labels labels;                  // register records
  std::vector<uint32_t> slots;           // kGroupSample
  std::vector<double> values;            // kGroupSample
};

void EncodeWalRecord(const WalRecord& record, std::string* out);
Status DecodeWalRecord(const Slice& payload, WalRecord* record);

/// The WAL is the one serialized append point of the write path: inserts
/// from any number of shards funnel into Append(), whose internal mutex
/// orders records. Append/Sync/Purge are all thread-safe; bytes_written()
/// reads an atomic and takes no lock (it feeds the purge-threshold check
/// on the insert fast path).
class WalWriter {
 public:
  WalWriter(cloud::BlockStore* store, std::string fname);

  Status Open();
  Status Append(const WalRecord& record);
  /// Frames `n` records into one buffer and appends them with a single
  /// mutex acquisition and a single file write — the batched write path's
  /// amortization of the WAL serialization point. Framing is identical to
  /// n Append() calls, so replay cannot tell the difference.
  Status AppendBatch(const WalRecord* records, size_t n);
  Status Sync();
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  /// Rewrites the log keeping only records still needed: register records
  /// and samples with seq > the latest flush mark of their id (§3.3 "a
  /// background worker will purge those stale log records periodically").
  Status Purge();

  /// First Append/Sync failure, latched. A poisoned writer fails every
  /// Append/Sync/Purge fast until Rotate() rebuilds the log — after a
  /// failed fsync the kernel may have dropped the dirty pages while
  /// marking them clean, so neither re-syncing the fd nor trusting a
  /// read-back of the unsynced region proves anything (the fsyncgate
  /// lesson).
  Status poison() const;

  /// Recovery from a poisoned writer: rebuilds the log into a `.rot` file
  /// from the durably-synced prefix on disk plus the writer's in-memory
  /// copy of every record framed since the last successful Sync (the
  /// durability-unknown tail), syncs it, renames it over the log and
  /// reopens. Clears the poison on success. Safe to call when healthy
  /// (it is then just a compaction-free rewrite).
  Status Rotate();

 private:
  /// Re-frames state after the log file was atomically replaced; caller
  /// holds mu_.
  Status OpenLocked();

  cloud::BlockStore* store_;
  std::string fname_;
  mutable std::mutex mu_;  // serializes Append/Sync/Purge across writers
  std::unique_ptr<cloud::WritableFile> file_;
  std::atomic<uint64_t> bytes_written_{0};
  Status poison_;              // guarded by mu_; see poison()
  uint64_t synced_bytes_ = 0;  // prefix confirmed durable by the last Sync
  /// Framed bytes appended OK since the last successful Sync — the replay
  /// source for Rotate(). Bounded by the purge threshold (the whole log is
  /// rewritten before it outgrows that).
  std::string pending_tail_;
};

/// What a WAL replay salvaged and what it had to drop. A clean log ends
/// exactly at a record boundary; a crash mid-append leaves a truncated
/// tail (expected, tolerated); a CRC mismatch before the tail means the
/// log body itself is damaged and everything after it is dropped.
struct WalReplayStats {
  uint64_t records_applied = 0;
  /// Whole records past the corruption point that framed+checksummed
  /// correctly but were not applied (replay cannot trust their order).
  uint64_t records_dropped = 0;
  /// Bytes from the first bad frame to end of log.
  uint64_t bytes_dropped = 0;
  /// Byte offset of the first bad frame, or kNoCorruption.
  uint64_t corruption_offset = kNoCorruption;
  /// Log ended exactly on a record boundary.
  bool clean_eof = false;
  /// The final frame was cut short (crash mid-append) — benign.
  bool torn_tail = false;

  static constexpr uint64_t kNoCorruption = ~0ull;

  bool Clean() const { return corruption_offset == kNoCorruption; }
  std::string ToString() const;
};

/// Replays `fname`, invoking `fn` per record in order. Tolerates a
/// truncated tail (crash mid-append); a mid-log CRC corruption stops the
/// replay at the damaged frame. Either way the Status is OK and `stats`
/// (optional) reports what was salvaged vs. dropped — callers decide
/// whether dropped bytes are acceptable.
Status ReplayWal(cloud::BlockStore* store, const std::string& fname,
                 const std::function<Status(const WalRecord&)>& fn,
                 WalReplayStats* stats = nullptr);

}  // namespace tu::core
