// Background scrub (DESIGN.md "Data integrity and scrubbing"): an
// incremental job that walks every manifest-listed table on both tiers,
// verifies whole-object and per-block checksums, repairs corrupt copies
// from the other tier's healthy duplicate and quarantines the rest. It
// rides the maintenance tick under a bytes/sec-style budget with a
// persisted cursor, so a full pass spreads over many ticks and survives
// restarts without rescanning from the start.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "cloud/tiered_env.h"
#include "lsm/time_lsm.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace tu::core {

struct ScrubOptions {
  /// Run an increment on each maintenance tick. Off by default: the scrub
  /// reads whole tables, which costs real tier I/O.
  bool enabled = false;
  /// Verification budget per tick (bytes of table payload read). The tick
  /// stops after the table that crosses the budget; the cursor resumes
  /// there next tick. 0 = unbounded (the whole pass runs in one tick).
  uint64_t bytes_per_tick = 8 << 20;
  /// Rebuild corrupt copies from the other tier's healthy duplicate and
  /// quarantine tables with no healthy copy. When false the scrub only
  /// detects and counts (scrub.corruptions_found still advances).
  bool repair = true;
  /// Persist the scan cursor to the fast tier after every increment so a
  /// restart resumes mid-pass instead of starting over.
  bool persist_cursor = true;
};

/// Drives ScrubOneTable over the LSM's table list. All progress counters
/// are registry counters (scrub.*), so they appear in Metrics() snapshots
/// without extra plumbing. Thread-safe; concurrent Tick() calls coalesce
/// (the second caller returns immediately).
class Scrubber {
 public:
  /// `lsm`, `env` and `metrics` are borrowed and must outlive the scrubber.
  Scrubber(lsm::TimePartitionedLsm* lsm, cloud::TieredEnv* env,
           ScrubOptions options, obs::MetricsRegistry* metrics);

  /// One budgeted increment: resume at the cursor, verify tables until the
  /// budget is spent or the pass completes, persist the cursor. Returns
  /// non-OK only on environmental failure (tier unreachable mid-scan);
  /// the cursor still points at the failed table, so the next tick
  /// retries it.
  Status Tick();

  /// Per-pass delta of the scrub counters (RunFullPass reporting).
  struct PassReport {
    uint64_t tables_scanned = 0;
    uint64_t bytes_verified = 0;
    uint64_t corruptions_found = 0;
    uint64_t repaired = 0;
    uint64_t quarantined = 0;
  };
  /// Verifies every table in one synchronous sweep, ignoring the tick
  /// budget (drills, tests, operator-forced scrubs). Resets the cursor.
  Status RunFullPass(PassReport* report = nullptr);

  uint64_t passes_completed() const { return c_passes_->value(); }

 private:
  /// Scrubs tables with id >= *cursor until `budget` bytes are verified
  /// (budget 0 = unbounded). On return *cursor is the next id to visit, or
  /// 0 when the pass wrapped.
  Status ScrubFrom(uint64_t* cursor, uint64_t budget);
  Status LoadCursor(uint64_t* cursor);
  void SaveCursor(uint64_t cursor);

  lsm::TimePartitionedLsm* lsm_;
  cloud::TieredEnv* env_;
  ScrubOptions options_;

  /// Registry-owned counters (stable pointers, never null).
  obs::Counter* c_tables_scanned_;
  obs::Counter* c_bytes_verified_;
  obs::Counter* c_corruptions_found_;
  obs::Counter* c_repaired_;
  obs::Counter* c_quarantined_;
  obs::Counter* c_passes_;
  obs::EventTrace* trace_;

  /// Serializes increments (maintenance tick vs explicit RunFullPass).
  std::mutex mu_;
  bool cursor_loaded_ = false;  // guarded by mu_
  uint64_t cursor_ = 0;         // guarded by mu_
};

}  // namespace tu::core
