// MaintenanceWorker: the paper's background workers (§3.3) — "a background
// worker will periodically check for old time partitions outside the
// retention time watermark" and "a background worker will purge those
// stale log records periodically" — plus the §3.2 swap-out hint for the
// mmap'ed structures. One thread, fixed tick, injectable clock for tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace tu::core {

struct MaintenanceOptions {
  /// Tick period. Scaled down from minutes in production deployments.
  int64_t interval_ms = 1000;
  /// Retention window; 0 disables the retention pass.
  int64_t retention_ms = 0;
  /// Hint the OS to reclaim cold mmap pages each tick.
  bool advise_memory_release = false;
  /// Clock returning "now" in the data's timestamp domain (ms). Defaults
  /// to the wall clock; tests inject a virtual clock.
  std::function<int64_t()> now;
};

class MaintenanceWorker {
 public:
  /// `tick` runs on the worker thread with the retention watermark
  /// (now - retention_ms, or INT64_MIN when retention is disabled).
  MaintenanceWorker(MaintenanceOptions options,
                    std::function<void(int64_t watermark)> tick);
  ~MaintenanceWorker();

  MaintenanceWorker(const MaintenanceWorker&) = delete;
  MaintenanceWorker& operator=(const MaintenanceWorker&) = delete;

  void Start();
  void Stop();

  /// Runs one tick synchronously (tests / forced maintenance).
  void TickNow();

  uint64_t ticks() const { return ticks_.load(); }

 private:
  void Loop();

  MaintenanceOptions options_;
  std::function<void(int64_t)> tick_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
  std::atomic<uint64_t> ticks_{0};
};

}  // namespace tu::core
