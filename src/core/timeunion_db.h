// TimeUnionDB: the public API of the paper's system — the unified data
// model (§3.1), memory-efficient global index and head objects (§3.2), the
// elastic time-partitioned LSM-tree on hybrid cloud storage (§3.3), and
// the four operations of §3.4:
//   Insert / InsertFast           — Put(Timeseries), slow/fast path
//   InsertGroup / InsertGroupFast — Put(Group), slow/fast path
//   Query                         — Get with time range + tag selectors
//
// Concurrency model (see DESIGN.md "Threading model"): the front door is
// sharded, not globally locked. Key→ref and ref→entry registries are split
// into power-of-two shards, each behind its own reader/writer lock, and
// every head object is serialized by a striped per-entry append lock — so
// fast-path inserts on different series proceed fully in parallel, while
// slow-path registration (index/tag-store mutation, id allocation) and
// retention serialize behind one registration mutex. All public methods
// are safe to call from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/tiered_env.h"
#include "compress/chunk.h"
#include "index/inverted_index.h"
#include "index/labels.h"
#include "index/tag_store.h"
#include "lsm/chunk_store.h"
#include "lsm/leveled_lsm.h"
#include "lsm/time_lsm.h"
#include "mem/chunk_array.h"
#include "mem/head.h"
#include "obs/metrics.h"
#include "core/error_handler.h"
#include "core/maintenance.h"
#include "core/scrub.h"
#include "core/wal.h"
#include "core/write_batch.h"
#include "query/aggregate.h"
#include "query/merged_series_iterator.h"
#include "query/read_context.h"
#include "query/read_request.h"
#include "util/striped_mutex.h"

namespace tu::core {

/// The streaming sample merge lives in the unified query layer as
/// query::MergedSeriesIterator; core-level callers and the public
/// SeriesIterResult keep the historical spelling.
using SampleIterator = query::MergedSeriesIterator;

struct DBOptions {
  /// Root directory; fast tier, slow tier and mmap files live under it.
  std::string workspace;
  cloud::TieredEnvOptions env_options = cloud::TieredEnvOptions::Instant();

  /// Open-chunk close threshold (§3.2: 32 by default; larger chunks trade
  /// memory for compression ratio).
  uint32_t samples_per_chunk = 32;
  size_t series_chunk_bytes = 256;
  size_t group_ts_chunk_bytes = 192;
  size_t group_val_chunk_bytes = 192;

  /// Storage backend: the paper's time-partitioned tree (TU) or a classic
  /// leveled LSM with the first two levels on fast storage (TU-LDB).
  enum class Backend { kTimePartitioned, kLeveled };
  Backend backend = Backend::kTimePartitioned;

  lsm::TimeLsmOptions lsm;
  lsm::LeveledLsmOptions leveled;  // used when backend == kLeveled
  size_t block_cache_bytes = 64 << 20;
  index::TrieOptions trie;

  /// Registry shard count (rounded up to a power of two). Lookups on
  /// series in different shards never contend; raise this for very high
  /// writer-thread counts.
  uint32_t registry_shards = 16;
  /// Striped per-entry append locks (rounded up to a power of two). Two
  /// series sharing a stripe serialize their appends — harmless, so this
  /// only needs to be comfortably larger than the writer-thread count.
  uint32_t append_lock_stripes = 256;

  /// §3.3 logging scheme. Off for pure benchmarks.
  bool enable_wal = false;
  /// Purge the WAL when it exceeds this size.
  uint64_t wal_purge_bytes = 16 << 20;

  /// Degraded reads: when false (the default), Query / QueryIterators keep
  /// working through a slow-tier outage by skipping unreachable L2 tables
  /// and reporting `QueryResult::complete = false` with the merged
  /// `missing_ranges`. When true, the first unreachable table fails the
  /// query (fail-fast semantics for callers that cannot use partial data).
  bool strict_reads = false;

  /// Fast-tier budget backpressure. During a slow-tier outage deferred L2
  /// uploads park on the fast tier, so unbounded ingest would eventually
  /// fill it. Watermarks are fractions of `lsm.fast_storage_limit_bytes`:
  /// below soft the write path is untouched; between soft and hard each
  /// admitted write eats a bounded delay (`soft_delay_us`); at hard the
  /// write is rejected with ResourceExhausted. Off by default — it only
  /// makes sense with a fast-storage budget configured.
  struct AdmissionControl {
    bool enabled = false;
    double soft_watermark = 1.0;  ///< × lsm.fast_storage_limit_bytes
    double hard_watermark = 2.0;  ///< × lsm.fast_storage_limit_bytes
    uint64_t soft_delay_us = 2000;
    /// The fast-bytes gauge is re-read every this many admitted writes
    /// (per thread, approximately); keeps the hot path at one relaxed
    /// atomic load.
    uint32_t refresh_every_ops = 64;
  };
  AdmissionControl admission;

  /// Background-error state machine (DESIGN.md "Background error handling
  /// and auto-recovery"): classification, write quiesce, bounded-backoff
  /// auto-resume. Always active; these knobs tune the resume policy.
  ErrorHandlerOptions error_handler;

  /// Background integrity scrub (see src/core/scrub.h and DESIGN.md "Data
  /// integrity and scrubbing"): when enabled, each maintenance tick
  /// verifies a budgeted slice of the LSM's tables end-to-end, repairing
  /// corrupt copies from the other tier and quarantining the rest.
  /// Requires the time-partitioned backend; ScrubNow() forces a full pass
  /// regardless of `enabled`.
  ScrubOptions scrub;

  /// Observability (src/obs): the metrics registry always exists; these
  /// knobs control instrumentation and export.
  struct MetricsOptions {
    /// When false, no instruments are wired into the hot paths (timers
    /// compile down to no-ops via null histogram pointers). Metrics() then
    /// still reports the external counters (tiers, LSM stats, cache).
    bool enabled = true;
    /// Append a `{"ts_ms":...,"metrics":{...}}` JSON line per maintenance
    /// tick to <workspace>/metrics.jsonl (requires background_maintenance).
    bool emit_jsonl = false;
    /// Ring-buffer capacity of the background-job event trace.
    size_t event_trace_capacity = 256;
  };
  MetricsOptions metrics;

  /// Rejects incoherent configurations with InvalidArgument naming the
  /// offending field. Called by TimeUnionDB::Open before anything touches
  /// disk; see the implementation for the exact rules.
  Status Validate() const;

  /// Data retention window (0 = keep everything); see ApplyRetention.
  int64_t retention_ms = 0;
  /// Run the §3.3 background maintenance worker (periodic retention,
  /// WAL purge, mmap release hints).
  bool background_maintenance = false;
  int64_t maintenance_interval_ms = 1000;
  /// Clock for the retention watermark (tests inject a virtual clock).
  std::function<int64_t()> maintenance_clock;
};

/// What the last Open salvaged: WAL replay stats plus the LSM's open-time
/// quarantine/sweep counts. All zeros / clean after an orderly shutdown.
struct RecoveryReport {
  WalReplayStats wal;
  uint64_t tables_quarantined = 0;
  uint64_t orphans_swept = 0;
};

/// One series in a query result.
struct SeriesResult {
  uint64_t id = 0;
  index::Labels labels;
  std::vector<compress::Sample> samples;  // ascending timestamps
};

/// Query output: the matched series plus the shared completeness marker
/// for degraded reads (query::Completeness — when the slow tier was
/// unreachable and DBOptions::strict_reads == false, `complete` is false
/// and `missing_ranges` holds the merged, query-range-clamped spans whose
/// data may be absent). Exposes the vector interface of its `series`
/// member so result-consuming code can keep treating it as a container.
struct QueryResult : query::Completeness {
  std::vector<SeriesResult> series;
  /// Per-query read-pipeline statistics: pruning decisions, block cache
  /// hits/misses, slow-tier fetches, decode volume (see query::QueryStats).
  query::QueryStats stats;

  size_t size() const { return series.size(); }
  bool empty() const { return series.empty(); }
  SeriesResult& operator[](size_t i) { return series[i]; }
  const SeriesResult& operator[](size_t i) const { return series[i]; }
  auto begin() { return series.begin(); }
  auto end() { return series.end(); }
  auto begin() const { return series.begin(); }
  auto end() const { return series.end(); }
  void push_back(SeriesResult r) { series.push_back(std::move(r)); }
  void clear() {
    series.clear();
    ResetCompleteness();
    stats = query::QueryStats();
  }
};

/// Point-in-time health snapshot (see DESIGN.md "Degraded operation"):
/// slow-tier breaker state, deferred-upload backlog, fast-tier pressure
/// and the latest background error. All counters are cumulative since
/// Open.
struct HealthReport {
  /// Slow-tier circuit breaker (kClosed when the breaker is disabled).
  cloud::BreakerState slow_breaker = cloud::BreakerState::kClosed;
  bool breaker_enabled = false;
  uint64_t breaker_rejections = 0;
  uint64_t breaker_opens = 0;
  /// L2-logical tables currently parked on the fast tier.
  size_t deferred_tables = 0;
  uint64_t deferred_bytes = 0;
  uint64_t deferred_uploads_drained = 0;
  /// Fast-tier occupancy vs the Algorithm-1 budget (limit 0 = unbounded).
  uint64_t fast_bytes = 0;
  uint64_t fast_limit_bytes = 0;
  /// Admission-control outcomes (always 0 unless admission.enabled).
  uint64_t writers_delayed = 0;
  uint64_t writes_rejected = 0;
  /// Block cache occupancy and cumulative hit/miss/eviction counts.
  /// `block_cache_enabled` is false when DBOptions::block_cache_bytes == 0
  /// (caching disabled; the counters stay 0).
  bool block_cache_enabled = false;
  uint64_t block_cache_usage = 0;
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_cache_evictions = 0;
  /// Background scrub progress (0s when scrub was never configured/run).
  bool scrub_enabled = false;
  uint64_t scrub_passes = 0;
  uint64_t scrub_corruptions_found = 0;
  uint64_t scrub_repaired = 0;
  uint64_t scrub_quarantined = 0;
  /// Self-healing read path: corrupt blocks detected / healed in place.
  uint64_t read_corruptions_detected = 0;
  uint64_t read_corruptions_healed = 0;
  /// Network front door (src/server): live connection / request gauges and
  /// the cumulative tenant-limit rejects. All zero unless a server::Server
  /// is attached to this DB (the server publishes them into the metrics
  /// registry under server.*).
  uint64_t server_open_connections = 0;
  uint64_t server_inflight_requests = 0;
  uint64_t server_tenant_rejects = 0;
  /// Sticky background flush/maintenance error; OK when healthy.
  Status last_background_error;
  /// Background-error state machine (DESIGN.md "Background error handling
  /// and auto-recovery"): current health, classified error totals and the
  /// resume-probe track record.
  DbHealth health = DbHealth::kHealthy;
  uint64_t background_errors = 0;
  uint64_t background_errors_soft = 0;
  uint64_t background_errors_hard = 0;
  uint64_t resume_attempts = 0;
  uint64_t resumes_succeeded = 0;
  uint64_t resume_failures = 0;
};

class TimeUnionDB {
 public:
  static Status Open(DBOptions options, std::unique_ptr<TimeUnionDB>* db);
  ~TimeUnionDB();

  TimeUnionDB(const TimeUnionDB&) = delete;
  TimeUnionDB& operator=(const TimeUnionDB&) = delete;

  // -- Put, batched (the primary write entry point) -------------------------

  /// Applies a whole WriteBatch: ref samples, labeled samples, group rows.
  /// This is the write path — the per-sample Insert* calls below are thin
  /// single-row shims over it. Amortizations relative to one call per row:
  /// the write-quiesce gate and admission check run once per batch (charged
  /// with the batch's sample count), consecutive rows addressing the same
  /// series share one shard/stripe lock acquisition, and all sample WAL
  /// records land in a single framed append (one WAL mutex acquisition).
  ///
  /// Error semantics: row failures are counted in result->rejected with the
  /// first failure in result->first_error while the rest of the batch still
  /// applies; the returned Status is non-OK only for batch-scoped failures
  /// (invalid batch shape, write quiesce, admission hard reject, WAL
  /// append failure) — after which no further rows were applied.
  ///
  /// Durability: like the per-sample paths, every applied row's WAL record
  /// is appended before Write returns (a SyncWal afterwards makes them
  /// crash-durable). Note the batch's records are logged after its head
  /// appends, so two racing writers hitting the same series with the same
  /// timestamp may replay in either order — exactly as arbitrary as the
  /// race itself.
  Status Write(const WriteBatch& batch, WriteResult* result);

  // -- Put (Timeseries), §3.4 ---------------------------------------------

  /// Legacy single-sample shim over Write(): resolves (or registers) the
  /// series identified by `labels` and appends one sample. Returns the
  /// series reference for the fast path. Only first-time registration
  /// serializes (registration mutex); the steady-state resolve+append runs
  /// under shard/entry locks.
  Status Insert(const index::Labels& labels, int64_t ts, double value,
                uint64_t* series_ref);

  /// Legacy single-sample shim over Write(): appends by reference, skipping
  /// tag comparison. Appends to different series proceed in parallel;
  /// appends to one series serialize on its entry lock.
  Status InsertFast(uint64_t series_ref, int64_t ts, double value);

  /// Resolves (or registers) a series without appending a sample — lets a
  /// client obtain the fast-path reference up front.
  Status RegisterSeries(const index::Labels& labels, uint64_t* series_ref);

  // -- Put (Group), §3.4 ----------------------------------------------------

  /// Legacy single-row shim over Write(): registers/extends the group
  /// identified by `group_tags`,
  /// appends one shared-timestamp row with `values[i]` for the member
  /// identified by `member_tags[i]`. Returns the group reference and the
  /// member slot indexes for the fast path. Serializes on the registration
  /// mutex (member resolution may mutate the index); use InsertGroupFast
  /// for parallel steady-state ingest.
  Status InsertGroup(const index::Labels& group_tags,
                     const std::vector<index::Labels>& member_tags,
                     int64_t ts, const std::vector<double>& values,
                     uint64_t* group_ref, std::vector<uint32_t>* slots);

  /// Legacy single-row shim over Write(): appends a row by group reference
  /// + member slots. Rows into different groups proceed in parallel.
  Status InsertGroupFast(uint64_t group_ref,
                         const std::vector<uint32_t>& slots, int64_t ts,
                         const std::vector<double>& values);

  // -- Get, §3.4 ------------------------------------------------------------

  /// The consolidated read entry point (query::ReadRequest): matchers +
  /// inclusive time range + per-request strictness. Rejects aggregate
  /// requests (step_ms > 0) with InvalidArgument — those go through
  /// AggregateQuery. The wire protocol's query handler maps onto this 1:1.
  Status Query(const query::ReadRequest& request, QueryResult* out);

  /// Returns every timeseries matching all `matchers` restricted to
  /// [t0, t1] (inclusive), including group members located through the
  /// two-level index. Runs without any global lock: each matched entry is
  /// snapshotted under its shard/entry locks (labels + open chunk), then
  /// the LSM is read lock-free. The result is a consistent point-in-time
  /// view per series.
  ///
  /// Implemented as a thin materializer over QueryIterators — there is
  /// exactly one read pipeline (head snapshot → LSM iterators → merged
  /// dedup stream); Query just drains it into vectors and fills
  /// `out->stats`. Returns InvalidArgument when t0 > t1 or `matchers` is
  /// empty. Legacy signature: delegates to Query(ReadRequest) with default
  /// strictness.
  Status Query(const std::vector<index::TagMatcher>& matchers, int64_t t0,
               int64_t t1, QueryResult* out);

  /// Streaming variant of Query (§3.4): each matching timeseries comes
  /// with a lazy SampleIterator instead of materialized samples. The
  /// iterators stay valid after this call returns (they pin the LSM
  /// resources they read).
  /// Inherits query::Completeness: under degraded reads
  /// (DBOptions::strict_reads == false), `complete` is false when this
  /// iterator skipped unreachable slow-tier tables and the merged, clamped
  /// spans possibly missing from the stream are in `missing_ranges`.
  struct SeriesIterResult : query::Completeness {
    uint64_t id = 0;
    index::Labels labels;
    std::unique_ptr<SampleIterator> iter;
  };
  /// ReadRequest form of the streaming query (rejects aggregate requests).
  /// `stats` (nullable) receives pruning/cache counters; the pointed-to
  /// object must outlive every returned iterator — lazy iterators keep
  /// counting while they are drained.
  Status QueryIterators(const query::ReadRequest& request,
                        std::vector<SeriesIterResult>* out,
                        query::QueryStats* stats = nullptr);

  /// Legacy signature: delegates to QueryIterators(ReadRequest). Returns
  /// InvalidArgument when t0 > t1 or `matchers` is empty.
  Status QueryIterators(const std::vector<index::TagMatcher>& matchers,
                        int64_t t0, int64_t t1,
                        std::vector<SeriesIterResult>* out,
                        query::QueryStats* stats = nullptr);

  // -- Continuous aggregates ------------------------------------------------

  /// One matched series' aggregate values, one point per absolute
  /// step-aligned window (window_start = floor(ts / step) * step) that
  /// holds at least one sample in [t0, t1].
  struct AggregateSeries {
    uint64_t id = 0;
    index::Labels labels;
    std::vector<query::AggPoint> points;  // ascending window_start
  };
  /// AggregateQuery output; inherits the same completeness contract as
  /// QueryResult — rollup-served spans never contribute missing ranges
  /// (losing a rollup table demotes its span to the raw path, which then
  /// reports exactly what IT cannot reach).
  struct AggregateResult : query::Completeness {
    std::vector<AggregateSeries> series;
    query::QueryStats stats;
  };
  /// Aggregates every series matching `matchers` over [t0, t1] into
  /// `step_ms`-wide windows of `fn` (min/max/sum/count/mean). The planner
  /// serves bucket-aligned interiors from the compaction-maintained rollup
  /// partitions (when `lsm.rollup_granularities_ms` configures a
  /// granularity dividing the step) and falls back to the raw batch path
  /// for unaligned edges, dirty buckets and data still above L2 — both
  /// sides run the same fold kernel, so the mixed answer is bitwise
  /// identical to aggregating the raw samples. Group members always take
  /// the raw path. Returns InvalidArgument for t0 > t1, empty matchers or
  /// step_ms <= 0. Per-path volume lands in out->stats
  /// (rollup_buckets_served / raw_edge_samples). ReadRequest form: the
  /// request must carry step_ms > 0 (+ fn); strictness is honored like
  /// Query's.
  Status AggregateQuery(const query::ReadRequest& request,
                        AggregateResult* out);

  /// Legacy signature: delegates to AggregateQuery(ReadRequest).
  Status AggregateQuery(const std::vector<index::TagMatcher>& matchers,
                        int64_t t0, int64_t t1, int64_t step_ms,
                        query::AggFn fn, AggregateResult* out);

  /// Lists all values of a tag name across the index (label-values API).
  /// Serialized against slow-path registration so multi-label inserts are
  /// observed atomically.
  Status ListTagValues(const std::string& tag_name,
                       std::vector<std::string>* values) const;

  // -- Maintenance ----------------------------------------------------------

  /// Flushes all open chunks and memtables down the LSM (test/bench
  /// boundary; production relies on chunk-full flushing). Walks the shards
  /// one entry at a time; concurrent inserts are not blocked globally.
  Status Flush();

  /// Syncs the WAL to stable storage. A sample is only crash-durable
  /// (guaranteed to survive reopen) once a SyncWal after its insert
  /// returned OK. No-op without `enable_wal`.
  Status SyncWal();

  /// Drops data older than `watermark` and purges dead memory objects
  /// (§3.3 data retention). Serializes with registration; appenders are
  /// only blocked shard-by-shard while dead entries are unlinked.
  Status ApplyRetention(int64_t watermark);

  /// Manual recovery trigger after a background error: rotates a poisoned
  /// WAL (replaying its unacked in-memory tail), retries retained flush /
  /// maintenance work, and returns the DB to healthy on success — no
  /// reopen. Works from degraded-writes AND read-only states; fails with
  /// Unavailable when the DB is fatal (manifest corruption: reopen) and
  /// returns the probe's error when recovery itself fails. A no-op OK when
  /// already healthy. The same probe runs automatically from the
  /// maintenance tick (with bounded backoff) while degraded.
  Status Resume();

  /// Current write-path health (relaxed read; safe from any thread).
  DbHealth Health() const { return error_handler_.health(); }

  /// Forces one full integrity pass over every LSM table, synchronously
  /// (corruption drills, tests, operator tooling) — works even when
  /// DBOptions::scrub.enabled is false. `report` (nullable) receives this
  /// pass's scan/repair/quarantine counts. InvalidArgument under the
  /// leveled backend (the scrub needs the two-tier manifest).
  Status ScrubNow(Scrubber::PassReport* report = nullptr);

  // -- Introspection ---------------------------------------------------------

  uint64_t NumSeries() const;
  uint64_t NumGroups() const;
  /// What the Open-time recovery salvaged/dropped (see RecoveryReport).
  const RecoveryReport& recovery_report() const { return recovery_report_; }
  /// Typed point-in-time metrics snapshot: every registry instrument
  /// (ingest/flush/compaction/query latency histograms, event trace) plus
  /// the external counters folded in under stable names — tier I/O
  /// (fast.* / slow.*), LSM stats (lsm.*), block cache (cache.*), breaker
  /// and admission state, and the read-pipeline totals (query.*). Safe
  /// from any thread; serialize with ToJson() or ToPrometheusText().
  obs::MetricsSnapshot Metrics() const;
  /// The instrument registry (stable pointers, lock-free recording).
  obs::MetricsRegistry& metrics_registry() { return *metrics_; }
  /// The background-error state machine (tests/operator tooling).
  ErrorHandler& error_handler() { return error_handler_; }
  /// Degraded-operation snapshot: breaker state, deferred-upload backlog,
  /// fast-tier pressure, admission outcomes, block cache counters, sticky
  /// background error. A typed view over the same data as Metrics(); safe
  /// from any thread.
  core::HealthReport HealthReport() const;
  /// Human-readable counters: tiered-env I/O + breaker state, block cache
  /// hit/miss/eviction/usage, and read-pipeline totals aggregated across
  /// every Query/QueryIterators since Open. A thin formatter over the
  /// Metrics() snapshot. Safe from any thread.
  std::string CountersReport() const;
  /// Index memory (trie + postings), §3.2 accounting. The index is
  /// internally synchronized; safe from any thread.
  uint64_t IndexMemoryUsage() const;
  cloud::TieredEnv& env() { return *env_; }
  /// The time-partitioned tree; nullptr under the leveled backend.
  lsm::TimePartitionedLsm* time_lsm() { return time_lsm_; }
  /// The leveled tree; nullptr under the time-partitioned backend.
  lsm::LeveledLsm* leveled_lsm() { return leveled_lsm_; }
  lsm::ChunkStore& lsm() { return *lsm_; }

  /// Hints the OS to reclaim mmap'ed index/sample pages (§3.2 swap-out).
  void AdviseMemoryRelease();

 private:
  explicit TimeUnionDB(DBOptions options);

  Status Init();
  Status StartMaintenance();
  Status RecoverFromWal();

  struct SeriesEntry {
    std::unique_ptr<mem::SeriesHead> head;
    index::Labels labels;
  };
  struct GroupEntry {
    std::unique_ptr<mem::GroupHead> head;
    index::Labels group_labels;
    std::vector<index::Labels> member_labels;  // unique tags per slot
  };

  /// Key→ref registries, sharded by key hash. Each shard's maps are
  /// guarded by its `mu` (shared for lookups; exclusive for registration
  /// inserts and retention erases — both of which also hold `reg_mu_`).
  struct KeyShard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, uint64_t> series_by_key;
    std::unordered_map<std::string, uint64_t> group_by_key;
  };
  /// Ref→entry registries, sharded by ref. Shared lock for ref resolution
  /// (appends, queries, flush); exclusive for registration inserts and
  /// retention erases. Entry pointers are valid only while the shard lock
  /// is held; mutating an entry's head additionally requires its striped
  /// append lock.
  struct EntryShard {
    mutable std::shared_mutex mu;
    std::unordered_map<uint64_t, SeriesEntry> series;
    std::unordered_map<uint64_t, GroupEntry> groups;
  };

  KeyShard& KeyShardFor(const std::string& key) const {
    return key_shards_[std::hash<std::string>{}(key)&shard_mask_];
  }
  EntryShard& EntryShardFor(uint64_t ref) const {
    return entry_shards_[ref & shard_mask_];
  }

  bool LookupSeriesRef(const std::string& key, uint64_t* ref) const;
  bool LookupGroupRef(const std::string& key, uint64_t* ref) const;

  /// Registers a new series (or returns the existing ref). Caller holds
  /// `reg_mu_`.
  Status RegisterSeriesSlow(const index::Labels& sorted,
                            const std::string& key, uint64_t* series_ref);
  /// Registers a new, empty group (or returns the existing ref). Caller
  /// holds `reg_mu_`.
  Status RegisterGroupSlow(const index::Labels& sorted_group,
                           const std::string& group_key, uint64_t* group_ref);

  // -- Batched write pipeline (the bodies behind Write) ---------------------
  //
  // Each helper applies one batch section, appending per-row WAL records to
  // `wal_out` (null when the WAL is off) instead of logging inline; Write
  // flushes them in one AppendBatch at the end. Row failures are folded
  // into `result` (rejected count + first_error) without aborting.

  /// Ref-addressed samples. Consecutive rows with the same ref share one
  /// shard-lock + stripe-lock acquisition (run detection), which is where
  /// a sorted batch wins over per-sample inserts.
  void WriteRefSamples(const WriteBatch& batch, WriteResult* result,
                       std::vector<WalRecord>* wal_out);
  /// Label-addressed samples: resolve-or-register, then append; fills
  /// result->resolved_refs (0 on row failure).
  void WriteLabeledSamples(const WriteBatch& batch, WriteResult* result,
                           std::vector<WalRecord>* wal_out);
  /// Ref-addressed group rows.
  void WriteGroupRows(const WriteBatch& batch, WriteResult* result,
                      std::vector<WalRecord>* wal_out);
  /// Label-addressed group rows: resolve-or-register group and members
  /// (member registration logs immediately, keeping register-before-sample
  /// order in the WAL); fills result->resolved_groups.
  void WriteLabeledGroupRows(const WriteBatch& batch, WriteResult* result,
                             std::vector<WalRecord>* wal_out);

  /// Appends one sample by ref, deferring its WAL record to `wal_out`.
  Status AppendOneByRef(uint64_t series_ref, int64_t ts, double value,
                        std::vector<WalRecord>* wal_out);
  /// Appends one group row by ref, deferring its WAL record to `wal_out`.
  Status AppendOneGroupRowByRef(uint64_t group_ref,
                                const std::vector<uint32_t>& slots,
                                int64_t ts,
                                const std::vector<double>& values,
                                std::vector<WalRecord>* wal_out);
  /// Folds one row failure into `result`.
  static void RowReject(WriteResult* result, const Status& s);

  /// Single-row scratch batches for the legacy Insert* shims: cleared and
  /// refilled per call, so the shims stay allocation-free in steady state
  /// (Clear keeps vector capacity).
  struct ShimScratch {
    WriteBatch batch;
    WriteResult result;
  };
  static ShimScratch& TlsShimScratch();

  /// Flush a closed series chunk payload into the LSM + WAL mark. Caller
  /// holds the entry's append lock.
  Status FlushSeriesChunk(mem::SeriesHead* head, bool* flushed);
  Status FlushGroupChunk(GroupEntry* entry, bool* flushed);

  /// Caller holds the entry's append lock.
  Status AppendToSeries(SeriesEntry* entry, int64_t ts, double value);
  Status AppendRowToGroup(GroupEntry* entry,
                          const std::vector<uint32_t>& slots, int64_t ts,
                          const std::vector<double>& values);

  /// The one read pipeline both Query and QueryIterators sit on: index
  /// select → per-entry snapshot (labels + range-filtered open chunk)
  /// under shard/entry locks → per-series LSM iterator via ReadContext →
  /// MergedSeriesIterator. Performs no input validation and no stats
  /// aggregation; `stats` (nullable) is wired into every iterator and
  /// must outlive them.
  Status QueryIteratorsImpl(const std::vector<index::TagMatcher>& matchers,
                            int64_t t0, int64_t t1, bool allow_partial,
                            std::vector<SeriesIterResult>* out,
                            query::QueryStats* stats);
  /// Resolves a per-request strictness override against
  /// DBOptions::strict_reads.
  bool AllowPartialReads(query::ReadRequest::Strictness s) const;
  /// Folds one finished query's stats into the DB-lifetime totals
  /// surfaced by CountersReport().
  void AddQueryTotals(const query::QueryStats& stats);

  /// Write-path backpressure (DBOptions::AdmissionControl): checks the
  /// LSM's fast-bytes gauge against the watermarks — OK below soft, one
  /// bounded delay per admitted batch between soft and hard (this is the
  /// batch amortization: per-sample callers ate one delay per sample),
  /// ResourceExhausted at hard. `num_samples` charges the batch's volume
  /// against the refresh cadence. WAL replay bypasses this (it appends
  /// through AppendToSeries directly).
  Status AdmitWrite(uint64_t num_samples);

  Status MaybeLog(const WalRecord& record);

  /// One recovery probe: WAL rotation if poisoned, then retained
  /// flush/maintenance retry; reports the outcome to error_handler_.
  /// Shared by the maintenance tick's auto-resume and manual Resume().
  Status TryResumeInternal();

  /// Appends one `{"ts_ms":...,"metrics":{...}}` line to
  /// <workspace>/metrics.jsonl (maintenance tick, when enabled).
  void EmitMetricsLine();

  DBOptions options_;
  /// Declared before env_/lsm_ so the registry outlives everything that
  /// records into it (breaker transition callback, LSM instruments).
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  /// Declared before env_/lsm_: the LSM's background workers report into
  /// it via the on_background_error callback until they are torn down.
  ErrorHandler error_handler_;
  std::unique_ptr<cloud::TieredEnv> env_;
  std::unique_ptr<lsm::BlockCache> block_cache_;
  std::unique_ptr<index::InvertedIndex> index_;
  std::unique_ptr<index::TagStore> tag_store_;
  std::unique_ptr<mem::ChunkArray> series_chunks_;
  std::unique_ptr<mem::ChunkArray> group_ts_chunks_;
  std::unique_ptr<mem::ChunkArray> group_val_chunks_;
  std::unique_ptr<lsm::ChunkStore> lsm_;
  lsm::TimePartitionedLsm* time_lsm_ = nullptr;  // borrowed view of lsm_
  lsm::LeveledLsm* leveled_lsm_ = nullptr;       // borrowed view of lsm_
  std::unique_ptr<WalWriter> wal_;
  /// Gates the inline WAL purge: log size after the last purge (hysteresis
  /// baseline) and a try-lock so only one thread rewrites at a time.
  std::mutex wal_purge_mu_;
  std::atomic<uint64_t> wal_post_purge_bytes_{0};

  /// Lock hierarchy (acquire strictly in this order, release any order):
  ///   reg_mu_ → shard mu (one at a time; EntryShard before KeyShard when
  ///   nested) → striped append lock → component-internal locks (index,
  ///   LSM, WAL, chunk arrays). See DESIGN.md "Threading model".
  mutable std::mutex reg_mu_;

  uint32_t shard_mask_ = 0;
  std::unique_ptr<KeyShard[]> key_shards_;
  std::unique_ptr<EntryShard[]> entry_shards_;
  StripedMutexTable append_locks_;

  uint64_t next_id_ = 1;        // guarded by reg_mu_
  int64_t registry_bytes_ = 0;  // guarded by reg_mu_; kTags accounting
  RecoveryReport recovery_report_;

  /// Admission-control state: a write counter that paces gauge refreshes,
  /// the last observed pressure level (0 healthy / 1 soft / 2 hard), and
  /// the outcome counters surfaced by HealthReport().
  std::atomic<uint64_t> admission_ops_{0};
  std::atomic<int> admission_level_{0};
  std::atomic<uint64_t> writers_delayed_{0};
  std::atomic<uint64_t> writes_rejected_{0};

  /// DB-lifetime read-pipeline totals (CountersReport). A plain mutex is
  /// fine: queries fold their stats in once, at the end.
  mutable std::mutex query_totals_mu_;
  query::QueryStats query_totals_;  // guarded by query_totals_mu_
  uint64_t queries_run_ = 0;        // guarded by query_totals_mu_

  /// Cached hot-path instruments (all nullptr when !metrics.enabled, which
  /// turns every recording site into a no-op). Registered once in Init.
  obs::Histogram* h_ingest_append_ = nullptr;  // sampled 1-in-64
  obs::Histogram* h_group_append_ = nullptr;   // sampled 1-in-64
  obs::Histogram* h_wal_append_ = nullptr;     // sampled 1-in-64
  obs::Histogram* h_chunk_flush_ = nullptr;
  obs::Histogram* h_query_e2e_ = nullptr;
  obs::Histogram* h_query_setup_ = nullptr;
  obs::Counter* c_rows_ = nullptr;
  obs::Counter* c_wal_appends_ = nullptr;
  obs::Counter* c_chunk_flushes_ = nullptr;

  /// Per-stripe sample counts, aligned with append_locks_: each cell is
  /// written only under its stripe mutex, so the bump is a plain
  /// load+store (no locked RMW on the append fast path); the atomic is
  /// solely for tear-free reads when Metrics() sums the cells. One cell
  /// per cache line so neighbouring stripes don't false-share.
  struct alignas(64) StripeCell {
    std::atomic<uint64_t> v{0};
    void Bump() { v.store(v.load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed); }
  };
  std::unique_ptr<StripeCell[]> sample_cells_;  // null when !metrics.enabled
  uint64_t SumSampleCells() const;

  /// Integrity scrub driver (null under the leveled backend). Declared
  /// before maintenance_: the tick thread calls into it.
  std::unique_ptr<Scrubber> scrubber_;

  // Declared last: its thread must stop before the members above die.
  std::unique_ptr<MaintenanceWorker> maintenance_;
};

}  // namespace tu::core
