#include "core/maintenance.h"

#include <chrono>

namespace tu::core {

namespace {

int64_t WallClockMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MaintenanceWorker::MaintenanceWorker(
    MaintenanceOptions options, std::function<void(int64_t watermark)> tick)
    : options_(std::move(options)), tick_(std::move(tick)) {
  if (!options_.now) options_.now = WallClockMs;
}

MaintenanceWorker::~MaintenanceWorker() { Stop(); }

void MaintenanceWorker::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void MaintenanceWorker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void MaintenanceWorker::TickNow() {
  const int64_t watermark = options_.retention_ms > 0
                                ? options_.now() - options_.retention_ms
                                : INT64_MIN;
  tick_(watermark);
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

void MaintenanceWorker::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    TickNow();
    lock.lock();
  }
}

}  // namespace tu::core
