// Streaming query results (§3.4): "users can obtain its iterator to
// iteratively get its data samples with a merge iterator which connects
// the individual iterators of all related MemTables and SSTables".
//
// SampleIterator yields one series' samples in ascending timestamp order
// with newest-chunk-wins deduplication, decoding chunks lazily as the
// underlying LSM merge iterator advances — no materialized vectors, so a
// long-range scan holds O(chunk) memory.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "compress/chunk.h"
#include "lsm/iterator.h"
#include "util/status.h"

namespace tu::core {

class SampleIterator {
 public:
  /// `lsm_iter` positioned anywhere; the iterator seeks it to `id` itself.
  /// `head_samples` are the open-chunk samples (always newest).
  /// `member_slot` >= 0 selects a group member column; -1 = individual
  /// series chunks.
  SampleIterator(uint64_t id, int64_t t0, int64_t t1,
                 std::unique_ptr<lsm::Iterator> lsm_iter,
                 std::vector<compress::Sample> head_samples, int member_slot,
                 int64_t seek_slack_ms);

  bool Valid() const { return valid_; }
  const compress::Sample& value() const { return current_; }
  void Next();
  Status status() const { return status_; }

 private:
  /// Loads the next chunk's samples into the staging buffer.
  void FillBuffer();
  /// Pops the smallest pending timestamp into current_.
  void Advance();

  uint64_t id_;
  int64_t t0_;
  int64_t t1_;
  int member_slot_;
  std::unique_ptr<lsm::Iterator> lsm_iter_;
  bool lsm_done_ = false;

  // Pending samples keyed by timestamp; value carries (seq, sample value)
  // so overlapping chunks resolve newest-wins. Bounded by the overlap of
  // in-flight chunks, not by the query span.
  std::map<int64_t, std::pair<uint64_t, double>> pending_;
  // Head samples behave as an infinitely-new chunk.
  std::vector<compress::Sample> head_samples_;
  size_t head_pos_ = 0;
  int64_t max_buffered_ts_ = INT64_MIN;

  compress::Sample current_;
  bool valid_ = false;
  Status status_;
};

}  // namespace tu::core
