// Forwarding header: the streaming sample merge moved into the unified
// query layer as query::MergedSeriesIterator (one read pipeline from head
// chunks to slow-tier blocks). Kept so core-level callers and the public
// SeriesIterResult type keep their historical spelling.
#pragma once

#include "query/merged_series_iterator.h"

namespace tu::core {

using SampleIterator = query::MergedSeriesIterator;

}  // namespace tu::core
